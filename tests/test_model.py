"""Cost model tests, including the paper's worked examples.

Figure 2 (matrix multiply): per-reference LoopCost table with cls=4 and
the permutation ranking JKI < KJI < JIK < IJK < KIJ < IKJ.
Figure 3 (ADI): fused-nest LoopCost of 3n^2 (K inner) vs 3/4 n^2 (I inner).
Figure 7 (Cholesky): memory order KJI and full ranking.
"""

from fractions import Fraction

import pytest

from repro.frontend import parse_program
from repro.model import CONSECUTIVE, INVARIANT, NONE, CostModel, CostPoly, trip_poly
from repro.ir import Loop, Ref

N = CostPoly.symbol("N")

MATMUL = """
PROGRAM matmul
PARAMETER N = 512
REAL A(N,N), B(N,N), C(N,N)
DO J = 1, N
  DO K = 1, N
    DO I = 1, N
      C(I,J) = C(I,J) + A(I,K)*B(K,J)
    ENDDO
  ENDDO
ENDDO
END
"""

CHOLESKY = """
PROGRAM chol
PARAMETER N = 64
REAL A(N,N)
DO K = 1, N
  A(K,K) = SQRT(A(K,K))
  DO I = K+1, N
    A(I,K) = A(I,K) / A(K,K)
    DO J = K+1, I
      A(I,J) = A(I,J) - A(I,K)*A(J,K)
    ENDDO
  ENDDO
ENDDO
END
"""

ADI_FUSED = """
PROGRAM adi
PARAMETER N = 100
REAL X(N,N), A(N,N), B(N,N)
DO I = 2, N
  DO K = 1, N
    X(I,K) = X(I,K) - X(I-1,K)*A(I,K)/B(I-1,K)
    B(I,K) = B(I,K) - A(I,K)*A(I,K)/B(I-1,K)
  ENDDO
ENDDO
END
"""


@pytest.fixture
def model():
    return CostModel(cls=4)


class TestTripPoly:
    def test_rectangular_symbolic(self):
        loop = Loop.make("I", 1, "N", [])
        assert trip_poly(loop, {"I": loop}) == N

    def test_rectangular_constant(self):
        loop = Loop.make("I", 1, 10, [])
        assert trip_poly(loop, {"I": loop}) == CostPoly.constant(10)

    def test_negative_step(self):
        loop = Loop.make("I", "N", 1, [], step=-1)
        assert trip_poly(loop, {"I": loop}) == N

    def test_strided(self):
        loop = Loop.make("I", 1, 100, [], step=2)
        assert trip_poly(loop, {"I": loop}) == CostPoly.constant(50)

    def test_triangular_resolves_to_dominant(self):
        outer = Loop.make("K", 1, "N", [])
        inner = Loop.make("J", "K+1", "N", [])
        loops = {"K": outer, "J": inner}
        # span of J is N - K; max over K in [1, N] is N - 1
        assert trip_poly(inner, loops) == N - 1

    def test_doubly_triangular(self):
        k = Loop.make("K", 1, "N", [])
        i = Loop.make("I", "K+1", "N", [])
        j = Loop.make("J", "K+1", "I", [])
        loops = {"K": k, "I": i, "J": j}
        # span I - K maximized: I -> N, K -> 1
        assert trip_poly(j, loops) == N - 1

    def test_empty_constant_loop(self):
        loop = Loop.make("I", 5, 1, [])
        assert trip_poly(loop, {"I": loop}) == CostPoly.constant(0)


class TestRefCostKinds(object):
    def test_kinds_matmul(self, model):
        loop_i = Loop.make("I", 1, "N", [])
        loop_j = Loop.make("J", 1, "N", [])
        c = Ref.make("C", "I", "J")
        assert model.ref_cost_kind(c, loop_i) == CONSECUTIVE
        assert model.ref_cost_kind(c, loop_j) == NONE
        b = Ref.make("B", "K", "J")
        assert model.ref_cost_kind(b, loop_i) == INVARIANT

    def test_large_stride_not_consecutive(self, model):
        loop = Loop.make("I", 1, "N", [])
        ref = Ref.make("A", "8*I")
        assert model.ref_cost_kind(ref, loop) == NONE

    def test_stride_from_loop_step(self, model):
        loop = Loop.make("I", 1, "N", [], step=8)
        ref = Ref.make("A", "I")
        assert model.ref_cost_kind(ref, loop) == NONE

    def test_reversed_loop_still_consecutive(self, model):
        loop = Loop.make("I", "N", 1, [], step=-1)
        ref = Ref.make("A", "I", "J")
        assert model.ref_cost_kind(ref, loop) == CONSECUTIVE

    def test_scalar_is_invariant(self, model):
        loop = Loop.make("I", 1, "N", [])
        assert model.ref_cost_kind(Ref.make("S"), loop) == INVARIANT


class TestMatmulFigure2(object):
    """The Figure 2 LoopCost table, cls = 4."""

    def test_ref_groups(self, model):
        prog = parse_program(MATMUL)
        nest = prog.top_loops[0]
        groups = model.groups(nest, "I")
        members = sorted(tuple(sorted(s.ref.array for s in g.members)) for g in groups)
        # C write and C read group together; A and B stand alone.
        assert members == [("A",), ("B",), ("C", "C")]

    def test_loop_costs(self, model):
        prog = parse_program(MATMUL)
        nest = prog.top_loops[0]
        costs = model.loop_costs(nest)
        n2 = N * N
        n3 = n2 * N
        assert costs["J"] == 2 * n3 + n2
        assert costs["K"] == n3 + n3 * Fraction(1, 4) + n2
        assert costs["I"] == n3 * Fraction(1, 2) + n2

    def test_memory_order_is_jki(self, model):
        prog = parse_program(MATMUL)
        assert model.memory_order(prog.top_loops[0]) == ["J", "K", "I"]

    def test_full_ranking_matches_paper(self, model):
        prog = parse_program(MATMUL)
        ranking = model.rank_permutations(prog.top_loops[0])
        expected = [
            ("J", "K", "I"),
            ("K", "J", "I"),
            ("J", "I", "K"),
            ("I", "J", "K"),
            ("K", "I", "J"),
            ("I", "K", "J"),
        ]
        assert ranking == expected


class TestCholeskyFigure7(object):
    def test_memory_order_is_kji(self, model):
        prog = parse_program(CHOLESKY)
        prog = prog.with_params({"N": 0})  # force symbolic comparison path
        prog2 = parse_program(CHOLESKY)
        assert model.memory_order(prog2.top_loops[0]) == ["K", "J", "I"]

    def test_full_ranking_matches_paper(self, model):
        prog = parse_program(CHOLESKY)
        ranking = model.rank_permutations(prog.top_loops[0])
        expected = [
            ("K", "J", "I"),
            ("J", "K", "I"),
            ("K", "I", "J"),
            ("I", "K", "J"),
            ("J", "I", "K"),
            ("I", "J", "K"),
        ]
        assert ranking == expected

    def test_groups_share_a_ik(self, model):
        # A(I,K) appears in S2 (write+read) and S3 (read): one group, and
        # its representative is the deepest occurrence (in S3).
        prog = parse_program(CHOLESKY)
        nest = prog.top_loops[0]
        groups = model.groups(nest, "I")
        aik = [
            g
            for g in groups
            if any(str(s.ref) == "A(I, K)" for s in g.members)
        ]
        assert len(aik) == 1
        assert aik[0].size >= 3
        assert aik[0].representative.sid == 2  # S3 is the deepest


class TestADIFigure3(object):
    def test_fused_costs(self, model):
        prog = parse_program(ADI_FUSED)
        nest = prog.top_loops[0]
        costs = model.loop_costs(nest)
        # The I loop runs 2..N (trip N-1); the paper's table idealizes both
        # trips to n. The shape — K costs 4x what I costs — is identical.
        assert costs["K"] == 3 * N * (N - 1)
        assert costs["I"] == 3 * N * (N - 1) * Fraction(1, 4)

    def test_group_spatial_detected(self, model):
        prog = parse_program(ADI_FUSED)
        nest = prog.top_loops[0]
        groups = model.groups(nest, "K")
        spatial = [g for g in groups if g.has_group_spatial]
        # X(I,K)/X(I-1,K) and B(I,K)/B(I-1,K) groups are group-spatial.
        assert len(spatial) == 2
        assert len(groups) == 3

    def test_memory_order_prefers_i_inner(self, model):
        prog = parse_program(ADI_FUSED)
        assert model.memory_order(prog.top_loops[0]) == ["K", "I"]


class TestImperfectNestCosts(object):
    def test_statement_outside_candidate_loop(self, model):
        # S1 sits only under K; candidate inner loop I does not enclose it.
        prog = parse_program(CHOLESKY)
        nest = prog.top_loops[0]
        costs = model.loop_costs(nest)
        # All costs positive and finite; ranking already validated above.
        for poly in costs.values():
            assert poly.magnitude() > 0
