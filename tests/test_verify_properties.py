"""Algebraic property tests on the transformations themselves.

Three structural round-trip properties ride on the verification
subsystem: an involutive permutation applied twice is the identity,
distribution followed by fusion restores the original semantics, and the
compound driver is a fixed point (running it on its own output changes
nothing).
"""

import itertools
import random

import pytest

from repro.frontend import parse_program
from repro.ir import pretty_program
from repro.ir.nodes import Assign, Loop
from repro.ir.visit import iter_loops
from repro.model import CostModel
from repro.transforms.compound import compound
from repro.transforms.distribution import distribute_nest, finest_partitions
from repro.transforms.fusion import fuse_adjacent
from repro.transforms.permute import apply_order
from repro.verify.gennest import generate_program
from repro.verify.oracles import run_state
from repro.verify.runner import case_rng

MATMUL = """
PROGRAM MM
PARAMETER N = 6
REAL A(N,N), B(N,N), C(N,N)
DO I = 1, N
  DO J = 1, N
    DO K = 1, N
      C(I,J) = C(I,J) + A(I,K)*B(K,J)
    ENDDO
  ENDDO
ENDDO
END
"""

FISSIONED = """
PROGRAM FIS
REAL A(9,9), B(9,9)
DO I = 1, 8
  DO J = 1, 8
    A(I,J) = I + J
  ENDDO
ENDDO
DO I = 1, 8
  DO J = 1, 8
    B(I,J) = A(I,J) * 2
  ENDDO
ENDDO
END
"""

CHOLESKY = """
PROGRAM CHOL
PARAMETER N = 12
REAL A(N,N)
DO K = 1, N
  A(K,K) = SQRT(A(K,K))
  DO I = K+1, N
    A(I,K) = A(I,K) / A(K,K)
    DO J = K+1, I
      A(I,J) = A(I,J) - A(I,K)*A(J,K)
    ENDDO
  ENDDO
ENDDO
END
"""

# Involutions on three positions: applying twice is the identity.
INVOLUTIONS = [(1, 0, 2), (0, 2, 1), (2, 1, 0)]


class TestPermutationInvolution:
    @pytest.mark.parametrize("perm", INVOLUTIONS)
    def test_applying_a_swap_twice_restores_the_nest(self, perm):
        nest = parse_program(MATMUL).body[0]
        original = pretty_program_nest(nest)
        chain = nest.perfect_nest_loops()
        order1 = tuple(chain[p].var for p in perm)
        once = apply_order(chain, order1, set())
        chain1 = once.perfect_nest_loops()
        order2 = tuple(chain1[p].var for p in perm)
        twice = apply_order(chain1, order2, set())
        assert pretty_program_nest(twice) == original

    def test_double_reversal_restores_the_nest(self):
        nest = parse_program(MATMUL).body[0]
        original = pretty_program_nest(nest)
        chain = nest.perfect_nest_loops()
        order = tuple(loop.var for loop in chain)
        once = apply_order(chain, order, {"I"})
        twice = apply_order(once.perfect_nest_loops(), order, {"I"})
        assert pretty_program_nest(twice) == original


def pretty_program_nest(nest: Loop) -> str:
    program = parse_program(MATMUL)
    return pretty_program(program.with_body([nest]))


class TestDistributionFusionRoundTrip:
    def test_fission_then_fusion_round_trips(self):
        # The fissioned form fuses into one nest, and distributing that
        # nest's body splits it back into the same two statement groups.
        program = parse_program(FISSIONED)
        model = CostModel()
        outcome = fuse_adjacent(program.body, model, require_benefit=False)
        assert outcome.fused == 1
        fused = program.with_body(list(outcome.items))
        assert sum(isinstance(n, Loop) for n in fused.body) == 1
        assert run_state(fused) == run_state(program)

        nest = fused.body[0]
        inner = nest.body[0]
        parts = finest_partitions(nest, inner, 2)
        assert len(parts) == 2
        def sids(item):
            if isinstance(item, Assign):
                return [item.sid]
            return [s.sid for s in item.statements]

        sid_groups = [
            sorted(sid for item in part for sid in sids(item))
            for part in parts
        ]
        original_groups = [
            sorted(s.sid for s in n.statements) for n in program.body
        ]
        assert sid_groups == original_groups

    def test_distribution_preserves_semantics(self):
        # The real driver on the paper's Cholesky example: distribution
        # plus the enabled interchange must not change program output.
        # Initial data must be positive definite for SQRT to stay real;
        # a diagonally dominant symmetric matrix is.
        import numpy as np

        from repro.exec.interp import Interpreter

        def init(name, extents):
            data = np.full(extents, 0.01)
            for i in range(extents[0]):
                data[i, i] = float(extents[0])
            return data

        def state(prog):
            arrays = Interpreter(prog, check_values=False, init=init).run()
            return {name: arr.tobytes() for name, arr in arrays.items()}

        program = parse_program(CHOLESKY)
        nest = program.body[0]
        used = {loop.var for loop in iter_loops(program)}
        outcome = distribute_nest(nest, CostModel(), used_names=set(used))
        assert outcome is not None and outcome.new_nests == 2
        distributed = program.with_body(list(outcome.nodes))
        assert state(distributed) == state(program)


class TestCompoundFixedPoint:
    def test_matmul_fixed_point(self):
        program = parse_program(MATMUL)
        first = compound(program, CostModel()).program
        second = compound(first, CostModel()).program
        assert pretty_program(second) == pretty_program(first)

    @pytest.mark.parametrize("case", range(20))
    def test_generated_nests_fixed_point(self, case):
        program = generate_program(case_rng(0, case), name=f"FP{case}")
        first = compound(program, CostModel()).program
        second = compound(first, CostModel()).program
        assert pretty_program(second) == pretty_program(first)
        # And the driver's output is always semantics-preserving.
        assert run_state(first) == run_state(program)
