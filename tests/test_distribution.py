"""Tests for loop distribution and the Compound driver (Figures 5-7)."""

import pytest

from repro.frontend import parse_program
from repro.ir import Loop, iter_loops, iter_statements, pretty, validate_program
from repro.model import CostModel
from repro.transforms import compound, distribute_nest, finest_partitions

CHOLESKY = """
PROGRAM chol
PARAMETER N = 24
REAL A(N,N)
DO K = 1, N
  A(K,K) = SQRT(A(K,K))
  DO I = K+1, N
    A(I,K) = A(I,K) / A(K,K)
    DO J = K+1, I
      A(I,J) = A(I,J) - A(I,K)*A(J,K)
    ENDDO
  ENDDO
ENDDO
END
"""


class TestFinestPartitions:
    def test_independent_statements_split(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N,N), B(N,N)
            DO I = 1, N
              DO J = 1, N
                A(I,J) = 1.0
                B(J,I) = 2.0
              ENDDO
            ENDDO
            END
            """
        )
        nest = prog.top_loops[0]
        inner = nest.inner_loops[0]
        parts = finest_partitions(nest, inner, 2)
        assert len(parts) == 2

    def test_recurrence_stays_together(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N), B(N)
            DO I = 2, N
              A(I) = B(I-1)
              B(I) = A(I-1)
            ENDDO
            END
            """
        )
        nest = prog.top_loops[0]
        parts = finest_partitions(nest, nest, 1)
        assert len(parts) == 1

    def test_cholesky_level2_partitions(self):
        prog = parse_program(CHOLESKY)
        nest = prog.top_loops[0]
        i_loop = nest.inner_loops[0]
        parts = finest_partitions(nest, i_loop, 2)
        # S2 and the J-nest separate (no recurrence at level 2+).
        assert len(parts) == 2

    def test_outer_recurrence_ignored_at_deeper_level(self):
        # Recurrence carried by I (level 1) only: at level 2 the two
        # statements may distribute.
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N,N), B(N,N)
            DO I = 2, N
              DO J = 1, N
                A(I,J) = B(I-1,J)
                B(I,J) = A(I-1,J)
              ENDDO
            ENDDO
            END
            """
        )
        nest = prog.top_loops[0]
        inner = nest.inner_loops[0]
        assert len(finest_partitions(nest, inner, 2)) == 2
        assert len(finest_partitions(nest, nest, 1)) == 1


class TestDistributeNest:
    def test_cholesky_distributes_and_interchanges(self):
        prog = parse_program(CHOLESKY)
        nest = prog.top_loops[0]
        model = CostModel(cls=4)
        outcome = distribute_nest(nest, model)
        assert outcome is not None
        assert outcome.level == 2
        assert outcome.new_nests == 2
        (root,) = outcome.nodes
        assert root.var == "K"
        # Inside K: S1, the I loop with S2, and the interchanged J/I nest.
        inner = [n for n in root.body if isinstance(n, Loop)]
        assert len(inner) == 2
        permuted = inner[1]
        chain = permuted.perfect_nest_loops()
        # Memory order for S3 is (K) J I: J now outside I.
        assert chain[0].var == "J"
        assert chain[1].var.startswith("I")
        # Triangular bounds recomputed: inner I runs J..N-ish.
        assert "J" in {str(n) for n in chain[1].lb.names} or chain[1].lb.coeff("J")

    def test_no_distribution_when_single_partition(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N,N)
            DO I = 2, N
              DO J = 2, N
                A(I,J) = A(I-1,J) + A(I,J-1)
              ENDDO
            ENDDO
            END
            """
        )
        assert distribute_nest(prog.top_loops[0], CostModel(cls=4)) is None

    def test_distribution_preserves_statements(self):
        prog = parse_program(CHOLESKY)
        nest = prog.top_loops[0]
        outcome = distribute_nest(nest, CostModel(cls=4))
        sids = sorted(
            s.sid for node in outcome.nodes for s in node.statements
        )
        assert sids == [0, 1, 2]


class TestCompound:
    def test_matmul_program(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 32
            REAL A(N,N), B(N,N), C(N,N)
            DO I = 1, N
              DO J = 1, N
                DO K = 1, N
                  C(I,J) = C(I,J) + A(I,K)*B(K,J)
                ENDDO
              ENDDO
            ENDDO
            END
            """
        )
        outcome = compound(prog, CostModel(cls=4))
        assert len(outcome.nests) == 1
        assert outcome.nests[0].status == "perm"
        assert outcome.nests[0].inner_status == "perm"
        loops = [l.var for l in iter_loops(outcome.program)]
        assert loops == ["J", "K", "I"]
        validate_program(outcome.program)

    def test_cholesky_program(self):
        prog = parse_program(CHOLESKY)
        outcome = compound(prog, CostModel(cls=4))
        assert outcome.distribution_applied == 1
        assert outcome.distribution_resulting == 2
        report = outcome.nests[0]
        assert report.distributed
        validate_program(outcome.program)

    def test_adi_fusion_enables_permutation(self):
        prog = parse_program(
            """
            PROGRAM adi
            PARAMETER N = 40
            REAL X(N,N), A(N,N), B(N,N)
            DO I = 2, N
              DO K = 1, N
                X(I,K) = X(I,K) - X(I-1,K)*A(I,K)/B(I-1,K)
              ENDDO
              DO K = 1, N
                B(I,K) = B(I,K) - A(I,K)*A(I,K)/B(I-1,K)
              ENDDO
            ENDDO
            END
            """
        )
        outcome = compound(prog, CostModel(cls=4))
        report = outcome.nests[0]
        assert report.fusion_enabled_permutation
        assert report.status == "perm"
        # Fused and interchanged: K outermost, I innermost (Figure 3c).
        loops = [l.var for l in iter_loops(outcome.program)]
        assert loops == ["K", "I"]
        validate_program(outcome.program)

    def test_memory_order_program_untouched(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 16
            REAL A(N,N)
            DO J = 1, N
              DO I = 1, N
                A(I,J) = A(I,J) * 2.0
              ENDDO
            ENDDO
            END
            """
        )
        outcome = compound(prog, CostModel(cls=4))
        assert outcome.nests[0].status == "orig"
        assert outcome.program.body == prog.body

    def test_top_level_fusion_counts(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 16
            REAL A(N,N), B(N,N), C(N,N)
            DO J = 1, N
              DO I = 1, N
                B(I,J) = A(I,J) * 2.0
              ENDDO
            ENDDO
            DO L = 1, N
              DO K = 1, N
                C(K,L) = A(K,L) + B(K,L)
              ENDDO
            ENDDO
            END
            """
        )
        outcome = compound(prog, CostModel(cls=4))
        assert outcome.fusion_candidates == 2
        assert outcome.nests_fused == 1
        assert len(outcome.program.top_loops) == 1
        validate_program(outcome.program)

    def test_stats_counts(self):
        prog = parse_program(CHOLESKY)
        outcome = compound(prog, CostModel(cls=4))
        counts = outcome.counts
        assert sum(counts.values()) == len(outcome.nests) == 1
