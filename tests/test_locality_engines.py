"""Tests for the trace-driven reuse-distance engines (repro.locality.histogram)."""

import random

import pytest

from repro.cache.reuse import COLD, reuse_profile
from repro.frontend import parse_program
from repro.locality import per_ref_profile, sampled_profile
from repro.seeds import seed_sequence
from repro.suite import get_entry
from repro.verify.gennest import generate_program

KERNELS = [("matmul", 16), ("jacobi", 25), ("transpose", 24), ("cholesky", 17)]


def aggregate(analyzer):
    total = {}
    for profile in analyzer.profiles.values():
        for distance, count in profile.histogram.items():
            total[distance] = total.get(distance, 0) + count
    return total


class TestPerRefEngine:
    @pytest.mark.parametrize("name,n", KERNELS)
    def test_aggregate_matches_reference_analyzer(self, name, n):
        program = get_entry(name).program(n)
        reference = reuse_profile(program, line=64)
        analyzer = per_ref_profile(program, line=64)
        assert aggregate(analyzer) == dict(reference.histogram)

    @pytest.mark.parametrize("name,n", KERNELS)
    def test_per_slot_mass_sums_to_accesses(self, name, n):
        program = get_entry(name).program(n)
        analyzer = per_ref_profile(program, line=32)
        reference = reuse_profile(program, line=32)
        per_slot = sum(p.accesses for p in analyzer.profiles.values())
        assert per_slot == reference.accesses
        for profile in analyzer.profiles.values():
            assert sum(profile.histogram.values()) == profile.accesses

    def test_slots_attributed_to_declared_refs(self):
        program = get_entry("matmul").program(12)
        analyzer = per_ref_profile(program, line=128)
        arrays = {p.array for p in analyzer.profiles.values()}
        assert arrays == {"A", "B", "C"}
        # matmul's one statement has a write and three reads.
        assert len(analyzer.profiles) == 4

    @pytest.mark.parametrize("seed", seed_sequence(4, "locality-engines"))
    def test_random_nests_agree_with_reference(self, seed):
        program = generate_program(random.Random(seed), name=f"LE{seed}")
        reference = reuse_profile(program, line=8)
        analyzer = per_ref_profile(program, line=8)
        assert aggregate(analyzer) == dict(reference.histogram)


class TestBlockEngine:
    @pytest.mark.parametrize("name,n", KERNELS)
    def test_unsampled_is_bit_identical(self, name, n):
        program = get_entry(name).program(n)
        reference = reuse_profile(program, line=64)
        batched = sampled_profile(program, line=64, sample_rate=1.0)
        assert dict(batched.histogram) == dict(reference.histogram)
        assert batched.accesses == reference.accesses

    @pytest.mark.parametrize(
        "name,n",
        [
            ("transpose", 128),
            pytest.param("jacobi", 97, marks=pytest.mark.slow),
        ],
    )
    def test_sampled_hit_rate_close_to_exact(self, name, n):
        # SHARDS is a statistical estimator: the bound only holds once
        # the line population is large enough to sample from.
        program = get_entry(name).program(n)
        exact = reuse_profile(program, line=64)
        sampled = sampled_profile(program, line=64, sample_rate=0.5)
        assert sampled.accesses == exact.accesses
        for capacity in (64, 512):
            assert sampled.hit_rate_for_capacity(capacity) == pytest.approx(
                exact.hit_rate_for_capacity(capacity), abs=0.05
            )

    def test_sampling_scales_cold_counts(self):
        program = get_entry("transpose").program(64)
        exact = reuse_profile(program, line=32)
        sampled = sampled_profile(program, line=32, sample_rate=0.5)
        cold_exact = exact.histogram.get(COLD, 0)
        cold_sampled = sampled.histogram.get(COLD, 0)
        assert cold_sampled == pytest.approx(cold_exact, rel=0.25)

    def test_rejects_bad_parameters(self):
        source = parse_program(
            "PROGRAM p\nREAL A(8)\nDO I = 1, 8\nA(I) = 0.0\nENDDO\nEND"
        )
        with pytest.raises(ValueError):
            sampled_profile(source, line=48)  # not a power of two
        with pytest.raises(ValueError):
            sampled_profile(source, line=64, sample_rate=0.0)
