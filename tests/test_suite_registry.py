"""Registry contracts: size validation, seed parity, sets, instances."""

import pytest

from repro.errors import ReproError
from repro.ir.nodes import Program
from repro.suite.registry import (
    SETS,
    SUITE,
    SuiteEntry,
    add_entry,
    get_entry,
    get_set,
    register_set,
    set_names,
    suite_entries,
)

# ----------------------------------------------------------------------
# Satellite: the `n or default_n` falsy-size bug is dead.


class TestSizeValidation:
    def test_n_zero_raises_instead_of_silent_default(self):
        # Regression: `n or self.default_n` treated n=0 as "use the
        # default", so a caller sweeping sizes down to zero silently
        # re-measured the default-size program.
        entry = get_entry("matmul")
        with pytest.raises(ReproError, match="positive integer"):
            entry.program(0)

    @pytest.mark.parametrize("bad", [-1, -24, False, True, 2.0, "8"])
    def test_non_positive_or_non_int_sizes_raise(self, bad):
        entry = get_entry("matmul")
        with pytest.raises(ReproError, match="positive integer"):
            entry.program(bad)

    def test_none_still_means_default(self):
        entry = get_entry("matmul")
        program = entry.program()
        assert program.param_env["N"] == entry.default_n

    def test_n_and_instance_are_mutually_exclusive(self):
        with pytest.raises(ReproError, match="not both"):
            get_entry("matmul").program(8, instance="mini")

    def test_unknown_instance_raises_with_choices(self):
        with pytest.raises(ReproError, match="mini"):
            get_entry("matmul").program(instance="huge")

    def test_instance_builds_at_ladder_size(self):
        entry = get_entry("matmul")
        program = entry.program(instance="mini")
        assert program.param_env["N"] == entry.instances["mini"]


# ----------------------------------------------------------------------
# Satellite: seed parity — every pre-registry entry keeps its name,
# category, and default size, so table3_perf/table4_* inputs are pinned.

#: name -> (category, default_n) exactly as shipped before the registry
#: rebuild. Renaming, recategorizing, or resizing any of these entries
#: changes experiment inputs and must be a deliberate, reviewed break.
SEED_ENTRIES = {
    "matmul": ("kernel", 32),
    "cholesky": ("kernel", 24),
    "adi": ("kernel", 32),
    "jacobi": ("kernel", 32),
    "transpose": ("kernel", 32),
    "erlebacher_like": ("misc", 16),
    "arc2d_like": ("perfect", 24),
    "trfd_like": ("perfect", 24),
    "qcd_like": ("perfect", 24),
    "mdg_like": ("perfect", 24),
    "ocean_like": ("perfect", 24),
    "adm_like": ("perfect", 24),
    "bdna_like": ("perfect", 24),
    "dyfesm_like": ("perfect", 24),
    "flo52_like": ("perfect", 24),
    "spec77_like": ("perfect", 24),
    "track_like": ("perfect", 24),
    "gmtry_like": ("spec", 24),
    "vpenta_like": ("spec", 24),
    "btrix_like": ("spec", 24),
    "hydro2d_like": ("spec", 24),
    "tomcatv_like": ("spec", 24),
    "swm256_like": ("spec", 24),
    "su2cor_like": ("spec", 24),
    "doduc_like": ("spec", 24),
    "matrix300_like": ("spec", 24),
    "mdljdp2_like": ("spec", 24),
    "ora_like": ("spec", 24),
    "fpppp_like": ("spec", 24),
    "mxm_like": ("spec", 24),
    "emit_like": ("spec", 24),
    "applu_like": ("nas", 24),
    "appsp_like": ("nas", 24),
    "appbt_like": ("nas", 24),
    "mg3d_like": ("nas", 24),
    "fftpde_like": ("nas", 24),
    "embar_like": ("nas", 24),
    "mgrid_like": ("nas", 24),
    "buk_like": ("nas", 24),
    "simple_like": ("misc", 24),
    "wave_like": ("misc", 24),
    "linpackd_like": ("misc", 24),
}


class TestSeedParity:
    def test_every_seed_entry_survives_with_category_and_size(self):
        for name, (category, default_n) in SEED_ENTRIES.items():
            assert name in SUITE, f"pre-registry entry {name!r} disappeared"
            entry = SUITE[name]
            assert entry.category == category, (
                f"{name}: category {entry.category!r} != seed {category!r}"
            )
            assert entry.default_n == default_n, (
                f"{name}: default_n {entry.default_n} != seed {default_n}"
            )

    def test_paper_set_is_exactly_the_seed_population(self):
        assert sorted(get_set("paper").members) == sorted(SEED_ENTRIES)

    def test_seed_count(self):
        assert len(SEED_ENTRIES) == 42

    def test_suite_entries_category_filter_unchanged(self):
        kernels = suite_entries(("kernel",))
        assert [e.name for e in kernels] == sorted(
            n for n, (c, _) in SEED_ENTRIES.items() if c == "kernel"
        )


# ----------------------------------------------------------------------
# Registration and set plumbing.


def _dummy_build(n: int) -> Program:
    from repro.frontend import parse_program

    return parse_program(f"""
        PROGRAM dummy
        PARAMETER N = {n}
        REAL A(N)
        DO I = 1, N
          A(I) = A(I) + 1.0
        ENDDO
        END
        """)


class TestRegistration:
    def test_duplicate_entry_name_raises(self):
        with pytest.raises(ReproError, match="already registered"):
            add_entry("matmul", _dummy_build, "kernel")

    def test_set_with_unknown_member_raises(self):
        with pytest.raises(ReproError, match="unknown entries"):
            register_set("broken", "bad", ["matmul", "no_such_kernel"])
        assert "broken" not in SETS

    def test_set_with_duplicate_members_raises(self):
        with pytest.raises(ReproError, match="duplicate"):
            register_set("dupes", "bad", ["matmul", "matmul"])
        assert "dupes" not in SETS

    def test_get_set_unknown_lists_choices(self):
        with pytest.raises(KeyError, match="paper"):
            get_set("nope")

    def test_set_names_sorted(self):
        assert set_names() == sorted(SETS)

    def test_derived_instance_ladder_is_ordered(self):
        entry = SuiteEntry("tmp_ladder_probe", _dummy_build, "kernel", 24)
        assert tuple(entry.instances) == ("mini", "small", "medium")
        mini, small, medium = entry.instances.values()
        assert mini < small < medium == 24
