"""Set-runner behaviour: whole-set execution, failure isolation, CLI.

The failure-path tests inject a deliberately broken kernel into the
registry (removed again by the fixture) and check the contract from the
issue: one kernel raising mid-set must not poison sibling shards, the
report marks it failed, and the CLI exits non-zero — covered at
``--jobs 1`` (serial) and sharded.
"""

import json
import os

import pytest

from repro.obs.report import render_set_report
from repro.suite.registry import SETS, SUITE, add_entry, register_set
from repro.suite.runner import EntryResult, run_set


def _boom_build(n: int):
    raise RuntimeError(f"kernel exploded at n={n}")


@pytest.fixture
def failing_set():
    """A three-member set whose middle entry raises while building."""
    add_entry("boom_kernel", _boom_build, "kernel", 8,
              source="injected failure for runner tests")
    register_set("failset", "injected failure-path set",
                 ["matmul", "boom_kernel", "jacobi"])
    yield "failset"
    SUITE.pop("boom_kernel")
    SETS.pop("failset")


class TestRunSet:
    def test_smoke_set_runs_whole_and_clean(self):
        result = run_set("smoke", instance="mini", jobs=1)
        assert result.ok
        assert [r.name for r in result.results] == list(SETS["smoke"].members)
        for row in result.results:
            assert row.status == "ok"
            assert row.n == SUITE[row.name].instances["mini"]
            assert row.accesses > 0
            assert row.miss_before is not None and row.miss_after is not None

    def test_unknown_set_raises_keyerror_with_choices(self):
        with pytest.raises(KeyError, match="paper"):
            run_set("no_such_set")

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_one_failure_does_not_poison_siblings(self, failing_set, jobs):
        result = run_set(failing_set, instance="mini", jobs=jobs)
        assert not result.ok
        by_name = {r.name: r for r in result.results}
        assert by_name["matmul"].ok
        assert by_name["jacobi"].ok
        boom = by_name["boom_kernel"]
        assert boom.status == "failed"
        assert boom.error
        assert result.failures == (boom,)

    def test_serial_failure_captures_the_real_exception(self, failing_set):
        result = run_set(failing_set, instance="mini", jobs=1)
        (boom,) = result.failures
        assert "RuntimeError" in boom.error
        assert "kernel exploded" in boom.error
        assert "RuntimeError" in boom.traceback

    def test_report_payload_marks_failure(self, failing_set):
        payload = run_set(failing_set, instance="mini", jobs=1).report_payload()
        assert payload["entries"] == 3
        assert payload["failed"] == 1
        rows = {row["program"]: row for row in payload["rows"]}
        assert rows["boom_kernel"]["status"] == "failed"
        assert rows["boom_kernel"]["miss_before"] is None
        assert rows["matmul"]["status"] == "ok"

        markdown = render_set_report(payload, fmt="md")
        assert "FAIL" in markdown.splitlines()[0]
        assert "boom_kernel" in markdown
        html = render_set_report(payload, fmt="html")
        assert "failed" in html

    def test_improvement_pp_none_when_unscored(self):
        row = EntryResult(name="x", category="kernel", status="failed",
                          instance="mini")
        assert row.improvement_pp is None
        assert not row.ok

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failed_row_carries_traceback_and_input_digest(
        self, failing_set, jobs
    ):
        """The ledger contract: a failed row is actionable on its own.

        Both the serial path (exception captured in-process) and the
        sharded path (ShardFailure pickled back from a worker) must
        produce the same failed-row shape: the real traceback and a
        stable digest of the shard's input arguments.
        """
        from repro.experiments.common import shard_input_digest

        result = run_set(failing_set, instance="mini", jobs=jobs)
        (boom,) = result.failures
        assert "RuntimeError" in boom.traceback
        assert "kernel exploded" in boom.traceback
        expected = shard_input_digest(
            ("boom_kernel", "mini", result.line, result.capacity)
        )
        assert boom.digest == expected

        rows = {
            row["program"]: row
            for row in result.ledger_payload()["rows"]
        }
        failed_row = rows["boom_kernel"]
        assert failed_row["status"] == "failed"
        assert "kernel exploded" in failed_row["error"]
        assert "RuntimeError" in failed_row["traceback"]
        assert failed_row["digest"] == expected
        # ok rows stay compact in the ledger: no bulky diagnosis fields.
        assert "traceback" not in rows["matmul"]
        assert rows["matmul"]["status"] == "ok"

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failed_row_digest_is_replay_stable(self, failing_set, jobs):
        first = run_set(failing_set, instance="mini", jobs=jobs)
        second = run_set(failing_set, instance="mini", jobs=jobs)
        assert first.failures[0].digest == second.failures[0].digest
        assert first.failures[0].digest  # non-empty, 12-hex config digest
        assert len(first.failures[0].digest) == 12


class TestRunCLI:
    def _main(self, argv):
        from repro.suite.__main__ import main

        return main(argv)

    def test_failed_set_exits_nonzero_and_report_marks_it(
        self, failing_set, tmp_path, capsys
    ):
        report = tmp_path / "fail.md"
        rc = self._main(
            ["run", failing_set, "--instance", "mini", "--jobs", "1",
             "--report", str(report), "--no-ledger"]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "FAILED boom_kernel" in err
        text = report.read_text()
        assert "FAIL" in text.splitlines()[0]
        assert "boom_kernel" in text

    def test_clean_set_exits_zero_and_writes_html(self, tmp_path, capsys):
        report = tmp_path / "smoke.html"
        rc = self._main(
            ["run", "smoke", "--instance", "mini", "--jobs", "1",
             "--report", str(report), "--no-ledger"]
        )
        assert rc == 0
        assert report.read_text().startswith("<!doctype html>")
        assert "smoke" in capsys.readouterr().out

    def test_unknown_set_is_a_usage_error(self, capsys):
        rc = self._main(["run", "nope", "--no-ledger"])
        assert rc == 2
        assert "unknown suite set" in capsys.readouterr().err

    def test_unknown_flag_is_a_usage_error(self, capsys):
        rc = self._main(["run", "smoke", "--frobnicate", "--no-ledger"])
        assert rc == 2

    def test_run_appends_ledger_record(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LEDGER", "1")
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path))
        rc = self._main(["run", "smoke", "--instance", "mini", "--jobs", "1"])
        assert rc == 0
        (ledger_file,) = [
            os.path.join(root, fn)
            for root, _, fns in os.walk(tmp_path)
            for fn in fns
            if fn.endswith(".jsonl")
        ]
        records = [
            json.loads(line)
            for line in open(ledger_file)
            if line.strip()
        ]
        record = records[-1]
        assert record["kind"] == "suite.set"
        assert record["config_digest"]
        assert record["bench"]["set"] == "smoke"
        assert record["bench"]["failed"] == 0
        assert len(record["bench"]["rows"]) == len(SETS["smoke"].members)

    def test_list_sets(self, capsys):
        rc = self._main(["list", "--sets"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("paper", "polybench", "ai", "smoke", "all"):
            assert name in out
