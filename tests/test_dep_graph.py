"""Tests for the dependence graph and SCC machinery."""

from hypothesis import given, strategies as st

from repro.dependence import DependenceGraph, region_dependences
from repro.dependence.graph import strongly_connected_components
from repro.frontend import parse_program


class TestSCC:
    def test_chain(self):
        sccs = strongly_connected_components([1, 2, 3], {1: [2], 2: [3], 3: []})
        assert sccs == [(1,), (2,), (3,)]

    def test_cycle(self):
        sccs = strongly_connected_components([1, 2, 3], {1: [2], 2: [1], 3: []})
        assert (1, 2) in sccs and (3,) in sccs

    def test_self_loop(self):
        sccs = strongly_connected_components([1], {1: [1]})
        assert sccs == [(1,)]

    def test_topological_order(self):
        # 3 -> {1,2 cycle} -> 4
        sccs = strongly_connected_components(
            [1, 2, 3, 4], {3: [1], 1: [2], 2: [1, 4], 4: []}
        )
        assert sccs.index((3,)) < sccs.index((1, 2)) < sccs.index((4,))

    def test_two_cycles(self):
        adj = {1: [2], 2: [1, 3], 3: [4], 4: [3]}
        sccs = strongly_connected_components([1, 2, 3, 4], adj)
        assert sccs == [(1, 2), (3, 4)]

    @given(
        st.integers(1, 8).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                    max_size=20,
                ),
            )
        )
    )
    def test_scc_partition_property(self, case):
        n, edge_list = case
        nodes = list(range(n))
        adj = {i: [] for i in nodes}
        for a, b in edge_list:
            adj[a].append(b)
        sccs = strongly_connected_components(nodes, adj)
        # Partition: every node in exactly one component.
        flat = [x for comp in sccs for x in comp]
        assert sorted(flat) == nodes
        # Topological: no edge from a later component to an earlier one,
        # unless both endpoints share a component.
        comp_of = {x: i for i, comp in enumerate(sccs) for x in comp}
        for a, b in edge_list:
            assert comp_of[a] <= comp_of[b]


class TestDependenceGraph:
    def _graph(self, source):
        prog = parse_program(source)
        loop = prog.top_loops[0]
        deps = region_dependences(loop)
        sids = [s.sid for s in loop.statements]
        return DependenceGraph.build(sids, deps)

    def test_recurrence_detected(self):
        graph = self._graph(
            """
            PROGRAM p
            PARAMETER N = 10
            REAL A(N), B(N)
            DO I = 2, N
              A(I) = B(I-1)
              B(I) = A(I-1)
            ENDDO
            END
            """
        )
        sccs = graph.sccs()
        assert sccs == [(0, 1)]

    def test_independent_statements_split(self):
        graph = self._graph(
            """
            PROGRAM p
            PARAMETER N = 10
            REAL A(N), B(N)
            DO I = 1, N
              A(I) = 1.0
              B(I) = 2.0
            ENDDO
            END
            """
        )
        assert graph.sccs() == [(0,), (1,)]

    def test_restrict_to_level_breaks_outer_recurrence(self):
        # Recurrence carried only by the OUTER loop: restricting to level 2
        # (inner) drops those edges and the statements separate.
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 10
            REAL A(N,N), B(N,N)
            DO I = 2, N
              DO J = 1, N
                A(I,J) = B(I-1,J)
                B(I,J) = A(I-1,J)
              ENDDO
            ENDDO
            END
            """
        )
        loop = prog.top_loops[0]
        deps = region_dependences(loop)
        graph = DependenceGraph.build([0, 1], deps)
        assert graph.sccs() == [(0, 1)]
        inner_only = graph.restricted_to_level(2)
        assert inner_only.sccs() == [(0,), (1,)]

    def test_input_dependences_excluded(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 10
            REAL A(N), B(N), C(N)
            DO I = 1, N
              B(I) = A(I)
              C(I) = A(I)
            ENDDO
            END
            """
        )
        loop = prog.top_loops[0]
        deps = region_dependences(loop, include_inputs=True)
        graph = DependenceGraph.build([0, 1], deps)
        assert graph.successors(0) == []

    def test_has_path(self):
        graph = self._graph(
            """
            PROGRAM p
            PARAMETER N = 10
            REAL A(N), B(N), C(N)
            DO I = 1, N
              A(I) = 1.0
              B(I) = A(I)
              C(I) = B(I)
            ENDDO
            END
            """
        )
        assert graph.has_path(0, 2)
        assert not graph.has_path(2, 0)
        assert not graph.has_path(0, 2, blocked=frozenset({1}))
