"""Unit tests for hybrid distance/direction vectors."""

import pytest

from repro.dependence.vector import DepVector
from repro.errors import DependenceError


class TestClassification:
    def test_loop_independent(self):
        assert DepVector.of(0, "=", 0).is_loop_independent()
        assert not DepVector.of(0, "<").is_loop_independent()
        assert not DepVector.of("*", 0).is_loop_independent()

    def test_carried_level(self):
        assert DepVector.of(0, 1, "<").carried_level() == 2
        assert DepVector.of("=", "=").carried_level() is None
        assert DepVector.of("*", 0).carried_level() == 1

    def test_lex_positive(self):
        assert DepVector.of(0, 1).is_lex_positive()
        assert DepVector.of("<", ">").is_lex_positive()
        assert not DepVector.of(0, 0).is_lex_positive()
        assert not DepVector.of("*", 1).is_lex_positive()
        assert not DepVector.of(-1, 1).is_lex_positive()

    def test_lex_negative(self):
        assert DepVector.of(0, -2).is_lex_negative()
        assert not DepVector.of("*", -1).is_lex_negative()

    def test_legal(self):
        assert DepVector.of(0, 0).is_legal()
        assert DepVector.of(1, -5).is_legal()
        assert not DepVector.of(-1, 5).is_legal()
        assert not DepVector.of("*", 1).is_legal()

    def test_validation(self):
        with pytest.raises(DependenceError):
            DepVector.of("?")
        with pytest.raises(DependenceError):
            DepVector.of(True)


class TestTransforms:
    def test_permuted(self):
        v = DepVector.of(1, 2, 3)
        assert v.permuted([2, 0, 1]) == DepVector.of(3, 1, 2)

    def test_permuted_rejects_non_permutation(self):
        with pytest.raises(DependenceError):
            DepVector.of(1, 2).permuted([0, 0])

    def test_reversed_at(self):
        v = DepVector.of(1, "<", "*")
        assert v.reversed_at(0) == DepVector.of(-1, "<", "*")
        assert v.reversed_at(1) == DepVector.of(1, ">", "*")
        assert v.reversed_at(2) == DepVector.of(1, "<", "*")

    def test_negated(self):
        assert DepVector.of(1, "=", ">").negated() == DepVector.of(-1, "=", "<")

    def test_interchange_makes_illegal(self):
        # (<, >) is legal; interchanging gives (>, <) which is not.
        v = DepVector.of("<", ">")
        assert v.is_legal()
        assert not v.permuted([1, 0]).is_legal()

    def test_queries(self):
        v = DepVector.of(2, 0, "<")
        assert v.constant_entry(0) == 2
        assert v.constant_entry(2) is None
        assert DepVector.of(2, 0, "=").zero_except(0)
        assert not v.zero_except(0)  # trailing '<' is not definitely zero
        assert not DepVector.of(2, 1, 0).zero_except(0)
        assert str(v) == "(2, 0, <)"
