"""Unit tests for the stats collectors, report rendering, registry,
errors hierarchy, and small IR utilities."""

import pytest

from repro.errors import (
    DependenceError,
    ExecutionError,
    IRError,
    NonAffineError,
    ParseError,
    ReproError,
    TransformError,
)
from repro.frontend import parse_program
from repro.ir import Affine, Assign, Loop, Ref
from repro.ir.visit import fresh_name, map_statements, rename_loops
from repro.model import CostModel
from repro.stats import (
    collect_access_properties,
    collect_program_stats,
    render_histogram,
    render_table,
)
from repro.suite import get_entry, suite_entries


class TestErrors:
    def test_hierarchy(self):
        for exc in (
            IRError,
            NonAffineError,
            ParseError,
            DependenceError,
            TransformError,
            ExecutionError,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(NonAffineError, IRError)

    def test_parse_error_position(self):
        err = ParseError("bad token", line=3, column=7)
        assert "3:7" in str(err)
        assert err.line == 3 and err.column == 7

    def test_parse_error_without_position(self):
        assert str(ParseError("oops")) == "oops"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(
            [{"A": 1, "B": "xy"}, {"A": 222, "B": "z"}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("A")
        assert "222" in lines[-1]

    def test_float_formatting(self):
        text = render_table([{"x": 1.23456}])
        assert "1.23" in text

    def test_empty(self):
        assert "(no rows)" in render_table([], title="T")

    def test_column_selection(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestRenderHistogram:
    def test_bars_scale(self):
        text = render_histogram({"low": 1, "high": 10}, width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 1

    def test_empty_buckets(self):
        text = render_histogram({"a": 0, "b": 0})
        assert "#" not in text


class TestRegistry:
    def test_lookup(self):
        entry = get_entry("matmul")
        assert entry.category == "kernel"
        assert entry.program(8).param_env["N"] == 8

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_entry("nope")

    def test_category_filter(self):
        perfect = suite_entries(categories=("perfect",))
        assert perfect
        assert all(e.category == "perfect" for e in perfect)

    def test_suite_size_near_papers(self):
        # Paper evaluated 35 programs; our registry carries 38.
        assert len(suite_entries()) >= 35

    def test_default_program_builds(self):
        for entry in suite_entries()[:5]:
            assert entry.program().statements


class TestVisitUtilities:
    def test_fresh_name(self):
        assert fresh_name("I", set()) == "I"
        assert fresh_name("I", {"I"}) == "I_2"
        assert fresh_name("I", {"I", "I_2"}) == "I_3"

    def test_rename_loops_renames_bounds_and_subscripts(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 4
            REAL A(N,N)
            DO I = 1, N
              DO J = 1, I
                A(J,I) = A(J,I) + I * 1.0
              ENDDO
            ENDDO
            END
            """
        )
        renamed = rename_loops(prog.top_loops[0], {"I": "Z"})
        assert renamed.var == "Z"
        inner = renamed.body[0]
        assert str(inner.ub) == "Z"
        stmt = renamed.statements[0]
        assert str(stmt.lhs) == "A(J, Z)"
        assert "Z" in str(stmt.rhs)

    def test_map_statements(self):
        prog = parse_program(
            "PROGRAM p\nREAL A(4)\nDO I = 1, 4\nA(I) = 1.0\nENDDO\nEND"
        )
        bumped = map_statements(
            prog.top_loops[0], lambda s: s.with_sid(s.sid + 100)
        )
        assert bumped.statements[0].sid == 100


class TestStatsCollectors:
    def test_pct_empty_nests(self):
        prog = parse_program("PROGRAM p\nREAL A(4)\nX = 1.0\nEND")
        stats, _ = collect_program_stats(prog, CostModel())
        assert stats.nests == 0
        assert stats.pct(0) == 0

    def test_access_properties_shape(self):
        prog = get_entry("matmul").program(8)
        props = collect_access_properties(prog, CostModel(cls=4))
        row = props.row
        assert row["Inv%"] + row["Unit%"] + row["None%"] in (99, 100, 101)
        assert props.total_groups == 3

    def test_row_keys_stable(self):
        stats, _ = collect_program_stats(
            get_entry("jacobi").program(8), CostModel(cls=4)
        )
        assert set(stats.row) >= {
            "Program",
            "Nests",
            "MO-Orig%",
            "Fus-C",
            "Dist-D",
            "Ratio-Final",
            "Ratio-Ideal",
        }
