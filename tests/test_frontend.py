"""Tests for the mini-Fortran lexer and parser."""

import pytest

from repro.errors import ParseError
from repro.frontend import parse_program, tokenize
from repro.ir import Ref, iter_loops, iter_statements, pretty_program

MATMUL = """
PROGRAM matmul
PARAMETER N = 512
REAL A(N,N), B(N,N), C(N,N)
DO J = 1, N
  DO K = 1, N
    DO I = 1, N
      C(I,J) = C(I,J) + A(I,K)*B(K,J)
    ENDDO
  ENDDO
ENDDO
END
"""


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("DO I = 1, N")
        kinds = [t.kind for t in toks]
        assert kinds == ["keyword", "name", "=", "int", ",", "name", "newline", "eof"]

    def test_case_folding(self):
        toks = tokenize("do i = 1, n")
        assert toks[0].text == "DO"
        assert toks[1].text == "I"

    def test_inline_comment(self):
        toks = tokenize("X = 1 ! comment here")
        assert [t.kind for t in toks] == ["name", "=", "int", "newline", "eof"]

    def test_classic_comment_lines(self):
        src = "C full line comment\n* another\nX = 1\n"
        toks = tokenize(src)
        assert toks[0].text == "X"

    def test_c_array_not_comment(self):
        toks = tokenize("C(I,J) = 0")
        assert toks[0].kind == "name" and toks[0].text == "C"

    def test_float_tokens(self):
        toks = tokenize("X = 1.5E-3 + 2.0")
        assert [t.text for t in toks if t.kind == "float"] == ["1.5E-3", "2.0"]

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("X = 1 @ 2")

    def test_positions(self):
        toks = tokenize("X = 1\nY = 2")
        y = [t for t in toks if t.text == "Y"][0]
        assert (y.line, y.column) == (2, 1)


class TestParser:
    def test_matmul(self):
        prog = parse_program(MATMUL)
        assert prog.name == "matmul"
        assert prog.param_env == {"N": 512}
        assert [l.var for l in iter_loops(prog)] == ["J", "K", "I"]
        stmt = list(iter_statements(prog))[0]
        assert stmt.lhs == Ref.make("C", "I", "J")
        assert [r.array for r in stmt.reads] == ["C", "A", "B"]

    def test_roundtrip_through_pretty(self):
        prog = parse_program(MATMUL)
        text = pretty_program(prog)
        again = parse_program(text)
        assert pretty_program(again) == text

    def test_step_and_negative_step(self):
        src = """
        PROGRAM p
        PARAMETER N = 10
        REAL A(N)
        DO I = N, 1, -2
          A(I) = 0.0
        ENDDO
        END
        """
        prog = parse_program(src)
        loop = prog.top_loops[0]
        assert loop.step == -2

    def test_affine_subscripts(self):
        src = """
        PROGRAM p
        PARAMETER N = 10
        REAL A(N), B(N)
        DO I = 2, N - 1
          A(I) = B(I-1) + B(2*I) + B(I+1)
        ENDDO
        END
        """
        prog = parse_program(src)
        subs = [str(r.subs[0]) for r in prog.statements[0].reads]
        assert subs == ["I-1", "2*I", "I+1"]

    def test_intrinsic_call(self):
        src = """
        PROGRAM p
        PARAMETER N = 4
        REAL A(N,N)
        DO K = 1, N
          A(K,K) = SQRT(A(K,K))
        ENDDO
        END
        """
        prog = parse_program(src)
        rhs = prog.statements[0].rhs
        assert rhs.fn == "SQRT"

    def test_implicit_scalar(self):
        src = """
        PROGRAM p
        PARAMETER N = 4
        REAL A(N)
        DO I = 1, N
          S = S + A(I)
        ENDDO
        END
        """
        prog = parse_program(src)
        assert prog.has_array("S")
        assert prog.array("S").rank == 0

    def test_nonaffine_subscript_rejected(self):
        src = """
        PROGRAM p
        PARAMETER N = 4
        REAL A(N,N)
        DO I = 1, N
          DO J = 1, N
            A(I*J, 1) = 0.0
          ENDDO
        ENDDO
        END
        """
        with pytest.raises(ParseError):
            parse_program(src)

    def test_missing_enddo(self):
        with pytest.raises(ParseError, match="ENDDO"):
            parse_program("PROGRAM p\nREAL A(4)\nDO I = 1, 4\nA(I) = 0.0\nEND")

    def test_missing_end(self):
        with pytest.raises(ParseError, match="END"):
            parse_program("PROGRAM p\nREAL A(4)\n")

    def test_undeclared_array_rejected(self):
        src = "PROGRAM p\nDO I = 1, 4\nA(I) = 0.0\nENDDO\nEND"
        with pytest.raises(ParseError, match="before declaration"):
            parse_program(src)

    def test_reused_loop_index_rejected(self):
        src = """
        PROGRAM p
        REAL A(4)
        DO I = 1, 4
          DO I = 1, 4
            A(I) = 0.0
          ENDDO
        ENDDO
        END
        """
        with pytest.raises(ParseError, match="already in use"):
            parse_program(src)

    def test_assignment_to_intrinsic_rejected(self):
        src = "PROGRAM p\nSQRT(1) = 2.0\nEND"
        with pytest.raises(ParseError):
            parse_program(src)

    def test_cholesky_parses(self):
        src = """
        PROGRAM chol
        PARAMETER N = 8
        REAL A(N,N)
        DO K = 1, N
          A(K,K) = SQRT(A(K,K))
          DO I = K+1, N
            A(I,K) = A(I,K) / A(K,K)
            DO J = K+1, I
              A(I,J) = A(I,J) - A(I,K)*A(J,K)
            ENDDO
          ENDDO
        ENDDO
        END
        """
        prog = parse_program(src)
        assert len(prog.statements) == 3
        top = prog.top_loops[0]
        assert not top.is_perfect_nest()
        assert top.depth == 3
