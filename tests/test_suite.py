"""Tests over the benchmark suite: kernels and application stand-ins."""

import numpy as np
import pytest

from repro.exec import Interpreter, run_program
from repro.model import CostModel
from repro.stats import collect_program_stats
from repro.suite import (
    CHOLESKY_FORMS,
    MATMUL_ORDERS,
    adi,
    cholesky,
    erlebacher,
    get_set,
    matmul,
    spd_init,
)
from repro.transforms import compound


class TestKernels:
    @pytest.mark.parametrize("order", MATMUL_ORDERS)
    def test_matmul_orders_equivalent(self, order):
        reference = Interpreter(matmul(8, "IJK"))
        expected = reference.arrays["C"] + reference.arrays["A"] @ reference.arrays["B"]
        interp = Interpreter(matmul(8, order))
        interp.run()
        np.testing.assert_allclose(interp.arrays["C"], expected, rtol=1e-12)

    @pytest.mark.parametrize("form", CHOLESKY_FORMS)
    def test_cholesky_forms_equivalent(self, form):
        ref = Interpreter(cholesky(8, "KIJ"), init=spd_init)
        ref.run()
        interp = Interpreter(cholesky(8, form), init=spd_init)
        interp.run()
        np.testing.assert_allclose(
            np.tril(interp.arrays["A"]), np.tril(ref.arrays["A"]), rtol=1e-10
        )

    def test_cholesky_is_a_factorization(self):
        interp = Interpreter(cholesky(8, "KIJ"), init=spd_init)
        interp.run()
        factor = np.tril(interp.arrays["A"])
        np.testing.assert_allclose(factor @ factor.T, spd_init("A", (8, 8)), rtol=1e-9)

    @pytest.mark.parametrize("form", ["distributed", "fused", "interchanged"])
    def test_adi_forms_equivalent(self, form):
        ref = Interpreter(adi(8, "distributed"))
        ref.run()
        interp = Interpreter(adi(8, form))
        interp.run()
        for array in ("X", "B"):
            np.testing.assert_allclose(
                interp.arrays[array], ref.arrays[array], rtol=1e-12
            )

    def test_erlebacher_forms_equivalent(self):
        ref = Interpreter(erlebacher(5, "hand"))
        ref.run()
        other = Interpreter(erlebacher(5, "distributed"))
        other.run()
        np.testing.assert_allclose(other.arrays["UX"], ref.arrays["UX"], rtol=1e-12)


# The paper set: the 42 pre-registry entries. The shape thresholds below
# mirror the paper's headline statistics over exactly this population;
# polybench/ai additions are covered by tests/test_suite_conformance.py.
ALL_ENTRIES = get_set("paper").entries()


class TestSuitePrograms:
    @pytest.mark.parametrize("entry", ALL_ENTRIES, ids=[e.name for e in ALL_ENTRIES])
    def test_builds_and_runs(self, entry):
        prog = entry.program(8)
        interp = Interpreter(prog, init=entry.init)
        interp.run()
        assert interp.statements_executed > 0

    @pytest.mark.parametrize("entry", ALL_ENTRIES, ids=[e.name for e in ALL_ENTRIES])
    def test_compound_preserves_semantics(self, entry):
        prog = entry.program(10)
        outcome = compound(prog, CostModel(cls=4))
        before = Interpreter(prog, init=entry.init)
        before.run()
        after = Interpreter(outcome.program, init=entry.init)
        after.run()
        for array in before.arrays:
            np.testing.assert_allclose(
                before.arrays[array],
                after.arrays[array],
                rtol=1e-10,
                err_msg=f"{entry.name}: {array} changed",
            )

    @pytest.mark.parametrize("entry", ALL_ENTRIES, ids=[e.name for e in ALL_ENTRIES])
    def test_stats_invariants(self, entry):
        prog = entry.program(10)
        stats, _ = collect_program_stats(prog, CostModel(cls=4))
        assert (
            stats.memory_order_orig
            + stats.memory_order_perm
            + stats.memory_order_fail
            == stats.nests
        )
        assert stats.nests_fused <= stats.fusion_candidates
        assert stats.cost_ratio_final >= 0.99  # never makes locality worse
        assert stats.cost_ratio_ideal >= stats.cost_ratio_final - 0.01


class TestSuiteShape:
    """The suite as a whole mirrors the paper's headline statistics."""

    def test_majority_originally_in_memory_order(self):
        # Paper: 69% of nests originally in memory order; our mix should
        # also have a healthy majority (over half).
        model = CostModel(cls=4)
        orig = total = 0
        for entry in ALL_ENTRIES:
            stats, _ = collect_program_stats(entry.program(10), model)
            orig += stats.memory_order_orig
            total += stats.nests
        assert total > 25
        assert orig / total > 0.4

    def test_transformation_helps_many_programs(self):
        model = CostModel(cls=4)
        improved = sum(
            1
            for entry in ALL_ENTRIES
            if collect_program_stats(entry.program(10), model)[0].cost_ratio_final
            > 1.2
        )
        # Paper: locality improved in 66% of programs.
        assert improved >= len(ALL_ENTRIES) // 3

    def test_some_programs_blocked_by_dependences(self):
        model = CostModel(cls=4)
        blocked = [
            entry.name
            for entry in ALL_ENTRIES
            if collect_program_stats(entry.program(10), model)[0].memory_order_fail
            > 0
        ]
        assert "trfd_like" in blocked
