"""Tests for layout, the interpreter, and the timing model — including
semantics preservation under the compound transformations."""

import numpy as np
import pytest

from repro.cache import CACHE2, CacheConfig
from repro.errors import ExecutionError
from repro.exec import (
    Interpreter,
    Machine,
    MemoryLayout,
    default_init,
    run_program,
    simulate,
)
from repro.frontend import parse_program
from repro.model import CostModel
from repro.transforms import compound


class TestLayout:
    def prog(self):
        return parse_program(
            """
            PROGRAM p
            PARAMETER N = 4
            REAL A(N,N), B(N)
            DO I = 1, N
              B(I) = A(I,1)
            ENDDO
            END
            """
        )

    def test_column_major_addresses(self):
        layout = MemoryLayout.for_program(self.prog(), {})
        a = layout["A"]
        # Walking the first subscript is contiguous (8-byte elements).
        assert a.address([2, 1]) - a.address([1, 1]) == 8
        # Walking the second subscript strides by a whole column.
        assert a.address([1, 2]) - a.address([1, 1]) == 8 * 4

    def test_arrays_disjoint(self):
        layout = MemoryLayout.for_program(self.prog(), {})
        a, b = layout["A"], layout["B"]
        a_end = a.base + a.total_bytes
        assert b.base >= a_end

    def test_bounds_checked(self):
        layout = MemoryLayout.for_program(self.prog(), {})
        with pytest.raises(ExecutionError):
            layout["A"].address([5, 1])
        with pytest.raises(ExecutionError):
            layout["A"].address([0, 1])


class TestInterpreter:
    def test_simple_loop_values(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 5
            REAL A(N)
            DO I = 1, N
              A(I) = I * 2.0
            ENDDO
            END
            """
        )
        arrays = run_program(prog)
        assert np.allclose(arrays["A"], [2, 4, 6, 8, 10])

    def test_matmul_against_numpy(self):
        prog = parse_program(
            """
            PROGRAM mm
            PARAMETER N = 6
            REAL A(N,N), B(N,N), C(N,N)
            DO J = 1, N
              DO I = 1, N
                C(I,J) = 0.0
              ENDDO
            ENDDO
            DO J = 1, N
              DO K = 1, N
                DO I = 1, N
                  C(I,J) = C(I,J) + A(I,K)*B(K,J)
                ENDDO
              ENDDO
            ENDDO
            END
            """
        )
        interp = Interpreter(prog)
        a0 = interp.arrays["A"].copy()
        b0 = interp.arrays["B"].copy()
        interp.run()
        assert np.allclose(interp.arrays["C"], a0 @ b0)

    def test_trace_order_reads_then_write(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 1
            REAL A(N), B(N), C(N)
            DO I = 1, N
              C(I) = A(I) + B(I)
            ENDDO
            END
            """
        )
        events = []
        run_program(prog, on_access=events.append)
        assert [(e.array, e.write) for e in events] == [
            ("A", False),
            ("B", False),
            ("C", True),
        ]

    def test_negative_step_execution(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 4
            REAL A(N)
            DO I = N, 2, -1
              A(I) = A(I-1)
            ENDDO
            END
            """
        )
        interp = Interpreter(prog, init=lambda n, e: np.arange(1, 5, dtype=float))
        interp.run()
        # Shift-right semantics: A = [1, 1, 2, 3]
        assert np.allclose(interp.arrays["A"], [1, 1, 2, 3])

    def test_division_by_zero_raises(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 2
            REAL A(N), B(N)
            DO I = 1, N
              A(I) = B(I) / 0.0
            ENDDO
            END
            """
        )
        with pytest.raises(ExecutionError):
            run_program(prog)

    def test_operation_counting(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 10
            REAL A(N), B(N)
            DO I = 1, N
              A(I) = B(I) * 2.0 + 1.0
            ENDDO
            END
            """
        )
        interp = Interpreter(prog)
        interp.run()
        assert interp.statements_executed == 10
        # 2 arithmetic ops + 1 store op per statement instance.
        assert interp.operations_executed == 30

    def test_param_override(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 4
            REAL A(N)
            DO I = 1, N
              A(I) = 1.0
            ENDDO
            END
            """
        )
        interp = Interpreter(prog, params={"N": 3})
        assert interp.arrays["A"].shape == (3,)


class TestTiming:
    def test_stride_matters(self):
        """Column-order traversal of a big array beats row-order."""
        col = parse_program(
            """
            PROGRAM col
            PARAMETER N = 64
            REAL A(N,N)
            DO J = 1, N
              DO I = 1, N
                A(I,J) = A(I,J) + 1.0
              ENDDO
            ENDDO
            END
            """
        )
        row = parse_program(
            """
            PROGRAM row
            PARAMETER N = 64
            REAL A(N,N)
            DO I = 1, N
              DO J = 1, N
                A(I,J) = A(I,J) + 1.0
              ENDDO
            ENDDO
            END
            """
        )
        machine = Machine(cache=CACHE2, miss_penalty=20)
        col_perf = simulate(col, machine)
        row_perf = simulate(row, machine)
        assert col_perf.cycles < row_perf.cycles
        assert col_perf.hit_rate > row_perf.hit_rate

    def test_same_ops_different_misses(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 32
            REAL A(N,N)
            DO J = 1, N
              DO I = 1, N
                A(I,J) = 1.0
              ENDDO
            ENDDO
            END
            """
        )
        fast = simulate(prog, Machine(cache=CACHE2, miss_penalty=1))
        slow = simulate(prog, Machine(cache=CACHE2, miss_penalty=100))
        assert fast.operations == slow.operations
        assert fast.cycles < slow.cycles


SEMANTICS_SOURCES = [
    (
        "matmul",
        """
        PROGRAM mm
        PARAMETER N = 10
        REAL A(N,N), B(N,N), C(N,N)
        DO I = 1, N
          DO J = 1, N
            DO K = 1, N
              C(I,J) = C(I,J) + A(I,K)*B(K,J)
            ENDDO
          ENDDO
        ENDDO
        END
        """,
    ),
    (
        "adi-fusable",
        """
        PROGRAM adi
        PARAMETER N = 12
        REAL X(N,N), A(N,N), B(N,N)
        DO I = 2, N
          DO K = 1, N
            X(I,K) = X(I,K) - X(I-1,K)*A(I,K)/B(I-1,K)
          ENDDO
          DO K = 1, N
            B(I,K) = B(I,K) - A(I,K)*A(I,K)/B(I-1,K)
          ENDDO
        ENDDO
        END
        """,
    ),
    (
        "triangular",
        """
        PROGRAM tri
        PARAMETER N = 12
        REAL A(N,N)
        DO I = 1, N
          DO J = 1, I
            A(I,J) = A(I,J) * 2.0 + 1.0
          ENDDO
        ENDDO
        END
        """,
    ),
    (
        "stencil",
        """
        PROGRAM st
        PARAMETER N = 12
        REAL A(N,N), B(N,N)
        DO I = 2, N - 1
          DO J = 2, N - 1
            B(I,J) = A(I-1,J) + A(I+1,J) + A(I,J-1) + A(I,J+1)
          ENDDO
        ENDDO
        END
        """,
    ),
    (
        "fuse-candidates",
        """
        PROGRAM fc
        PARAMETER N = 20
        REAL A(N), B(N), C(N)
        DO I = 1, N
          B(I) = A(I) * 2.0
        ENDDO
        DO J = 1, N
          C(J) = A(J) + B(J)
        ENDDO
        END
        """,
    ),
]


class TestSemanticsPreservation:
    """Compound-transformed programs compute identical values."""

    @pytest.mark.parametrize("name,source", SEMANTICS_SOURCES, ids=[s[0] for s in SEMANTICS_SOURCES])
    def test_compound_preserves_values(self, name, source):
        prog = parse_program(source)
        outcome = compound(prog, CostModel(cls=4))
        before = run_program(prog)
        after = run_program(outcome.program)
        assert set(before) == set(after)
        for array in before:
            np.testing.assert_allclose(
                before[array], after[array], rtol=1e-12,
                err_msg=f"{name}: array {array} differs after transformation",
            )

    def test_cholesky_semantics(self):
        source = """
        PROGRAM chol
        PARAMETER N = 10
        REAL A(N,N)
        DO K = 1, N
          A(K,K) = SQRT(A(K,K))
          DO I = K+1, N
            A(I,K) = A(I,K) / A(K,K)
            DO J = K+1, I
              A(I,J) = A(I,J) - A(I,K)*A(J,K)
            ENDDO
          ENDDO
        ENDDO
        END
        """
        prog = parse_program(source)
        outcome = compound(prog, CostModel(cls=4))

        def spd_init(name, extents):
            n = extents[0]
            base = np.fromfunction(
                lambda i, j: 1.0 / (1.0 + abs(i - j)), extents
            )
            return base + np.eye(n) * n

        before = Interpreter(prog, init=spd_init)
        before.run()
        after = Interpreter(outcome.program, init=spd_init)
        after.run()
        np.testing.assert_allclose(
            before.arrays["A"], after.arrays["A"], rtol=1e-12
        )


class TestDefaultInit:
    def test_pinned_values(self):
        # Regression pin: suite baselines depend on these exact values —
        # any change to default_init silently shifts every simulated
        # hit rate and semantics check.
        a = default_init("A", (2, 3))
        assert a.flags["F_CONTIGUOUS"]
        np.testing.assert_allclose(
            a,
            np.array(
                [
                    [1.1435643564356437, 1.400990099009901, 0.6584158415841584],
                    [1.2722772277227723, 0.5297029702970297, 0.7871287128712872],
                ]
            ),
            rtol=0,
            atol=0,
        )

    def test_scalar_and_formula(self):
        scalar = default_init("B", ())
        assert scalar.shape == ()
        assert float(scalar) == 1.1534653465346536
        # The closed form: ((i*13 + seed) % 101) / 101 + 0.5, seed = sum of
        # name ordinals mod 97, flattened column-major.
        name = "XY"
        seed = sum(ord(c) for c in name) % 97
        flat = ((np.arange(12, dtype=np.float64) * 13 + seed) % 101) / 101.0 + 0.5
        np.testing.assert_array_equal(
            default_init(name, (3, 4)), flat.reshape((3, 4), order="F")
        )
        assert np.all(default_init(name, (3, 4)) > 0)
