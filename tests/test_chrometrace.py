"""Chrome trace-event / Perfetto exporter (repro.obs.chrometrace)."""

import json
import os

from repro.obs import Obs, Tracer, chrome_trace, chrome_trace_events, write_chrome_trace

REQUIRED_KEYS = {"ph", "ts", "pid", "tid", "name"}


def build_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("experiment.run", kernel="jacobi"):
        with tracer.span("exec.simulate"):
            pass
        with tracer.span("exec.simulate"):
            pass
    return tracer


class TestEvents:
    def test_events_have_required_keys(self):
        events = chrome_trace_events(build_tracer().spans)
        assert events, "no events emitted"
        for event in events:
            missing = REQUIRED_KEYS - set(event)
            # Metadata ("M") events carry no ts; complete events do.
            if event["ph"] == "M":
                assert missing <= {"ts"}
            else:
                assert not missing, (event, missing)

    def test_complete_events_mirror_spans(self):
        tracer = build_tracer()
        complete = [
            e for e in chrome_trace_events(tracer.spans) if e["ph"] == "X"
        ]
        assert [e["name"] for e in complete] == [s.name for s in tracer.spans]
        # Timestamps are normalized: the earliest span starts at t=0 and
        # durations are microseconds.
        assert min(e["ts"] for e in complete) == 0.0
        for event, span in zip(complete, tracer.spans):
            assert event["dur"] >= 0.0
            assert event["cat"] == span.name.split(".", 1)[0]
        # Attrs survive as args.
        assert complete[0]["args"]["kernel"] == "jacobi"

    def test_main_lane_metadata(self):
        events = chrome_trace_events(build_tracer().spans)
        thread_names = {
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        }
        assert thread_names == {"main"}
        process_names = {
            e["args"]["name"] for e in events if e["name"] == "process_name"
        }
        assert process_names == {"repro"}

    def test_worker_shard_lanes(self):
        worker = Tracer()
        worker.pid = 999999
        with worker.span("w.task"):
            pass
        parent = Tracer()
        with parent.span("experiment.sharded") as root:
            pass
        parent.graft(worker.spans, parent=root, shard=1)
        events = chrome_trace_events(parent.spans)
        thread_names = {
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        }
        assert thread_names == {"main", "shard-1"}
        worker_events = [
            e for e in events if e["ph"] == "X" and e["name"] == "w.task"
        ]
        assert worker_events[0]["pid"] == 999999
        assert worker_events[0]["tid"] == 2  # shard k -> tid k+1
        # Parent and worker occupy distinct lanes.
        parent_events = [
            e
            for e in events
            if e["ph"] == "X" and e["name"] == "experiment.sharded"
        ]
        assert (parent_events[0]["pid"], parent_events[0]["tid"]) != (
            worker_events[0]["pid"],
            worker_events[0]["tid"],
        )

    def test_unfinished_spans_skipped(self):
        tracer = Tracer()
        context = tracer.span("open")
        context.__enter__()  # never exited
        assert chrome_trace_events(tracer.spans) == []

    def test_profile_args_included(self):
        import tracemalloc

        tracemalloc.start()
        try:
            tracer = Tracer(profile=True)
            with tracer.span("s"):
                pass
        finally:
            tracemalloc.stop()
        (event,) = [
            e for e in chrome_trace_events(tracer.spans) if e["ph"] == "X"
        ]
        assert "cpu_ms" in event["args"]
        assert "mem_peak_bytes" in event["args"]


class TestDocument:
    def test_document_shape_and_validity(self, tmp_path):
        obs = Obs()
        with obs.span("a"):
            pass
        path = str(tmp_path / "trace.json")
        count = write_chrome_trace(obs, path)
        with open(path) as handle:
            document = json.load(handle)  # valid JSON end to end
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"] == {"tool": "repro.obs"}
        assert len(document["traceEvents"]) == count
        assert count == 3  # process_name + thread_name + one X event

    def test_accepts_raw_span_sequence(self):
        tracer = build_tracer()
        document = chrome_trace(tracer.spans)
        assert document["traceEvents"]

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.json")
        assert write_chrome_trace(Obs(), path) == 0
        with open(path) as handle:
            assert json.load(handle)["traceEvents"] == []

    def test_cli_writes_chrome_trace(self, tmp_path):
        import subprocess
        import sys

        source = tmp_path / "k.f"
        source.write_text(
            "PROGRAM k\n"
            "PARAMETER N = 8\n"
            "REAL A(N,N), B(N,N)\n"
            "DO I = 1, N\n"
            "  DO J = 1, N\n"
            "    A(I,J) = B(J,I)\n"
            "  ENDDO\n"
            "ENDDO\n"
            "END\n"
        )
        trace = tmp_path / "trace.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
        env["REPRO_LEDGER"] = "0"
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                str(source),
                "--chrome-trace",
                str(trace),
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(tmp_path),
        )
        assert result.returncode == 0, result.stderr
        assert "ui.perfetto.dev" in result.stderr
        with open(trace) as handle:
            document = json.load(handle)
        events = document["traceEvents"]
        assert any(e["ph"] == "X" for e in events)
        for event in events:
            assert {"ph", "pid", "tid", "name"} <= set(event)
