"""Tests for the set-associative cache simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import CACHE1, CACHE2, CacheConfig, SetAssocCache, line_elements
from repro.errors import ReproError


def small(assoc=2, sets=4, line=16):
    return CacheConfig("t", size=line * assoc * sets, assoc=assoc, line=line)


class TestConfig:
    def test_paper_geometries(self):
        assert CACHE1.sets == 64 * 1024 // (128 * 4)
        assert CACHE2.sets == 8 * 1024 // (32 * 2)

    def test_line_elements(self):
        assert line_elements(CACHE1) == 16
        assert line_elements(CACHE2) == 4

    def test_bad_geometry(self):
        with pytest.raises(ReproError):
            CacheConfig("x", size=100, assoc=3, line=16)
        with pytest.raises(ReproError):
            CacheConfig("x", size=96, assoc=2, line=24)  # non-power-of-2 line


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        cache = SetAssocCache(small())
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.stats.cold_misses == 1
        assert cache.stats.hits == 1

    def test_same_line_hits(self):
        cache = SetAssocCache(small(line=16))
        cache.access(0x1000)
        assert cache.access(0x100F)
        assert not cache.access(0x1010)  # next line

    def test_straddling_access(self):
        cache = SetAssocCache(small(line=16))
        hit = cache.access(0x100F, size=4)  # spans two lines
        assert not hit
        assert cache.stats.accesses == 2
        assert cache.stats.cold_misses == 2

    def test_lru_eviction(self):
        # 2-way: A, B, C map to the same set; C evicts A.
        cache = SetAssocCache(small(assoc=2, sets=1, line=16))
        a, b, c = 0x0, 0x10, 0x20
        cache.access(a)
        cache.access(b)
        cache.access(c)  # evicts a
        assert not cache.access(a)  # miss again: conflict
        assert cache.stats.conflict_misses == 1

    def test_lru_order_updated_by_hit(self):
        cache = SetAssocCache(small(assoc=2, sets=1, line=16))
        a, b, c = 0x0, 0x10, 0x20
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a becomes MRU
        cache.access(c)  # evicts b, not a
        assert cache.access(a)
        assert not cache.access(b)

    def test_flush_preserves_cold_tracking(self):
        cache = SetAssocCache(small())
        cache.access(0x0)
        cache.flush()
        assert not cache.access(0x0)
        assert cache.stats.cold_misses == 1
        assert cache.stats.conflict_misses == 1

    def test_hit_rate_excludes_cold(self):
        cache = SetAssocCache(small())
        cache.access(0x0)  # cold miss
        cache.access(0x0)  # hit
        cache.access(0x0)  # hit
        assert cache.stats.hit_rate() == pytest.approx(1.0)
        assert cache.stats.hit_rate(include_cold=True) == pytest.approx(2 / 3)

    def test_empty_run_hit_rate(self):
        cache = SetAssocCache(small())
        assert cache.stats.hit_rate() == 1.0


class TestProperties:
    @given(
        st.lists(st.integers(0, 1023), min_size=1, max_size=300),
        st.sampled_from([1, 2, 4]),
    )
    @settings(deadline=None)
    def test_counts_consistent(self, addresses, assoc):
        cache = SetAssocCache(small(assoc=assoc, sets=4, line=16))
        for addr in addresses:
            cache.access(addr)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses == len(addresses)
        unique_lines = len({a // 16 for a in addresses})
        assert stats.cold_misses == unique_lines

    @given(st.lists(st.integers(0, 2047), min_size=1, max_size=300))
    @settings(deadline=None)
    def test_more_associativity_never_hurts_with_lru(self, addresses):
        """For a fixed number of sets, more ways => no fewer hits (LRU
        inclusion property)."""
        small_cache = SetAssocCache(
            CacheConfig("a2", size=16 * 2 * 8, assoc=2, line=16)
        )
        big_cache = SetAssocCache(
            CacheConfig("a4", size=16 * 4 * 8, assoc=4, line=16)
        )
        for addr in addresses:
            small_cache.access(addr)
            big_cache.access(addr)
        assert big_cache.stats.hits >= small_cache.stats.hits

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
    @settings(deadline=None)
    def test_fully_assoc_reference_model(self, addresses):
        """The simulator agrees with a straightforward LRU list model when
        fully associative."""
        config = CacheConfig("fa", size=16 * 4, assoc=4, line=16)
        cache = SetAssocCache(config)
        model: list[int] = []
        expected_hits = 0
        for addr in addresses:
            line = addr // 16
            if line in model:
                expected_hits += 1
                model.remove(line)
            elif len(model) == 4:
                model.pop(0)
            model.append(line)
            cache.access(addr)
        assert cache.stats.hits == expected_hits
