"""Shared test-harness plumbing.

Two pieces of infrastructure live here:

* ``--update-golden`` — regenerates the checked-in snapshots under
  ``tests/golden/`` instead of asserting against them (used by the
  golden-file CLI table tests after a deliberate formatting or
  cost-model change).
* seed reporting — every randomized test derives its seed from the
  single ``REPRO_SEED`` env knob (see :mod:`repro.seeds`); when a test
  fails, the active seed is printed so the run can be replayed exactly.
"""

import os

import pytest

from repro.seeds import ENV_VAR, base_seed

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")

# CLI subprocesses spawned by tests inherit this environment; without
# the toggle every `python -m repro ...` invocation would append to the
# repo's own .repro/ ledger. Ledger tests opt back in per subprocess.
os.environ.setdefault("REPRO_LEDGER", "0")


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/ snapshots instead of asserting against them",
    )


@pytest.fixture(scope="session")
def table4_analytic_result():
    """One shared table4-analytic run (the priciest quick experiment).

    Both the golden-snapshot test and the experiment shape tests consume
    this result, so the simulation cost is paid once per tier-1 run.
    """
    from repro.experiments import table4_analytic

    return table4_analytic.run(scale=0.5, names=("jacobi", "matmul", "transpose"))


@pytest.fixture
def golden(request):
    """Compare-or-update helper for golden snapshots.

    ``golden("table1.txt", text)`` asserts ``text`` matches the snapshot;
    with ``--update-golden`` it rewrites the snapshot and passes.
    """
    update = request.config.getoption("--update-golden")

    def check(name: str, text: str) -> None:
        path = os.path.join(GOLDEN_DIR, name)
        text = text.rstrip("\n") + "\n"
        if update:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w") as handle:
                handle.write(text)
            return
        assert os.path.exists(path), (
            f"missing golden snapshot {name}; run "
            f"`pytest {os.path.relpath(request.fspath)} --update-golden` to create it"
        )
        with open(path) as handle:
            want = handle.read()
        assert text == want, (
            f"{name} drifted from the checked-in snapshot; if the change is "
            f"deliberate, refresh with --update-golden"
        )

    return check


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if terminalreporter.stats.get("failed") or terminalreporter.stats.get("error"):
        terminalreporter.write_line(
            f"randomized tests used {ENV_VAR}={base_seed()} "
            f"(set {ENV_VAR} to replay this exact run)"
        )
