"""Tests for symbolic cost polynomials."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.errors import ReproError
from repro.ir.affine import Affine
from repro.model.costpoly import CostPoly

N = CostPoly.symbol("N")
M = CostPoly.symbol("M")


class TestArithmetic:
    def test_constant_identity(self):
        assert (N + 0) == N
        assert (N * 1) == N

    def test_polynomial_product(self):
        p = (N + 1) * (N - 1)
        assert p == N * N - 1

    def test_division(self):
        assert (N * N) / 4 == N * N * Fraction(1, 4)

    def test_division_by_zero(self):
        with pytest.raises(ReproError):
            N / 0

    def test_from_affine(self):
        form = Affine.build({"N": 2}, 3)
        assert CostPoly.from_affine(form) == 2 * N + 3

    def test_degree(self):
        assert (N * N * M + N).degree == 3
        assert CostPoly.constant(5).degree == 0

    def test_dominant_term(self):
        poly = 2 * N * N + 7 * N + 1
        mono, coeff = poly.dominant_term()
        assert mono == (("N", 2),)
        assert coeff == 2


class TestEvaluation:
    def test_evaluate(self):
        poly = 2 * N * N + M
        assert poly.evaluate({"N": 3, "M": 4}) == 22

    def test_evaluate_unbound(self):
        with pytest.raises(ReproError):
            N.evaluate({})

    def test_magnitude_orders_by_degree(self):
        assert (N * N).magnitude() > (1000 * N).magnitude()

    def test_magnitude_constants_exact(self):
        assert CostPoly.constant(7).magnitude() == 7.0

    def test_ratio(self):
        assert (2 * N).ratio_to(N) == pytest.approx(2.0)

    def test_ratio_to_zero(self):
        with pytest.raises(ReproError):
            N.ratio_to(CostPoly.constant(0))


class TestDisplay:
    @pytest.mark.parametrize(
        "poly,text",
        [
            (CostPoly.constant(0), "0"),
            (N, "N"),
            (2 * N * N + N, "2 N^2 + N"),
            (N * N * Fraction(5, 2) + N * N * M * 0 + 1, "5/2 N^2 + 1"),
            (N - 1, "N - 1"),
        ],
    )
    def test_str(self, poly, text):
        assert str(poly) == text


@st.composite
def polys(draw):
    terms = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["N", "M"]),
                st.integers(0, 3),
                st.integers(-5, 5),
            ),
            max_size=4,
        )
    )
    poly = CostPoly.constant(0)
    for name, exp, coeff in terms:
        term = CostPoly.constant(coeff)
        for _ in range(exp):
            term = term * CostPoly.symbol(name)
        poly = poly + term
    return poly


class TestProperties:
    @given(polys(), polys())
    def test_add_commutes(self, a, b):
        assert a + b == b + a

    @given(polys(), polys(), polys())
    def test_mul_distributes(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(polys(), polys())
    def test_evaluation_homomorphism(self, a, b):
        env = {"N": 3, "M": 5}
        assert (a * b).evaluate(env) == pytest.approx(a.evaluate(env) * b.evaluate(env))

    @given(polys())
    def test_sub_self_is_zero(self, a):
        assert (a - a).is_zero()
