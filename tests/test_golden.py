"""Golden tests: exact transformed output for the paper's worked examples.

These pin the precise loop structures Compound produces for the kernels
the paper shows, so any behavioural drift in the transformation stack is
caught immediately (update deliberately if the algorithm is changed).
"""

import textwrap

from repro.frontend import parse_program
from repro.ir import pretty_program
from repro.model import CostModel
from repro.suite import adi, cholesky, matmul
from repro.transforms import compound


def transformed(program):
    return pretty_program(compound(program, CostModel(cls=4)).program)


def expect(text: str) -> str:
    return textwrap.dedent(text).strip()


class TestGoldenOutputs:
    def test_matmul_ijk(self):
        assert transformed(matmul(64, "IJK")) == expect(
            """
            PROGRAM matmul_ijk
            PARAMETER N = 64
            REAL A(N, N)
            REAL B(N, N)
            REAL C(N, N)
            DO J = 1, N
              DO K = 1, N
                DO I = 1, N
                  C(I, J) = (C(I, J) + (A(I, K) * B(K, J)))
                ENDDO
              ENDDO
            ENDDO
            END
            """
        )

    def test_cholesky_kij(self):
        # Figure 7(b): distribution of the I loop, then triangular
        # interchange of the update nest into (J, I).
        assert transformed(cholesky(24, "KIJ")) == expect(
            """
            PROGRAM cholesky_kij
            PARAMETER N = 24
            REAL A(N, N)
            DO K = 1, N
              A(K, K) = SQRT(A(K, K))
              DO I = K+1, N
                A(I, K) = (A(I, K) / A(K, K))
              ENDDO
              DO J = K+1, N
                DO I_2 = J, N
                  A(I_2, J) = (A(I_2, J) - (A(I_2, K) * A(J, K)))
                ENDDO
              ENDDO
            ENDDO
            END
            """
        )

    def test_adi_distributed(self):
        # Figure 3(c): fuse the K loops, then interchange to put I inner.
        assert transformed(adi(32, "distributed")) == expect(
            """
            PROGRAM adi_distributed
            PARAMETER N = 32
            REAL X(N, N)
            REAL A(N, N)
            REAL B(N, N)
            DO K = 1, N
              DO I = 2, N
                X(I, K) = (X(I, K) - ((X(I-1, K) * A(I, K)) / B(I-1, K)))
                B(I, K) = (B(I, K) - ((A(I, K) * A(I, K)) / B(I-1, K)))
              ENDDO
            ENDDO
            END
            """
        )

    def test_gmtry_like(self):
        from repro.suite import build_app

        # Distribution peels the scaling statement; the update nest is
        # interchanged to walk the unit-stride first subscript.
        text = transformed(build_app("gmtry_like", 16))
        assert "DO K = I+1, N" in text
        assert "DO J_2 = I+1, N" in text or "DO J" in text
        lines = [l.strip() for l in text.splitlines() if l.strip().startswith("DO")]
        # The innermost loop of the update walks J (first subscript).
        assert lines[-1].startswith("DO J")

    def test_jacobi(self):
        from repro.suite import jacobi

        text = transformed(jacobi(16))
        do_lines = [
            l.strip() for l in text.splitlines() if l.strip().startswith("DO")
        ]
        # Both nests interchanged to put the unit-stride I loops inner.
        assert do_lines == ["DO J = 2, N-1", "DO I = 2, N-1",
                            "DO J2 = 2, N-1", "DO I2 = 2, N-1"]
