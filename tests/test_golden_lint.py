"""Golden-file tests of the lint report (text and JSON).

Covers the five suite kernels (registry-canonical forms) plus the two
deliberately pessimized variants checked in under ``examples/`` — the
example files double as the CI lint targets, so the goldens carry real
source spans. Refresh with ``pytest tests/test_golden_lint.py
--update-golden`` after a deliberate diagnostic or cost-model change.
"""

import os

import pytest

from repro.frontend import parse_program
from repro.lint import lint_program, render_json, render_text
from repro.suite import kernels

LINE = 64
CAPACITY = 16

EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)

KERNELS = {
    "matmul": lambda: kernels.matmul(16, "IJK"),
    "cholesky": lambda: kernels.cholesky(12, "KIJ"),
    "adi": lambda: kernels.adi(16, "distributed"),
    "jacobi": lambda: kernels.jacobi(16),
    "transpose": lambda: kernels.transpose(16),
}

PESSIMIZED = {
    "matmul_kij": "matmul_kij.f",
    "jacobi_bad": "jacobi_bad.f",
}


def _lint_kernel(name):
    return lint_program(KERNELS[name](), line=LINE, capacity=CAPACITY), None


def _lint_example(name):
    path = os.path.join(EXAMPLES, PESSIMIZED[name])
    with open(path) as handle:
        program = parse_program(handle.read())
    return (
        lint_program(program, line=LINE, capacity=CAPACITY),
        f"examples/{PESSIMIZED[name]}",
    )


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_lint_golden(name, golden):
    result, path = _lint_kernel(name)
    golden(f"lint_{name}.txt", render_text(result, path))
    golden(f"lint_{name}.json", render_json(result, path))


@pytest.mark.parametrize("name", sorted(PESSIMIZED))
def test_pessimized_lint_golden(name, golden):
    result, path = _lint_example(name)
    golden(f"lint_{name}.txt", render_text(result, path))
    golden(f"lint_{name}.json", render_json(result, path))
