"""Tests for the command-line translator (python -m repro)."""

import subprocess
import sys

import pytest

MATMUL = """
PROGRAM demo
PARAMETER N = 16
REAL A(N,N), B(N,N), C(N,N)
DO I = 1, N
  DO J = 1, N
    DO K = 1, N
      C(I,J) = C(I,J) + A(I,K)*B(K,J)
    ENDDO
  ENDDO
ENDDO
END
"""


def run_cli(*args, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        **kwargs,
    )


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "demo.f"
    path.write_text(MATMUL)
    return str(path)


class TestCLI:
    def test_transforms_to_memory_order(self, source_file):
        proc = run_cli(source_file)
        assert proc.returncode == 0
        lines = [l.strip() for l in proc.stdout.splitlines()]
        do_lines = [l for l in lines if l.startswith("DO")]
        assert do_lines[0].startswith("DO J")
        assert do_lines[-1].startswith("DO I")

    def test_report(self, source_file):
        proc = run_cli(source_file, "--report")
        assert proc.returncode == 0
        assert "memory order perm" in proc.stderr

    def test_simulate(self, source_file):
        proc = run_cli(source_file, "--simulate")
        assert proc.returncode == 0
        assert "speedup" in proc.stderr

    def test_scalar_replace(self, source_file):
        proc = run_cli(source_file, "--scalar-replace", "--report")
        assert proc.returncode == 0
        assert "T_B = B(K, J)" in proc.stdout
        assert "1 refs promoted" in proc.stderr

    def test_output_file(self, source_file, tmp_path):
        out = tmp_path / "out.f"
        proc = run_cli(source_file, "-o", str(out))
        assert proc.returncode == 0
        assert "DO J" in out.read_text()

    def test_output_reparses(self, source_file, tmp_path):
        from repro.frontend import parse_program

        out = tmp_path / "out.f"
        run_cli(source_file, "-o", str(out))
        program = parse_program(out.read_text())
        assert program.name == "demo"

    def test_parse_error_reported(self, tmp_path):
        bad = tmp_path / "bad.f"
        bad.write_text("PROGRAM x\nDO I = 1, 4\nEND")
        proc = run_cli(str(bad))
        assert proc.returncode == 1
        assert "error:" in proc.stderr

    def test_missing_file(self):
        proc = run_cli("/nonexistent/file.f")
        assert proc.returncode == 1

    def test_bad_cache_name(self, source_file):
        proc = run_cli(source_file, "--cache", "bogus")
        assert proc.returncode == 2

    def test_help(self):
        proc = run_cli("--help")
        assert proc.returncode == 0
        assert "Usage" in proc.stdout


class TestObservabilityCLI:
    def test_version(self):
        from repro import __version__

        proc = run_cli("--version")
        assert proc.returncode == 0
        assert proc.stdout.strip() == f"repro {__version__}"

    def test_bad_cls_exits_cleanly(self, source_file):
        proc = run_cli(source_file, "--cls", "abc")
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert "--cls expects an integer" in proc.stderr

    def test_explain_emits_remarks(self, source_file):
        proc = run_cli(source_file, "--explain")
        assert proc.returncode == 0
        assert "--- optimization remarks ---" in proc.stderr
        assert "permute:applied" in proc.stderr
        assert "compound:" in proc.stderr

    def test_explain_output_stable(self, source_file):
        first = run_cli(source_file, "--explain")
        second = run_cli(source_file, "--explain")
        assert first.returncode == second.returncode == 0
        assert first.stderr == second.stderr
        assert first.stdout == second.stdout

    def test_metrics_section(self, source_file):
        proc = run_cli(source_file, "--metrics")
        assert proc.returncode == 0
        assert "--- metrics ---" in proc.stderr
        assert "dep.pairs" in proc.stderr
        assert "permute.applied" in proc.stderr

    def test_metrics_with_simulate_reports_cache(self, source_file):
        proc = run_cli(source_file, "--simulate", "--metrics")
        assert proc.returncode == 0
        assert "cache.accesses" in proc.stderr
        assert "cache.misses" in proc.stderr

    def test_trace_writes_valid_jsonl(self, source_file, tmp_path):
        import json

        trace = tmp_path / "trace.jsonl"
        proc = run_cli(source_file, "--trace", str(trace))
        assert proc.returncode == 0
        assert "trace records" in proc.stderr
        records = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if line.strip()
        ]
        assert records[0]["type"] == "meta"
        kinds = {record["type"] for record in records}
        assert {"meta", "span", "remark", "counter"} <= kinds

    def test_trace_round_trips_through_reader(self, source_file, tmp_path):
        from repro.obs import read_jsonl

        trace = tmp_path / "trace.jsonl"
        run_cli(source_file, "--trace", str(trace))
        data = read_jsonl(str(trace))
        assert any(remark.pass_name == "permute" for remark in data.remarks)
        assert data.spans_by_name("compound")

    def test_no_obs_flags_no_obs_output(self, source_file):
        proc = run_cli(source_file)
        assert proc.returncode == 0
        assert "remarks" not in proc.stderr
        assert "metrics" not in proc.stderr


class TestVerifySubcommand:
    def test_small_fuzz_run_passes(self):
        proc = run_cli("verify", "--fuzz", "3", "--seed", "0")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "3 cases (seed 0)" in proc.stdout
        assert "0 failures" in proc.stdout
        assert "cache cross-check" in proc.stdout

    def test_help(self):
        proc = run_cli("verify", "--help")
        assert proc.returncode == 0
        assert "--fuzz" in proc.stdout and "--shrink" in proc.stdout

    def test_unknown_argument_exits_2(self):
        proc = run_cli("verify", "--bogus")
        assert proc.returncode == 2

    def test_non_integer_fuzz_exits_2(self):
        proc = run_cli("verify", "--fuzz", "many")
        assert proc.returncode == 2

    def test_budget_env_raises_case_count(self):
        import os

        env = dict(os.environ, REPRO_FUZZ_BUDGET="5")
        proc = run_cli("verify", "--fuzz", "2", "--seed", "0", env=env)
        assert proc.returncode == 0
        assert "5 cases" in proc.stdout

    def test_metrics_flag_prints_counters(self):
        proc = run_cli("verify", "--fuzz", "2", "--seed", "0", "--metrics")
        assert proc.returncode == 0
        assert "verify.cases" in proc.stderr


class TestLocalitySubcommand:
    def test_prediction_summary(self, source_file):
        proc = run_cli("locality", source_file)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "accesses" in proc.stdout
        assert "predicted hit rate" in proc.stdout
        assert "reuse classes:" in proc.stdout

    def test_compare_reports_error_column(self, source_file):
        proc = run_cli(
            "locality", source_file, "--compare", "--line", "64",
            "--capacities", "32,512",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "traced" in proc.stdout and "err" in proc.stdout
        assert "32 lines" in proc.stdout and "512 lines" in proc.stdout

    def test_set_associative_row(self, source_file):
        proc = run_cli("locality", source_file, "--sets", "64", "--assoc", "4")
        assert proc.returncode == 0
        assert "64 sets x 4-way" in proc.stdout

    def test_help(self):
        proc = run_cli("locality", "--help")
        assert proc.returncode == 0
        assert "--compare" in proc.stdout and "--capacities" in proc.stdout

    def test_bad_line_size_exits_nonzero(self, source_file):
        proc = run_cli("locality", source_file, "--line", "48")
        assert proc.returncode != 0

    def test_seed_env_sets_verify_default(self):
        import os

        env = dict(os.environ, REPRO_SEED="3")
        proc = run_cli("verify", "--fuzz", "2", env=env)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "seed 3" in proc.stdout
