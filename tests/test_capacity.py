"""Tests for the fusion cache-capacity guard (paper §5.5 future work)."""

import pytest

from repro.frontend import parse_program
from repro.model import CostModel
from repro.model.capacity import fits_in_cache, inner_loop_footprint
from repro.transforms import fuse_adjacent

SOURCE = """
PROGRAM p
PARAMETER N = 256
REAL A(N), B(N), C(N), D(N), E(N), F(N)
DO I = 1, N
  C(I) = A(I) + B(I)
ENDDO
DO J = 1, N
  F(J) = A(J) + D(J) + E(J)
ENDDO
END
"""


@pytest.fixture
def program():
    return parse_program(SOURCE)


class TestFootprint:
    def test_footprint_scales_with_arrays(self, program):
        model = CostModel(cls=4)
        first, second = program.top_loops
        env = program.param_env
        f1 = inner_loop_footprint(first, model, line_bytes=32, env=env)
        f2 = inner_loop_footprint(second, model, line_bytes=32, env=env)
        # 3 consecutive groups vs 4: the second nest touches more.
        assert f2 > f1
        # 3 arrays x 256 elements / 4-elem lines x 32B = 6144 bytes.
        assert f1 == pytest.approx(3 * 256 / 4 * 32)

    def test_fits_in_cache(self, program):
        model = CostModel(cls=4)
        first = program.top_loops[0]
        env = program.param_env
        assert fits_in_cache(first, model, 64 * 1024, 32, env)
        assert not fits_in_cache(first, model, 4 * 1024, 32, env)


class TestFusionCapacityGuard:
    def test_fusion_without_guard(self, program):
        result = fuse_adjacent(program.body, CostModel(cls=4))
        assert result.fused == 1

    def test_tiny_cache_vetoes_fusion(self, program):
        # The fused body sweeps 6 arrays; with a cache that can only hold
        # ~4 arrays' worth of lines, the capacity analysis vetoes fusion.
        result = fuse_adjacent(
            program.body,
            CostModel(cls=4),
            cache_capacity=(16 * 1024, 32),
            param_env=program.param_env,
        )
        assert result.fused == 0

    def test_big_cache_allows_fusion(self, program):
        result = fuse_adjacent(
            program.body,
            CostModel(cls=4),
            cache_capacity=(1024 * 1024, 32),
            param_env=program.param_env,
        )
        assert result.fused == 1

    def test_guard_reduces_fusion_count_on_suite(self):
        from repro.suite import suite_entries

        model = CostModel(cls=4)
        free = guarded = 0
        for entry in suite_entries():
            prog = entry.program(24)
            free += fuse_adjacent(prog.body, model).fused
            guarded += fuse_adjacent(
                prog.body,
                model,
                cache_capacity=(2 * 1024, 32),
                param_env=prog.param_env,
            ).fused
        assert guarded <= free


class TestCompoundWithCapacity:
    def test_compound_accepts_capacity(self, program):
        from repro.transforms import compound

        free = compound(program, CostModel(cls=4))
        guarded = compound(
            program, CostModel(cls=4), cache_capacity=(16 * 1024, 32)
        )
        assert free.nests_fused == 1
        assert guarded.nests_fused == 0
        # Semantics unchanged either way.
        import numpy as np
        from repro.exec import run_program

        a = run_program(program)
        b = run_program(guarded.program)
        for name in a:
            np.testing.assert_allclose(a[name], b[name], rtol=1e-12)
