"""Tests for the observability layer (repro.obs): spans, metrics,
remarks, pipeline instrumentation, and the JSONL round trip."""

import json

import pytest

from repro import parse_program
from repro.exec.trace import AccessCounter, StrideHistogram
from repro.model import CostModel
from repro.obs import (
    NULL_OBS,
    MetricsRegistry,
    Obs,
    Remark,
    Tracer,
    get_obs,
    read_jsonl,
    set_obs,
    use_obs,
    write_jsonl,
)
from repro.stats.report import render_metrics, render_remarks, render_spans
from repro.transforms import compound, distribute_nest, fuse_adjacent, permute_nest

MATMUL = """
PROGRAM demo
PARAMETER N = 16
REAL A(N,N), B(N,N), C(N,N)
DO I = 1, N
  DO J = 1, N
    DO K = 1, N
      C(I,J) = C(I,J) + A(I,K)*B(K,J)
    ENDDO
  ENDDO
ENDDO
END
"""

#: Wavefront dependence (1,-1): memory order (J,I) is illegal without
#: reversal, so permutation is rejected with reason "dependences".
PERMUTE_REJECTED = """
PROGRAM p
PARAMETER N = 32
REAL A(N,N)
DO I = 2, N
  DO J = 1, N - 1
    A(I,J) = A(I-1,J+1) + 1.0
  ENDDO
ENDDO
END
"""

#: Second loop reads A(J+1) before the first loop wrote it: fusing the
#: two compatible headers would reverse the dependence.
FUSION_REJECTED = """
PROGRAM p
PARAMETER N = 8
REAL A(N), C(N)
DO I = 1, N
  A(I) = 1.0
ENDDO
DO J = 1, N
  C(J) = A(J+1) + A(J)
ENDDO
END
"""

FUSION_ACCEPTED = """
PROGRAM p
PARAMETER N = 8
REAL A(N), B(N), C(N)
DO I = 1, N
  B(I) = A(I) * 2.0
ENDDO
DO J = 1, N
  C(J) = A(J) + B(J)
ENDDO
END
"""

CHOLESKY = """
PROGRAM chol
PARAMETER N = 24
REAL A(N,N)
DO K = 1, N
  A(K,K) = SQRT(A(K,K))
  DO I = K+1, N
    A(I,K) = A(I,K) / A(K,K)
    DO J = K+1, I
      A(I,J) = A(I,J) - A(I,K)*A(J,K)
    ENDDO
  ENDDO
ENDDO
END
"""

#: Fully serial recurrence in both dimensions: nothing distributes.
DISTRIBUTE_REJECTED = """
PROGRAM p
PARAMETER N = 8
REAL A(N,N)
DO I = 2, N
  DO J = 2, N
    A(I,J) = A(I-1,J) + A(I,J-1)
  ENDDO
ENDDO
END
"""


class TestTracer:
    def test_nesting_and_parentage(self):
        tracer = Tracer()
        with tracer.span("outer", program="x"):
            with tracer.span("inner", nest=0):
                pass
            with tracer.span("inner", nest=1):
                pass
        outer, a, b = tracer.spans
        assert outer.parent_id is None
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id
        assert tracer.roots() == [outer]
        assert tracer.children(outer) == [a, b]
        assert len(tracer.find("inner")) == 2

    def test_timing_monotonic(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        outer, inner = tracer.spans
        assert outer.finished and inner.finished
        # A child's whole window lies inside its parent's window.
        assert outer.start <= inner.start <= inner.end <= outer.end
        assert inner.duration >= 0.0
        assert outer.duration >= inner.duration

    def test_sibling_spans_ordered(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.spans
        assert a.parent_id is None and b.parent_id is None
        assert a.end <= b.start

    def test_span_attrs(self):
        tracer = Tracer()
        with tracer.span("s", program="demo", nest=3) as span:
            assert span.attrs == {"program": "demo", "nest": 3}


class TestNullContext:
    def test_default_is_disabled(self):
        obs = get_obs()
        assert obs is NULL_OBS
        assert not obs.enabled

    def test_null_operations_are_noops(self):
        obs = NULL_OBS
        with obs.span("anything", x=1) as span:
            assert span is None
        assert obs.remark("p", "applied", "m") is None
        counter = obs.metrics.counter("c")
        counter.inc()
        assert counter.value == 0
        assert obs.metrics.snapshot()["counters"] == {}

    def test_null_span_handle_is_shared(self):
        assert NULL_OBS.span("a") is NULL_OBS.span("b")

    def test_use_obs_restores_previous(self):
        obs = Obs()
        with use_obs(obs):
            assert get_obs() is obs
            with use_obs(None):
                assert get_obs() is NULL_OBS
            assert get_obs() is obs
        assert get_obs() is NULL_OBS

    def test_set_obs(self):
        obs = Obs()
        try:
            assert set_obs(obs) is obs
            assert get_obs() is obs
        finally:
            set_obs(None)
        assert get_obs() is NULL_OBS


class TestMetrics:
    def test_counter_gauge_histogram(self):
        metrics = MetricsRegistry()
        metrics.counter("c").inc()
        metrics.counter("c").inc(4)
        metrics.gauge("g").set(7)
        for value in (1, 2, 2, 5):
            metrics.histogram("h").record(value)
        assert metrics.counter("c").value == 5
        assert metrics.gauge("g").value == 7
        histogram = metrics.histogram("h")
        assert histogram.count == 4
        assert histogram.total == 10
        assert histogram.min == 1 and histogram.max == 5
        assert histogram.buckets == {1: 1, 2: 2, 5: 1}
        assert histogram.mean == pytest.approx(2.5)

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        b.counter("only_b").inc()
        a.histogram("h").record(1)
        b.histogram("h").record(1)
        b.histogram("h").record(9)
        b.gauge("g").set(42)
        a.merge(b)
        assert a.counter("c").value == 5
        assert a.counter("only_b").value == 1
        assert a.histogram("h").buckets == {1: 2, 9: 1}
        assert a.gauge("g").value == 42

    def test_snapshot_is_sorted_and_plain(self):
        metrics = MetricsRegistry()
        metrics.counter("z").inc()
        metrics.counter("a").inc()
        snapshot = metrics.snapshot()
        assert list(snapshot["counters"]) == ["a", "z"]
        json.dumps(snapshot)  # JSON-ready


class TestRemark:
    def test_format_stable(self):
        remark = Remark(
            "permute",
            "applied",
            "reordered I.J -> J.I",
            nest=0,
            loops=("I", "J"),
            data=(("order", ("J", "I")),),
        )
        assert remark.format() == (
            "permute:applied nest=0 [I J]: reordered I.J -> J.I {order=J,I}"
        )

    def test_dict_round_trip(self):
        remark = Remark(
            "fusion",
            "rejected",
            "fusion rejected: fusion-preventing dependence",
            loops=("I", "J"),
            reason="fusion-preventing",
            data=(("depth", 1),),
        )
        assert Remark.from_dict(remark.to_dict()) == remark


class TestPipelineRemarks:
    def run(self, source, fn):
        obs = Obs()
        with use_obs(obs):
            fn(parse_program(source))
        return obs

    def test_permutation_accepted(self):
        obs = self.run(
            MATMUL, lambda p: permute_nest(p.top_loops[0], CostModel(cls=4))
        )
        (remark,) = obs.remarks_for("permute")
        assert remark.kind == "applied"
        assert remark.get("order") == ("J", "K", "I")
        assert remark.get("memory_order") is True
        assert obs.metrics.counter("permute.applied").value == 1

    def test_permutation_rejected(self):
        obs = self.run(
            PERMUTE_REJECTED,
            lambda p: permute_nest(
                p.top_loops[0], CostModel(cls=4), enable_reversal=False
            ),
        )
        (remark,) = obs.remarks_for("permute")
        assert remark.kind == "rejected"
        assert remark.reason == "dependences"

    def test_fusion_accepted(self):
        obs = self.run(
            FUSION_ACCEPTED, lambda p: fuse_adjacent(p.body, CostModel(cls=4))
        )
        kinds = [r.kind for r in obs.remarks_for("fusion")]
        assert "applied" in kinds
        assert obs.metrics.counter("fusion.applied").value == 1

    def test_fusion_rejected(self):
        obs = self.run(
            FUSION_REJECTED, lambda p: fuse_adjacent(p.body, CostModel(cls=4))
        )
        rejected = [r for r in obs.remarks_for("fusion") if r.kind == "rejected"]
        assert rejected and rejected[0].reason == "fusion-preventing"
        assert "fusion-preventing dependence" in rejected[0].message

    def test_distribution_accepted(self):
        obs = self.run(
            CHOLESKY, lambda p: distribute_nest(p.top_loops[0], CostModel(cls=4))
        )
        applied = [r for r in obs.remarks_for("distribute") if r.kind == "applied"]
        assert applied and applied[0].get("new_nests") >= 2

    def test_distribution_rejected(self):
        obs = self.run(
            DISTRIBUTE_REJECTED,
            lambda p: distribute_nest(p.top_loops[0], CostModel(cls=4)),
        )
        rejected = [r for r in obs.remarks_for("distribute") if r.kind == "rejected"]
        assert rejected and rejected[0].reason == "no-enabling-partition"

    TWO_NESTS = """
PROGRAM two
PARAMETER N = 16
REAL A(N,N), B(N,N), C(N,N)
DO I = 1, N
  DO J = 1, N
    DO K = 1, N
      C(I,J) = C(I,J) + A(I,K)*B(K,J)
    ENDDO
  ENDDO
ENDDO
DO II = 1, N
  DO JJ = 1, N
    A(II,JJ) = 0.0
  ENDDO
ENDDO
END
"""

    def test_compound_emits_per_nest(self):
        obs = self.run(self.TWO_NESTS, lambda p: compound(p, CostModel(cls=4)))
        per_nest = [r for r in obs.remarks_for("compound") if r.nest is not None]
        assert {r.nest for r in per_nest} == {0, 1}
        assert obs.metrics.counter("compound.nests").value == 2
        spans = obs.tracer.find("compound.nest")
        assert len(spans) == 2
        (root,) = obs.tracer.find("compound")
        assert all(s.parent_id == root.span_id for s in spans)

    def test_dependence_test_kind_counters(self):
        obs = self.run(MATMUL, lambda p: compound(p, CostModel(cls=4)))
        counters = obs.metrics.snapshot()["counters"]
        assert counters["dep.pairs"] > 0
        assert counters.get("dep.test.siv", 0) > 0

    def test_refgroup_size_histogram(self):
        obs = self.run(MATMUL, lambda p: compound(p, CostModel(cls=4)))
        histogram = obs.metrics.histogram("model.refgroup.size")
        assert histogram.count > 0
        assert histogram.min >= 1


class TestTraceConsumers:
    def test_access_counter_merge(self):
        a, b = AccessCounter(), AccessCounter()
        a(0, False, 1)
        a(8, True, 1)
        b(16, False, 2)
        assert a.merge(b) is a
        assert (a.reads, a.writes, a.total) == (2, 1, 3)
        assert a.per_sid[1] == 2 and a.per_sid[2] == 1

    def test_stride_histogram_merge(self):
        a, b = StrideHistogram(), StrideHistogram()
        for address in (0, 8, 16):
            a(address, False, 1)
        for address in (0, 8, 1024):
            b(address, False, 1)
        a.merge(b)
        assert a.deltas[8] == 3
        assert a.deltas[1016] == 1

    def test_to_metrics_feeds_registry(self):
        metrics = MetricsRegistry()
        counter = AccessCounter()
        counter(0, False, 1)
        counter(8, True, 1)
        counter.to_metrics(metrics)
        strides = StrideHistogram()
        for address in (0, 8, 16):
            strides(address, False, 1)
        strides.to_metrics(metrics)
        assert metrics.counter("trace.reads").value == 1
        assert metrics.counter("trace.writes").value == 1
        assert metrics.histogram("trace.stride").buckets == {8: 2}

    def test_to_metrics_defaults_to_active_obs(self):
        obs = Obs()
        counter = AccessCounter()
        counter(0, False, 1)
        with use_obs(obs):
            counter.to_metrics()
        assert obs.metrics.counter("trace.reads").value == 1


class TestJsonlRoundTrip:
    def build(self):
        obs = Obs()
        with use_obs(obs):
            compound(parse_program(MATMUL), CostModel(cls=4))
        return obs

    def test_round_trip(self, tmp_path):
        obs = self.build()
        path = str(tmp_path / "trace.jsonl")
        count = write_jsonl(obs, path)
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == count
        for line in lines:
            json.loads(line)  # every line is valid JSON

        data = read_jsonl(path)
        assert data.meta["schema"] == 2
        assert data.remarks == list(obs.remarks)
        assert [s.name for s in data.spans] == [s.name for s in obs.tracer.spans]
        assert [s.parent_id for s in data.spans] == [
            s.parent_id for s in obs.tracer.spans
        ]
        assert data.metrics.snapshot() == obs.metrics.snapshot()

    def test_round_trip_twice_is_identity(self, tmp_path):
        obs = self.build()
        first = str(tmp_path / "a.jsonl")
        write_jsonl(obs, first)
        data = read_jsonl(first)
        rebuilt = Obs(metrics=data.metrics)
        rebuilt.tracer.spans = data.spans
        rebuilt.remarks = data.remarks
        second = str(tmp_path / "b.jsonl")
        write_jsonl(rebuilt, second)
        with open(first) as f1, open(second) as f2:
            assert f1.read() == f2.read()


class TestRendering:
    def test_render_remarks_stable_and_ordered(self):
        obs = Obs()
        with use_obs(obs):
            compound(parse_program(MATMUL), CostModel(cls=4))
        text = render_remarks(obs.remarks)
        assert text == render_remarks(obs.remarks)
        assert "permute:applied" in text
        assert "compound:" in text

    def test_render_remarks_empty(self):
        assert "(no remarks)" in render_remarks([])

    def test_render_spans_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        text = render_spans(tracer.spans)
        lines = text.splitlines()
        assert "outer" in lines[1]
        assert lines[2].startswith("    ")  # child indented under parent
        assert "ms" in lines[1]

    def test_render_metrics(self):
        metrics = MetricsRegistry()
        metrics.counter("dep.pairs").inc(3)
        metrics.histogram("sizes").record(2)
        text = render_metrics(metrics)
        assert "dep.pairs" in text
        assert "sizes" in text

    def test_render_metrics_empty(self):
        assert "(no metrics)" in render_metrics(MetricsRegistry())

    def test_render_metrics_shards_table(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("c").inc(2)
        a.merge_shard("shard-0", b)
        a.merge_shard("shard-0", b)  # retry: offer counted, not re-merged
        text = render_metrics(a)
        assert "shards (1 merged" in text
        assert "shard-0" in text


class TestProfiling:
    def test_profile_spans_carry_cpu_and_memory(self):
        import tracemalloc

        tracemalloc.start()
        try:
            tracer = Tracer(profile=True)
            with tracer.span("outer"):
                with tracer.span("inner"):
                    blob = [0] * 50_000  # noqa: F841 - allocate a peak
            outer, inner = tracer.spans
            for span in (outer, inner):
                assert span.cpu is not None and span.cpu >= 0.0
                assert span.mem_peak is not None and span.mem_peak >= 0
                assert span.pid is not None
            # The child's allocation is folded into the parent's peak.
            assert inner.mem_peak >= 50_000 * 8
            assert outer.mem_peak >= inner.mem_peak
        finally:
            tracemalloc.stop()

    def test_unprofiled_spans_stay_schema_compatible(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        (span,) = tracer.spans
        assert span.cpu is None
        assert span.mem_peak is None

    def test_render_profile_tree(self):
        from repro.obs import render_profile

        tracer = Tracer()
        with tracer.span("experiment.run"):
            with tracer.span("exec.simulate"):
                pass
            with tracer.span("exec.simulate"):
                pass
        metrics = MetricsRegistry()
        metrics.counter("cache.accesses").inc(10)
        text = render_profile(tracer.spans, metrics)
        assert "experiment.run" in text
        assert "exec.simulate" in text
        assert "calls" in text and "wall ms" in text
        # Two same-named siblings aggregate into one row with calls=2.
        row = next(l for l in text.splitlines() if "exec.simulate" in l)
        assert " 2 " in row
        assert "cache.accesses=10" in text

    def test_render_profile_empty(self):
        from repro.obs import render_profile

        assert "(no spans recorded)" in render_profile([])


class TestShardMerging:
    def test_graft_remaps_ids_and_tags_shard(self):
        worker = Tracer()
        worker.pid = 4242
        with worker.span("w.outer"):
            with worker.span("w.inner"):
                pass
        parent = Tracer()
        with parent.span("sharded") as root:
            pass
        parent.graft(worker.spans, parent=root, shard=3)
        names = {s.name: s for s in parent.spans}
        assert names["w.outer"].parent_id == root.span_id
        assert names["w.inner"].parent_id == names["w.outer"].span_id
        assert names["w.outer"].shard == 3
        assert names["w.outer"].pid == 4242
        # Grafted ids never collide with the parent's own ids.
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))

    def test_merge_shard_dedupes_retries(self):
        obs = Obs()
        shard = MetricsRegistry()
        shard.counter("cache.accesses").inc(100)
        assert obs.merge_shard("shard-0", shard) is True
        assert obs.merge_shard("shard-0", shard) is False  # pool retry
        assert obs.metrics.counter("cache.accesses").value == 100
        assert obs.metrics.shards == {"shard-0": 2}
        snapshot = obs.metrics.snapshot()
        assert snapshot["shards"] == {"shard-0": 2}

    def test_merge_shard_distinct_shards_accumulate(self):
        obs = Obs()
        for index in range(3):
            shard = MetricsRegistry()
            shard.counter("c").inc(1)
            obs.merge_shard(f"shard-{index}", shard)
        assert obs.metrics.counter("c").value == 3
        assert len(obs.metrics.shards) == 3

    def test_merge_shard_remarks_and_spans_once(self):
        worker = Obs()
        with use_obs(worker):
            worker.remark("p", "applied", "permute")
            with worker.tracer.span("w.task"):
                pass
        obs = Obs()
        with obs.span("sharded") as root:
            obs.merge_shard(
                "shard-0",
                worker.metrics,
                remarks=tuple(worker.remarks),
                spans=tuple(worker.tracer.spans),
                parent=root,
                shard=0,
            )
            obs.merge_shard(
                "shard-0",
                worker.metrics,
                remarks=tuple(worker.remarks),
                spans=tuple(worker.tracer.spans),
                parent=root,
                shard=0,
            )
        assert len(obs.remarks) == 1
        assert len(obs.tracer.find("w.task")) == 1

    def test_run_sharded_merges_worker_observability(self):
        from repro.experiments.common import run_sharded

        obs = Obs()
        with use_obs(obs):
            results = run_sharded(_square_observed, [(2,), (3,), (4,)], jobs=2)
        assert results == [4, 9, 16]
        # Worker counters merged exactly once per shard.
        assert obs.metrics.counter("sharded.calls").value == 3
        assert set(obs.metrics.shards) == {"shard-0", "shard-1", "shard-2"}
        # Worker spans grafted under the sharded span with provenance.
        (sharded,) = obs.tracer.find("experiment.sharded")
        worker_spans = obs.tracer.find("sharded.work")
        assert len(worker_spans) == 3
        assert {s.parent_id for s in worker_spans} == {sharded.span_id}
        assert {s.shard for s in worker_spans} == {0, 1, 2}
        assert all(s.pid is not None for s in worker_spans)

    def test_run_sharded_serial_equivalence(self):
        from repro.experiments.common import run_sharded

        serial = Obs()
        with use_obs(serial):
            run_sharded(_square_observed, [(2,), (3,)], jobs=1)
        parallel = Obs()
        with use_obs(parallel):
            run_sharded(_square_observed, [(2,), (3,)], jobs=2)
        assert (
            serial.metrics.counter("sharded.calls").value
            == parallel.metrics.counter("sharded.calls").value
        )


def _square_observed(n: int) -> int:
    obs = get_obs()
    obs.metrics.counter("sharded.calls").inc()
    with obs.span("sharded.work", n=n):
        return n * n
