"""Tests for trace consumers and reuse-distance analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import CACHE2, CacheConfig, SetAssocCache
from repro.cache.reuse import COLD, ReuseDistanceAnalyzer, reuse_profile
from repro.exec.trace import (
    AccessCounter,
    CacheFeed,
    StrideHistogram,
    record_trace,
    replay,
)
from repro.suite import matmul


class TestConsumers:
    def test_access_counter(self):
        counter = AccessCounter()
        trace = record_trace(matmul(4, "IJK"))
        for event in trace.events:
            counter(*event)
        assert counter.total == 4 ** 3 * 4
        assert counter.writes == 4 ** 3
        assert counter.reads == 4 ** 3 * 3

    def test_record_and_replay_matches_direct(self):
        program = matmul(8, "JKI")
        trace = record_trace(program)
        replayed = replay(trace, CACHE2)
        feed = CacheFeed(CACHE2)
        for event in trace.events:
            feed(*event)
        assert replayed.hits == feed.stats.hits
        assert replayed.misses == feed.stats.misses

    def test_stride_histogram_distinguishes_orders(self):
        good = StrideHistogram()
        for event in record_trace(matmul(8, "JKI")).events:
            good(*event)
        bad = StrideHistogram()
        for event in record_trace(matmul(8, "IKJ")).events:
            bad(*event)
        assert good.unit_fraction() > bad.unit_fraction()

    def test_stride_top(self):
        h = StrideHistogram()
        for addr in (0, 8, 16, 24, 1024):
            h(addr, False, 0)
        assert h.top(1)[0] == (8, 3)


class TestReuseDistance:
    def test_simple_sequence(self):
        analyzer = ReuseDistanceAnalyzer(line=8)
        # lines: A B A -> A cold, B cold, A reuse distance 1 (only B between)
        for addr in (0, 8, 0):
            analyzer(addr)
        hist = analyzer.profile.histogram
        assert hist[COLD] == 2
        assert hist[1] == 1

    def test_immediate_reuse_distance_zero(self):
        analyzer = ReuseDistanceAnalyzer(line=8)
        analyzer(0)
        analyzer(0)
        assert analyzer.profile.histogram[0] == 1

    def test_line_granularity(self):
        analyzer = ReuseDistanceAnalyzer(line=16)
        analyzer(0)
        analyzer(8)  # same 16-byte line: distance 0
        assert analyzer.profile.histogram[0] == 1

    def test_hits_for_capacity_monotone(self):
        profile = reuse_profile(matmul(8, "IJK"), line=32)
        hits = [profile.hits_for_capacity(c) for c in (1, 4, 16, 64, 256)]
        assert hits == sorted(hits)

    def test_memory_order_shifts_profile_left(self):
        good = reuse_profile(matmul(12, "JKI"), line=32)
        bad = reuse_profile(matmul(12, "IKJ"), line=32)
        # At a small capacity, the memory-order trace hits more.
        assert good.hit_rate_for_capacity(64) > bad.hit_rate_for_capacity(64)

    def test_percentile(self):
        analyzer = ReuseDistanceAnalyzer(line=8)
        for addr in (0, 8, 0, 8, 0, 8):
            analyzer(addr)
        # All warm reuses have distance 1.
        assert analyzer.profile.percentile(0.9) == 1

    def test_bad_line_size(self):
        with pytest.raises(ValueError):
            ReuseDistanceAnalyzer(line=24)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 31), min_size=1, max_size=300), st.sampled_from([1, 2, 4, 8]))
    def test_mattson_equivalence(self, lines, capacity):
        """hits(fully-assoc LRU, capacity C) == reuses with distance < C."""
        analyzer = ReuseDistanceAnalyzer(line=16)
        cache = SetAssocCache(
            CacheConfig("fa", size=16 * capacity, assoc=capacity, line=16)
        )
        for line in lines:
            address = line * 16
            analyzer(address)
            cache.access(address)
        assert cache.stats.hits == analyzer.profile.hits_for_capacity(capacity)

    def test_program_level_mattson(self):
        profile = reuse_profile(matmul(10, "JKI"), line=32)
        capacity = 32  # lines
        cache = SetAssocCache(
            CacheConfig("fa", size=32 * capacity, assoc=capacity, line=32)
        )
        trace = record_trace(matmul(10, "JKI"))
        for address, write, _ in trace.events:
            cache.access(address, 8, write)
        # elem accesses can straddle? 8 <= 32 and aligned: no straddling.
        assert cache.stats.hits == profile.hits_for_capacity(capacity)
