"""The autotune fuzz oracle: clean on the honest search, loud on lies."""

from dataclasses import replace

import pytest

from repro.autotune import autotune
from repro.autotune.space import CHECKED, Candidate, NestPlan
from repro.frontend import parse_program
from repro.model.oracle import OracleCost, canonical_key
from repro.suite import kernels
from repro.verify.runner import run_fuzz
from repro.verify.tunecheck import TuneMismatch, check_autotune


def _program(body):
    return parse_program(
        f"PROGRAM p\nPARAMETER N = 8\nREAL A(N,N), B(N,N)\n{body}\nEND"
    )


NEST = "DO I = 1, N\n  DO J = 1, N\n    A(I,J) = B(I,J)\n  ENDDO\nENDDO"


def _genuine_result(program):
    return autotune(program, line=128, capacity=64, budget=16, beam=2, topk=0)


def _fake_autotune(result):
    def fake(program, **kwargs):
        return result

    return fake


class TestCheckAutotune:
    def test_clean_on_pessimized_kernel(self):
        assert check_autotune(kernels.matmul(8, "KIJ")) is None

    def test_clean_on_simple_nest(self):
        assert check_autotune(_program(NEST)) is None

    def test_detects_miss_regression(self, monkeypatch):
        import repro.autotune as tune_pkg

        program = _program(NEST)
        result = _genuine_result(program)
        assert result.original.cost is not None
        worse = replace(
            result.original,
            cost=OracleCost(
                misses=result.original.cost.misses + 100.0,
                accesses=result.original.cost.accesses,
            ),
        )
        monkeypatch.setattr(
            tune_pkg, "autotune", _fake_autotune(replace(result, best=worse))
        )
        mismatch = check_autotune(program)
        assert isinstance(mismatch, TuneMismatch)
        assert mismatch.where == "monotone"

    def test_detects_unapproved_legality_slug(self, monkeypatch):
        import repro.autotune as tune_pkg

        program = _program(NEST)
        result = _genuine_result(program)
        sloppy = replace(
            result.best,
            plans=(
                NestPlan(0, ("I", "J"), ("I", "J"), (), "vibes"),
            ),
        )
        doctored = replace(
            result, best=sloppy, ranked=(sloppy,) + result.ranked[1:]
        )
        monkeypatch.setattr(tune_pkg, "autotune", _fake_autotune(doctored))
        mismatch = check_autotune(program)
        assert isinstance(mismatch, TuneMismatch)
        assert mismatch.where == "plan-legality"

    def test_detects_illegal_reorder(self, monkeypatch):
        import repro.autotune as tune_pkg

        # Interchange flips the (1, -1) dependence: illegal.
        original = _program(
            "DO I = 2, N\n  DO J = 1, 7\n"
            "    A(I,J) = A(I-1,J+1)\n  ENDDO\nENDDO"
        )
        swapped = _program(
            "DO J = 1, 7\n  DO I = 2, N\n"
            "    A(I,J) = A(I-1,J+1)\n  ENDDO\nENDDO"
        )
        result = _genuine_result(original)
        assert result.original.cost is not None
        lying = Candidate(
            program=swapped,
            text=canonical_key(swapped),
            source="search",
            fusion="none",
            plans=(NestPlan(0, ("I", "J"), ("J", "I"), (), CHECKED),),
            cost=result.original.cost,
        )
        doctored = replace(result, best=lying, ranked=(lying,))
        monkeypatch.setattr(tune_pkg, "autotune", _fake_autotune(doctored))
        mismatch = check_autotune(original)
        assert isinstance(mismatch, TuneMismatch)
        assert mismatch.where == "order-illegal"

    def test_detects_state_mismatch(self, monkeypatch):
        import repro.autotune as tune_pkg

        program = _program(NEST)
        wrong = _program(
            "DO I = 1, N\n  DO J = 1, N\n    A(I,J) = B(I,J) + 1\n"
            "  ENDDO\nENDDO"
        )
        result = _genuine_result(program)
        assert result.original.cost is not None
        lying = Candidate(
            program=wrong,
            text=canonical_key(wrong),
            source="search",
            fusion="none",
            plans=(),
            cost=result.original.cost,
        )
        doctored = replace(
            result, best=lying, ranked=(lying,), compound=result.original
        )
        monkeypatch.setattr(tune_pkg, "autotune", _fake_autotune(doctored))
        mismatch = check_autotune(program)
        assert isinstance(mismatch, TuneMismatch)
        assert mismatch.where == "state"

    def test_crashes_are_reported_not_raised(self, monkeypatch):
        import repro.autotune as tune_pkg

        def exploding(program, **kwargs):
            raise ValueError("boom")

        monkeypatch.setattr(tune_pkg, "autotune", exploding)
        mismatch = check_autotune(_program(NEST))
        assert isinstance(mismatch, TuneMismatch)
        assert mismatch.where == "crash"
        assert "boom" in mismatch.detail


class TestRunnerIntegration:
    def test_fuzz_report_counts_tune_rounds(self):
        report = run_fuzz(3, seed=0)
        assert report.ok, [f.repro_script() for f in report.failures]
        assert report.tune_rounds == 3
        assert "autotune cross-check" in report.summary()
