"""The compiled trace must match the interpreter's address stream exactly."""

import pytest

from repro.exec import Interpreter, simulate
from repro.exec.codegen import compile_trace
from repro.suite import cholesky, matmul, spd_init, suite_entries
from repro.cache import CACHE2
from repro.exec.timing import Machine


def interpreter_trace(prog, init=None):
    events = []
    Interpreter(
        prog,
        on_access=lambda e: events.append((e.address, e.write, e.sid)),
        init=init,
    ).run()
    return events


def compiled_trace_events(prog):
    events = []
    trace = compile_trace(prog)
    trace.run(lambda addr, write, sid: events.append((addr, write, sid)))
    return events


ENTRIES = suite_entries()


class TestTraceEquivalence:
    @pytest.mark.parametrize("entry", ENTRIES, ids=[e.name for e in ENTRIES])
    def test_identical_streams(self, entry):
        prog = entry.program(6)
        assert compiled_trace_events(prog) == interpreter_trace(prog, entry.init)

    def test_matmul_trace_length(self):
        prog = matmul(4, "IJK")
        events = compiled_trace_events(prog)
        assert len(events) == 4 ** 3 * 4  # 3 reads + 1 write per instance

    def test_operation_counts_match_interpreter(self):
        prog = cholesky(6, "KIJ")
        interp = Interpreter(prog, init=spd_init)
        interp.run()
        count, ops = compile_trace(prog).run(lambda a, w, s: None)
        assert count == interp.statements_executed
        assert ops == interp.operations_executed

    def test_simulate_compiled_matches_interpreted(self):
        prog = matmul(8, "JKI")
        machine = Machine(cache=CACHE2)
        fast = simulate(prog, machine, compiled=True)
        slow = simulate(prog, machine, compiled=False)
        assert fast.cycles == slow.cycles
        assert fast.cache.hit_rate() == slow.cache.hit_rate()

    def test_source_is_readable(self):
        trace = compile_trace(matmul(4, "JKI"))
        assert "for J in range(1, (4) + 1, 1):" in trace.source
        assert "access(" in trace.source
