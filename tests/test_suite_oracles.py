"""Slow lane: every new-generation kernel through the fuzz oracle families.

The fuzz harness normally exercises *generated* programs; this module
points the same two oracle families at every hand-written PolyBench-style
and AI-era registry entry once:

* execution equivalence — every transform trial the legality layer
  admits must leave final array state bit-identical;
* the locality oracle — predicted reuse histograms must match the traced
  ground truth across all engines.

Run with ``pytest -m slow tests/test_suite_oracles.py``.
"""

import pytest

from repro.suite.registry import get_entry, suite_entries
from repro.verify import check_trial, run_state, transform_trials
from repro.verify.localitycheck import check_locality

NEW_NAMES = sorted(e.name for e in suite_entries(("polybench", "ai")))

pytestmark = pytest.mark.slow


def test_covers_every_new_generation_entry():
    assert len(NEW_NAMES) >= 19  # 16 polybench + 3 ai at introduction


@pytest.mark.parametrize("name", NEW_NAMES)
def test_transform_trials_equivalent(name):
    """No admitted transform may change observable behaviour."""
    program = get_entry(name).program(instance="mini")
    base = run_state(program)
    trials = transform_trials(program)
    assert trials, f"{name}: no transform trials enumerated"
    failures = [
        result
        for result in (check_trial(base, trial) for trial in trials)
        if result.is_failure
    ]
    assert not failures, (
        f"{name}: admitted transforms changed behaviour: "
        + "; ".join(
            f"{r.trial.transform}({r.trial.detail}) "
            f"diff={r.differing} crash={r.crashed}"
            for r in failures[:5]
        )
    )


@pytest.mark.parametrize("name", NEW_NAMES)
def test_locality_oracle_clean(name):
    """Analytic reuse prediction must match the traced histogram."""
    program = get_entry(name).program(instance="mini")
    mismatch = check_locality(program)
    assert mismatch is None, f"{name}: {mismatch}"
