"""Tests for the framework extensions: tiling (§6), scalar replacement
(step 3 of the paper's optimization framework), and skewing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import CACHE2, CacheConfig
from repro.errors import TransformError
from repro.exec import Interpreter, Machine, run_program, simulate
from repro.frontend import parse_program
from repro.ir import iter_loops, pretty_program
from repro.model import CostModel
from repro.suite import matmul
from repro.transforms import (
    choose_tile_loops,
    scalar_replace_program,
    skew_loop,
    strip_mine,
    tile_nest,
)


class TestStripMine:
    def test_basic(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 16
            REAL A(N)
            DO I = 1, 16
              A(I) = A(I) + 1.0
            ENDDO
            END
            """
        )
        loop = prog.top_loops[0]
        mined = strip_mine(loop, 4, {"I"})
        assert mined.var == "I_T"
        assert mined.step == 4
        inner = mined.body[0]
        assert inner.var == "I"
        assert str(inner.lb) == "I_T"
        assert str(inner.ub) == "I_T+3"

    def test_iteration_space_preserved(self):
        loop = parse_program(
            "PROGRAM p\nREAL A(24)\nDO I = 1, 24\nA(I) = 1.0\nENDDO\nEND"
        ).top_loops[0]
        mined = strip_mine(loop, 6, {"I"})
        visited = []
        for outer_value in mined.iter_values({}):
            env = {mined.var: outer_value}
            for inner_value in mined.body[0].iter_values(env):
                visited.append(inner_value)
        assert visited == list(range(1, 25))

    def test_indivisible_trip_rejected(self):
        loop = parse_program(
            "PROGRAM p\nREAL A(10)\nDO I = 1, 10\nA(I) = 1.0\nENDDO\nEND"
        ).top_loops[0]
        with pytest.raises(TransformError):
            strip_mine(loop, 4, {"I"})

    def test_symbolic_bounds_rejected(self):
        loop = parse_program(
            "PROGRAM p\nPARAMETER N = 8\nREAL A(N)\nDO I = 1, N\nA(I) = 1.0\nENDDO\nEND"
        ).top_loops[0]
        with pytest.raises(TransformError):
            strip_mine(loop, 4, {"I"})


def tiled_matmul(n, tiles):
    # matmul with constant bounds so strip-mining applies.
    prog = parse_program(
        f"""
        PROGRAM mm
        REAL A({n},{n}), B({n},{n}), C({n},{n})
        DO J = 1, {n}
          DO K = 1, {n}
            DO I = 1, {n}
              C(I,J) = C(I,J) + A(I,K)*B(K,J)
            ENDDO
          ENDDO
        ENDDO
        END
        """
    )
    result = tile_nest(prog.top_loops[0], tiles)
    return prog, prog.with_body((result.loop,)), result


class TestTileNest:
    def test_structure(self):
        _, tiled, result = tiled_matmul(16, {"J": 8, "K": 8})
        loops = [l.var for l in iter_loops(tiled)]
        assert loops == ["J_T", "K_T", "J", "K", "I"]
        assert result.tile_vars == ("J_T", "K_T")

    def test_semantics_preserved(self):
        original, tiled, _ = tiled_matmul(12, {"J": 4, "K": 4})
        before = run_program(original)
        after = run_program(tiled)
        np.testing.assert_allclose(before["C"], after["C"], rtol=1e-12)

    def test_three_way_tiling_semantics(self):
        original, tiled, _ = tiled_matmul(8, {"J": 4, "K": 4, "I": 4})
        before = run_program(original)
        after = run_program(tiled)
        np.testing.assert_allclose(before["C"], after["C"], rtol=1e-12)

    def test_non_permutable_band_rejected(self):
        prog = parse_program(
            """
            PROGRAM p
            REAL A(34, 34)
            DO I = 2, 33
              DO J = 1, 32
                A(I,J) = A(I-1,J+1) + 1.0
              ENDDO
            ENDDO
            END
            """
        )
        with pytest.raises(TransformError, match="permutable"):
            tile_nest(prog.top_loops[0], {"I": 4})

    def test_tiling_improves_large_matmul(self):
        # At N=64 on the 8KB cache, B(K,J) thrashes between J iterations;
        # tiling K keeps the B tile resident.
        original, tiled, _ = tiled_matmul(64, {"K": 16, "J": 16})
        machine = Machine(cache=CACHE2, miss_penalty=20)
        before = simulate(original, machine)
        after = simulate(tiled, machine)
        assert after.cache.misses < before.cache.misses
        assert after.cycles < before.cycles

    def test_choose_tile_loops_matmul(self):
        # B(K,J) is invariant w.r.t. I; C(I,J) invariant w.r.t. K;
        # A(I,K) invariant w.r.t. J -- outer loops J and K both carry
        # invariant reuse and are tiling candidates.
        nest = matmul(16, "JKI").top_loops[0]
        assert choose_tile_loops(nest, CostModel(cls=4)) == ["J", "K"]


class TestScalarReplacement:
    def test_invariant_read_promoted(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N,N), B(N,N), C(N,N)
            DO J = 1, N
              DO K = 1, N
                DO I = 1, N
                  C(I,J) = C(I,J) + A(I,K)*B(K,J)
                ENDDO
              ENDDO
            ENDDO
            END
            """
        )
        result = scalar_replace_program(prog)
        assert result.replaced == 1  # B(K,J) is invariant w.r.t. I
        text = pretty_program(result.program)
        assert "T_B = B(K, J)" in text

    def test_semantics_preserved(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N,N), B(N,N), C(N,N)
            DO J = 1, N
              DO K = 1, N
                DO I = 1, N
                  C(I,J) = C(I,J) + A(I,K)*B(K,J)
                ENDDO
              ENDDO
            ENDDO
            END
            """
        )
        result = scalar_replace_program(prog)
        before = run_program(prog)
        after = run_program(result.program)
        np.testing.assert_allclose(before["C"], after["C"], rtol=1e-12)

    def test_written_invariant_stored_back(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL S(N), A(N,N)
            DO J = 1, N
              DO I = 1, N
                S(J) = S(J) + A(I,J)
              ENDDO
            ENDDO
            END
            """
        )
        result = scalar_replace_program(prog)
        assert result.replaced == 1
        before = run_program(prog)
        after = run_program(result.program)
        np.testing.assert_allclose(before["S"], after["S"], rtol=1e-12)
        # Store-back statement present after the inner loop.
        text = pretty_program(result.program)
        assert "S(J) = T_S" in text

    def test_aliasing_blocks_promotion(self):
        # A(1,J) and A(I,J) may alias at I=1: no promotion.
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N,N)
            DO J = 1, N
              DO I = 1, N
                A(I,J) = A(1,J) + 1.0
              ENDDO
            ENDDO
            END
            """
        )
        assert scalar_replace_program(prog).replaced == 0

    def test_reduces_memory_traffic(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 16
            REAL A(N,N), B(N,N), C(N,N)
            DO J = 1, N
              DO K = 1, N
                DO I = 1, N
                  C(I,J) = C(I,J) + A(I,K)*B(K,J)
                ENDDO
              ENDDO
            ENDDO
            END
            """
        )
        result = scalar_replace_program(prog)
        before = simulate(prog, compiled=False)
        after = simulate(result.program, compiled=False)
        # One of the four references per iteration becomes scalar traffic.
        assert after.accesses < before.accesses


class TestSkewing:
    def test_semantics_preserved(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 10
            REAL A(N,N)
            DO I = 2, N
              DO J = 2, N
                A(I,J) = A(I-1,J) + A(I,J-1)
              ENDDO
            ENDDO
            END
            """
        )
        nest = prog.top_loops[0]
        skewed = skew_loop(nest, "J", 1)
        before = run_program(prog)
        after = run_program(prog.with_body((skewed,)))
        np.testing.assert_allclose(before["A"], after["A"], rtol=1e-12)

    def test_bounds_and_subscripts_shift(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 10
            REAL A(N,N)
            DO I = 1, N
              DO J = 1, N
                A(I,J) = A(I,J) * 2.0
              ENDDO
            ENDDO
            END
            """
        )
        skewed = skew_loop(prog.top_loops[0], "J", 2)
        inner = skewed.body[0]
        assert str(inner.lb) == "2*I+1"
        assert str(inner.ub) == "2*I+N"
        assert str(skewed.statements[0].lhs) == "A(I, -2*I+J)"

    def test_zero_factor_noop(self):
        nest = matmul(8, "IJK").top_loops[0]
        assert skew_loop(nest, "J", 0) is nest

    def test_unknown_inner_rejected(self):
        nest = matmul(8, "IJK").top_loops[0]
        with pytest.raises(TransformError):
            skew_loop(nest, "Z", 1)

    def test_skewing_enables_interchange(self):
        # Wavefront deps (1,-1) and (1,1) block interchange; after
        # skewing J by 1, the components become (1,0) and (1,2): fully
        # permutable.
        from repro.transforms import constraining_vectors, order_is_legal

        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 12
            REAL A(N,N)
            DO I = 2, N - 1
              DO J = 2, N - 1
                A(I,J) = A(I-1,J+1) + A(I-1,J-1)
              ENDDO
            ENDDO
            END
            """
        )
        nest = prog.top_loops[0]
        assert not order_is_legal(constraining_vectors(nest), [1, 0])
        skewed = skew_loop(nest, "J", 1)
        assert order_is_legal(constraining_vectors(skewed), [1, 0])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(-3, 3))
    def test_skew_any_factor_preserves_semantics(self, factor):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N,N), B(N,N)
            DO I = 2, N
              DO J = 2, N
                B(I,J) = A(I-1,J-1) + B(I,J-1)
              ENDDO
            ENDDO
            END
            """
        )
        nest = prog.top_loops[0]
        skewed = skew_loop(nest, "J", factor)
        before = run_program(prog)
        after = run_program(prog.with_body((skewed,)))
        for name in before:
            np.testing.assert_allclose(before[name], after[name], rtol=1e-12)
