"""Property tests for repro.locality (ISSUE 5 satellite).

Three paper-grounded invariants, each with a quick tier-1 loop and a
deeper ``-m slow`` loop:

* **mass** — the predicted histogram's total mass (reuse terms plus cold
  misses) equals the access count, for the predictor and for every
  trace-driven engine;
* **permutation covariance** — on a perfect nest the predictor ranks
  loop orders the same way the exact simulator does (the paper's cost
  model only *ranks*; the predictor must at least preserve that order);
* **monotonicity** — predicted miss ratio is non-increasing in cache
  size (inclusion property of LRU stack distances).
"""

import itertools
import random

import pytest

from repro.cache.reuse import reuse_profile
from repro.frontend import parse_program
from repro.locality import predict_locality
from repro.seeds import seed_sequence
from repro.suite import get_entry, matmul
from repro.transforms import apply_order
from repro.verify.gennest import generate_program

QUICK_SEEDS = seed_sequence(5, "locality-props")
DEEP_SEEDS = seed_sequence(60, "locality-props-deep")


def check_mass(program):
    prediction = predict_locality(program, line=8)
    trace = reuse_profile(program, line=8)
    assert prediction.accesses == trace.accesses
    assert sum(t.count for t in prediction.terms) + prediction.cold == (
        prediction.accesses
    )
    assert sum(trace.histogram.values()) == trace.accesses


def check_monotone(program):
    prediction = predict_locality(program, line=8)
    previous = 1.0 + 1e-12
    for capacity in (1, 2, 4, 16, 64, 256, 1024, 1 << 20):
        ratio = prediction.miss_ratio_for_capacity(capacity)
        assert 0.0 <= ratio <= previous, (capacity, ratio, previous)
        previous = ratio + 1e-12


class TestHistogramMass:
    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_mass_equals_access_count_quick(self, seed):
        check_mass(generate_program(random.Random(seed), name=f"M{seed}"))

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", DEEP_SEEDS)
    def test_mass_equals_access_count(self, seed):
        check_mass(generate_program(random.Random(seed), name=f"MD{seed}"))


class TestPermutationCovariance:
    @pytest.fixture(scope="class")
    def rates(self, line=64, capacity=128):
        """(simulated, predicted) warm FA hit rate per loop order."""
        out = {}
        for order in itertools.permutations("IJK"):
            program = matmul(20, "IJK")
            nest = program.top_loops[0]
            chain = nest.perfect_nest_loops()
            permuted = apply_order(chain, order, set())
            candidate = program.with_body((permuted,))
            sim = reuse_profile(candidate, line=line).hit_rate_for_capacity(
                capacity
            )
            pred = predict_locality(candidate, line=line).hit_rate_for_capacity(
                capacity
            )
            out[order] = (sim, pred)
        return out

    def test_predictor_ranks_orders_like_simulator(self, rates):
        by_sim = sorted(rates, key=lambda o: rates[o][0])
        by_pred = sorted(rates, key=lambda o: rates[o][1])
        # Require agreement wherever the simulator sees a clear gap
        # (>2pp); ties may legitimately reorder.
        sim_rank = {o: i for i, o in enumerate(by_sim)}
        for a, b in itertools.combinations(by_pred, 2):
            if abs(rates[a][0] - rates[b][0]) > 0.02:
                assert (sim_rank[a] < sim_rank[b]) == (
                    by_pred.index(a) < by_pred.index(b)
                ), (a, b, rates[a], rates[b])

    def test_best_and_worst_order_agree_with_paper(self, rates):
        # Column-major matmul: JKI (unit stride innermost) beats IJK.
        assert rates[("J", "K", "I")][1] >= rates[("I", "J", "K")][1]


class TestMissRatioMonotone:
    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_monotone_quick(self, seed):
        check_monotone(generate_program(random.Random(seed), name=f"Q{seed}"))

    @pytest.mark.parametrize(
        "name,n", [("jacobi", 33), ("cholesky", 21), ("adi", 25)]
    )
    def test_monotone_on_suite(self, name, n):
        check_monotone(get_entry(name).program(n))

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", DEEP_SEEDS)
    def test_monotone_deep(self, seed):
        check_monotone(generate_program(random.Random(seed), name=f"D{seed}"))
