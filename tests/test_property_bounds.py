"""Property tests for bound recomputation and the frontend round-trip."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.errors import TransformError
from repro.frontend import parse_program
from repro.ir import Affine, Loop, pretty_program
from repro.suite import suite_entries
from repro.transforms import permuted_bounds


@st.composite
def triangular_nests(draw):
    """Random 2-deep nests where the inner bounds are affine in the outer
    index with coefficient in {-1, 0, 1}."""
    outer_lb = draw(st.integers(1, 3))
    outer_ub = draw(st.integers(4, 8))
    coeff_lb = draw(st.sampled_from([-1, 0, 1]))
    coeff_ub = draw(st.sampled_from([-1, 0, 1]))
    off_lb = draw(st.integers(0, 3))
    off_ub = draw(st.integers(8, 12))
    inner_lb = Affine.build({"I": coeff_lb}, off_lb)
    inner_ub = Affine.build({"I": coeff_ub}, off_ub)
    outer = Loop.make("I", outer_lb, outer_ub, [])
    inner = Loop("J", inner_lb, inner_ub, 1, ())
    return outer, inner


def iteration_space(outer, inner, bounds=None, order=("I", "J")):
    """Enumerate (I, J) points; with ``bounds`` uses the new loop order."""
    points = set()
    if bounds is None:
        for i in outer.iter_values({}):
            lb = inner.lb.evaluate({"I": i})
            ub = inner.ub.evaluate({"I": i})
            for j in range(lb, ub + 1):
                points.add((i, j))
        return points
    (lb0, ub0), (lb1, ub1) = bounds
    v0, v1 = order
    for x in range(lb0.evaluate({}), ub0.evaluate({}) + 1):
        env = {v0: x}
        for y in range(lb1.evaluate(env), ub1.evaluate(env) + 1):
            env2 = dict(env)
            env2[v1] = y
            points.add((env2["I"], env2["J"]))
    return points


class TestPermutedBoundsProperty:
    @settings(max_examples=80, deadline=None)
    @given(triangular_nests())
    def test_interchange_preserves_iteration_space(self, nest):
        outer, inner = nest
        original = iteration_space(outer, inner)
        assume(original)  # skip empty spaces
        try:
            bounds = permuted_bounds([outer, inner], ["J", "I"])
        except TransformError:
            return  # honest refusal (e.g. incomparable bounds) is fine
        swapped = iteration_space(outer, inner, bounds, order=("J", "I"))
        assert swapped == original

    @settings(max_examples=40, deadline=None)
    @given(triangular_nests())
    def test_identity_order_roundtrips(self, nest):
        outer, inner = nest
        original = iteration_space(outer, inner)
        assume(original)
        try:
            bounds = permuted_bounds([outer, inner], ["I", "J"])
        except TransformError:
            return
        same = iteration_space(outer, inner, bounds, order=("I", "J"))
        assert same == original


ENTRIES = suite_entries()


class TestFrontendRoundTrip:
    @pytest.mark.parametrize("entry", ENTRIES, ids=[e.name for e in ENTRIES])
    def test_pretty_parse_fixpoint(self, entry):
        program = entry.program(8)
        text = pretty_program(program)
        reparsed = parse_program(text)
        assert pretty_program(reparsed) == text
