"""Run ledger (repro.obs.ledger) and report rendering (repro.obs.report)."""

import json
import os
import stat
import subprocess
import sys

import pytest

from repro.obs import Obs, use_obs
from repro.obs.ledger import (
    LedgerError,
    append_record,
    config_digest,
    ledger_dir,
    ledger_enabled,
    ledger_path,
    make_record,
    phases_from_obs,
    read_ledger,
    stable_view,
)
from repro.obs.report import build_report, render_markdown, render_report

SRC = os.path.join(os.path.dirname(__file__), "..", "src")


@pytest.fixture(autouse=True)
def _enable_ledger(monkeypatch):
    """conftest disables the ledger suite-wide; these tests are about it."""
    monkeypatch.delenv("REPRO_LEDGER", raising=False)


def cli_env(tmp_path, **extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["REPRO_LEDGER_DIR"] = str(tmp_path / ".repro")
    env.pop("REPRO_LEDGER", None)
    env.update(extra)
    return env


SOURCE = (
    "PROGRAM k\n"
    "PARAMETER N = 8\n"
    "REAL A(N,N), B(N,N)\n"
    "DO I = 1, N\n"
    "  DO J = 1, N\n"
    "    A(I,J) = B(J,I)\n"
    "  ENDDO\n"
    "ENDDO\n"
    "END\n"
)


class TestRecord:
    def test_make_record_shape(self):
        record = make_record(
            "cli", ["a.f", "--simulate"], seed=7, config={"cls": 16}
        )
        assert record["schema"] == 1
        assert record["kind"] == "cli"
        assert record["argv"] == ["a.f", "--simulate"]
        assert record["seed"] == 7
        assert len(record["run_id"]) == 12
        assert record["config_digest"] == config_digest({"cls": 16})
        assert "T" in record["time"]  # ISO-8601
        json.dumps(record)  # JSON-ready

    def test_run_id_replay_stable(self):
        a = make_record("cli", ["a.f"], seed=3, config={"cls": 16})
        b = make_record("cli", ["a.f"], seed=3, config={"cls": 16})
        assert a["run_id"] == b["run_id"]
        assert stable_view(a) == stable_view(b)
        # time is volatile and excluded from the stable view.
        assert "time" not in stable_view(a)

    def test_run_id_varies_with_identity(self):
        base = make_record("cli", ["a.f"], seed=3)
        assert make_record("cli", ["a.f"], seed=4)["run_id"] != base["run_id"]
        assert make_record("cli", ["b.f"], seed=3)["run_id"] != base["run_id"]
        assert make_record("exp", ["a.f"], seed=3)["run_id"] != base["run_id"]

    def test_phases_from_obs(self):
        obs = Obs()
        with use_obs(obs):
            with obs.span("frontend.parse"):
                pass
            with obs.span("exec.simulate"):
                pass
            with obs.span("exec.simulate"):
                pass
        phases = phases_from_obs(obs)
        assert phases["exec.simulate"]["calls"] == 2
        assert phases["frontend.parse"]["wall_s"] >= 0.0


class TestAppend:
    def test_append_and_read_round_trip(self, tmp_path):
        directory = str(tmp_path / ".repro")
        record = make_record("cli", ["a.f"], seed=1)
        path = append_record(record, directory)
        assert path == ledger_path(directory)
        append_record(make_record("cli", ["b.f"], seed=1), directory)
        records = read_ledger(directory)
        assert len(records) == 2
        assert records[0] == record  # oldest first, fields intact

    def test_single_line_per_record(self, tmp_path):
        directory = str(tmp_path / ".repro")
        append_record(make_record("cli", ["a.f"], seed=1), directory)
        with open(ledger_path(directory)) as handle:
            content = handle.read()
        assert content.count("\n") == 1
        assert content.endswith("\n")

    def test_damaged_lines_skipped(self, tmp_path):
        directory = str(tmp_path / ".repro")
        append_record(make_record("cli", ["a.f"], seed=1), directory)
        with open(ledger_path(directory), "a") as handle:
            handle.write('{"torn": ')  # crashed writer
        append_record(make_record("cli", ["b.f"], seed=1), directory)
        # The torn line merges into the next one and both are skipped —
        # every *intact* record before it still reads back.
        records = read_ledger(directory)
        assert len(records) >= 1
        assert records[0]["argv"] == ["a.f"]

    def test_disabled_via_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        assert not ledger_enabled()
        directory = str(tmp_path / ".repro")
        assert append_record(make_record("cli", [], seed=0), directory) is None
        assert not os.path.exists(ledger_path(directory))

    def test_missing_ledger_reads_empty(self, tmp_path):
        assert read_ledger(str(tmp_path / "nowhere")) == []

    def test_unwritable_directory_raises(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permissions")
        locked = tmp_path / "locked"
        locked.mkdir()
        locked.chmod(stat.S_IRUSR | stat.S_IXUSR)
        try:
            with pytest.raises(LedgerError) as excinfo:
                append_record(
                    make_record("cli", [], seed=0), str(locked / ".repro")
                )
            assert "REPRO_LEDGER=0" in str(excinfo.value)
        finally:
            locked.chmod(stat.S_IRWXU)

    def test_ledger_dir_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        assert ledger_dir() == ".repro"
        assert ledger_dir("/x") == "/x"
        monkeypatch.setenv("REPRO_LEDGER_DIR", "/from/env")
        assert ledger_dir() == "/from/env"
        assert ledger_dir("/explicit") == "/explicit"


class TestReport:
    def records(self):
        rows = []
        for index, wall in enumerate((1.0, 1.1, 0.9)):
            record = make_record("experiments", ["figure2"], seed=0)
            record["phases"] = {
                "exec.simulate": {"wall_s": wall, "cpu_s": wall, "calls": 3}
            }
            record["metrics"] = {"cache.accesses": 1000 + index}
            rows.append(record)
        bench = make_record("bench.trace", [], seed=0, bench={
            "quick": False,
            "kernels": [
                {"kernel": "jacobi", "n": 64, "speedup": 6.0},
            ],
        })
        rows.append(bench)
        return rows

    def test_build_report_streams(self):
        report = build_report(self.records())
        assert len(report["overview"]) == 4
        stream = next(
            s for s in report["kinds"] if s["kind"] == "experiments"
        )
        assert stream["runs"] == 3  # same run_id -> one replay stream
        (phase,) = [
            row for row in stream["phases"] if row["phase"] == "exec.simulate"
        ]
        assert phase["wall_s"] == 0.9  # latest run
        assert phase["delta_pct"] is not None  # vs median of history
        (bench,) = report["bench"]
        assert bench["kernels"][0]["kernel"] == "jacobi"

    def test_render_markdown(self):
        text = render_markdown(build_report(self.records()))
        assert text.startswith("# repro run report")
        assert "exec.simulate" in text
        assert "jacobi" in text

    def test_render_html_standalone(self):
        html = render_report(self.records(), fmt="html")
        assert html.lstrip().lower().startswith("<!doctype html>")
        assert "exec.simulate" in html

    def test_render_unknown_format(self):
        with pytest.raises(ValueError):
            render_report(self.records(), fmt="pdf")

    def test_empty_history(self):
        text = render_markdown(build_report([]))
        assert "ledger is empty" in text


class TestCliIntegration:
    def run_cli(self, args, tmp_path, **extra):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            env=cli_env(tmp_path, **extra),
            cwd=str(tmp_path),
        )

    def test_cli_appends_and_report_renders(self, tmp_path):
        source = tmp_path / "k.f"
        source.write_text(SOURCE)
        for _ in range(2):
            result = self.run_cli([str(source), "--simulate"], tmp_path)
            assert result.returncode == 0, result.stderr
        records = read_ledger(str(tmp_path / ".repro"))
        assert len(records) == 2
        assert records[0]["kind"] == "cli"
        # Same invocation + same seed -> same run_id (replay stability).
        assert records[0]["run_id"] == records[1]["run_id"]
        out = tmp_path / "report.md"
        result = self.run_cli(
            ["report", "--format", "md", "-o", str(out)], tmp_path
        )
        assert result.returncode == 0, result.stderr
        text = out.read_text()
        assert "# repro run report" in text
        assert records[0]["run_id"] in text

    def test_report_html_artifact(self, tmp_path):
        source = tmp_path / "k.f"
        source.write_text(SOURCE)
        assert self.run_cli([str(source)], tmp_path).returncode == 0
        out = tmp_path / "report.html"
        result = self.run_cli(
            ["report", "--format", "html", "-o", str(out)], tmp_path
        )
        assert result.returncode == 0, result.stderr
        assert out.read_text().lstrip().lower().startswith("<!doctype html>")

    def test_unwritable_ledger_exits_nonzero(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permissions")
        source = tmp_path / "k.f"
        source.write_text(SOURCE)
        locked = tmp_path / "locked"
        locked.mkdir()
        locked.chmod(stat.S_IRUSR | stat.S_IXUSR)
        try:
            result = self.run_cli(
                [str(source)],
                tmp_path,
                REPRO_LEDGER_DIR=str(locked / ".repro"),
            )
            assert result.returncode == 1
            assert "error:" in result.stderr
            assert "REPRO_LEDGER=0" in result.stderr
        finally:
            locked.chmod(stat.S_IRWXU)

    def test_no_ledger_flag_skips_append(self, tmp_path):
        source = tmp_path / "k.f"
        source.write_text(SOURCE)
        result = self.run_cli([str(source), "--no-ledger"], tmp_path)
        assert result.returncode == 0, result.stderr
        assert read_ledger(str(tmp_path / ".repro")) == []

    def test_flags_compose_single_sink(self, tmp_path):
        """--trace/--metrics/--profile share one obs context: the JSONL
        trace holds exactly one record stream (no duplicates)."""
        source = tmp_path / "k.f"
        source.write_text(SOURCE)
        trace = tmp_path / "trace.jsonl"
        result = self.run_cli(
            [
                str(source),
                "--simulate",
                "--trace",
                str(trace),
                "--metrics",
                "--profile",
            ],
            tmp_path,
        )
        assert result.returncode == 0, result.stderr
        assert "phase profile" in result.stderr
        lines = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if line.strip()
        ]
        metas = [l for l in lines if l.get("type") == "meta"]
        assert len(metas) == 1  # one sink, not one per flag
        span_keys = [
            (l["name"], l["id"]) for l in lines if l.get("type") == "span"
        ]
        assert len(span_keys) == len(set(span_keys))

    def test_report_no_runs_message(self, tmp_path):
        result = self.run_cli(["report"], tmp_path)
        assert result.returncode == 0
        assert "ledger is empty" in result.stdout
