"""Tests for loop permutation, bounds recomputation, and reversal."""

import pytest

from repro.errors import TransformError
from repro.frontend import parse_program
from repro.ir import Affine, Loop, iter_loops, pretty
from repro.model import CostModel
from repro.transforms import permute_nest, permuted_bounds
from repro.transforms.bounds import loops_coupled

MATMUL_IJK = """
PROGRAM matmul
PARAMETER N = 64
REAL A(N,N), B(N,N), C(N,N)
DO I = 1, N
  DO J = 1, N
    DO K = 1, N
      C(I,J) = C(I,J) + A(I,K)*B(K,J)
    ENDDO
  ENDDO
ENDDO
END
"""


def nest_of(source: str) -> Loop:
    return parse_program(source).top_loops[0]


class TestPermutedBounds:
    def test_rectangular_passthrough(self):
        loops = [Loop.make("I", 1, "N", []), Loop.make("J", 1, "M", [])]
        bounds = permuted_bounds(loops, ["J", "I"])
        assert bounds == [
            (Affine.constant(1), Affine.var("M")),
            (Affine.constant(1), Affine.var("N")),
        ]

    def test_not_coupled(self):
        loops = [Loop.make("I", 1, "N", []), Loop.make("J", 1, "M", [])]
        assert not loops_coupled(loops, ["J", "I"])

    def test_triangular_interchange(self):
        # DO I = 1, N / DO J = 1, I  ->  DO J = 1, N / DO I = J, N
        loops = [Loop.make("I", 1, "N", []), Loop.make("J", 1, "I", [])]
        assert loops_coupled(loops, ["J", "I"])
        bounds = permuted_bounds(loops, ["J", "I"])
        assert bounds[0] == (Affine.constant(1), Affine.var("N"))
        assert bounds[1] == (Affine.var("J"), Affine.var("N"))

    def test_cholesky_style_interchange_with_context(self):
        # Within DO K: DO I = K+1, N / DO J = K+1, I -> J: K+1..N, I: J..N
        k_loop = Loop.make("K", 1, "N", [])
        loops = [
            Loop.make("I", Affine.var("K") + 1, "N", []),
            Loop.make("J", Affine.var("K") + 1, "I", []),
        ]
        bounds = permuted_bounds(loops, ["J", "I"], outer_loops=(k_loop,))
        assert bounds[0] == (Affine.var("K") + 1, Affine.var("N"))
        assert bounds[1] == (Affine.var("J"), Affine.var("N"))

    def test_non_unit_step_coupled_rejected(self):
        loops = [
            Loop.make("I", 1, "N", [], step=2),
            Loop.make("J", 1, "I", []),
        ]
        with pytest.raises(TransformError):
            permuted_bounds(loops, ["J", "I"])

    def test_iteration_space_preserved(self):
        # Count points of the triangular space both ways.
        loops = [Loop.make("I", 1, 8, []), Loop.make("J", 1, "I", [])]
        bounds = permuted_bounds(loops, ["J", "I"])
        original = {(i, j) for i in range(1, 9) for j in range(1, i + 1)}
        swapped = set()
        (lb_j, ub_j), (lb_i, ub_i) = bounds
        for j in range(lb_j.evaluate({}), ub_j.evaluate({}) + 1):
            env = {"J": j}
            for i in range(lb_i.evaluate(env), ub_i.evaluate(env) + 1):
                swapped.add((i, j))
        assert swapped == original


class TestPermuteNest:
    def test_matmul_ijk_to_jki(self):
        nest = nest_of(MATMUL_IJK)
        res = permute_nest(nest, CostModel(cls=4))
        assert res.applied
        assert res.order == ("J", "K", "I")
        assert res.achieved_memory_order
        assert not res.originally_in_memory_order
        assert [l.var for l in iter_loops(res.loop)] == ["J", "K", "I"]
        # Statement body unchanged.
        assert res.loop.statements == nest.statements

    def test_already_memory_order_noop(self):
        src = MATMUL_IJK.replace(
            "DO I = 1, N\n  DO J = 1, N\n    DO K = 1, N",
            "DO J = 1, N\n  DO K = 1, N\n    DO I = 1, N",
        )
        nest = nest_of(src)
        res = permute_nest(nest, CostModel(cls=4))
        assert not res.applied
        assert res.originally_in_memory_order
        assert res.loop is nest

    def test_illegal_interchange_blocked(self):
        # Wavefront dependence (1, -1): interchange would reverse it.
        src = """
        PROGRAM p
        PARAMETER N = 32
        REAL A(N,N)
        DO J = 2, N
          DO I = 1, N - 1
            A(I,J) = A(I+1,J-1) + 1.0
          ENDDO
        ENDDO
        END
        """
        nest = nest_of(src)
        model = CostModel(cls=4)
        assert model.memory_order(nest) == ["J", "I"]  # already best
        res = permute_nest(nest, model)
        assert res.originally_in_memory_order

    def test_interchange_blocked_by_dependence(self):
        # A(I,J) = A(I-1,J+1): dep vector (1,-1) on (I,J); memory order
        # wants J outermost (J varies the non-contiguous dim).
        src = """
        PROGRAM p
        PARAMETER N = 32
        REAL A(N,N)
        DO I = 2, N
          DO J = 1, N - 1
            A(I,J) = A(I-1,J+1) + 1.0
          ENDDO
        ENDDO
        END
        """
        nest = nest_of(src)
        model = CostModel(cls=4)
        assert model.memory_order(nest) == ["J", "I"]
        res = permute_nest(nest, model, enable_reversal=False)
        # (1,-1) permuted to (-1,1) is illegal; greedy keeps original.
        assert not res.achieved_memory_order
        assert res.failure == "dependences"

    def test_reversal_enables_interchange(self):
        # Same dependence (1,-1): reversing J negates the second component
        # to (1, 1)... permuted (1,1) -> legal with J outermost reversed.
        src = """
        PROGRAM p
        PARAMETER N = 32
        REAL A(N,N)
        DO I = 2, N
          DO J = 1, N - 1
            A(I,J) = A(I-1,J+1) + 1.0
          ENDDO
        ENDDO
        END
        """
        nest = nest_of(src)
        res = permute_nest(nest, CostModel(cls=4), enable_reversal=True)
        assert res.applied
        assert res.order == ("J", "I")
        assert res.achieved_memory_order
        assert res.reversed_loops == ("J",)
        outer = res.loop
        assert outer.step == -1
        assert outer.lb == Affine.var("N") - 1
        assert outer.ub == Affine.constant(1)

    def test_triangular_nest_permutes(self):
        src = """
        PROGRAM p
        PARAMETER N = 16
        REAL A(N,N)
        DO I = 1, N
          DO J = 1, I
            A(I,J) = A(I,J) * 2.0
          ENDDO
        ENDDO
        END
        """
        nest = nest_of(src)
        model = CostModel(cls=4)
        assert model.memory_order(nest) == ["J", "I"]
        res = permute_nest(nest, model)
        assert res.applied and res.achieved_memory_order
        loops = list(iter_loops(res.loop))
        assert [l.var for l in loops] == ["J", "I"]
        assert str(loops[1].lb) == "J"

    def test_depth_one_nest_trivial(self):
        src = """
        PROGRAM p
        PARAMETER N = 8
        REAL A(N)
        DO I = 1, N
          A(I) = 0.0
        ENDDO
        END
        """
        res = permute_nest(nest_of(src), CostModel())
        assert not res.applied
        assert res.originally_in_memory_order

    def test_scalar_reduction_blocks_everything(self):
        src = """
        PROGRAM p
        PARAMETER N = 8
        REAL A(N,N)
        DO I = 1, N
          DO J = 1, N
            S = S + A(J,I)
          ENDDO
        ENDDO
        END
        """
        nest = nest_of(src)
        model = CostModel(cls=4)
        # Memory order wants J innermost... actually A(J,I): J is the
        # contiguous dimension, so J should be innermost: already is.
        # Force the interesting case by checking order (J, I) legality.
        res = permute_nest(nest, model)
        # Either already in memory order, or blocked by the scalar.
        assert res.loop.statements == nest.statements
