"""Tests for the locality differential oracle (repro.verify.localitycheck)."""

import random

import pytest

from repro.frontend import parse_program
from repro.verify.localitycheck import (
    MODEL_CAPACITIES,
    LocalityMismatch,
    check_locality,
)
from repro.seeds import seed_sequence
from repro.verify.gennest import generate_program
from repro.verify.runner import run_fuzz


class TestCheckLocality:
    @pytest.mark.parametrize("seed", seed_sequence(6, "verify-locality"))
    def test_generated_nests_pass_quick(self, seed):
        program = generate_program(random.Random(seed), name=f"VL{seed}")
        assert check_locality(program) is None

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", seed_sequence(80, "verify-locality-deep"))
    def test_generated_nests_pass(self, seed):
        program = generate_program(random.Random(seed), name=f"VD{seed}")
        assert check_locality(program) is None

    def test_empty_nest_is_skipped_not_failed(self):
        program = parse_program(
            "PROGRAM p\nREAL A(4)\nDO I = 4, 1\nA(I) = 0.0\nENDDO\nEND"
        )
        assert check_locality(program) is None

    def test_sabotaged_predictor_is_caught(self, monkeypatch):
        # A predictor that calls every access cold must fall outside the
        # model envelope (and break the mass invariant is not enough: the
        # sabotage below keeps mass consistent, so only the rate check
        # can catch it).
        import repro.verify.localitycheck as lc
        from repro.locality import predict_locality as real

        def all_cold(program, line=128, params=None):
            prediction = real(program, line=line, params=params)
            return type(prediction)(
                program=prediction.program,
                line=prediction.line,
                accesses=prediction.accesses,
                cold=prediction.accesses,
                terms=(),
                exact=False,
            )

        monkeypatch.setattr(lc, "predict_locality", all_cold)
        program = parse_program(
            """PROGRAM p
PARAMETER N = 24
REAL A(N,N)
DO I = 1, N
  DO J = 1, N
    A(I,J) = A(I,J) + 1.0
  ENDDO
ENDDO
END"""
        )
        mismatch = check_locality(program)
        assert isinstance(mismatch, LocalityMismatch)
        assert mismatch.where == "model"

    def test_probed_capacities_are_sane(self):
        assert all(c > 0 for c in MODEL_CAPACITIES)


class TestRunnerIntegration:
    def test_fuzz_report_counts_locality_rounds(self):
        report = run_fuzz(3, seed=0)
        assert report.ok, [f.repro_script() for f in report.failures]
        assert report.locality_rounds == 3
        assert "locality cross-check" in report.summary()
