"""Tests for the cache hierarchy/TLB and unroll-and-jam."""

import numpy as np
import pytest

from repro.cache import CacheConfig, DEFAULT_TLB, Hierarchy, tlb_config
from repro.cache.hierarchy import TLB_LEVEL_NAME, TLBConfig
from repro.errors import TransformError
from repro.exec import run_program
from repro.exec.codegen import compile_trace
from repro.frontend import parse_program
from repro.ir import iter_statements
from repro.transforms import unroll_and_jam, unroll_and_jam_program

L1 = CacheConfig("l1", size=1024, assoc=2, line=32)
L2 = CacheConfig("l2", size=8192, assoc=4, line=32)


class TestHierarchy:
    def test_l1_hit_stops_probe(self):
        h = Hierarchy([L1, L2])
        h.access(0x0)
        assert h.access(0x0) == 0
        result = h.result
        assert result.levels["l1"].hits == 1
        assert result.levels["l2"].accesses == 1  # only the first miss

    def test_miss_falls_through(self):
        h = Hierarchy([L1, L2])
        assert h.access(0x0) == 2  # cold everywhere -> memory
        # Touch enough lines to evict 0x0 from tiny L1 but not from L2.
        for i in range(1, 64):
            h.access(i * 32)
        level = h.access(0x0)
        assert level == 1  # L1 miss, L2 hit

    def test_memory_cycles(self):
        h = Hierarchy([L1, L2])
        h.access(0x0)
        cycles = h.result.memory_cycles({"l1": 10, "l2": 100})
        assert cycles == 110  # one miss at each level

    def test_tlb_probed_every_access(self):
        h = Hierarchy([L1], tlb=tlb_config(entries=4, page=4096))
        h.access(0x0)
        h.access(0x0)
        result = h.result
        assert result.tlb is not None
        assert result.tlb.accesses == 2
        assert result.tlb.hits == 1

    def test_tlb_thrashing_detectable(self):
        # Touch 8 pages round-robin with a 4-entry TLB: every access a miss.
        h = Hierarchy([L2], tlb=tlb_config(entries=4, page=4096))
        for _ in range(4):
            for page in range(8):
                h.access(page * 4096)
        tlb = h.result.tlb
        assert tlb.hit_rate() == 0.0

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            Hierarchy([])

    def test_tlbconfig_alias_deprecated(self):
        with pytest.deprecated_call():
            config = TLBConfig(entries=4, page=4096)
        assert config == tlb_config(entries=4, page=4096)

    def test_user_level_named_tlb_allowed(self):
        # The TLB result key is reserved; a data level called "tlb" is a
        # legitimate (if odd) name and must not collide with it.
        level = CacheConfig("tlb", size=1024, assoc=2, line=32)
        h = Hierarchy([level], tlb=tlb_config(entries=4, page=4096))
        h.access(0x0)
        result = h.result
        assert result.levels["tlb"].accesses == 1
        assert result.tlb is not None
        assert result.tlb.accesses == 1
        assert result.tlb is not result.levels["tlb"]

    def test_reserved_tlb_level_name_rejected(self):
        from repro.errors import ReproError

        clash = CacheConfig(TLB_LEVEL_NAME, size=1024, assoc=2, line=32)
        with pytest.raises(ReproError):
            Hierarchy([clash])


UAJ_SOURCE = """
PROGRAM p
REAL A(16,16), B(16,16), C(16,16)
DO J = 1, 16
  DO I = 1, 16
    C(I,J) = C(I,J) + A(I,J) * B(J,I)
  ENDDO
ENDDO
END
"""


class TestUnrollAndJam:
    def test_structure(self):
        prog = parse_program(UAJ_SOURCE)
        unrolled = unroll_and_jam(prog.top_loops[0], 4)
        assert unrolled.step == 4
        inner = unrolled.body[0]
        assert len(inner.body) == 4  # four jammed copies
        subs = [str(s.lhs) for s in inner.body]
        assert subs == ["C(I, J)", "C(I, J+1)", "C(I, J+2)", "C(I, J+3)"]

    def test_semantics_preserved(self):
        prog = parse_program(UAJ_SOURCE)
        transformed = unroll_and_jam_program(prog, "J", 4)
        before = run_program(prog)
        after = run_program(transformed)
        np.testing.assert_allclose(before["C"], after["C"], rtol=1e-12)

    def test_semantics_with_inner_recurrence(self):
        # Inner-carried dependence is fine for unroll-and-jam.
        src = """
        PROGRAM p
        REAL A(18,16)
        DO J = 1, 16
          DO I = 2, 17
            A(I,J) = A(I-1,J) + 1.0
          ENDDO
        ENDDO
        END
        """
        prog = parse_program(src)
        transformed = unroll_and_jam_program(prog, "J", 2)
        before = run_program(prog)
        after = run_program(transformed)
        np.testing.assert_allclose(before["A"], after["A"], rtol=1e-12)

    def test_illegal_interchange_style_dependence_rejected(self):
        # (1, -1) dependence: jamming would read a value before it is
        # written.
        src = """
        PROGRAM p
        REAL A(20,20)
        DO I = 2, 17
          DO J = 1, 16
            A(I,J) = A(I-1,J+1) + 1.0
          ENDDO
        ENDDO
        END
        """
        prog = parse_program(src)
        with pytest.raises(TransformError):
            unroll_and_jam(prog.top_loops[0], 2)

    def test_indivisible_trip_rejected(self):
        src = UAJ_SOURCE
        prog = parse_program(src)
        with pytest.raises(TransformError):
            unroll_and_jam(prog.top_loops[0], 3)

    def test_factor_one_noop(self):
        prog = parse_program(UAJ_SOURCE)
        nest = prog.top_loops[0]
        assert unroll_and_jam(nest, 1) is nest

    def test_reduces_b_traffic_with_scalar_replacement(self):
        # After unroll-and-jam by 4, B(J,I)..B(J+3,I) are distinct refs,
        # but A(I,J+k)'s four columns and the inner-loop-invariant rows of
        # B become register candidates; at minimum the access count per
        # useful flop drops after scalar replacement of invariant refs.
        from repro.transforms import scalar_replace_program

        prog = parse_program(
            """
            PROGRAM p
            REAL A(16,16), B(16,16), C(16,16)
            DO J = 1, 16
              DO K = 1, 16
                DO I = 1, 16
                  C(I,J) = C(I,J) + A(I,K) * B(K,J)
                ENDDO
              ENDDO
            ENDDO
            END
            """
        )
        transformed = unroll_and_jam_program(prog, "J", 4)
        replaced = scalar_replace_program(transformed)
        assert replaced.replaced >= 4  # B(K,J)..B(K,J+3) all invariant

        def count(program):
            n = [0]
            compile_trace(program).run(lambda a, w, s: n.__setitem__(0, n[0] + 1))
            return n[0]

        before = count(prog)
        after = count(replaced.program)
        # Same work, fewer memory references per iteration.
        assert after < before

        before_vals = run_program(prog)
        after_vals = run_program(replaced.program)
        np.testing.assert_allclose(
            before_vals["C"], after_vals["C"], rtol=1e-12
        )
