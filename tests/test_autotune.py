"""The model-driven autotuner: memo layer, oracles, space, and search.

The property tests pin the subsystem's public promises: every
enumerated order passes the legality checker, every tiling fits the
capacity model and divides the trip counts, and the chosen config is
miss-monotone, compound-dominant, and verified. The memo/oracle tests
cover the shared cache layer both subsystems score through.
"""

import pytest

from repro.autotune import (
    CHECKED,
    ORIGINAL,
    autotune,
    fusion_variants,
    legal_orders,
    nest_options,
    nest_slots,
    tile_ladder,
)
from repro.frontend import parse_program
from repro.ir.nodes import Loop
from repro.ir.pretty import pretty_program
from repro.model import (
    AnalyticOracle,
    CostModel,
    MemoCache,
    OracleCost,
    SimulationOracle,
    cache_stats,
    canonical_key,
    registered_caches,
)
from repro.obs import Obs, use_obs
from repro.suite import get_entry, kernels
from repro.transforms.legality import constraining_vectors, order_is_legal

_EPS = 1e-9

#: Constant-bound nest (no PARAMETER): the one shape the IR can tile.
#: Memory-ordered matmul, so tiling (of the reuse-carrying J/K band) is
#: the axis the search has left to exploit.
TILABLE = """
PROGRAM tiled
REAL A(64,64), B(64,64), C(64,64)
DO J = 1, 64
  DO K = 1, 64
    DO I = 1, 64
      C(I,J) = C(I,J) + A(I,K)*B(K,J)
    ENDDO
  ENDDO
ENDDO
END
"""


@pytest.fixture
def tilable():
    return parse_program(TILABLE)


# ----------------------------------------------------------------------
# Satellite 1: the shared memo layer
# ----------------------------------------------------------------------
class TestMemoCache:
    def test_lru_eviction_at_cap(self):
        cache = MemoCache("t.lru", cap=2, register=False)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh: "b" is now LRU
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert "b" not in cache and "a" in cache and "c" in cache

    def test_hit_miss_counters(self):
        cache = MemoCache("t.count", cap=4, register=False)
        assert cache.get("x") is None
        cache.put("x", 42)
        assert cache.get("x") == 42
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5
        # peek is uncounted
        assert cache.peek("x") == 42
        assert (cache.hits, cache.misses) == (1, 1)

    def test_clear_keeps_counters(self):
        cache = MemoCache("t.clear", cap=4, register=False)
        cache.put("x", 1)
        cache.get("x")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_positive_cap_required(self):
        with pytest.raises(ValueError):
            MemoCache("t.bad", cap=0, register=False)

    def test_registry_and_stats(self):
        # The pipeline's shared caches registered themselves at import.
        names = set(registered_caches())
        assert "oracle.analytic.cache" in names
        rows = {row["name"]: row for row in cache_stats()}
        assert rows["oracle.analytic.cache"]["cap"] > 0

    def test_obs_counters_emitted(self):
        cache = MemoCache("t.obs", cap=2, register=False)
        obs = Obs()
        with use_obs(obs):
            cache.get("missing")
            cache.put("k", 1)
            cache.get("k")
            cache.put("k2", 2)
            cache.put("k3", 3)  # evicts
        counters = {
            name: counter.value
            for name, counter in obs.metrics.counters.items()
        }
        assert counters["t.obs.misses"] == 1
        assert counters["t.obs.hits"] == 1
        assert counters["t.obs.evictions"] == 1


# ----------------------------------------------------------------------
# The cost-oracle protocol both lint and autotune score through
# ----------------------------------------------------------------------
class TestOracles:
    def test_analytic_matches_predictor(self):
        from repro.locality import predict_locality

        program = kernels.matmul(16, "KIJ")
        oracle = AnalyticOracle(model=CostModel(cls=16), line=128, capacity=64)
        cost = oracle.cost(program)
        prediction = predict_locality(program, line=128)
        assert cost.misses == prediction.misses_for_capacity(64)
        assert cost.accesses == prediction.accesses
        assert cost.miss_ratio == pytest.approx(
            prediction.miss_ratio_for_capacity(64)
        )

    def test_analytic_memoizes_on_canonical_text(self):
        from repro.model.oracle import _PREDICTION_CACHE

        program = kernels.matmul(12, "IJK")
        oracle = AnalyticOracle(line=128, capacity=64)
        oracle.cost(program)
        hits = _PREDICTION_CACHE.hits
        oracle.cost(program)  # same canonical text -> cache hit
        assert _PREDICTION_CACHE.hits == hits + 1

    def test_simulation_matches_reuse_profile(self):
        from repro.cache.reuse import reuse_profile

        program = kernels.matmul(8, "IJK")
        oracle = SimulationOracle(line=128, capacity=64)
        cost = oracle.cost(program)
        profile = reuse_profile(program, line=128)
        assert cost.accesses == profile.accesses
        assert cost.misses == profile.accesses - profile.hits_for_capacity(64)

    def test_oracle_cost_comparisons(self):
        a = OracleCost(misses=10.0, accesses=100)
        b = OracleCost(misses=20.0, accesses=100)
        assert a.miss_ratio == pytest.approx(0.1)
        assert a.better_than(b)
        assert not b.better_than(a)
        assert not a.better_than(a)

    def test_canonical_key_is_pretty_text(self):
        program = kernels.matmul(8, "IJK")
        assert canonical_key(program) == pretty_program(program)

    def test_memory_order_delegates_to_model(self):
        program = kernels.matmul(16, "KIJ")
        nest = program.body[0]
        oracle = AnalyticOracle(model=CostModel(cls=16))
        assert tuple(oracle.memory_order(nest)) == tuple(
            CostModel(cls=16).memory_order(nest)
        )


# ----------------------------------------------------------------------
# Search-space enumeration properties
# ----------------------------------------------------------------------
class TestSpace:
    @pytest.mark.parametrize("name", ["jacobi", "cholesky", "transpose", "adi"])
    def test_legal_orders_all_pass_legality(self, name):
        program = get_entry(name).program(16)
        model = CostModel(cls=16)
        for slot in nest_slots(program):
            nest = program.body[slot]
            chain = nest.perfect_nest_loops()
            original = tuple(loop.var for loop in chain)
            index_of = {var: i for i, var in enumerate(original)}
            vectors = constraining_vectors(nest)
            for order in legal_orders(nest, model):
                assert sorted(order) == sorted(original)
                assert order_is_legal(vectors, [index_of[v] for v in order])

    def test_tile_ladder_divides_trips_and_fits(self, tilable):
        model = CostModel(cls=16)
        nest = tilable.body[0]
        ladder = tile_ladder(nest, model, cache_bytes=8192, line_bytes=128)
        assert ladder, "constant-trip 64^3 matmul must admit a tiling"
        for tiles, tiled in ladder:
            assert isinstance(tiled, Loop)
            assert tiles, "every ladder entry carries its tile sizes"
            for var, size in tiles:
                assert 64 % size == 0 and size < 64
            # The tiled nest is deeper than the original chain.
            assert tiled.depth > nest.depth

    def test_tile_ladder_empty_for_symbolic_bounds(self):
        # Suite kernels carry PARAMETER-N bounds the IR cannot strip-mine.
        program = get_entry("jacobi").program(16)
        model = CostModel(cls=16)
        for slot in nest_slots(program):
            assert (
                tile_ladder(
                    program.body[slot], model, cache_bytes=8192, line_bytes=128
                )
                == []
            )

    def test_nest_options_include_identity_with_original_slug(self, tilable):
        model = CostModel(cls=16)
        nest = tilable.body[0]
        options = nest_options(nest, 0, model, 8192, 128)
        assert options[0][0] is nest
        assert options[0][1].legality == ORIGINAL
        assert all(
            plan.legality in (ORIGINAL, CHECKED) for _, plan in options
        )
        # Matmul admits reorderings plus tilings.
        assert len(options) > 1
        assert any(plan.tiles for _, plan in options)

    def test_fusion_variants_start_with_identity(self):
        program = get_entry("jacobi").program(16)
        variants = fusion_variants(program, CostModel(cls=16))
        assert variants[0][0] == "none"
        texts = [pretty_program(v) for _, v in variants]
        assert len(texts) == len(set(texts))  # deduped


# ----------------------------------------------------------------------
# Tentpole: the search driver's public promises
# ----------------------------------------------------------------------
class TestAutotune:
    def test_matmul_kij_finds_memory_order(self):
        # n=48 so the arrays (18 KB each) exceed the 8 KB search cache
        # and loop order actually matters to the oracle.
        program = kernels.matmul(48, "KIJ")
        result = autotune(program, line=128, capacity=64, budget=32)
        assert result.verified
        assert result.best.cost.misses < result.original.cost.misses
        assert result.improvement_pp > 0

    @pytest.mark.parametrize("name, n", [("jacobi", 24), ("cholesky", 16)])
    def test_monotone_and_compound_dominant(self, name, n):
        program = get_entry(name).program(n)
        result = autotune(program, line=128, capacity=64, budget=32)
        assert result.best.cost.misses <= result.original.cost.misses + _EPS
        compound_rejected = any(
            describe == "compound" for describe, _ in result.rejected
        )
        if not compound_rejected:
            assert (
                result.best.cost.misses <= result.compound.cost.misses + _EPS
            )

    def test_plans_carry_approved_legality_slugs(self):
        program = get_entry("adi").program(16)
        result = autotune(program, line=128, capacity=64, budget=32)
        for candidate in result.ranked:
            for plan in candidate.plans:
                assert plan.legality in (ORIGINAL, CHECKED)

    def test_budget_caps_distinct_evaluations(self):
        program = get_entry("erlebacher_like").program(8)
        result = autotune(program, line=128, capacity=64, budget=4)
        assert result.evaluated <= 4
        assert result.budget_exhausted
        assert result.best.cost is not None  # still returns a scored config

    def test_tiling_chosen_on_constant_bound_nest(self, tilable):
        # 64x64 REAL arrays (32 KB each) against a 4 KB cache: the tiled
        # configs enter the pool and beat the untiled orders.
        result = autotune(tilable, line=128, capacity=32, budget=64)
        tiled = [c for c in result.ranked if any(p.tiles for p in c.plans)]
        assert tiled, "search must enumerate tilings of constant-trip nests"
        assert result.best.cost.misses <= result.original.cost.misses + _EPS

    def test_search_is_deterministic(self):
        program = kernels.matmul(16, "KIJ")
        first = autotune(program, line=128, capacity=64, budget=32)
        second = autotune(program, line=128, capacity=64, budget=32)
        assert first.best.text == second.best.text
        assert [c.text for c in first.ranked] == [c.text for c in second.ranked]

    def test_sim_rerank_orders_by_simulated_misses(self):
        program = kernels.matmul(12, "KIJ")
        result = autotune(
            program,
            line=128,
            capacity=64,
            budget=16,
            topk=3,
            compare_sim=True,
            jobs=1,
        )
        assert result.sim_ranked
        sims = [c.sim.misses for c in result.sim_ranked]
        assert sims == sorted(sims)
        assert all(c.sim.accesses > 0 for c in result.sim_ranked)

    def test_unverified_mode_returns_ranked_head(self):
        program = kernels.matmul(12, "KIJ")
        result = autotune(program, line=128, capacity=64, budget=16, verify=False)
        assert not result.verified
        assert result.best.text == result.ranked[0].text
