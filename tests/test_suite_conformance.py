"""Registry-driven conformance: every suite entry, no exceptions.

The tests here are auto-generated from the registry — the parametrize
lists come from ``sorted(SUITE)`` at collection time, so *registering a
kernel is what opts it into coverage*. Every entry gets:

* a golden locality/miss-ratio snapshot under ``tests/golden/suite/``
  (``--update-golden`` regenerates after a deliberate model change);
* an execution-equivalence check — the compound-transformed program must
  leave final array state bit-identical to the untransformed oracle at
  the ``mini`` instance;
* a schema check — the IR validates, declared arrays cover every access,
  and the instance ladder is strictly monotone in data footprint.

Renaming or unregistering a kernel fails the stale-golden test, so the
snapshot directory and the registry can never drift apart silently.
"""

import functools
import json
import os

import pytest

from repro.exec import Interpreter
from repro.ir.validate import validate_program
from repro.ir.visit import iter_loops, iter_statements
from repro.locality import predict_locality
from repro.model import CostModel
from repro.suite.registry import (
    DEFAULT_INSTANCES,
    SETS,
    SUITE,
    entry_footprint,
    get_entry,
)
from repro.transforms import compound

ALL_NAMES = sorted(SUITE)
SUITE_GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "golden", "suite"
)

#: Scoring geometry for the golden stats (matches the set runner).
LINE = 128
CAPACITY = 512


@functools.lru_cache(maxsize=None)
def _conformance(name: str):
    """Everything the per-entry tests need, computed once per entry."""
    entry = get_entry(name)
    program = entry.program(instance="mini")
    outcome = compound(program, CostModel(cls=LINE // 8))
    return {
        "entry": entry,
        "program": program,
        "transformed": outcome.program,
        "prediction": predict_locality(program, line=LINE),
    }


def _state(program, init):
    arrays = Interpreter(program, init=init, check_values=False).run()
    return {name: arr.tobytes() for name, arr in arrays.items()}


# ----------------------------------------------------------------------
# Registry shape: the scale and set contracts from the issue.


def test_registry_has_thirty_plus_programs():
    assert len(SUITE) >= 30, f"registry shrank to {len(SUITE)} programs"


def test_curated_sets_exist_and_partition_sensibly():
    assert {"paper", "polybench", "ai", "all"} <= set(SETS)
    assert len(SETS) >= 4
    assert sorted(SETS["all"].members) == ALL_NAMES
    for suite_set in SETS.values():
        assert suite_set.members, f"set {suite_set.name!r} is empty"
        for member in suite_set.members:
            assert member in SUITE


def test_no_stale_goldens(request):
    """Every golden maps to a registered entry and vice versa.

    A renamed or deleted kernel leaves an orphan snapshot behind; a new
    kernel without a snapshot fails its own golden test. Together the
    two directions make registry/golden drift impossible.
    """
    if request.config.getoption("--update-golden"):
        pytest.skip("snapshots are being regenerated this run")
    have = (
        {
            os.path.splitext(fn)[0]
            for fn in os.listdir(SUITE_GOLDEN_DIR)
            if fn.endswith(".json")
        }
        if os.path.isdir(SUITE_GOLDEN_DIR)
        else set()
    )
    want = set(ALL_NAMES)
    assert have - want == set(), (
        f"stale golden snapshots for unregistered kernels: "
        f"{sorted(have - want)}; delete them (or restore the entries)"
    )
    assert want - have == set(), (
        f"registered kernels missing golden snapshots: {sorted(want - have)}; "
        f"run `pytest tests/test_suite_conformance.py --update-golden`"
    )


# ----------------------------------------------------------------------
# Per-entry conformance (parametrized from the registry).


@pytest.mark.parametrize("name", ALL_NAMES)
def test_golden_locality_stats(name, golden):
    data = _conformance(name)
    entry, program, prediction = data["entry"], data["program"], data["prediction"]
    stats = {
        "category": entry.category,
        "default_n": entry.default_n,
        "instances": dict(entry.instances),
        "mini_n": entry.instance_n("mini"),
        "loops": sum(1 for _ in iter_loops(program)),
        "statements": sum(1 for _ in iter_statements(program)),
        "arrays": sorted(d.name for d in program.arrays),
        "accesses": prediction.accesses,
        "cold": prediction.cold,
        "exact": prediction.exact,
        "miss_ratio": round(prediction.miss_ratio_for_capacity(CAPACITY), 6),
    }
    golden(
        os.path.join("suite", f"{name}.json"),
        json.dumps(stats, indent=2, sort_keys=True),
    )


@pytest.mark.parametrize("name", ALL_NAMES)
def test_execution_equivalence(name):
    """Compound-transformed state == untransformed oracle, bit for bit."""
    data = _conformance(name)
    init = data["entry"].init
    base = _state(data["program"], init)
    after = _state(data["transformed"], init)
    assert set(base) <= set(after), (
        f"transformed {name} lost arrays {sorted(set(base) - set(after))}"
    )
    differing = [a for a in base if after[a] != base[a]]
    assert not differing, (
        f"compound transform changed observable state of {name}: {differing}"
    )


@pytest.mark.parametrize("name", ALL_NAMES)
def test_schema(name):
    data = _conformance(name)
    entry, program = data["entry"], data["program"]
    validate_program(program)
    validate_program(data["transformed"])

    declared = {d.name for d in program.arrays}
    referenced = {
        ref.array for stmt in iter_statements(program) for ref in stmt.refs
    }
    assert referenced <= declared, (
        f"{name} references undeclared arrays {sorted(referenced - declared)}"
    )

    # Instance ladder: canonical names, ordered smallest-first, strictly
    # monotone in both size and data footprint.
    instance_names = tuple(entry.instances)
    assert set(instance_names) <= set(DEFAULT_INSTANCES)
    assert instance_names == tuple(
        i for i in DEFAULT_INSTANCES if i in instance_names
    ), f"{name} instance ladder out of canonical order: {instance_names}"
    sizes = [entry.instances[i] for i in instance_names]
    assert sizes == sorted(set(sizes)), f"{name} instance sizes not increasing: {sizes}"
    footprints = [entry_footprint(entry, n) for n in sizes]
    assert footprints == sorted(set(footprints)), (
        f"{name} footprint not strictly monotone over instances: "
        f"{dict(zip(instance_names, footprints))}"
    )
