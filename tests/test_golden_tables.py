"""Golden-file regression tests for the paper-table text renderings.

The rendered Table 1, Table 2, and Table 4-analytic texts (the same
strings ``python -m repro.experiments`` prints) are snapshotted under
``tests/golden/``; any drift in formatting, cost-model decisions, or the
analytic locality predictor shows up as a diff against the checked-in
snapshot. After a *deliberate* change, refresh with::

    PYTHONPATH=src python -m pytest tests/test_golden_tables.py --update-golden

The experiments run at reduced, deterministic sizes so the whole module
stays inside the tier-1 budget.
"""

import pytest

from repro.experiments import (
    table1_erlebacher,
    table2_stats,
    table4_analytic,
    table_autotune,
)
from repro.experiments.common import MACHINE2


class TestGoldenTables:
    def test_table1_text(self, golden):
        result = table1_erlebacher.run(n=16, machines={"i860": MACHINE2})
        golden("table1.txt", table1_erlebacher.render(result))

    def test_table2_text(self, golden):
        result = table2_stats.run(n=12)
        golden("table2.txt", table2_stats.render(result))

    def test_table4_analytic_text(self, golden, table4_analytic_result):
        # Shares the session-scoped run with tests/test_experiments.py
        # (scale=0.5, names jacobi/matmul/transpose).
        golden("table4_analytic.txt", table4_analytic.render(table4_analytic_result))

    def test_table_autotune_text(self, golden):
        # Three-kernel subset at quick sizes so the exhaustive sim
        # reference stays inside the tier-1 budget; the full five-kernel
        # table is `python -m repro.experiments table_autotune`.
        result = table_autotune.run(
            sizes=(("jacobi", 65), ("adi", 25), ("transpose", 49)),
            budget=12,
        )
        golden("table_autotune.txt", table_autotune.render(result))


class TestGoldenHarness:
    def test_missing_snapshot_message_names_flag(self, golden, request):
        if request.config.getoption("--update-golden"):
            pytest.skip("update mode writes snapshots instead of asserting")
        with pytest.raises(AssertionError, match="--update-golden"):
            golden("does_not_exist.txt", "text\n")
