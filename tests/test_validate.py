"""Structural validation: the hardened checks in repro.ir.validate."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Affine,
    ArrayDecl,
    Assign,
    Loop,
    Program,
    Ref,
    Var,
    validate_program,
)


def _const(value):
    return Affine.constant(value)


def _decl(name, extent=8):
    return ArrayDecl(name, (_const(extent),))


def _loop(var, body, ub=8):
    return Loop(var, _const(1), _const(ub), 1, tuple(body))


def _assign(array, index, sid=0):
    ref = Ref(array, (Affine.var(index),))
    return Assign(ref, Var(index), sid=sid)


def _program(body, arrays, params=()):
    return Program("p", tuple(params), tuple(arrays), tuple(body))


class TestValidateProgram:
    def test_clean_program_passes(self):
        program = _program([_loop("I", [_assign("A", "I")])], [_decl("A")])
        validate_program(program)

    def test_duplicate_array_declaration(self):
        program = _program(
            [_loop("I", [_assign("A", "I")])], [_decl("A"), _decl("A")]
        )
        with pytest.raises(IRError, match="declared twice"):
            validate_program(program)

    def test_array_parameter_name_clash(self):
        program = _program(
            [_loop("I", [_assign("N", "I")])], [_decl("N")], params=[("N", 8)]
        )
        with pytest.raises(IRError, match="both an array and a parameter"):
            validate_program(program)

    def test_loop_index_collides_with_array(self):
        program = _program(
            [_loop("A", [_assign("A", "A")])], [_decl("A")]
        )
        with pytest.raises(IRError, match="collides with an array name"):
            validate_program(program)

    def test_loop_index_collides_with_parameter(self):
        program = _program(
            [_loop("N", [_assign("A", "N")])],
            [_decl("A")],
            params=[("N", 8)],
        )
        with pytest.raises(IRError, match="collides with a parameter"):
            validate_program(program)

    def test_undeclared_array(self):
        program = _program([_loop("I", [_assign("B", "I")])], [_decl("A")])
        with pytest.raises(IRError, match="not declared"):
            validate_program(program)

    def test_rank_mismatch(self):
        two_d = Assign(Ref("A", (Affine.var("I"), Affine.var("I"))), Var("I"))
        program = _program([_loop("I", [two_d])], [_decl("A")])
        with pytest.raises(IRError, match="rank"):
            validate_program(program)

    def test_duplicate_sids(self):
        body = [_assign("A", "I", sid=1), _assign("A", "I", sid=1)]
        program = _program([_loop("I", body)], [_decl("A")])
        with pytest.raises(IRError, match="duplicate statement sid"):
            validate_program(program)

    def test_shadowed_loop_index(self):
        inner = _loop("I", [_assign("A", "I", sid=1)])
        program = _program([_loop("I", [inner])], [_decl("A")])
        with pytest.raises(IRError, match="shadows"):
            validate_program(program)

    def test_reused_loop_index_across_nests(self):
        first = _loop("I", [_assign("A", "I", sid=0)])
        second = _loop("I", [_assign("A", "I", sid=1)])
        program = _program([first, second], [_decl("A")])
        with pytest.raises(IRError, match="used by two loops"):
            validate_program(program)

    def test_unknown_name_in_subscript(self):
        stmt = Assign(Ref("A", (Affine.var("Q"),)), Var("I"))
        program = _program([_loop("I", [stmt])], [_decl("A")])
        with pytest.raises(IRError, match="unknown name"):
            validate_program(program)
