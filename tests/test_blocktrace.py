"""Batched trace engine and vectorized cache path: equivalence tests.

The batched engine exists purely for speed; every test here pins the
invariant that makes it safe to use by default — bit-identical behaviour
with the event-by-event reference path at every layer (raw cache state,
hierarchy cascades, trace streams, experiment hit rates, and the sharded
experiment runner).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import CACHE2, CacheConfig, Hierarchy, SetAssocCache
from repro.exec import (
    block_events,
    compile_block_trace,
    resolve_engine,
    run_program,
    simulate,
)
from repro.exec.blocktrace import AccessBlock
from repro.experiments import table3_perf, table4_hitrates
from repro.experiments.common import changed_sids, dual_hit_rates, resolve_jobs
from repro.frontend import parse_program
from repro.model import CostModel
from repro.suite import suite_entries
from repro.transforms import compound


def geometry(assoc: int, sets: int, line: int = 16) -> CacheConfig:
    return CacheConfig(
        f"g{assoc}x{sets}", size=line * assoc * sets, assoc=assoc, line=line
    )


def stats_tuple(stats):
    return (stats.accesses, stats.hits, stats.cold_misses, stats.conflict_misses)


# ----------------------------------------------------------------------
# SetAssocCache.access_block == repeated access(), bit for bit
# ----------------------------------------------------------------------
class TestAccessBlockEquivalence:
    @given(
        assoc=st.sampled_from([1, 2, 4]),
        sets=st.sampled_from([1, 4, 7]),
        addresses=st.lists(st.integers(0, 4095), min_size=1, max_size=200),
        data=st.data(),
    )
    @settings(deadline=None, max_examples=60)
    def test_random_streams(self, assoc, sets, addresses, data):
        config = geometry(assoc, sets)
        sizes = data.draw(
            st.lists(
                st.integers(1, 40),
                min_size=len(addresses),
                max_size=len(addresses),
            )
        )
        scalar = SetAssocCache(config)
        batched = SetAssocCache(config)
        for address, size in zip(addresses, sizes):
            scalar.access(address, size)
        # Feed the batched cache in irregular chunks to exercise block
        # boundaries and interleaving with pre-existing state.
        arr = np.array(addresses, dtype=np.int64)
        size_arr = np.array(sizes, dtype=np.int64)
        hits = []
        for start in range(0, len(addresses), 37):
            result = batched.access_block(
                arr[start : start + 37], size_arr[start : start + 37]
            )
            hits.extend(result.hits.tolist())
        assert stats_tuple(batched.stats) == stats_tuple(scalar.stats)
        # Per-access hit flags must match a scalar replay as well.
        replay = SetAssocCache(config)
        expected = [
            replay.access(address, size)
            for address, size in zip(addresses, sizes)
        ]
        assert hits == expected

    @given(st.lists(st.integers(0, 1023), min_size=1, max_size=150))
    @settings(deadline=None, max_examples=40)
    def test_cold_miss_classification(self, addresses):
        # Cold misses depend on global first-touch history; run the same
        # stream twice so the second pass has no cold misses at all.
        config = geometry(2, 4)
        scalar = SetAssocCache(config)
        batched = SetAssocCache(config)
        arr = np.array(addresses, dtype=np.int64)
        for _ in range(2):
            for address in addresses:
                scalar.access(address, 1)
            batched.access_block(arr, 1)
            assert stats_tuple(batched.stats) == stats_tuple(scalar.stats)

    def test_empty_block(self):
        cache = SetAssocCache(geometry(2, 4))
        result = cache.access_block(np.empty(0, dtype=np.int64))
        assert len(result) == 0
        assert cache.stats.accesses == 0


class TestHierarchyBlockEquivalence:
    @given(st.lists(st.integers(0, 8191), min_size=1, max_size=200))
    @settings(deadline=None, max_examples=40)
    def test_levels_and_tlb(self, addresses):
        def build():
            return Hierarchy(
                [geometry(1, 4, line=32), geometry(2, 8, line=32)],
                tlb=CacheConfig("t", size=4 * 4096, assoc=4, line=4096),
            )

        scalar = build()
        batched = build()
        expected = [scalar.access(address, 8) for address in addresses]
        levels = batched.access_block(
            np.array(addresses, dtype=np.int64), 8
        )
        assert levels.tolist() == expected
        a, b = scalar.result, batched.result
        assert a.tlb is not None and b.tlb is not None
        assert stats_tuple(a.tlb) == stats_tuple(b.tlb)
        for name in a.levels:
            assert stats_tuple(a.levels[name]) == stats_tuple(b.levels[name])


# ----------------------------------------------------------------------
# Block trace stream == interpreter event stream, on every suite kernel
# ----------------------------------------------------------------------
class TestBlockTraceStream:
    def test_every_suite_kernel_matches_interpreter(self):
        for entry in suite_entries():
            program = entry.program(8)
            recorded = []
            run_program(
                program,
                on_access=lambda e: recorded.append(
                    (e.address, e.size, e.write, e.sid)
                ),
                init=entry.init,
            )
            assert block_events(program) == recorded, entry.name

    def test_every_suite_kernel_compiles_batched(self):
        # The default engine must never silently fall back on the suite.
        for entry in suite_entries():
            compile_block_trace(entry.program(8))

    def test_block_coalescing_respects_block_size(self):
        program = parse_program(
            """
            PROGRAM p
            REAL A(64,64)
            DO J = 1, 64
              DO I = 1, 64
                A(I,J) = A(I,J) + 1.0
              ENDDO
            ENDDO
            END
            """
        )
        blocks: list[AccessBlock] = []
        trace = compile_block_trace(program, block_size=256)
        trace.run(blocks.append)
        assert sum(len(b) for b in blocks) == 2 * 64 * 64
        assert all(len(b) >= 256 for b in blocks[:-1])

    def test_counters_match_event_engine(self):
        from repro.exec.codegen import compile_trace

        for entry in list(suite_entries())[:5]:
            program = entry.program(8)
            count_b, ops_b = compile_block_trace(program).run(lambda b: None)
            count_e, ops_e = compile_trace(program).run(lambda a, w, s: None)
            assert (count_b, ops_b) == (count_e, ops_e), entry.name


# ----------------------------------------------------------------------
# Engine selection and end-to-end equality
# ----------------------------------------------------------------------
class TestEngineSelection:
    def test_resolve_engine(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_ENGINE", raising=False)
        assert resolve_engine() == "block"
        assert resolve_engine("event") == "event"
        monkeypatch.setenv("REPRO_TRACE_ENGINE", "event")
        assert resolve_engine() == "event"
        with pytest.raises(ValueError):
            resolve_engine("turbo")

    def test_simulate_engines_identical(self):
        for entry in list(suite_entries())[:6]:
            program = entry.program(12)
            a = simulate(program, engine="block")
            b = simulate(program, engine="event")
            assert stats_tuple(a.cache) == stats_tuple(b.cache), entry.name
            assert (a.cycles, a.operations) == (b.cycles, b.operations)

    def test_dual_hit_rates_engines_identical(self):
        for entry in list(suite_entries())[:4]:
            program = entry.program(12)
            final = compound(program, CostModel(cls=4)).program
            focus = changed_sids(program, final)
            for version in (program, final):
                assert dual_hit_rates(
                    version, CACHE2, focus, engine="block"
                ) == dual_hit_rates(version, CACHE2, focus, engine="event")


# ----------------------------------------------------------------------
# Sharded experiment runner
# ----------------------------------------------------------------------
class TestParallelRunner:
    def test_resolve_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) == 1
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_table3_sharded_identical(self):
        names = tuple(e.name for e in list(suite_entries())[:4])
        serial = table3_perf.run(scale=0.3, names=names)
        sharded = table3_perf.run(scale=0.3, names=names, jobs=2)
        assert [
            (r.name, r.original_cycles, r.transformed_cycles)
            for r in serial.rows
        ] == [
            (r.name, r.original_cycles, r.transformed_cycles)
            for r in sharded.rows
        ]

    def test_table4_sharded_identical(self):
        names = tuple(e.name for e in list(suite_entries())[:4])
        serial = table4_hitrates.run(scale=0.3, names=names)
        sharded = table4_hitrates.run(scale=0.3, names=names, jobs=2)
        assert [
            (r.name, r.whole, r.opt, r.optimized_statements)
            for r in serial.rows
        ] == [
            (r.name, r.whole, r.opt, r.optimized_statements)
            for r in sharded.rows
        ]

    def test_sharded_merges_worker_observability(self):
        from repro.obs import Obs, use_obs

        names = tuple(e.name for e in list(suite_entries())[:3])
        with use_obs(Obs()) as obs:
            table4_hitrates.run(scale=0.3, names=names, jobs=2)
            counters = obs.metrics.snapshot()["counters"]
        assert counters.get("experiment.shards") == len(names)
        assert counters.get("trace.engine.block", 0) > 0


# ----------------------------------------------------------------------
# Memoization caches
# ----------------------------------------------------------------------
class TestMemoCaches:
    def test_pair_cache_identical_results_and_counters(self):
        from repro.dependence import tests as dep_tests
        from repro.obs import Obs, use_obs
        from repro.suite import cholesky

        program = cholesky(10, "KIJ")

        def run_once():
            from repro.dependence.pairs import region_dependences

            with use_obs(Obs()) as obs:
                deps = region_dependences(program.top_loops[0], include_inputs=True)
                counters = obs.metrics.snapshot()["counters"]
            return deps, counters

        dep_tests._PAIR_CACHE.clear()
        cold_deps, cold_counters = run_once()
        warm_deps, warm_counters = run_once()
        assert warm_deps == cold_deps
        # Kind counters replay exactly on cache hits.
        for key in ("dep.pairs", "dep.test.ziv", "dep.test.siv", "dep.test.miv"):
            assert warm_counters.get(key, 0) == cold_counters.get(key, 0), key
        # Warm run: every pair is cached (duplicate pairs hit even cold).
        assert warm_counters.get("dep.cache.misses", 0) == 0
        assert warm_counters["dep.cache.hits"] == (
            cold_counters["dep.cache.hits"] + cold_counters["dep.cache.misses"]
        )

    def test_nest_info_structural_reuse_keeps_caller_loops(self):
        from repro.suite import matmul

        model = CostModel()
        first = matmul(12, "IJK").top_loops[0]
        second = matmul(12, "IJK").top_loops[0]
        assert first == second and first is not second
        info1 = model.nest_info(first)
        info2 = model.nest_info(second)
        # The expensive dependence set is shared...
        assert info2.deps is info1.deps
        # ...but loops/chains belong to the tree that was asked about,
        # because several consumers compare them by identity.
        assert all(a is b for a, b in zip(info2.loops, second.perfect_nest_loops()))
        sid = second.statements[0].sid
        assert all(l1 is l2 for l1, l2 in zip(info2.chains[sid], info2.loops))

    def test_loop_cost_cache_consistent(self):
        from repro.suite import matmul

        nest = matmul(12, "IJK").top_loops[0]
        fresh = CostModel()
        cached = CostModel()
        for var in ("I", "J", "K"):
            cold = cached.loop_cost(nest, var)
            warm = cached.loop_cost(nest, var)
            assert cold is warm  # memoized value
            assert warm.magnitude() == fresh.loop_cost(nest, var).magnitude()

    def test_compound_unaffected_by_warm_caches(self):
        for entry in list(suite_entries())[:6]:
            program = entry.program(10)
            first = compound(program, CostModel(cls=4)).program
            second = compound(program, CostModel(cls=4)).program
            assert first == second, entry.name
