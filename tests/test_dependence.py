"""Tests for dependence analysis: unit cases, paper examples, and
brute-force soundness checks (including a hypothesis property)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dependence import (
    ANTI,
    FLOW,
    INPUT,
    OUTPUT,
    DepVector,
    analyze_ref_pair,
    region_dependences,
)
from repro.frontend import parse_program
from repro.ir import Affine, Loop, Ref

from repro.verify.depforce import analysis_covers, brute_force_dependences


def loops(*specs):
    """Helper: loops('I', 1, 'N') -> Loop chain, outermost first."""
    return [Loop.make(var, lb, ub, []) for var, lb, ub in specs]


class TestAnalyzeRefPair:
    def test_strong_siv_distance_one(self):
        common = loops(("I", 1, 100))
        vecs = analyze_ref_pair(Ref.make("A", "I"), Ref.make("A", "I-1"), common)
        # writing A(I), reading A(I-1): sink instance - source instance = +1
        # for the pair (A(I), A(I-1)): I' - 1 = I  =>  delta = 1
        assert vecs == [DepVector.of(1)]

    def test_strong_siv_reverse(self):
        common = loops(("I", 1, 100))
        vecs = analyze_ref_pair(Ref.make("A", "I-1"), Ref.make("A", "I"), common)
        assert vecs == [DepVector.of(-1)]

    def test_identity_pair(self):
        common = loops(("I", 1, 100))
        vecs = analyze_ref_pair(Ref.make("A", "I"), Ref.make("A", "I"), common)
        assert vecs == [DepVector.of(0)]

    def test_distance_exceeds_trip_count(self):
        common = loops(("I", 1, 3))
        vecs = analyze_ref_pair(Ref.make("A", "I"), Ref.make("A", "I-10"), common)
        assert vecs == []

    def test_ziv_independent(self):
        common = loops(("I", 1, 100))
        vecs = analyze_ref_pair(Ref.make("A", 1), Ref.make("A", 2), common)
        assert vecs == []

    def test_ziv_dependent(self):
        common = loops(("I", 1, 100))
        vecs = analyze_ref_pair(Ref.make("A", 5), Ref.make("A", 5), common)
        assert len(vecs) == 1
        assert vecs[0].components == ("*",)

    def test_gcd_independent(self):
        common = loops(("I", 1, 100))
        a = Ref("A", (2 * Affine.var("I"),))
        b = Ref("A", (2 * Affine.var("I") + 1,))
        assert analyze_ref_pair(a, b, common) == []

    def test_loop_invariant_dimension_stays_star(self):
        # B(K,J) analyzed in a J,K,I nest: I never appears.
        common = loops(("J", 1, 10), ("K", 1, 10), ("I", 1, 10))
        vecs = analyze_ref_pair(Ref.make("B", "K", "J"), Ref.make("B", "K", "J"), common)
        assert vecs == [DepVector.of(0, 0, "*")]

    def test_banerjee_prunes_out_of_range(self):
        # A(I) vs A(I+50) on a 10-trip loop: distance 50 impossible.
        common = loops(("I", 1, 10))
        vecs = analyze_ref_pair(Ref.make("A", "I"), Ref.make("A", "I+50"), common)
        assert vecs == []

    def test_coupled_subscripts_mivcase(self):
        # A(I+J) self-pair in 2-deep nest: many solutions, directions only.
        common = loops(("I", 1, 10), ("J", 1, 10))
        vecs = analyze_ref_pair(Ref.make("A", "I+J"), Ref.make("A", "I+J"), common)
        dirs = {v.components for v in vecs}
        assert (0, 0) in dirs
        assert ("<", ">") in dirs and (">", "<") in dirs
        # (<, <) increases I+J on both: infeasible
        assert ("<", "<") not in dirs

    def test_symbolic_bound_conservative(self):
        common = [Loop.make("I", 1, "N", [])]
        vecs = analyze_ref_pair(Ref.make("A", "I"), Ref.make("A", "I-2"), common)
        assert vecs == [DepVector.of(2)]

    def test_different_arrays_independent(self):
        common = loops(("I", 1, 10))
        assert analyze_ref_pair(Ref.make("A", "I"), Ref.make("B", "I"), common) == []

    def test_scalar_pair_all_star(self):
        common = loops(("I", 1, 10), ("J", 1, 10))
        vecs = analyze_ref_pair(Ref.make("S"), Ref.make("S"), common)
        assert vecs == [DepVector.of("*", "*")]

    def test_empty_loop_no_dependence(self):
        common = loops(("I", 5, 1))  # zero trip
        assert analyze_ref_pair(Ref.make("A", "I"), Ref.make("A", "I"), common) == []

    def test_triangular_nest(self):
        # DO K / DO I=K+1,N: A(I,K) self output dep only at distance 0.
        outer = Loop.make("K", 1, "N", [])
        inner = Loop.make("I", Affine.var("K") + 1, "N", [])
        vecs = analyze_ref_pair(
            Ref.make("A", "I", "K"), Ref.make("A", "I", "K"), [outer, inner]
        )
        assert vecs == [DepVector.of(0, 0)]


def deps_of(source: str, include_inputs=False):
    prog = parse_program(source)
    return prog, region_dependences(prog, include_inputs=include_inputs)


class TestRegionDependences:
    def test_flow_anti_output_kinds(self):
        prog, deps = deps_of(
            """
            PROGRAM p
            PARAMETER N = 10
            REAL A(N)
            DO I = 2, N
              A(I) = A(I-1) + A(I+1)
            ENDDO
            END
            """
        )
        kinds = {(d.kind, d.vector.components) for d in deps}
        assert (FLOW, (1,)) in kinds  # A(I) -> A(I-1) next iteration
        assert (ANTI, (1,)) in kinds  # A(I+1) read, written next iteration

    def test_loop_independent_within_statement(self):
        prog, deps = deps_of(
            """
            PROGRAM p
            PARAMETER N = 10
            REAL A(N)
            DO I = 1, N
              A(I) = A(I) + 1.0
            ENDDO
            END
            """
        )
        li = [d for d in deps if d.is_loop_independent]
        assert len(li) == 1
        assert li[0].kind == ANTI  # read happens before write in an instance
        assert not li[0].source.is_write and li[0].sink.is_write

    def test_across_statements_lexical_orientation(self):
        prog, deps = deps_of(
            """
            PROGRAM p
            PARAMETER N = 10
            REAL A(N), B(N), C(N)
            DO I = 1, N
              A(I) = B(I)
              C(I) = A(I)
            ENDDO
            END
            """
        )
        flows = [d for d in deps if d.kind == FLOW]
        assert len(flows) == 1
        assert flows[0].source.sid == 0 and flows[0].sink.sid == 1
        assert flows[0].is_loop_independent

    def test_input_dependences_optional(self):
        src = """
        PROGRAM p
        PARAMETER N = 10
        REAL A(N), B(N), C(N)
        DO I = 1, N
          B(I) = A(I)
          C(I) = A(I)
        ENDDO
        END
        """
        _, without = deps_of(src)
        _, with_inputs = deps_of(src, include_inputs=True)
        assert not any(d.kind == INPUT for d in without)
        inputs = [d for d in with_inputs if d.kind == INPUT]
        assert any(d.source.sid == 0 and d.sink.sid == 1 for d in inputs)

    def test_disjoint_nests_no_common_loops(self):
        prog, deps = deps_of(
            """
            PROGRAM p
            PARAMETER N = 10
            REAL A(N)
            DO I = 1, N
              A(I) = 1.0
            ENDDO
            DO J = 1, N
              A(J) = A(J) + 1.0
            ENDDO
            END
            """
        )
        cross = [d for d in deps if d.source.sid != d.sink.sid]
        assert cross
        for d in cross:
            assert d.loop_vars == ()
            assert len(d.vector) == 0
            assert d.source.sid == 0  # first nest is the source

    def test_scalar_reduction_blocks(self):
        prog, deps = deps_of(
            """
            PROGRAM p
            PARAMETER N = 10
            REAL A(N)
            S = 0.0
            DO I = 1, N
              S = S + A(I)
            ENDDO
            END
            """
        )
        self_deps = [d for d in deps if d.source.sid == 1 and d.sink.sid == 1]
        # The scalar recurrence is carried by the loop (the ambiguous '*'
        # vector splits into oriented carried cases).
        assert any(d.vector.components == ("<",) for d in self_deps)


CASES = [
    # (name, source, env)
    (
        "stencil",
        """
        PROGRAM p
        PARAMETER N = 6
        REAL A(N)
        DO I = 2, N - 1
          A(I) = A(I-1) + A(I+1)
        ENDDO
        END
        """,
        {"N": 6},
    ),
    (
        "matmul",
        """
        PROGRAM p
        PARAMETER N = 4
        REAL A(N,N), B(N,N), C(N,N)
        DO J = 1, N
          DO K = 1, N
            DO I = 1, N
              C(I,J) = C(I,J) + A(I,K)*B(K,J)
            ENDDO
          ENDDO
        ENDDO
        END
        """,
        {"N": 4},
    ),
    (
        "cholesky",
        """
        PROGRAM p
        PARAMETER N = 5
        REAL A(N,N)
        DO K = 1, N
          A(K,K) = SQRT(A(K,K))
          DO I = K+1, N
            A(I,K) = A(I,K) / A(K,K)
            DO J = K+1, I
              A(I,J) = A(I,J) - A(I,K)*A(J,K)
            ENDDO
          ENDDO
        ENDDO
        END
        """,
        {"N": 5},
    ),
    (
        "transpose-ish",
        """
        PROGRAM p
        PARAMETER N = 4
        REAL A(N,N)
        DO I = 1, N
          DO J = 1, N
            A(I,J) = A(J,I) + 1.0
          ENDDO
        ENDDO
        END
        """,
        {"N": 4},
    ),
    (
        "coupled",
        """
        PROGRAM p
        PARAMETER N = 5
        REAL A(N,N)
        DO I = 1, N - 1
          DO J = 1, N - 1
            A(I+1,J) = A(J,I) + A(I,J+1)
          ENDDO
        ENDDO
        END
        """,
        {"N": 5},
    ),
    (
        "negative-step",
        """
        PROGRAM p
        PARAMETER N = 6
        REAL A(N)
        DO I = N, 2, -1
          A(I) = A(I-1) + 1.0
        ENDDO
        END
        """,
        {"N": 6},
    ),
    (
        "imperfect",
        """
        PROGRAM p
        PARAMETER N = 4
        REAL A(N,N), B(N)
        DO I = 1, N
          B(I) = A(I,1)
          DO J = 1, N
            A(I,J) = B(I) + 1.0
          ENDDO
        ENDDO
        END
        """,
        {"N": 4},
    ),
]


class TestSoundnessVsOracle:
    @pytest.mark.parametrize("name,source,env", CASES, ids=[c[0] for c in CASES])
    def test_analysis_covers_all_real_dependences(self, name, source, env):
        prog = parse_program(source)
        prog = prog.with_params(env)
        deps = region_dependences(prog, include_inputs=True)
        exact = brute_force_dependences(prog, env, include_inputs=True)
        missing = analysis_covers(deps, exact)
        assert missing == [], f"{name}: analysis missed {missing}"


@st.composite
def random_nest_programs(draw):
    """Random depth-2 nests with affine 2D subscripts and small bounds."""
    n = draw(st.integers(2, 5))
    coeff = st.integers(-1, 2)
    offset = st.integers(-1, 2)

    def subscript():
        a = draw(coeff)
        b = draw(coeff)
        c = draw(offset)
        terms = []
        if a:
            terms.append(f"{a}*I" if a != 1 else "I")
        if b:
            terms.append(f"{b}*J" if b != 1 else "J")
        expr = " + ".join(terms) if terms else "0"
        expr = f"{expr} + {c + 3}"  # keep subscripts >= 1-ish
        return expr

    lhs = f"A({subscript()}, {subscript()})"
    rhs = f"A({subscript()}, {subscript()})"
    src = f"""
    PROGRAM p
    PARAMETER N = {n}
    REAL A(20, 20)
    DO I = 1, N
      DO J = 1, N
        {lhs} = {rhs} + 1.0
      ENDDO
    ENDDO
    END
    """
    return src, {"N": n}


class TestSoundnessProperty:
    @settings(max_examples=60, deadline=None)
    @given(random_nest_programs())
    def test_random_programs_covered(self, case):
        source, env = case
        prog = parse_program(source).with_params(env)
        deps = region_dependences(prog, include_inputs=True)
        exact = brute_force_dependences(prog, env, include_inputs=True)
        assert analysis_covers(deps, exact) == []


class TestClassicSIVCases:
    """Textbook SIV shapes (weak-zero, weak-crossing) through the FME path."""

    def test_weak_zero_siv(self):
        # A(I) vs A(5): dependence only at the single iteration I = 5.
        common = loops(("I", 1, 10))
        vecs = analyze_ref_pair(Ref.make("A", "I"), Ref.make("A", 5), common)
        assert len(vecs) >= 1
        # The I=5 instance is the only source; the sink is loop-invariant,
        # so every direction around iteration 5 is feasible but nothing
        # outside the loop range is claimed.
        assert all(v.components[0] in ("<", ">", 0) for v in vecs)

    def test_weak_zero_siv_out_of_range(self):
        common = loops(("I", 1, 10))
        vecs = analyze_ref_pair(Ref.make("A", "I"), Ref.make("A", 50), common)
        assert vecs == []

    def test_weak_crossing_siv(self):
        # A(I) vs A(N+1-I) with N=10: crossing at I = 5.5 -> pairs cross.
        common = loops(("I", 1, 10))
        a = Ref("A", (Affine.var("I"),))
        b = Ref("A", (Affine.build({"I": -1}, 11),))
        vecs = analyze_ref_pair(a, b, common)
        dirs = {v.components[0] for v in vecs}
        assert "<" in dirs and ">" in dirs

    def test_weak_crossing_no_integer_solution(self):
        # A(2I) vs A(21-2I): 2i' = 21 - 2i has no integer solution.
        common = loops(("I", 1, 10))
        a = Ref("A", (Affine.var("I", 2),))
        b = Ref("A", (Affine.build({"I": -2}, 21),))
        assert analyze_ref_pair(a, b, common) == []

    def test_strided_loop_distance(self):
        # DO I = 1, 20, 2: A(I) vs A(I-4) -> 2 iterations apart.
        strided = [Loop.make("I", 1, 20, [], step=2)]
        vecs = analyze_ref_pair(Ref.make("A", "I"), Ref.make("A", "I-4"), strided)
        assert vecs == [DepVector.of(2)]

    def test_strided_loop_off_grid(self):
        # A(I) vs A(I-3) with step 2: odd offset never lands on the grid.
        strided = [Loop.make("I", 1, 20, [], step=2)]
        assert analyze_ref_pair(Ref.make("A", "I"), Ref.make("A", "I-3"), strided) == []

    def test_triangular_lower_bound_value_space(self):
        # lb depends NEGATIVELY on the outer var: the value-space vectors
        # must not be skewed by the bound (the soundness bug the skewing
        # work exposed).
        outer = Loop.make("I", 1, 8, [])
        inner = Loop.make("J", Affine.build({"I": -1}, 10), 20, [])
        vecs = analyze_ref_pair(
            Ref.make("A", "I", "J"), Ref.make("A", "I-1", "J+1"), [outer, inner]
        )
        assert vecs == [DepVector.of(1, -1)]
