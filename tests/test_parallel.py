"""Tests for the loop-parallelism analysis and the §5.7 trade-off."""

import pytest

from repro.dependence import carried_levels, is_vectorizable, parallel_loops
from repro.exec import Machine, simulate
from repro.cache import CACHE2
from repro.frontend import parse_program
from repro.model import CostModel
from repro.suite import build_app, cholesky, jacobi, matmul
from repro.transforms import compound


class TestParallelLoops:
    def test_jacobi_fully_parallel(self):
        nest = jacobi(12).top_loops[0]
        assert sorted(parallel_loops(nest)) == ["I", "J"]
        assert is_vectorizable(nest)

    def test_matmul_reduction_carried(self):
        nest = matmul(8, "IJK").top_loops[0]
        carried = carried_levels(nest)
        # The K reduction on C(I,J) is carried by K; I and J are parallel.
        assert carried["K"]
        assert not carried["I"] and not carried["J"]

    def test_cholesky_all_carried(self):
        nest = cholesky(8, "KIJ").top_loops[0]
        carried = carried_levels(nest)
        assert carried["K"]

    def test_stencil_recurrence(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 10
            REAL A(N)
            DO I = 2, N
              A(I) = A(I-1) * 0.5
            ENDDO
            END
            """
        )
        assert parallel_loops(prog.top_loops[0]) == []
        assert not is_vectorizable(prog.top_loops[0])

    def test_scalar_reduction_blocks_all(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 10
            REAL A(N,N)
            DO I = 1, N
              DO J = 1, N
                S = S + A(J,I)
              ENDDO
            ENDDO
            END
            """
        )
        assert parallel_loops(prog.top_loops[0]) == []


class TestSimpleTradeoff:
    """The §5.7 'Simple' story: the compiler trades inner-loop
    vectorizability for locality, and wins on cache behaviour."""

    def test_compound_moves_recurrence_inward(self):
        prog = build_app("simple_like", 32)
        nest = prog.top_loops[0]
        # Original: recurrence carried by the OUTER loop (vector form).
        assert is_vectorizable(nest)
        outcome = compound(prog, CostModel(cls=4))
        new_nest = outcome.program.top_loops[0]
        # After optimization the recurrence runs innermost...
        assert not is_vectorizable(new_nest)
        # ...and the cache behaviour improves.
        machine = Machine(cache=CACHE2, miss_penalty=20)
        before = simulate(prog, machine)
        after = simulate(outcome.program, machine)
        assert after.cycles < before.cycles
