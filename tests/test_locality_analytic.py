"""Tests for the analytic locality predictor (repro.locality.analytic)."""

import textwrap

import pytest

from repro.cache.reuse import reuse_profile
from repro.frontend import parse_program
from repro.locality import predict_locality
from repro.locality.polysum import PolySumError, chain_count
from repro.suite import get_entry


def program_from(text: str):
    return parse_program(textwrap.dedent(text))


class TestExactPath:
    def probe(self, source, line=8):
        program = program_from(source)
        prediction = predict_locality(program, line=line)
        trace = reuse_profile(program, line=line)
        return program, prediction, trace

    def test_transpose_is_exact_at_element_granularity(self):
        _, prediction, trace = self.probe(
            """
            PROGRAM p
            PARAMETER N = 12
            REAL A(N,N), B(N,N)
            DO I = 1, N
              DO J = 1, N
                B(I,J) = A(J,I)
              ENDDO
            ENDDO
            END
            """
        )
        assert prediction.exact
        assert dict(prediction.predicted_histogram()) == dict(trace.histogram)

    def test_repeated_identical_subscripts_stay_exact(self):
        _, prediction, trace = self.probe(
            """
            PROGRAM p
            PARAMETER N = 9
            REAL A(N,N)
            DO I = 1, N
              DO J = 1, N
                A(I,J) = A(I,J) + 2.0
              ENDDO
            ENDDO
            END
            """
        )
        assert prediction.exact
        assert dict(prediction.predicted_histogram()) == dict(trace.histogram)

    def test_partially_invariant_slot_leaves_exact_class(self):
        # A(I,K) under (I,J,K) is invariant in J but varies inside the J
        # window: out of the exact class, served by the model path.
        _, prediction, trace = self.probe(
            """
            PROGRAM p
            PARAMETER N = 12
            REAL A(N,N), B(N,N), C(N,N)
            DO I = 1, N
              DO J = 1, N
                DO K = 1, N
                  C(I,J) = C(I,J) + A(I,K)*B(K,J)
                ENDDO
              ENDDO
            ENDDO
            END
            """
        )
        assert not prediction.exact
        assert prediction.accesses == trace.accesses

    def test_wide_lines_fall_back_to_model_path(self):
        program = program_from(
            """
            PROGRAM p
            PARAMETER N = 16
            REAL A(N,N)
            DO I = 1, N
              DO J = 1, N
                A(I,J) = 1.0
              ENDDO
            ENDDO
            END
            """
        )
        prediction = predict_locality(program, line=64)
        assert not prediction.exact


class TestModelPath:
    # adi/erlebacher stay gated — by the slow lane here and by
    # bench_locality --quick in CI — but off tier-1's clock.
    @pytest.mark.parametrize(
        "name,n",
        [("jacobi", 65),
         pytest.param("adi", 49, marks=pytest.mark.slow),
         pytest.param("erlebacher_like", 17, marks=pytest.mark.slow),
         ("cholesky", 41), ("transpose", 97)],
    )
    @pytest.mark.parametrize("line,capacity", [(128, 512), (32, 256)])
    def test_gate_kernels_within_two_points(self, name, n, line, capacity):
        program = get_entry(name).program(n)
        trace = reuse_profile(program, line=line)
        prediction = predict_locality(program, line=line)
        assert prediction.hit_rate_for_capacity(capacity) == pytest.approx(
            trace.hit_rate_for_capacity(capacity), abs=0.02
        )

    def test_access_counts_match_trace(self):
        program = get_entry("cholesky").program(25)
        trace = reuse_profile(program, line=32)
        prediction = predict_locality(program, line=32)
        assert prediction.accesses == trace.accesses

    def test_by_kind_partitions_reuse(self):
        program = get_entry("jacobi").program(33)
        prediction = predict_locality(program, line=64)
        kinds = prediction.by_kind()
        assert kinds  # at least one reuse class
        assert sum(kinds.values()) == prediction.accesses
        assert kinds.get("cold") == prediction.cold
        assert set(kinds) <= {
            "intra", "group", "temporal", "spatial", "sequential", "cold"
        }


class TestPredictionApi:
    def test_degenerate_all_cold_hit_rate_is_one(self):
        # Convention shared with ReuseProfile: an empty warm denominator
        # reads as a perfect warm hit rate.
        program = program_from(
            """
            PROGRAM p
            REAL A(4)
            DO I = 1, 4
              A(I) = 0.0
            ENDDO
            END
            """
        )
        prediction = predict_locality(program, line=8)
        assert prediction.cold == prediction.accesses
        assert prediction.hit_rate_for_capacity(16) == 1.0

    def test_set_assoc_bounded_by_fully_associative(self):
        program = get_entry("matmul").program(24)
        prediction = predict_locality(program, line=64)
        fa = prediction.hit_rate_for_capacity(512)
        sa = prediction.hit_rate_set_assoc(sets=128, assoc=4)
        assert 0.0 <= sa <= fa + 1e-9

    def test_include_cold_rate_never_higher(self):
        program = get_entry("jacobi").program(33)
        prediction = predict_locality(program, line=64)
        for capacity in (16, 128, 1024):
            assert prediction.hit_rate_for_capacity(
                capacity, include_cold=True
            ) <= prediction.hit_rate_for_capacity(capacity) + 1e-12


class TestPolysum:
    def test_rectangular_chain_count(self):
        program = program_from(
            """
            PROGRAM p
            PARAMETER N = 7
            REAL A(N,N)
            DO I = 1, N
              DO J = 2, N
                A(I,J) = 0.0
              ENDDO
            ENDDO
            END
            """
        )
        loops = program.body[0].perfect_nest_loops()
        assert chain_count(loops, {"N": 7}) == 7 * 6

    def test_triangular_chain_count(self):
        program = program_from(
            """
            PROGRAM p
            PARAMETER N = 9
            REAL A(N,N)
            DO I = 1, N
              DO J = I, N
                A(I,J) = 0.0
              ENDDO
            ENDDO
            END
            """
        )
        loops = program.body[0].perfect_nest_loops()
        want = sum(9 - i + 1 for i in range(1, 10))
        assert chain_count(loops, {"N": 9}) == want
