"""Tests for the random loop-nest generator (repro.verify.gennest)."""

import random

import pytest

from repro.exec.interp import Interpreter
from repro.frontend import parse_program
from repro.ir import pretty_program
from repro.ir.nodes import Loop
from repro.ir.visit import iter_loops
from repro.verify.gennest import DEFAULT_CONFIG, GenConfig, generate_program
from repro.verify.shrink import program_in_bounds

from repro.seeds import seed_sequence

SEEDS = seed_sequence(60, "gennest")


def _gen(seed, config=DEFAULT_CONFIG):
    return generate_program(random.Random(seed), config, name=f"T{seed}")


class TestDeterminism:
    def test_same_seed_same_program(self):
        for seed in SEEDS:
            a = pretty_program(_gen(seed))
            b = pretty_program(_gen(seed))
            assert a == b

    def test_different_seeds_differ_somewhere(self):
        texts = {pretty_program(_gen(seed)) for seed in SEEDS}
        assert len(texts) > 1


class TestWellFormedness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_in_bounds_and_interpretable(self, seed):
        program = _gen(seed)
        assert program_in_bounds(program)
        arrays = Interpreter(program, check_values=False).run()
        assert arrays  # at least one declared array survived

    @pytest.mark.parametrize("seed", seed_sequence(25, "gennest-pretty"))
    def test_pretty_output_reparses(self, seed):
        program = _gen(seed)
        text = pretty_program(program)
        reparsed = parse_program(text)
        # The parser normalizes the program name's case and renames
        # duplicate sibling loop variables, so compare semantics: the
        # final array state must be identical.
        original = Interpreter(program, check_values=False).run()
        roundtrip = Interpreter(reparsed, check_values=False).run()
        assert set(original) == set(roundtrip)
        for name, arr in original.items():
            assert arr.tobytes() == roundtrip[name].tobytes()

    def test_depth_respects_config(self):
        config = GenConfig(max_depth=2, p_second_nest=0.0)
        for seed in SEEDS:
            program = _gen(seed, config)
            for item in program.body:
                assert isinstance(item, Loop)
                assert item.depth <= 2


class TestShapeKnobs:
    def test_negative_steps_appear_when_forced(self):
        config = GenConfig(p_negative_step=1.0)
        program = _gen(3, config)
        steps = [loop.step for loop in iter_loops(program)]
        assert -1 in steps

    def test_triangular_bounds_appear(self):
        config = GenConfig(p_triangular=1.0, p_negative_step=0.0, p_step2=0.0)
        found = False
        for seed in SEEDS:
            program = _gen(seed, config)
            for loop in iter_loops(program):
                if not loop.lb.is_constant() or not loop.ub.is_constant():
                    found = True
        assert found

    def test_rectangular_only_when_disabled(self):
        config = GenConfig(
            p_triangular=0.0, p_negative_step=0.0, p_step2=0.0
        )
        for seed in seed_sequence(20, "gennest-shrink"):
            program = _gen(seed, config)
            for loop in iter_loops(program):
                assert loop.step == 1
                assert loop.lb.is_constant() and loop.ub.is_constant()

    def test_scalar_temporary_declared_when_used(self):
        config = GenConfig(p_scalar=0.9)
        program = _gen(1, config)
        names = {decl.name for decl in program.arrays}
        if any(
            ref.array == "S"
            for stmt in program.statements
            for ref in stmt.refs
        ):
            assert "S" in names
