"""Tests for the ProgramBuilder DSL, IR nodes, and pretty printer."""

import pytest

from repro.errors import IRError, NonAffineError
from repro.ir import (
    Affine,
    Assign,
    Loop,
    Program,
    ProgramBuilder,
    Ref,
    enclosing_loops,
    iter_loops,
    iter_statements,
    pretty_program,
    validate_program,
)


def build_matmul(n=512):
    b = ProgramBuilder("matmul")
    N = b.param("N", n)
    I, J, K = b.indices("I", "J", "K")
    A = b.array("A", (N, N))
    B = b.array("B", (N, N))
    C = b.array("C", (N, N))
    with b.loop(J, 1, N):
        with b.loop(K, 1, N):
            with b.loop(I, 1, N):
                b.assign(C[I, J], C[I, J] + A[I, K] * B[K, J])
    return b.build()


class TestBuilder:
    def test_matmul_shape(self):
        prog = build_matmul()
        assert prog.name == "matmul"
        assert prog.param_env == {"N": 512}
        loops = list(iter_loops(prog))
        assert [l.var for l in loops] == ["J", "K", "I"]
        stmts = list(iter_statements(prog))
        assert len(stmts) == 1
        assert stmts[0].sid == 0
        assert stmts[0].lhs == Ref.make("C", "I", "J")

    def test_refs_order_writes_first(self):
        stmt = build_matmul().statements[0]
        arrays = [r.array for r in stmt.refs]
        assert arrays == ["C", "C", "A", "B"]

    def test_duplicate_param_rejected(self):
        b = ProgramBuilder("p")
        b.param("N", 4)
        with pytest.raises(IRError):
            b.param("N", 8)

    def test_duplicate_array_rejected(self):
        b = ProgramBuilder("p")
        b.array("A", (4,))
        with pytest.raises(IRError):
            b.array("A", (4,))

    def test_builder_single_use(self):
        b = ProgramBuilder("p")
        b.build()
        with pytest.raises(IRError):
            b.build()

    def test_index_arithmetic_in_subscripts(self):
        b = ProgramBuilder("p")
        N = b.param("N", 8)
        (I,) = b.indices("I")
        A = b.array("A", (N,))
        B = b.array("B", (N,))
        with b.loop(I, 2, N - 1):
            b.assign(A[I], B[I - 1] + B[I + 1] + B[2 * I - 2])
        prog = b.build()
        reads = prog.statements[0].reads
        assert [str(r.subs[0]) for r in reads] == ["I-1", "I+1", "2*I-2"]

    def test_nonlinear_subscript_rejected(self):
        b = ProgramBuilder("p")
        I, J = b.indices("I", "J")
        with pytest.raises(NonAffineError):
            _ = I * J

    def test_scalar_handle(self):
        b = ProgramBuilder("p")
        s = b.scalar("S")
        b.assign(s.scalar, 1.0)
        prog = b.build()
        assert prog.statements[0].lhs.rank == 0


class TestLoopQueries:
    def test_trip_count(self):
        loop = Loop.make("I", 1, "N", [])
        assert loop.trip_count({"N": 10}) == 10
        assert loop.trip_count({"N": 0}) == 0

    def test_trip_count_with_step(self):
        loop = Loop.make("I", 1, 10, [], step=3)
        assert loop.trip_count({}) == 4  # 1,4,7,10
        assert list(loop.iter_values({})) == [1, 4, 7, 10]

    def test_negative_step(self):
        loop = Loop.make("I", 10, 1, [], step=-1)
        assert loop.trip_count({}) == 10
        assert list(loop.iter_values({})) == list(range(10, 0, -1))

    def test_zero_step_rejected(self):
        with pytest.raises(IRError):
            Loop.make("I", 1, 10, [], step=0)

    def test_perfect_nest_detection(self):
        prog = build_matmul()
        top = prog.top_loops[0]
        assert top.is_perfect_nest()
        chain = top.perfect_nest_loops()
        assert [l.var for l in chain] == ["J", "K", "I"]
        assert top.depth == 3

    def test_imperfect_nest_detection(self):
        b = ProgramBuilder("p")
        N = b.param("N", 4)
        I, J = b.indices("I", "J")
        A = b.array("A", (N, N))
        with b.loop(I, 1, N):
            b.assign(A[I, 1], 0.0)
            with b.loop(J, 1, N):
                b.assign(A[I, J], 1.0)
        prog = b.build()
        top = prog.top_loops[0]
        assert not top.is_perfect_nest()
        assert top.perfect_nest_loops() == (top,)

    def test_enclosing_loops(self):
        prog = build_matmul()
        chains = enclosing_loops(prog)
        assert [l.var for l in chains[0]] == ["J", "K", "I"]


class TestValidation:
    def test_undeclared_array(self):
        prog = Program.make(
            "p",
            [Assign(Ref.make("A", "I"), Ref.make("A", "I"))],
        )
        with pytest.raises(IRError):
            validate_program(prog)

    def test_rank_mismatch(self):
        b = ProgramBuilder("p")
        N = b.param("N", 4)
        (I,) = b.indices("I")
        A = b.array("A", (N, N))
        with b.loop(I, 1, N):
            b.assign(A[I, I], 0.0)
        prog = b.build()
        bad = prog.with_body(
            [prog.top_loops[0].with_body([Assign(Ref.make("A", "I"), A[I, I].subs and A[I, I], sid=0)])]
        )
        with pytest.raises(IRError):
            validate_program(bad)

    def test_out_of_scope_index(self):
        b = ProgramBuilder("p")
        N = b.param("N", 4)
        I, J = b.indices("I", "J")
        A = b.array("A", (N,))
        with b.loop(I, 1, N):
            b.assign(A[J], 0.0)  # J not in scope
        with pytest.raises(IRError):
            b.build()

    def test_shadowed_index(self):
        inner = Loop.make("I", 1, 4, [])
        outer = Loop.make("I", 1, 4, [inner])
        prog = Program.make("p", [outer])
        with pytest.raises(IRError):
            validate_program(prog)


class TestPretty:
    def test_matmul_pretty(self):
        text = pretty_program(build_matmul())
        assert "PROGRAM matmul" in text
        assert "DO J = 1, N" in text
        assert "C(I, J) = (C(I, J) + (A(I, K) * B(K, J)))" in text
        assert text.count("ENDDO") == 3

    def test_step_printed(self):
        loop = Loop.make("I", 1, 10, [], step=2)
        prog = Program.make("p", [loop])
        assert "DO I = 1, 10, 2" in pretty_program(prog)
