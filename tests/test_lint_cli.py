"""End-to-end tests for `python -m repro lint` (subprocess level)."""

import json
import subprocess
import sys

import pytest

PESSIMAL_MATMUL = """\
PROGRAM demo
PARAMETER N = 16
REAL A(N,N), B(N,N), C(N,N)
DO K = 1, N
  DO I = 1, N
    DO J = 1, N
      C(I,J) = C(I,J) + A(I,K)*B(K,J)
    ENDDO
  ENDDO
ENDDO
END
"""

GOOD_MATMUL = PESSIMAL_MATMUL.replace(
    "DO K = 1, N\n  DO I = 1, N\n    DO J = 1, N",
    "DO J = 1, N\n  DO K = 1, N\n    DO I = 1, N",
)

# Structural subset of the SARIF 2.1.0 schema: the full OASIS schema is
# not vendored, so the test pins the invariants our consumers (GitHub
# code scanning, tools/check_sarif.py) rely on.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message", "level"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def run_lint(*args, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True,
        text=True,
        **kwargs,
    )


@pytest.fixture
def pessimal(tmp_path):
    path = tmp_path / "pessimal.f"
    path.write_text(PESSIMAL_MATMUL)
    return str(path)


@pytest.fixture
def good(tmp_path):
    path = tmp_path / "good.f"
    path.write_text(GOOD_MATMUL)
    return str(path)


class TestLintCLI:
    def test_text_report(self, pessimal):
        proc = run_lint(pessimal, "--line", "64", "--capacity", "16")
        assert proc.returncode == 0
        assert "[loop-order]" in proc.stdout
        assert "fix-it (permute, verified)" in proc.stdout
        assert f"{pessimal}:4:1:" in proc.stdout

    def test_json_report(self, pessimal):
        proc = run_lint(pessimal, "--format", "json")
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert payload["path"] == pessimal
        assert any(d["check_id"] == "LOC002" for d in payload["diagnostics"])

    def test_multiple_files_json_is_array(self, pessimal, good):
        proc = run_lint(pessimal, good, "--format", "json", "--no-verify")
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert isinstance(payload, list) and len(payload) == 2

    def test_sarif_validates_against_schema(self, pessimal, good, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        out = tmp_path / "lint.sarif"
        proc = run_lint(
            pessimal, good, "--sarif", str(out), "--line", "64",
            "--capacity", "16",
        )
        assert proc.returncode == 0
        log = json.loads(out.read_text())
        jsonschema.validate(log, SARIF_SUBSET_SCHEMA)
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert len(run["tool"]["driver"]["rules"]) == 6
        uris = {
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            for r in run["results"]
        }
        assert pessimal in uris

    def test_fix_prints_fixed_program(self, pessimal):
        proc = run_lint(pessimal, "--fix", "--line", "64", "--capacity", "16")
        assert proc.returncode == 0
        do_lines = [
            l.strip() for l in proc.stdout.splitlines() if l.strip().startswith("DO")
        ]
        assert do_lines[0].startswith("DO J")
        assert do_lines[-1].startswith("DO I")
        assert "applied permute" in proc.stderr

    def test_fix_writes_output_file(self, pessimal, tmp_path):
        out = tmp_path / "fixed.f"
        proc = run_lint(pessimal, "--fix", "-o", str(out))
        assert proc.returncode == 0
        assert "DO J" in out.read_text()

    def test_checks_selection(self, pessimal):
        proc = run_lint(pessimal, "--checks", "stride", "--no-verify")
        assert proc.returncode == 0
        assert "[stride]" in proc.stdout
        assert "[loop-order]" not in proc.stdout

    def test_parse_error_exits_one_with_caret(self, tmp_path):
        bad = tmp_path / "bad.f"
        bad.write_text("PROGRAM x\nREAL A(4)\nDO I = 1, 4\nEND\n")
        proc = run_lint(str(bad))
        assert proc.returncode == 1
        assert "missing ENDDO" in proc.stderr
        assert "^" in proc.stderr

    def test_usage_errors(self, pessimal, good):
        assert run_lint().returncode == 2
        assert run_lint(pessimal, "--format", "yaml").returncode == 2
        assert run_lint(pessimal, good, "--fix").returncode == 2
        assert run_lint(pessimal, "--fix", "--no-verify").returncode == 2
        assert run_lint(pessimal, "--bogus").returncode == 2

    def test_clean_program_quiet_checks(self, good):
        proc = run_lint(good, "--checks", "LOC001,LOC002", "--no-verify")
        assert proc.returncode == 0
        assert "0 error" in proc.stdout


class TestSarifGate:
    """tools/check_sarif.py: the CI gate over the SARIF artifact."""

    TOOL = [sys.executable, "tools/check_sarif.py"]

    def _run(self, path):
        import os

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        return subprocess.run(
            [*self.TOOL, str(path)], capture_output=True, text=True, cwd=root
        )

    def test_passes_on_real_log(self, pessimal, tmp_path):
        out = tmp_path / "lint.sarif"
        assert run_lint(pessimal, "--sarif", str(out)).returncode == 0
        proc = self._run(out)
        assert proc.returncode == 0, proc.stderr
        assert "clean" in proc.stdout

    def test_fails_on_unverified_fixit_error(self, pessimal, tmp_path):
        out = tmp_path / "lint.sarif"
        run_lint(pessimal, "--sarif", str(out))
        log = json.loads(out.read_text())
        result = log["runs"][0]["results"][0]
        result["level"] = "error"
        result["properties"]["fixit"] = {
            "transform": "permute",
            "verified": False,
            "verification": "state-mismatch: C",
        }
        out.write_text(json.dumps(log))
        proc = self._run(out)
        assert proc.returncode == 1
        assert "failed verification" in proc.stderr

    def test_fails_on_malformed_log(self, tmp_path):
        out = tmp_path / "broken.sarif"
        out.write_text(json.dumps({"version": "1.0.0", "runs": []}))
        assert self._run(out).returncode == 1
