"""Tests for the execution-equivalence oracles (repro.verify.oracles).

Includes the mutation smoke test required by the verification subsystem:
a deliberately broken legality check must be caught by the fuzzer, and
the shrunken reproduction must stay under 10 pretty-printed lines.
"""

from unittest import mock

import pytest

from repro.errors import TransformError
from repro.frontend import parse_program
from repro.ir import pretty_program
from repro.model import CostModel
from repro.transforms.unroll_jam import unroll_and_jam
from repro.verify.oracles import (
    Trial,
    check_trial,
    run_state,
    transform_trials,
)
from repro.verify.runner import run_fuzz

MATMUL = """
PROGRAM MM
REAL A(6,6), B(6,6), C(6,6)
DO I = 1, 6
  DO J = 1, 6
    DO K = 1, 6
      C(I,J) = C(I,J) + A(I,K)*B(K,J)
    ENDDO
  ENDDO
ENDDO
END
"""

RECURRENCE = """
PROGRAM REC
REAL A(8,8)
DO I = 2, 6
  DO J = 2, 6
    A(I,J) = A(I-1,J) + A(I,J-1)
  ENDDO
ENDDO
END
"""


class TestTransformTrials:
    def test_matmul_trials_cover_the_pipeline(self):
        program = parse_program(MATMUL)
        trials = transform_trials(program, CostModel())
        kinds = {t.transform for t in trials}
        assert {"permute", "reversal", "tiling", "unroll-jam", "compound"} <= kinds

    def test_accepted_trials_preserve_output(self):
        program = parse_program(MATMUL)
        base = run_state(program)
        for trial in transform_trials(program, CostModel()):
            result = check_trial(base, trial)
            assert not result.is_failure, (
                f"{trial.transform} {trial.detail} admitted by "
                f"{trial.reason} changed output: {result.differing or result.crashed}"
            )

    def test_recurrence_rejects_interchange(self):
        # A(I,J) = A(I-1,J) + A(I,J-1) has dependences (1,0) and (0,1):
        # every permutation keeps them lexicographically positive, but
        # reversal of either loop is illegal and must be rejected.
        program = parse_program(RECURRENCE)
        trials = transform_trials(program, CostModel())
        reversals = [t for t in trials if t.transform == "reversal"]
        assert reversals and all(not t.accepted for t in reversals)
        base = run_state(program)
        for trial in reversals:
            result = check_trial(base, trial)
            # The oracle confirms the rejection was warranted.
            assert not result.equal

    def test_trial_ordering_is_deterministic(self):
        program = parse_program(MATMUL)
        a = [(t.transform, t.detail) for t in transform_trials(program)]
        b = [(t.transform, t.detail) for t in transform_trials(program)]
        assert a == b


class TestCheckTrial:
    def test_crash_of_accepted_trial_is_failure(self):
        program = parse_program(MATMUL)
        broken = parse_program(
            """
PROGRAM MM
REAL A(2)
DO I = 1, 5
  A(I) = 1
ENDDO
END
"""
        )
        base = run_state(program)
        trial = Trial("permute", "x", accepted=True, reason="r", program=broken)
        result = check_trial(base, trial)
        assert result.is_failure and result.crashed

    def test_compare_restricts_arrays(self):
        program = parse_program(MATMUL)
        base = run_state(program)
        trial = Trial(
            "scalar-replace",
            "x",
            accepted=True,
            reason="r",
            program=program,
            compare=("C",),
        )
        assert check_trial(base, trial).equal


class TestUnrollJamTriangularGuard:
    TRIANGULAR = """
PROGRAM TRI
REAL B(8, 16)
DO I = 1, 6
  DO J = 1, I+1
    B(I+1, I+J-1) = 2
  ENDDO
ENDDO
END
"""

    def test_rejected_even_without_legality_check(self):
        # Jamming substitutes the outer var in statements but not in
        # inner loop headers, so a triangular nest would execute the
        # wrong inner range — the guard is mechanical, not a dependence
        # question, and fires regardless of check=.
        nest = parse_program(self.TRIANGULAR).body[0]
        with pytest.raises(TransformError, match="triangular"):
            unroll_and_jam(nest, 2)
        with pytest.raises(TransformError, match="triangular"):
            unroll_and_jam(nest, 2, check=False)

    def test_rectangular_nest_still_jams(self):
        nest = parse_program(MATMUL).body[0]
        jammed = unroll_and_jam(nest, 2)
        assert jammed.step == 2


class TestMutationSmoke:
    def test_broken_legality_is_caught_with_small_repro(self):
        # Sabotage the permutation/reversal legality check: everything
        # is declared legal. The fuzzer must catch an admitted transform
        # that changes program output, and the shrunken repro must be
        # under 10 pretty-printed lines.
        with mock.patch(
            "repro.transforms.legality.order_is_legal",
            lambda *args, **kwargs: True,
        ):
            report = run_fuzz(10, seed=0, shrink=True, max_failures=1)
        assert not report.ok
        failure = report.failures[0]
        assert failure.kind == "transform"
        assert failure.transform in ("permute", "reversal")
        assert failure.reason in ("order-legal", "reversal-legal")
        shrunk = failure.shrunk if failure.shrunk is not None else failure.program
        lines = pretty_program(shrunk).strip().splitlines()
        assert len(lines) < 10
        # The repro script names the admitting legality slug.
        assert f"admitted-by={failure.reason}" in failure.repro_script()

    def test_intact_legality_passes_quick(self):
        report = run_fuzz(4, seed=0)
        assert report.ok, [f.repro_script() for f in report.failures]

    @pytest.mark.slow
    def test_intact_legality_passes_same_cases(self):
        report = run_fuzz(10, seed=0)
        assert report.ok, [f.repro_script() for f in report.failures]
        assert report.trials > 0 and report.accepted > 0
