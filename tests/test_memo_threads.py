"""MemoCache concurrency: counter conservation under thread hammering.

The compile server shares one result cache (and the oracle memo caches)
across executor threads, so the counters must be exact under concurrent
access: every counted lookup is exactly one hit or one miss
(``hits + misses == lookups``), evictions never tear, and the data dict
never loses structure mid-``move_to_end``. This is the regression test
for the lock added alongside ``repro.server`` — before it, the bare
``+= 1`` counters and the OrderedDict recency shuffle both raced.
"""

import threading

import pytest

from repro.model.memo import MemoCache

pytestmark = pytest.mark.tier1

THREADS = 8
LOOKUPS_PER_THREAD = 2_000


def _hammer(cache: MemoCache, thread_index: int, counted: list) -> None:
    lookups = 0
    for i in range(LOOKUPS_PER_THREAD):
        key = (i * 7 + thread_index) % 97
        value = cache.get(key)
        lookups += 1
        if value is None:
            cache.put(key, key * 2)
        if i % 17 == 0:
            cache.peek(key)  # uncounted: must not disturb conservation
    counted[thread_index] = lookups


class TestMemoCacheThreads:
    def test_counter_conservation_under_hammering(self):
        cache = MemoCache("test.threads", cap=64, register=False)
        counted = [0] * THREADS
        threads = [
            threading.Thread(target=_hammer, args=(cache, t, counted))
            for t in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        lookups = sum(counted)
        assert lookups == THREADS * LOOKUPS_PER_THREAD
        # The conservation law: every counted lookup was exactly one hit
        # or one miss — no update lost, none double-counted.
        assert cache.hits + cache.misses == lookups
        assert cache.misses > 0  # cold start guarantees some misses
        assert cache.hits > 0  # 97 keys over a 64-cap cache still re-hit
        assert len(cache) <= cache.cap
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == lookups
        assert stats["size"] == len(cache)

    def test_eviction_accounting_under_hammering(self):
        cache = MemoCache("test.threads.evict", cap=8, register=False)
        barrier = threading.Barrier(THREADS)

        def writer(thread_index: int) -> None:
            barrier.wait()
            for i in range(500):
                cache.put((thread_index, i), i)

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # inserts - evictions == live entries, exactly.
        inserted = THREADS * 500
        assert inserted - cache.evictions == len(cache)
        assert len(cache) <= cache.cap
