"""Tests for the brute-force dependence oracle (repro.verify.depforce).

Includes the regression for the read-before-write slot ordering bug: the
oracle must locate the write slot by consulting ``Assign.lhs`` (object
identity), not by assuming the write occupies slot 0 of ``refs``, and it
must fire reads before the write within one statement instance.
"""

from types import SimpleNamespace

from repro.dependence import region_dependences
from repro.frontend import parse_program
from repro.verify.depforce import (
    Access,
    analysis_covers,
    brute_force_dependences,
    enumerate_accesses,
    _ordered_slots,
)


def _program(text):
    return parse_program(text)


class TestOrderedSlots:
    def test_write_slot_found_by_lhs_identity(self):
        program = _program(
            """
PROGRAM P
REAL A(10)
DO I = 1, 5
  A(I) = A(I) + 1
ENDDO
END
"""
        )
        stmt = program.body[0].body[0]
        order = _ordered_slots(stmt)
        # The write fires last; it is the slot holding the lhs object.
        slots = [slot for slot, _ in order]
        flags = [is_write for _, is_write in order]
        assert flags == [False, True]
        assert stmt.refs[slots[-1]] is stmt.lhs

    def test_write_not_assumed_at_slot_zero(self):
        # A node whose refs tuple puts the write LAST: a slot-0 assumption
        # would misclassify the read as the write.
        program = _program(
            """
PROGRAM P
REAL A(10)
DO I = 1, 5
  A(I) = A(I) + 1
ENDDO
END
"""
        )
        stmt = program.body[0].body[0]
        reordered = SimpleNamespace(
            lhs=stmt.lhs, refs=tuple(reversed(stmt.refs)), sid=stmt.sid
        )
        order = _ordered_slots(reordered)
        write_slots = [slot for slot, is_write in order if is_write]
        assert len(write_slots) == 1
        assert reordered.refs[write_slots[0]] is reordered.lhs
        # And the write still fires last.
        assert order[-1][1] is True


class TestReadBeforeWrite:
    def test_self_update_is_anti_not_flow(self):
        # A(I) = A(I) + 1: within one instance the read precedes the
        # write, so each location carries an anti dependence at distance
        # 0 (read slot 1 -> write slot 0) and NO same-instance flow.
        program = _program(
            """
PROGRAM P
REAL A(10)
DO I = 1, 5
  A(I) = A(I) + 1
ENDDO
END
"""
        )
        stmt = program.body[0].body[0]
        exact = brute_force_dependences(program, program.param_env)
        assert (stmt.sid, 1, stmt.sid, 0, (0,)) in exact  # anti, read->write
        assert (stmt.sid, 0, stmt.sid, 1, (0,)) not in exact  # no flow to self

    def test_recurrence_flow_distance_one(self):
        program = _program(
            """
PROGRAM P
REAL A(10)
DO I = 1, 5
  A(I+1) = A(I)
ENDDO
END
"""
        )
        stmt = program.body[0].body[0]
        exact = brute_force_dependences(program, program.param_env)
        assert (stmt.sid, 0, stmt.sid, 1, (1,)) in exact  # flow, dist 1

    def test_rhs_references_lhs_array_covered_by_analysis(self):
        # Regression driver for the satellite fix: the analysis must
        # cover the oracle on a statement whose RHS reads the LHS array.
        program = _program(
            """
PROGRAM P
REAL A(12)
DO I = 2, 10
  A(I) = A(I-1) + A(I+1)
ENDDO
END
"""
        )
        deps = region_dependences(program, include_inputs=True)
        exact = brute_force_dependences(
            program, program.param_env, include_inputs=True
        )
        assert analysis_covers(deps, exact) == []


class TestSiblingNests:
    SIBLINGS = """
PROGRAM P
REAL A(8), B(8)
DO I = 1, 4
  A(I) = 2
ENDDO
DO I = 1, 4
  B(I) = A(I)
ENDDO
END
"""

    def test_sibling_nests_share_no_loops(self):
        # Both nests use I, but the loops are different objects: the
        # cross-nest flow dependence has an EMPTY distance vector, not a
        # (0,) one a name-based match would produce.
        program = _program(self.SIBLINGS)
        s1 = program.body[0].body[0]
        s2 = program.body[1].body[0]
        exact = brute_force_dependences(program, program.param_env)
        assert (s1.sid, 0, s2.sid, 1, ()) in exact
        assert all(
            not (src == s1.sid and snk == s2.sid and dist == (0,))
            for src, _, snk, _, dist in exact
        )

    def test_sibling_nests_covered_by_analysis(self):
        program = _program(self.SIBLINGS)
        deps = region_dependences(program, include_inputs=True)
        exact = brute_force_dependences(
            program, program.param_env, include_inputs=True
        )
        assert analysis_covers(deps, exact) == []


class TestEnumerateAccesses:
    def test_execution_order_and_clock(self):
        program = _program(
            """
PROGRAM P
REAL A(4), B(4)
DO I = 1, 2
  A(I) = B(I)
ENDDO
END
"""
        )
        accesses = enumerate_accesses(program, program.param_env)
        times = [acc.time for _, _, acc in accesses]
        assert times == sorted(times)
        # Per iteration: read B(I) then write A(I).
        arrays = [array for array, _, _ in accesses]
        assert arrays == ["B", "A", "B", "A"]
        assert isinstance(accesses[0][2], Access)

    def test_negative_step_iterates_downward(self):
        program = _program(
            """
PROGRAM P
REAL A(6)
DO I = 5, 1, -1
  A(I) = 1
ENDDO
END
"""
        )
        accesses = enumerate_accesses(program, program.param_env)
        locations = [loc for _, loc, _ in accesses]
        assert locations == [(5,), (4,), (3,), (2,), (1,)]
