"""Unit tests for repro.lint: checks, engine policy, renderers, SARIF."""

import json

import pytest

from repro.frontend import parse_program
from repro.lint import (
    ERROR,
    NOTE,
    WARNING,
    Diagnostic,
    FixIt,
    checks_for,
    lint_program,
    registered_checks,
    render_json,
    render_text,
    sarif_log,
)
from repro.lint.engine import _verify_and_score
from repro.lint.registry import LintContext
from repro.suite import kernels


def source(body: str, arrays: str = "A(N,N), B(N,N), C(N,N)") -> str:
    return f"PROGRAM t\nPARAMETER N = 8\nREAL {arrays}\n{body}\nEND\n"


def ids(diags, check_id):
    return [d for d in diags if d.check_id == check_id]


class TestChecks:
    def test_stride_flags_pessimal_matmul(self):
        result = lint_program(kernels.matmul(8, "KIJ"), verify=False)
        stride = ids(result.diagnostics, "LOC001")
        assert {d.array for d in stride} == {"B", "C"}
        assert all(d.severity == WARNING for d in stride)

    def test_stride_quiet_on_memory_order(self):
        result = lint_program(kernels.matmul(8, "JKI"), verify=False)
        assert not ids(result.diagnostics, "LOC001")

    def test_loop_order_offers_permute_fixit(self):
        result = lint_program(kernels.matmul(8, "KIJ"), verify=False)
        order = ids(result.diagnostics, "LOC002")
        assert len(order) == 1
        fixit = order[0].fixit
        assert fixit is not None and fixit.transform == "permute"
        assert "J.K.I" in order[0].message

    def test_loop_order_quiet_in_memory_order(self):
        result = lint_program(kernels.matmul(8, "JKI"), verify=False)
        assert not ids(result.diagnostics, "LOC002")

    def test_fusion_candidate_gets_fixit(self):
        program = parse_program(source(
            "DO I = 1, N\n  A(I,1) = B(I,1) + 1\nENDDO\n"
            "DO I = 1, N\n  C(I,1) = A(I,1) * 2\nENDDO"
        ))
        result = lint_program(program, verify=False)
        fusion = ids(result.diagnostics, "LOC003")
        assert len(fusion) == 1
        assert fusion[0].fixit is not None
        assert fusion[0].fixit.transform == "fuse"

    def test_fusion_blocked_is_note(self):
        program = parse_program(source(
            "DO I = 2, N\n  B(I,1) = A(I-1,1)\nENDDO\n"
            "DO I = 2, N\n  A(I,1) = B(I,1)\nENDDO",
        ))
        result = lint_program(program, verify=False)
        fusion = ids(result.diagnostics, "LOC003")
        assert len(fusion) == 1
        assert fusion[0].severity == NOTE
        assert fusion[0].fixit is None
        assert "fusion-preventing" in fusion[0].message

    def test_race_reports_offending_pair(self):
        program = parse_program(source(
            "DO I = 2, N\n  DO J = 1, N\n    A(I,J) = A(I-1,J)\n  ENDDO\nENDDO"
        ))
        result = lint_program(program, verify=False)
        race = ids(result.diagnostics, "LOC004")
        assert len(race) == 1
        diag = race[0]
        assert diag.severity == NOTE
        assert diag.array == "A"
        assert "blocks DOALL" in diag.message
        assert "A(I, J)" in diag.message  # the offending dependence pair
        assert diag.data["parallel_loops"] == ["J"]

    def test_race_quiet_on_independent_nest(self):
        result = lint_program(kernels.transpose(8), verify=False)
        assert not ids(result.diagnostics, "LOC004")

    def test_scalar_replace_flags_invariant_ref(self):
        result = lint_program(kernels.matmul(8, "KIJ"), verify=False)
        scalar = ids(result.diagnostics, "LOC005")
        assert len(scalar) == 1
        assert scalar[0].array == "A"
        assert scalar[0].fixit is not None
        assert scalar[0].fixit.transform == "scalar-replace"

    def test_alias_hazard_from_gcd_lattice(self):
        program = parse_program(source(
            "DO I = 1, N\n  A(2*I, 1) = A(4*I, 1) + 1\nENDDO",
            arrays="A(64,64)",
        ))
        result = lint_program(program, verify=False)
        alias = ids(result.diagnostics, "LOC006")
        assert len(alias) == 1
        assert "may alias" in alias[0].message

    def test_alias_quiet_on_uniform_refs(self):
        # A(I,J) vs A(I-1,J): constant distance, provably no hazard.
        program = parse_program(source(
            "DO I = 2, N\n  DO J = 1, N\n    A(I,J) = A(I-1,J)\n  ENDDO\nENDDO"
        ))
        result = lint_program(program, verify=False)
        assert not ids(result.diagnostics, "LOC006")


class TestEngine:
    def test_verified_fixit_attached_with_scores(self):
        result = lint_program(kernels.matmul(8, "KIJ"), line=64, capacity=16)
        order = ids(result.diagnostics, "LOC002")[0]
        fixit = order.fixit
        assert fixit is not None
        assert fixit.verified
        assert fixit.verification == "oracle"
        assert fixit.miss_after < fixit.miss_before

    def test_failed_verification_escalates_to_error(self):
        # Hand the engine a fix-it whose program computes something else:
        # the oracle must reject it and the diagnostic must escalate.
        program = parse_program(source("DO I = 1, N\n  A(I,1) = B(I,1)\nENDDO"))
        wrong = parse_program(source("DO I = 1, N\n  A(I,1) = B(I,1) + 1\nENDDO"))
        ctx = LintContext(program, line=64, capacity=16)
        diag = Diagnostic(
            "LOC002", "loop-order", WARNING, "synthetic",
            fixit=FixIt("permute", "bogus rewrite", wrong),
        )
        out = _verify_and_score(ctx, diag, 0.5, 100)
        assert out.severity == ERROR
        assert "fix-it failed verification" in out.message
        assert out.fixit is not None and not out.fixit.verified
        assert out.fixit.verification.startswith("state-mismatch")

    def test_regressing_fixit_is_withheld(self):
        # A "repair" that permutes a memory-ordered matmul into KIJ is
        # equivalent but predicted to miss more: the engine must withhold.
        good = kernels.matmul(8, "JKI")
        bad = kernels.matmul(8, "KIJ")
        ctx = LintContext(good, line=64, capacity=16)
        diag = Diagnostic(
            "LOC002", "loop-order", WARNING, "synthetic",
            fixit=FixIt("permute", "pessimizing rewrite", bad),
        )
        from repro.lint.verifyfix import predicted_misses

        misses, accesses = predicted_misses(good, 64, 16)
        out = _verify_and_score(ctx, diag, misses / accesses, accesses)
        assert out.fixit is None
        assert out.data["fixit_withheld"] == "no-predicted-payoff"
        assert out.severity == WARNING

    def test_ranking_severity_then_payoff(self):
        result = lint_program(kernels.matmul(8, "KIJ"), line=64, capacity=16)
        ranks = [d.severity for d in result.diagnostics]
        assert ranks == sorted(ranks, key=lambda s: {"error": 0, "warning": 1, "note": 2}[s])
        warnings = [d for d in result.diagnostics if d.severity == WARNING]
        payoffs = [d.payoff for d in warnings]
        assert payoffs == sorted(payoffs, reverse=True)

    def test_counts_and_errors(self):
        result = lint_program(kernels.matmul(8, "KIJ"), verify=False)
        counts = result.counts()
        assert counts["warning"] >= 3
        assert result.errors == counts["error"] == 0

    def test_check_selection_by_id_and_name(self):
        program = kernels.matmul(8, "KIJ")
        by_id = lint_program(program, checks=("LOC001",), verify=False)
        by_name = lint_program(program, checks=("stride",), verify=False)
        assert by_id.checks_run == by_name.checks_run == ("LOC001",)
        assert {d.check_id for d in by_id.diagnostics} == {"LOC001"}

    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError, match="unknown lint check"):
            checks_for(("LOC999",))

    def test_registry_has_six_checks(self):
        assert sorted(registered_checks()) == [
            "LOC001", "LOC002", "LOC003", "LOC004", "LOC005", "LOC006",
        ]


class TestRenderers:
    def test_text_report_shape(self):
        result = lint_program(kernels.matmul(8, "KIJ"), line=64, capacity=16)
        text = render_text(result, path="k.f")
        assert "k.f" in text
        assert "[loop-order]" in text
        assert "fix-it (permute, verified)" in text
        assert "diagnostic(s)" in text.splitlines()[-1]

    def test_json_report_roundtrips(self):
        result = lint_program(kernels.matmul(8, "KIJ"), verify=False)
        payload = json.loads(render_json(result, path="k.f"))
        assert payload["path"] == "k.f"
        assert payload["counts"]["warning"] >= 3
        assert all("check_id" in d for d in payload["diagnostics"])

    def test_sarif_log_structure(self):
        result = lint_program(kernels.matmul(8, "KIJ"), line=64, capacity=16)
        log = sarif_log([(result, "k.f")])
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == sorted(registered_checks())
        for res in run["results"]:
            assert rules[res["ruleIndex"]]["id"] == res["ruleId"]
            assert res["level"] in ("error", "warning", "note")
            uri = res["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            assert uri == "k.f"

    def test_sarif_span_regions(self):
        program = parse_program(source("DO I = 1, N\n  A(I,1) = B(1,I)\nENDDO"))
        result = lint_program(program, verify=False)
        log = sarif_log([(result, "t.f")])
        regions = [
            r["locations"][0]["physicalLocation"].get("region")
            for r in log["runs"][0]["results"]
        ]
        assert any(r and r["startLine"] >= 4 for r in regions)
