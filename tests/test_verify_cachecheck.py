"""Tests for the cache-engine differential check (repro.verify.cachecheck)."""

import random

import pytest

from repro.seeds import seed_sequence
from repro.cache.cache import CacheConfig
from repro.verify.cachecheck import (
    check_cache_pair,
    check_hierarchy_pair,
    random_config,
    random_stream,
    run_cache_check,
)


class TestGenerators:
    @pytest.mark.parametrize("seed", seed_sequence(30, "cachecheck-config"))
    def test_random_config_invariants(self, seed):
        config = random_config(random.Random(seed))
        assert config.size % (config.line * config.assoc) == 0
        assert config.line & (config.line - 1) == 0  # power of two

    @pytest.mark.parametrize("seed", seed_sequence(10, "cachecheck-stream"))
    def test_random_stream_shape(self, seed):
        addresses, sizes = random_stream(random.Random(seed), 100)
        assert len(addresses) == len(sizes) == 100
        assert all(a >= 0 for a in addresses)
        assert all(s >= 1 for s in sizes)

    def test_stream_deterministic(self):
        a = random_stream(random.Random(7), 50)
        b = random_stream(random.Random(7), 50)
        assert a == b


class TestDifferential:
    @pytest.mark.parametrize("seed", seed_sequence(20, "cachecheck-run"))
    def test_round_is_clean(self, seed):
        mismatch = run_cache_check(random.Random(seed), stream_len=120)
        assert mismatch is None, mismatch.detail

    def test_direct_mapped_pair(self):
        config = CacheConfig("L1", size=256, assoc=1, line=16)
        addresses, sizes = random_stream(random.Random(3), 200)
        assert check_cache_pair(config, addresses, sizes) is None

    def test_fully_associative_pair(self):
        config = CacheConfig("L1", size=128, assoc=8, line=16)
        addresses, sizes = random_stream(random.Random(4), 200)
        assert check_cache_pair(config, addresses, sizes) is None

    def test_two_level_hierarchy_pair(self):
        configs = [
            CacheConfig("L1", size=128, assoc=2, line=16),
            CacheConfig("L2", size=1024, assoc=4, line=32),
        ]
        addresses, sizes = random_stream(random.Random(5), 200)
        assert check_hierarchy_pair(configs, None, addresses, sizes) is None

    def test_mismatch_reported_for_different_geometry(self):
        # Sanity-check the detector itself: replaying the scalar side on
        # one geometry and the batched side on another must diverge.
        small = CacheConfig("L1", size=64, assoc=1, line=16)
        big = CacheConfig("L1", size=4096, assoc=4, line=64)
        addresses = [k * 16 for k in range(64)] * 2
        sizes = [1] * len(addresses)
        from repro.cache.cache import SetAssocCache

        scalar = SetAssocCache(small)
        scalar_hits = [scalar.access(a, s) for a, s in zip(addresses, sizes)]
        batched = SetAssocCache(big)
        block = batched.access_block(addresses, sizes)
        assert scalar_hits != [bool(h) for h in block.hits]
