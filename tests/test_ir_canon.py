"""Canonicalization and JSON IR: the cache-key correctness properties.

The server's content-addressed cache is only sound if semantically
identical nests — same loops, same accesses, different spelling —
canonicalize to the same digest, and if canonicalization is a
projection (canonical form is its own canonical form). These tests pin
both, plus the JSON IR round trip that feeds the same digests.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.frontend import parse_program
from repro.ir import (
    canonical_program,
    canonical_text,
    content_digest,
    pretty_program,
    program_from_json,
    program_to_json,
)

pytestmark = pytest.mark.tier1


def nest_source(
    name: str = "t",
    outer: str = "J",
    inner: str = "I",
    decls: str = "A(N,N), B(N,N)",
) -> str:
    return (
        f"PROGRAM {name}\n"
        "PARAMETER N = 32\n"
        f"REAL {decls}\n"
        f"DO {outer} = 1, N\n"
        f"  DO {inner} = 1, N\n"
        f"    A({inner},{outer}) = B({outer},{inner}) + 1.0\n"
        "  ENDDO\n"
        "ENDDO\n"
        "END\n"
    )


class TestDigestInvariance:
    def test_loop_variable_names_do_not_matter(self):
        base = parse_program(nest_source())
        renamed = parse_program(nest_source(outer="JJ", inner="KK"))
        assert content_digest(base) == content_digest(renamed)

    def test_declaration_order_does_not_matter(self):
        base = parse_program(nest_source())
        reordered = parse_program(nest_source(decls="B(N,N), A(N,N)"))
        assert content_digest(base) == content_digest(reordered)

    def test_program_name_does_not_matter(self):
        base = parse_program(nest_source(name="alpha"))
        other = parse_program(nest_source(name="omega"))
        assert content_digest(base) == content_digest(other)

    def test_body_changes_do_matter(self):
        base = parse_program(nest_source())
        swapped = parse_program(
            nest_source().replace("B(J,I)", "B(I,J)")
        )
        assert content_digest(base) != content_digest(swapped)

    def test_param_values_do_matter(self):
        base = parse_program(nest_source())
        scaled = parse_program(nest_source().replace("N = 32", "N = 64"))
        assert content_digest(base) != content_digest(scaled)


class TestCanonicalForm:
    def test_canonical_text_reparses_to_the_same_digest(self):
        program = parse_program(nest_source(outer="JJ", inner="KK"))
        text = canonical_text(program)
        again = parse_program(text)
        assert content_digest(again) == content_digest(program)

    def test_canonicalization_is_a_projection(self):
        program = parse_program(nest_source(outer="JJ", inner="KK"))
        once, _ = canonical_program(program)
        twice, mapping = canonical_program(once)
        assert pretty_program(once) == pretty_program(twice)
        assert mapping == {"I0": "I0", "I1": "I1"}

    def test_rename_mapping_covers_every_loop(self):
        program = parse_program(nest_source(outer="JJ", inner="KK"))
        _, mapping = canonical_program(program)
        assert mapping == {"JJ": "I0", "KK": "I1"}

    @settings(max_examples=30, deadline=None)
    @given(
        outer=st.sampled_from(["J", "JJ", "M", "L2"]),
        inner=st.sampled_from(["I", "II", "K", "L1"]),
        decls=st.permutations(["A(N,N)", "B(N,N)"]),
    )
    def test_digest_invariant_under_any_spelling(self, outer, inner, decls):
        """Property: alpha-renaming x decl order never moves the digest."""
        if outer == inner:
            return
        program = parse_program(
            nest_source(outer=outer, inner=inner, decls=", ".join(decls))
        )
        reference = parse_program(nest_source())
        assert content_digest(program) == content_digest(reference)
        assert canonical_text(program) == canonical_text(reference)


class TestJsonIr:
    IR = {
        "name": "t",
        "params": {"N": 32},
        "arrays": [
            {"name": "A", "shape": ["N", "N"], "elem_size": 8},
            {"name": "B", "shape": ["N", "N"], "elem_size": 8},
        ],
        "body": [
            {
                "loop": {
                    "var": "J",
                    "lb": 1,
                    "ub": "N",
                    "step": 1,
                    "body": [
                        {
                            "loop": {
                                "var": "I",
                                "lb": 1,
                                "ub": "N",
                                "step": 1,
                                "body": [
                                    {
                                        "assign": {
                                            "lhs": "A(I,J)",
                                            "rhs": "B(J,I) + 1.0",
                                        }
                                    }
                                ],
                            }
                        }
                    ],
                }
            }
        ],
    }

    def test_ir_and_source_agree_on_the_digest(self):
        from_ir = program_from_json(self.IR)
        from_source = parse_program(nest_source())
        assert content_digest(from_ir) == content_digest(from_source)

    def test_round_trip(self):
        program = program_from_json(self.IR)
        again = program_from_json(program_to_json(program))
        assert content_digest(program) == content_digest(again)
        assert pretty_program(program) == pretty_program(again)

    def test_bad_ir_reports_the_json_path(self):
        broken = {
            "name": "t",
            "params": {"N": 32},
            "arrays": [{"name": "A", "shape": ["N"], "elem_size": 4}],
            "body": [],
        }
        with pytest.raises(ReproError) as excinfo:
            program_from_json(broken)
        assert "arrays[0]" in str(excinfo.value)
