"""Edge-case robustness: unusual but legal programs through the whole
pipeline (analysis, Compound, simulation, statistics)."""

import numpy as np
import pytest

from repro.exec import Interpreter, run_program, simulate
from repro.frontend import parse_program
from repro.model import CostModel
from repro.stats import collect_program_stats
from repro.transforms import compound


def full_pipeline(source, n_params=None):
    prog = parse_program(source)
    if n_params:
        prog = prog.with_params(n_params)
    stats, outcome = collect_program_stats(prog, CostModel(cls=4))
    before = run_program(prog)
    after = run_program(outcome.program)
    for name in before:
        np.testing.assert_allclose(before[name], after[name], rtol=1e-10)
    simulate(outcome.program)
    return stats, outcome


class TestEdgeCases:
    def test_empty_body_program(self):
        prog = parse_program("PROGRAM p\nREAL A(4)\nEND")
        stats, outcome = collect_program_stats(prog, CostModel())
        assert stats.nests == 0
        assert outcome.program.body == ()

    def test_statements_only(self):
        full_pipeline(
            """
            PROGRAM p
            REAL A(4)
            A(1) = 1.0
            A(2) = A(1) + 1.0
            END
            """
        )

    def test_zero_trip_loop(self):
        stats, outcome = full_pipeline(
            """
            PROGRAM p
            PARAMETER N = 0
            REAL A(10, 10)
            DO I = 1, N
              DO J = 1, N
                A(I,J) = 1.0
              ENDDO
            ENDDO
            END
            """
        )
        assert stats.nests == 1

    def test_single_iteration_loops(self):
        full_pipeline(
            """
            PROGRAM p
            REAL A(3,3)
            DO I = 2, 2
              DO J = 2, 2
                A(I,J) = A(I-1,J-1) + 1.0
              ENDDO
            ENDDO
            END
            """
        )

    def test_four_deep_nest(self):
        stats, outcome = full_pipeline(
            """
            PROGRAM p
            PARAMETER N = 5
            REAL A(N,N,N,N)
            DO I = 1, N
              DO J = 1, N
                DO K = 1, N
                  DO L = 1, N
                    A(L,K,J,I) = A(L,K,J,I) * 2.0
                  ENDDO
                ENDDO
              ENDDO
            ENDDO
            END
            """
        )
        assert stats.memory_order_orig == 1  # L innermost is unit stride

    def test_four_deep_needs_full_permutation(self):
        stats, _ = full_pipeline(
            """
            PROGRAM p
            PARAMETER N = 5
            REAL A(N,N,N,N)
            DO I = 1, N
              DO J = 1, N
                DO K = 1, N
                  DO L = 1, N
                    A(I,J,K,L) = A(I,J,K,L) * 2.0
                  ENDDO
                ENDDO
              ENDDO
            ENDDO
            END
            """
        )
        assert stats.memory_order_perm == 1  # fully reversed to L,K,J,I

    def test_strided_loops_through_compound(self):
        full_pipeline(
            """
            PROGRAM p
            PARAMETER N = 16
            REAL A(N,N)
            DO I = 1, N, 2
              DO J = 1, N, 4
                A(I,J) = A(I,J) + 1.0
              ENDDO
            ENDDO
            END
            """
        )

    def test_negative_step_through_compound(self):
        full_pipeline(
            """
            PROGRAM p
            PARAMETER N = 12
            REAL A(N,N), B(N,N)
            DO I = N, 1, -1
              DO J = 1, N
                B(I,J) = A(I,J) * 2.0
              ENDDO
            ENDDO
            END
            """
        )

    def test_deeply_imperfect(self):
        full_pipeline(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N,N), B(N,N), S(N)
            DO I = 1, N
              S(I) = 0.0
              DO J = 1, N
                S(I) = S(I) + A(J,I)
                DO K = 1, N
                  B(K,I) = B(K,I) + A(K,J)
                ENDDO
              ENDDO
              A(1,I) = S(I)
            ENDDO
            END
            """
        )

    def test_same_array_read_write_mixed_ranks_rejected(self):
        from repro.errors import IRError

        with pytest.raises(IRError):
            parse_program(
                """
                PROGRAM p
                REAL A(4,4)
                DO I = 1, 4
                  A(I) = 1.0
                ENDDO
                END
                """
            )

    def test_large_constant_subscript_offsets(self):
        full_pipeline(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N+100)
            DO I = 1, N
              A(I+100) = A(I) + 1.0
            ENDDO
            END
            """
        )

    def test_parameter_expression_bounds(self):
        full_pipeline(
            """
            PROGRAM p
            PARAMETER N = 10
            PARAMETER M = 4
            REAL A(N, N)
            DO I = M, N - M + 2
              DO J = 2, N - 1
                A(J,I) = A(J-1,I) + A(J+1,I-1)
              ENDDO
            ENDDO
            END
            """
        )

    def test_many_adjacent_nests(self):
        # Ten adjacent compatible nests: fusion should behave (greedy is
        # quadratic, so this also guards runtime blowups).
        nests = "\n".join(
            f"""
            DO J{i} = 1, N
              DO I{i} = 1, N
                W{i}(I{i},J{i}) = W{max(i - 1, 0)}(I{i},J{i}) + 1.0
              ENDDO
            ENDDO"""
            for i in range(10)
        )
        arrays = ", ".join(f"W{i}(N,N)" for i in range(10))
        stats, outcome = full_pipeline(
            f"""
            PROGRAM p
            PARAMETER N = 6
            REAL {arrays}
            {nests}
            END
            """
        )
        assert stats.fusion_candidates == 10
        assert stats.nests_fused >= 5
