"""The lint fuzz oracle: clean on honest engines, loud on broken ones."""

from repro.frontend import parse_program
from repro.lint import Diagnostic, FixIt, LintResult
from repro.suite import kernels
from repro.verify.lintcheck import LintMismatch, check_lint
from repro.verify.runner import run_fuzz


def _program(body):
    return parse_program(
        f"PROGRAM p\nPARAMETER N = 8\nREAL A(N), B(N)\n{body}\nEND"
    )


class TestCheckLint:
    def test_clean_on_pessimized_kernel(self):
        assert check_lint(kernels.matmul(8, "KIJ")) is None

    def test_detects_inequivalent_fixit(self, monkeypatch):
        import repro.lint as lint_pkg

        original = _program("DO I = 1, N\n  A(I) = B(I)\nENDDO")
        wrong = _program("DO I = 1, N\n  A(I) = B(I) + 1\nENDDO")

        def dishonest_lint(program, **kwargs):
            fixit = FixIt(
                "permute", "bogus", wrong, verified=True, verification="oracle"
            )
            diag = Diagnostic(
                "LOC002", "loop-order", "warning", "synthetic", fixit=fixit
            )
            return LintResult(
                program=program,
                diagnostics=(diag,),
                checks_run=("LOC002",),
                line=128,
                capacity=64,
                miss_ratio=0.0,
            )

        monkeypatch.setattr(lint_pkg, "lint_program", dishonest_lint)
        mismatch = check_lint(original)
        assert isinstance(mismatch, LintMismatch)
        assert mismatch.where == "fixit-state"

    def test_detects_unverified_fixit_on_warning(self, monkeypatch):
        import repro.lint as lint_pkg

        original = _program("DO I = 1, N\n  A(I) = B(I)\nENDDO")

        def sloppy_lint(program, **kwargs):
            fixit = FixIt("permute", "unverified", program)
            diag = Diagnostic(
                "LOC002", "loop-order", "warning", "synthetic", fixit=fixit
            )
            return LintResult(
                program=program,
                diagnostics=(diag,),
                checks_run=("LOC002",),
                line=128,
                capacity=64,
                miss_ratio=0.0,
            )

        monkeypatch.setattr(lint_pkg, "lint_program", sloppy_lint)
        mismatch = check_lint(original)
        assert isinstance(mismatch, LintMismatch)
        assert mismatch.where == "fixit-unverified"


class TestRunnerIntegration:
    def test_fuzz_report_counts_lint_rounds(self):
        report = run_fuzz(3, seed=0)
        assert report.ok, [f.repro_script() for f in report.failures]
        assert report.lint_rounds == 3
        assert "lint cross-check" in report.summary()
