"""Acceptance: lint --fix is verified-legal and miss-monotone.

For each deliberately pessimized kernel variant, applying every fix-it
must (a) keep the program execution-equivalent (brute-force oracle),
(b) never increase the predicted miss count, and (c) leave every applied
fix-it verified.
"""

import pytest

from repro.lint import apply_fixes, lint_program
from repro.lint.verifyfix import predicted_misses, verify_fixit
from repro.suite import kernels
from repro.verify.lintcheck import check_lint

LINE = 64
CAPACITY = 16

PESSIMIZED = {
    "matmul_kij": lambda: kernels.matmul(16, "KIJ"),
    "matmul_ijk": lambda: kernels.matmul(16, "IJK"),
    "cholesky_kij": lambda: kernels.cholesky(12, "KIJ"),
}


@pytest.mark.parametrize("name", sorted(PESSIMIZED))
class TestFixAcceptance:
    def test_fix_never_worsens_and_verifies(self, name):
        program = PESSIMIZED[name]()
        base_misses, base_accesses = predicted_misses(program, LINE, CAPACITY)
        outcome = apply_fixes(program, line=LINE, capacity=CAPACITY)
        final_misses, _ = predicted_misses(outcome.program, LINE, CAPACITY)
        assert final_misses <= base_misses
        # Miss ratio per original access never worsens either.
        assert final_misses / base_accesses <= base_misses / base_accesses
        # The final program passes the independent oracles vs the original.
        ok, slug = verify_fixit(program, outcome.program)
        assert ok, f"{name}: fixed program failed the oracle: {slug}"
        # Each applied fix recorded monotone scores.
        for applied in outcome.applied:
            assert applied.miss_after <= applied.miss_before + 1e-12

    def test_lintcheck_oracle_clean(self, name):
        assert check_lint(PESSIMIZED[name]()) is None


class TestFixProgress:
    def test_pessimal_matmul_is_repaired(self):
        program = kernels.matmul(16, "KIJ")
        outcome = apply_fixes(program, line=LINE, capacity=CAPACITY)
        transforms = [a.transform for a in outcome.applied]
        assert "permute" in transforms
        base_misses, _ = predicted_misses(program, LINE, CAPACITY)
        final_misses, _ = predicted_misses(outcome.program, LINE, CAPACITY)
        assert final_misses < base_misses  # strict improvement, not just <=
        # After fixing, the loop-order diagnostic is gone.
        assert not any(
            d.check_id == "LOC002" for d in outcome.result.diagnostics
        )

    def test_memory_ordered_kernel_needs_no_fix(self):
        outcome = apply_fixes(
            kernels.matmul(16, "JKI"),
            checks=("LOC002",),
            line=LINE,
            capacity=CAPACITY,
        )
        assert outcome.applied == ()
        assert outcome.program is not None

    def test_all_suite_kernels_lint_clean_of_errors(self):
        for factory in (
            lambda: kernels.matmul(16, "JKI"),
            lambda: kernels.cholesky(12, "JKI"),
            lambda: kernels.adi(16, "distributed"),
            lambda: kernels.jacobi(16),
            lambda: kernels.transpose(16),
        ):
            result = lint_program(factory(), line=LINE, capacity=CAPACITY)
            assert result.errors == 0, result.program.name
