"""Tests for loop fusion: compatibility, legality, profitability, FuseAll."""

import pytest

from repro.frontend import parse_program
from repro.ir import Loop, iter_loops, iter_statements, pretty
from repro.model import CostModel
from repro.transforms import (
    compatible_depth,
    fuse_adjacent,
    fuse_all,
    fuse_pair,
    fusion_preventing,
)

ADI_DISTRIBUTED = """
PROGRAM adi
PARAMETER N = 50
REAL X(N,N), A(N,N), B(N,N)
DO I = 2, N
  DO K = 1, N
    X(I,K) = X(I,K) - X(I-1,K)*A(I,K)/B(I-1,K)
  ENDDO
  DO K = 1, N
    B(I,K) = B(I,K) - A(I,K)*A(I,K)/B(I-1,K)
  ENDDO
ENDDO
END
"""


def loops_of(source):
    return parse_program(source).top_loops


class TestCompatibleDepth:
    def test_identical_headers(self):
        a = Loop.make("I", 1, "N", [])
        b = Loop.make("J", 1, "N", [])
        assert compatible_depth(a, b) == 1

    def test_different_bounds(self):
        a = Loop.make("I", 1, "N", [])
        b = Loop.make("J", 2, "N", [])
        assert compatible_depth(a, b) == 0

    def test_different_steps(self):
        a = Loop.make("I", 1, "N", [], step=1)
        b = Loop.make("J", 1, "N", [], step=2)
        assert compatible_depth(a, b) == 0

    def test_nested_compatibility(self):
        a = Loop.make("I", 1, "N", [Loop.make("J", 1, "N", [])])
        b = Loop.make("K", 1, "N", [Loop.make("L", 1, "N", [])])
        assert compatible_depth(a, b) == 2

    def test_triangular_inner_follows_renaming(self):
        # DO I / DO J = 1, I  vs  DO K / DO L = 1, K: compatible at depth 2
        a = Loop.make("I", 1, "N", [Loop.make("J", 1, "I", [])])
        b = Loop.make("K", 1, "N", [Loop.make("L", 1, "K", [])])
        assert compatible_depth(a, b) == 2

    def test_imperfect_stops_descent(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 4
            REAL A(N,N), B(N,N)
            DO I = 1, N
              A(I,1) = 0.0
              DO J = 1, N
                A(I,J) = 1.0
              ENDDO
            ENDDO
            DO K = 1, N
              DO L = 1, N
                B(K,L) = 1.0
              ENDDO
            ENDDO
            END
            """
        )
        a, b = prog.top_loops
        assert compatible_depth(a, b) == 1


class TestFusePair:
    def test_bodies_concatenated_with_renaming(self):
        prog = parse_program(ADI_DISTRIBUTED)
        outer = prog.top_loops[0]
        first, second = outer.inner_loops
        fused = fuse_pair(first, second, 1)
        assert len(fused.statements) == 2
        # Second body's K_2 renamed to K.
        arrays = [str(s.lhs) for s in fused.statements]
        assert arrays == ["X(I, K)", "B(I, K)"]

    def test_deep_fusion(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N,N), B(N,N)
            DO I = 1, N
              DO J = 1, N
                A(I,J) = 1.0
              ENDDO
            ENDDO
            DO K = 1, N
              DO L = 1, N
                B(K,L) = A(K,L)
              ENDDO
            ENDDO
            END
            """
        )
        a, b = prog.top_loops
        fused = fuse_pair(a, b, 2)
        assert fused.is_perfect_nest()
        assert [l.var for l in iter_loops(fused)] == ["I", "J"]
        assert len(fused.statements) == 2


class TestFusionPreventing:
    def test_forward_loop_independent_ok(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N), B(N), C(N)
            DO I = 1, N
              A(I) = B(I)
            ENDDO
            DO J = 1, N
              C(J) = A(J)
            ENDDO
            END
            """
        )
        a, b = prog.top_loops
        assert not fusion_preventing(a, b, 1)

    def test_backward_dependence_prevents(self):
        # Second loop reads A(J+1): after fusion iteration J would read a
        # value the first loop has not written yet.
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N), C(N)
            DO I = 1, N
              A(I) = I * 1.0
            ENDDO
            DO J = 1, N - 1
              C(J) = A(J+1)
            ENDDO
            END
            """
        )
        a, b = prog.top_loops
        # Headers differ (N vs N-1) so depth 0 in practice; force the
        # legality question at depth 1 anyway.
        assert fusion_preventing(a, b, 1)

    def test_backward_distance_ok(self):
        # Reading A(J-1) after fusion is fine: already computed.
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N), C(N)
            DO I = 1, N
              A(I) = I * 1.0
            ENDDO
            DO J = 2, N
              C(J) = A(J-1)
            ENDDO
            END
            """
        )
        a, b = prog.top_loops
        assert not fusion_preventing(a, b, 1)


class TestFuseAdjacent:
    def test_adi_inner_loops_fuse(self):
        prog = parse_program(ADI_DISTRIBUTED)
        outer = prog.top_loops[0]
        result = fuse_adjacent(outer.body, CostModel(cls=4))
        assert result.candidates == 2
        assert result.fused == 1
        assert len(result.items) == 1
        fused = result.items[0]
        assert len(fused.statements) == 2

    def test_no_fusion_without_benefit(self):
        # Disjoint arrays, no shared data: no locality benefit.
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N), B(N)
            DO I = 1, N
              A(I) = 1.0
            ENDDO
            DO J = 1, N
              B(J) = 2.0
            ENDDO
            END
            """
        )
        result = fuse_adjacent(prog.body, CostModel(cls=4))
        assert result.fused == 0
        assert len(result.items) == 2

    def test_fusion_with_shared_array(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N), B(N), C(N)
            DO I = 1, N
              B(I) = A(I) * 2.0
            ENDDO
            DO J = 1, N
              C(J) = A(J) + B(J)
            ENDDO
            END
            """
        )
        result = fuse_adjacent(prog.body, CostModel(cls=4))
        assert result.fused == 1
        assert len(result.items) == 1

    def test_statement_barrier(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N), B(N)
            DO I = 1, N
              B(I) = A(I)
            ENDDO
            S = 0.0
            DO J = 1, N
              A(J) = B(J) + S
            ENDDO
            END
            """
        )
        result = fuse_adjacent(prog.body, CostModel(cls=4))
        assert result.fused == 0
        assert len(result.items) == 3

    def test_incompatible_not_fused(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N), B(N)
            DO I = 1, N
              B(I) = A(I)
            ENDDO
            DO J = 2, N
              A(J) = B(J)
            ENDDO
            END
            """
        )
        result = fuse_adjacent(prog.body, CostModel(cls=4))
        assert result.fused == 0
        assert result.candidates == 0


class TestFuseAll:
    def test_adi_becomes_perfect(self):
        prog = parse_program(ADI_DISTRIBUTED)
        outer = prog.top_loops[0]
        fused = fuse_all(outer)
        assert fused is not None
        assert fused.is_perfect_nest()
        assert [l.var for l in iter_loops(fused)] == ["I", "K"]

    def test_mixed_body_fails(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N,N)
            DO I = 1, N
              A(I,1) = 0.0
              DO J = 1, N
                A(I,J) = 1.0
              ENDDO
            ENDDO
            END
            """
        )
        assert fuse_all(prog.top_loops[0]) is None

    def test_incompatible_siblings_fail(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N,N)
            DO I = 1, N
              DO J = 1, N
                A(I,J) = 0.0
              ENDDO
              DO K = 2, N
                A(I,K) = A(I,K) + 1.0
              ENDDO
            ENDDO
            END
            """
        )
        assert fuse_all(prog.top_loops[0]) is None

    def test_already_perfect_passthrough(self):
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 8
            REAL A(N,N)
            DO I = 1, N
              DO J = 1, N
                A(I,J) = 0.0
              ENDDO
            ENDDO
            END
            """
        )
        nest = prog.top_loops[0]
        assert fuse_all(nest) == nest
