"""Differential fuzzing of the memoization caches against fresh computation.

The cost model keeps three caches — the per-model ``nest_info`` identity
cache, the structural ``loop_cost`` cache, and the module-level shared
dependence cache — and the dependence layer memoizes ``analyze_ref_pair``
results. A warm cache must never change an answer: for generated nests,
results served by a model that has already seen the original tree (or a
structurally identical rebuild, or a key-colliding mutant) must match a
cold model computing from scratch.
"""

import copy
import random

import pytest

from repro.seeds import seed_sequence
from repro.dependence.tests import _PAIR_CACHE, analyze_ref_pair
from repro.ir import Affine, Loop, Ref
from repro.ir.nodes import Loop as LoopNode
from repro.model import CostModel
from repro.model.loopcost import _DEPS_CACHE
from repro.verify.gennest import generate_program
from repro.verify.runner import case_rng


def _top_nests(program):
    return [item for item in program.body if isinstance(item, LoopNode)]


def _orders(model, program):
    """memory_order of every top nest, plus loop-cost magnitudes."""
    out = []
    for nest in _top_nests(program):
        order = model.memory_order(nest)
        costs = {
            var: cost.magnitude()
            for var, cost in model.loop_costs(nest).items()
        }
        out.append((order, costs))
    return out


def _mutate_bound(program):
    """Widen the first top nest's bounds: structurally new cache keys."""
    nests = _top_nests(program)
    nest = nests[0]
    wider = Loop(nest.var, nest.lb, nest.ub + 1, nest.step, nest.body)
    body = list(program.body)
    body[program.body.index(nest)] = wider
    return program.with_body(body)


class TestCostModelCaches:
    @pytest.mark.parametrize("case", seed_sequence(25, "caches-random"))
    def test_warm_model_matches_cold_model(self, case):
        program = generate_program(case_rng(1, case), name=f"MC{case}")
        rebuilt = copy.deepcopy(program)  # new identities, same structure
        mutated = _mutate_bound(program)

        warm = CostModel()
        # Warm up on the original, then query every variant from the
        # same (now hot) model.
        _orders(warm, program)
        for variant in (program, rebuilt, mutated):
            assert _orders(warm, variant) == _orders(CostModel(), variant)

    @pytest.mark.parametrize("case", range(10))
    def test_shared_deps_cache_survives_rebuilds(self, case):
        # The module-level dependence cache is keyed structurally; a
        # rebuilt tree must hit it AND get info bound to its own loop
        # objects (consumers compare chain entries by identity).
        program = generate_program(case_rng(2, case), name=f"DC{case}")
        rebuilt = copy.deepcopy(program)
        model = CostModel()
        nest, nest2 = _top_nests(program)[0], _top_nests(rebuilt)[0]
        model.nest_info(nest)
        assert nest2 in _DEPS_CACHE or nest in _DEPS_CACHE
        info = model.nest_info(nest2)
        assert info.loops[0] is nest2

    def test_identity_cache_returns_same_info(self):
        program = generate_program(case_rng(3, 0), name="IC")
        model = CostModel()
        nest = _top_nests(program)[0]
        assert model.nest_info(nest) is model.nest_info(nest)

    @pytest.mark.parametrize("case", range(10))
    def test_mutated_tree_never_served_stale_results(self, case):
        # Cost a program, mutate it, and check the warm model agrees
        # with a cold model on the mutant — a stale hit would surface as
        # identical costs despite the wider loop.
        program = generate_program(case_rng(4, case), name=f"MU{case}")
        warm = CostModel()
        _orders(warm, program)
        mutated = _mutate_bound(program)
        assert _orders(warm, mutated) == _orders(CostModel(), mutated)


class TestPairCache:
    def _chains(self, rng):
        depth = rng.randint(1, 2)
        loops = []
        for var in ("I", "J")[:depth]:
            lo = rng.randint(1, 2)
            loops.append(Loop.make(var, lo, lo + rng.randint(2, 6), []))
        return loops

    def _ref(self, rng, vars_):
        terms = Affine.constant(rng.randint(0, 3))
        for var in vars_:
            if rng.random() < 0.7:
                terms = terms + Affine.var(var, rng.choice((1, 1, -1, 2)))
        return Ref("A", (terms,))

    @pytest.mark.parametrize("seed", seed_sequence(20, "caches-streams"))
    def test_cached_pair_equals_fresh(self, seed):
        rng = random.Random(seed)
        common = self._chains(rng)
        vars_ = [l.var for l in common]
        ref_a, ref_b = self._ref(rng, vars_), self._ref(rng, vars_)

        first = analyze_ref_pair(ref_a, ref_b, common)
        warm = analyze_ref_pair(ref_a, ref_b, common)  # served from cache
        _PAIR_CACHE.clear()
        cold = analyze_ref_pair(ref_a, ref_b, common)
        assert first == warm == cold

    def test_renamed_loops_do_not_collide(self):
        # Same ref pair under different loop ranges must not share an
        # entry: the chain is part of the key.
        ref = Ref("A", (Affine.var("I"),))
        short = [Loop.make("I", 1, 4, [])]
        long = [Loop.make("I", 1, 40, [])]
        _PAIR_CACHE.clear()
        a = analyze_ref_pair(ref, Ref("A", (Affine.var("I") + 10,)), short)
        b = analyze_ref_pair(ref, Ref("A", (Affine.var("I") + 10,)), long)
        assert a == []  # distance 10 exceeds the short trip count
        assert b != []
