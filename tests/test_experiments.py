"""Integration tests for the experiment harness.

Each test runs an experiment at a quick scale and asserts the *shape*
claims the paper makes (who wins, by roughly what factor, where the
crossovers are) — not absolute numbers.
"""

import pytest

from repro.cache import CACHE2
from repro.experiments import (
    figure2_matmul,
    figure3_adi,
    figure7_cholesky,
    figures8_9,
    table1_erlebacher,
    table2_stats,
    table3_perf,
    table4_analytic,
    table4_hitrates,
    table5_access,
)
from repro.experiments.common import MACHINE2


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return figure2_matmul.run(sizes=(16, 48), machines={"i860": MACHINE2})

    def test_model_ranking_is_papers(self, result):
        assert result.model_ranking == ("JKI", "KJI", "JIK", "IJK", "KIJ", "IKJ")

    def test_simulation_agrees_when_data_exceeds_cache(self, result):
        ranking = result.simulated_rankings[("i860", 48)]
        assert ranking[0] == "JKI"
        assert ranking[-1] in ("IKJ", "KIJ")

    def test_small_data_shows_no_spread(self, result):
        # 16x16 arrays fit in the 8KB cache: all orders tie (the paper's
        # small-data-set effect).
        assert result.spread("i860", 16) < 1.05

    def test_larger_matrices_widen_the_gap(self, result):
        assert result.spread("i860", 48) > result.spread("i860", 16)

    def test_render(self, result):
        text = figure2_matmul.render(result)
        assert "JKI" in text and "i860" in text


class TestFigure3:
    def test_paper_cost_progression(self):
        result = figure3_adi.run(cls=4)
        # 5n^2 -> 3n^2 -> 3/4 n^2 (up to the exact N-1 outer trip).
        assert result.fusion_profitable
        assert result.interchange_profitable
        ratio = result.unfused_total_k.magnitude() / result.fused_cost_k.magnitude()
        assert ratio == pytest.approx(5 / 3, rel=1e-6)
        ratio_i = result.fused_cost_k.magnitude() / result.fused_cost_i.magnitude()
        assert ratio_i == pytest.approx(4.0, rel=1e-6)


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return figure7_cholesky.run(n=64)

    def test_model_ranking_matches_paper(self, result):
        assert result.model_ranking == ("KJI", "JKI", "KIJ", "IKJ", "JIK", "IJK")

    def test_compound_attains_best_structure(self, result):
        assert result.compound_matches_best

    def test_i_inner_forms_win(self, result):
        best_two = set(result.simulated_ranking[:2])
        assert best_two <= {"KJI", "JKI"}


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1_erlebacher.run(n=16, machines={"i860": MACHINE2})

    def test_fused_is_best(self, result):
        assert result.fused_always_best

    def test_fusion_speedup_meaningful(self, result):
        # Paper: up to 17% on real hardware; our simulated caches show at
        # least a few percent.
        assert result.fusion_speedup("i860") > 1.02


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2_stats.run(n=12)

    def test_majority_in_memory_order_after_transform(self, result):
        totals = result.totals
        assert totals["MO-Orig%"] + totals["MO-Perm%"] >= 80

    def test_some_programs_fail(self, result):
        assert totals_fail(result) > 0

    def test_fusion_and_distribution_used(self, result):
        totals = result.totals
        assert totals["Fus-A"] >= 5
        assert totals["Dist-D"] >= 2

    def test_many_programs_improved(self, result):
        assert len(result.improved_programs) >= 10


def totals_fail(result):
    return result.totals["MO-Fail%"]


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3_perf.run(scale=1.0)

    def test_flagship_programs_improve(self, result):
        assert result.row("arc2d_like").speedup > 1.3
        assert result.row("adi").speedup > 1.5

    def test_no_significant_degradations(self, result):
        assert all(r.speedup > 0.95 for r in result.rows)

    def test_untouched_programs_unchanged(self, result):
        assert result.row("tomcatv_like").speedup == pytest.approx(1.0)
        assert result.row("trfd_like").speedup == pytest.approx(1.0)


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return table4_hitrates.run(
            scale=1.0,
            names=("arc2d_like", "jacobi", "tomcatv_like", "vpenta_like"),
        )

    def test_small_cache_shows_bigger_deltas(self, result):
        row = result.row("arc2d_like")
        assert row.whole_delta("cache2") > row.whole_delta("cache1") - 1e-9
        assert row.whole_delta("cache2") > 0.01

    def test_big_cache_hit_rates_already_high(self, result):
        for row in result.rows:
            assert row.whole[("cache1", "orig")] > 0.95

    def test_unchanged_program_rates_stable(self, result):
        row = result.row("tomcatv_like")
        assert row.whole_delta("cache1") == pytest.approx(0.0, abs=1e-9)
        assert row.whole_delta("cache2") == pytest.approx(0.0, abs=1e-9)

    def test_optimized_statements_improve_more(self, result):
        row = result.row("vpenta_like")
        assert row.opt_delta("cache2") >= row.whole_delta("cache2") - 0.05


class TestTable4Analytic:
    @pytest.fixture(scope="class")
    def result(self, table4_analytic_result):
        # Shared with the golden-snapshot test (tests/conftest.py).
        return table4_analytic_result

    def test_rows_cover_both_versions(self, result):
        assert {(r.name, r.version) for r in result.rows} == {
            (name, version)
            for name in ("jacobi", "matmul", "transpose")
            for version in ("orig", "final")
        }

    def test_prediction_close_to_simulation(self, result):
        assert result.worst_error() <= 0.02

    def test_render_includes_error_columns(self, result):
        text = table4_analytic.render(result)
        assert "fa1 err" in text and "fa2 err" in text
        assert "worst error" in text


class TestTable5:
    @pytest.fixture(scope="class")
    def result(self):
        return table5_access.run(n=12)

    def test_unit_stride_share_grows(self, result):
        for panel in result.panels:
            assert panel.unit_share_gain >= 0
        assert result.panel("vpenta_like").unit_share_gain > 50

    def test_all_programs_panel_matches_paper_shape(self, result):
        panel = result.panel("all programs")
        # Most groups exhibit self-spatial reuse after transformation;
        # 'none' shrinks (paper: 60% -> 53% none on real suite; our
        # synthetic suite is more transformable).
        assert panel.final.row["None%"] < panel.original.row["None%"]
        assert panel.final.row["Unit%"] > panel.original.row["Unit%"]


class TestFigures89:
    @pytest.fixture(scope="class")
    def result(self):
        return figures8_9.run(n=12)

    def test_transformed_mass_moves_to_top_bucket(self, result):
        before = result.share_at_least(result.nests_original, 80)
        after = result.share_at_least(result.nests_transformed, 80)
        assert after > before
        assert after > 0.5

    def test_inner_loops_move_harder(self, result):
        after = result.share_at_least(result.inner_transformed, 90)
        assert after > 0.5
