"""Unit and property tests for affine forms."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NonAffineError
from repro.ir.affine import Affine, as_affine

NAMES = st.sampled_from(["I", "J", "K", "N", "M"])


@st.composite
def affines(draw):
    coeffs = draw(
        st.dictionaries(NAMES, st.integers(-5, 5), max_size=3)
    )
    const = draw(st.integers(-100, 100))
    return Affine.build(coeffs, const)


class TestConstruction:
    def test_constant(self):
        a = Affine.constant(7)
        assert a.is_constant()
        assert a.constant_value() == 7

    def test_var(self):
        a = Affine.var("I")
        assert a.coeff("I") == 1
        assert a.coeff("J") == 0
        assert not a.is_constant()

    def test_zero_coeffs_dropped(self):
        a = Affine.build({"I": 0, "J": 2}, 1)
        assert a.names == frozenset({"J"})

    def test_as_affine_coercions(self):
        assert as_affine(3) == Affine.constant(3)
        assert as_affine("K") == Affine.var("K")
        a = Affine.var("I")
        assert as_affine(a) is a

    def test_as_affine_rejects_bool_and_junk(self):
        with pytest.raises(NonAffineError):
            as_affine(True)
        with pytest.raises(NonAffineError):
            as_affine(1.5)

    def test_constant_value_raises_on_variable_form(self):
        with pytest.raises(NonAffineError):
            Affine.var("I").constant_value()


class TestArithmetic:
    def test_add_sub(self):
        i, j = Affine.var("I"), Affine.var("J")
        a = i + j + 3
        assert a.coeff("I") == 1 and a.coeff("J") == 1 and a.const == 3
        b = a - i
        assert b.coeff("I") == 0 and b.coeff("J") == 1

    def test_scale(self):
        a = (Affine.var("I") + 2) * 3
        assert a.coeff("I") == 3 and a.const == 6

    def test_nonlinear_product_rejected(self):
        with pytest.raises(NonAffineError):
            Affine.var("I") * Affine.var("J")

    def test_product_with_constant_affine(self):
        a = Affine.var("I") * Affine.constant(4)
        assert a.coeff("I") == 4

    def test_rsub(self):
        a = 10 - Affine.var("I")
        assert a.coeff("I") == -1 and a.const == 10

    def test_substitute(self):
        # I + 2J with J := K + 1 gives I + 2K + 2
        a = Affine.build({"I": 1, "J": 2})
        b = a.substitute("J", Affine.var("K") + 1)
        assert b == Affine.build({"I": 1, "K": 2}, 2)

    def test_substitute_absent_name_is_noop(self):
        a = Affine.var("I")
        assert a.substitute("Z", 5) is a

    def test_rename_merges(self):
        a = Affine.build({"I": 1, "J": 2})
        b = a.rename({"J": "I"})
        assert b == Affine.build({"I": 3})


class TestEvaluation:
    def test_evaluate(self):
        a = Affine.build({"I": 2, "N": 1}, -1)
        assert a.evaluate({"I": 3, "N": 10}) == 15

    def test_evaluate_unbound_raises(self):
        with pytest.raises(NonAffineError):
            Affine.var("I").evaluate({})

    def test_partial_evaluate(self):
        a = Affine.build({"I": 1, "N": 1})
        assert a.partial_evaluate({"N": 8}) == Affine.var("I") + 8


class TestDisplay:
    @pytest.mark.parametrize(
        "form, text",
        [
            (Affine.constant(0), "0"),
            (Affine.constant(-3), "-3"),
            (Affine.var("I"), "I"),
            (Affine.var("I") + 1, "I+1"),
            (Affine.var("I") - 1, "I-1"),
            (Affine.var("I") * -1, "-I"),
            (Affine.build({"I": 2, "J": -3}, 4), "2*I-3*J+4"),
        ],
    )
    def test_str(self, form, text):
        assert str(form) == text


class TestProperties:
    @given(affines(), affines())
    def test_add_commutes(self, a, b):
        assert a + b == b + a

    @given(affines(), affines(), affines())
    def test_add_associates(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(affines())
    def test_neg_is_involution(self, a):
        assert -(-a) == a

    @given(affines(), st.integers(-4, 4))
    def test_scale_distributes_over_eval(self, a, k):
        env = {n: 2 for n in a.names}
        assert (a * k).evaluate(env) == k * a.evaluate(env)

    @given(affines(), affines())
    def test_eval_homomorphism(self, a, b):
        env = {n: 3 for n in (a.names | b.names)}
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(affines())
    def test_substitute_then_eval(self, a):
        # substituting J := K+1 then evaluating equals evaluating with J = K+1
        subbed = a.substitute("J", Affine.var("K") + 1)
        env = {n: 5 for n in a.names | {"K"}}
        env_j = dict(env, J=env.get("K", 5) + 1)
        assert subbed.evaluate({**env, "K": 5}) == a.evaluate(env_j)
