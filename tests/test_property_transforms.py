"""Property-based end-to-end checks on transformation correctness.

The central soundness property: any loop order that the legality analysis
approves must compute bit-identical results. We enumerate all orders of
randomly generated nests and check both directions of usefulness:
approved orders preserve semantics, and at least the original order is
always approved.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import parse_program
from repro.exec import run_program
from repro.model import CostModel
from repro.transforms import (
    apply_order,
    compound,
    constraining_vectors,
    fuse_adjacent,
    fusion_preventing,
    order_is_legal,
)


@st.composite
def nest_programs(draw):
    """Random 2-3 deep rectangular nests with 1-2 statements."""
    n = draw(st.integers(3, 6))
    depth = draw(st.integers(2, 3))
    coeff = st.sampled_from([0, 1, 1, 1, -1])
    offset = st.integers(-1, 1)
    vars_ = ["I", "J", "K"][:depth]

    def subscript():
        terms = []
        for var in vars_:
            c = draw(coeff)
            if c == 1:
                terms.append(var)
            elif c == -1:
                terms.append(f"0 - {var}" if not terms else f"- {var}")
        base = draw(offset) + depth + n  # keep positive
        expr = " + ".join(terms) if terms else ""
        return f"{expr} + {base}" if expr else str(base)

    stmts = []
    n_stmts = draw(st.integers(1, 2))
    for _ in range(n_stmts):
        lhs = f"A({subscript()}, {subscript()})"
        rhs = f"A({subscript()}, {subscript()})"
        stmts.append(f"{lhs} = {rhs} + 1.0")

    body = "\n".join(stmts)
    opened = "\n".join(f"DO {v} = 1, {n}" for v in vars_)
    closed = "\n".join("ENDDO" for _ in vars_)
    size = 4 * (n + depth + 4)
    src = f"""
    PROGRAM p
    PARAMETER N = {n}
    REAL A({size}, {size})
    {opened}
    {body}
    {closed}
    END
    """
    return src


class TestPermutationLegalitySoundness:
    def _check_legal_orders(self, source):
        prog = parse_program(source)
        nest = prog.top_loops[0]
        chain = nest.perfect_nest_loops()
        original = tuple(l.var for l in chain)
        vectors = constraining_vectors(nest)
        index_of = {var: i for i, var in enumerate(original)}

        reference = run_program(prog)

        # The original order must always be approved.
        assert order_is_legal(vectors, [index_of[v] for v in original])

        for order in itertools.permutations(original):
            if order == original:
                continue
            if not order_is_legal(vectors, [index_of[v] for v in order]):
                continue
            permuted = apply_order(chain, order, set())
            candidate = prog.with_body((permuted,))
            result = run_program(candidate)
            for array in reference:
                np.testing.assert_allclose(
                    reference[array],
                    result[array],
                    rtol=1e-12,
                    err_msg=f"legal order {order} changed {array}",
                )

    @settings(max_examples=6, deadline=None)
    @given(nest_programs())
    def test_legal_orders_preserve_semantics_quick(self, source):
        self._check_legal_orders(source)

    @pytest.mark.slow
    @settings(max_examples=40, deadline=None)
    @given(nest_programs())
    def test_legal_orders_preserve_semantics(self, source):
        self._check_legal_orders(source)


class TestCompoundSoundnessProperty:
    def _check_compound(self, source):
        prog = parse_program(source)
        outcome = compound(prog, CostModel(cls=4))
        before = run_program(prog)
        after = run_program(outcome.program)
        for array in before:
            np.testing.assert_allclose(before[array], after[array], rtol=1e-12)

    @settings(max_examples=6, deadline=None)
    @given(nest_programs())
    def test_compound_preserves_semantics_quick(self, source):
        self._check_compound(source)

    @pytest.mark.slow
    @settings(max_examples=30, deadline=None)
    @given(nest_programs())
    def test_compound_preserves_semantics(self, source):
        self._check_compound(source)


@st.composite
def adjacent_loop_programs(draw):
    """Random pairs of adjacent single loops over shared 1-D arrays."""
    n = draw(st.integers(4, 8))
    arrays = ["A", "B", "C"]

    def stmt(loop_var):
        lhs = draw(st.sampled_from(arrays))
        rhs = draw(st.sampled_from(arrays))
        shift = draw(st.sampled_from(["", "-1", "+1"]))
        return f"{lhs}({loop_var}+2) = {rhs}({loop_var}+2{shift}) + 1.0"

    src = f"""
    PROGRAM p
    PARAMETER N = {n}
    REAL A(N+4), B(N+4), C(N+4)
    DO I = 1, N
      {stmt('I')}
    ENDDO
    DO J = 1, N
      {stmt('J')}
    ENDDO
    END
    """
    return src


class TestFusionSoundnessProperty:
    @settings(max_examples=40, deadline=None)
    @given(adjacent_loop_programs())
    def test_fusion_when_applied_preserves_semantics(self, source):
        prog = parse_program(source)
        result = fuse_adjacent(prog.body, CostModel(cls=4), require_benefit=False)
        fused_prog = prog.with_body(result.items)
        before = run_program(prog)
        after = run_program(fused_prog)
        for array in before:
            np.testing.assert_allclose(before[array], after[array], rtol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(adjacent_loop_programs())
    def test_fusion_preventing_is_sound(self, source):
        """If fusion_preventing says safe, forcing the fusion is safe."""
        from repro.transforms import compatible_depth, fuse_pair

        prog = parse_program(source)
        first, second = prog.top_loops
        depth = compatible_depth(first, second)
        if depth == 0 or fusion_preventing(first, second, depth):
            return
        fused = fuse_pair(first, second, depth)
        remaining = [n for n in prog.body if n is not first and n is not second]
        fused_prog = prog.with_body([fused] + remaining)
        before = run_program(prog)
        after = run_program(fused_prog)
        for array in before:
            np.testing.assert_allclose(before[array], after[array], rtol=1e-12)
