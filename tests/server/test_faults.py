"""Fault-path contract: every failure mode maps to its HTTP status.

400 malformed source (caret diagnostic) / bad JSON / bad schema,
411 missing length, 413 oversized body, 429 + Retry-After on a full
queue, 500 worker crash (traceback + input digest in the error body),
503 during drain, 504 on timeout — plus the graceful-shutdown
guarantee: a request in flight when shutdown starts still gets its
response.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

pytestmark = pytest.mark.tier1

SOURCE = (
    "PROGRAM t\n"
    "PARAMETER N = 32\n"
    "REAL A(N,N), B(N,N)\n"
    "DO J = 1, N\n"
    "  DO I = 1, N\n"
    "    A(I,J) = B(J,I) + 1.0\n"
    "  ENDDO\n"
    "ENDDO\n"
    "END\n"
)


class TestBadRequests:
    def test_malformed_source_gets_caret_diagnostic(self, client):
        reply = client.optimize("PROGRAM t\nDO I = oops\nEND\n")
        assert reply.status == 400
        error = reply.payload["error"]
        assert error["code"] == "parse-error"
        assert "^" in error["detail"]
        assert "2:" in error["detail"]  # line:col prefix points at DO line

    def test_bad_json_body(self, client):
        reply = client.request("POST", "/v1/optimize", b"{not json")
        assert reply.status == 400
        assert reply.payload["error"]["code"] == "bad-json"

    def test_unknown_field_is_rejected(self, client):
        reply = client.optimize(SOURCE, tile_size=8)
        assert reply.status == 400
        assert reply.payload["error"]["code"] == "unknown-field"
        assert "tile_size" in reply.payload["error"]["message"]

    def test_source_and_ir_are_mutually_exclusive(self, client):
        reply = client.request(
            "POST", "/v1/optimize", {"source": SOURCE, "ir": {"name": "x"}}
        )
        assert reply.status == 400
        assert reply.payload["error"]["code"] == "bad-input"

    def test_bad_ir_names_the_json_path(self, client):
        reply = client.optimize(ir={"name": "x", "params": {}, "arrays": []})
        assert reply.status == 400
        assert reply.payload["error"]["code"] == "bad-ir"

    def test_unknown_endpoint(self, client):
        reply = client.request("POST", "/v1/vectorize", {"source": SOURCE})
        assert reply.status == 404
        assert reply.payload["error"]["code"] == "unknown-endpoint"

    def test_fault_field_requires_debug_config(self, server_factory):
        handle = server_factory(debug_faults=False)
        reply = handle.client.optimize(SOURCE, fault="boom")
        assert reply.status == 400
        assert reply.payload["error"]["code"] == "fault-disabled"


class TestOversizedBody:
    def test_body_over_cap_is_413(self, server_factory):
        handle = server_factory(max_body_bytes=4096)
        reply = handle.client.request("POST", "/v1/optimize", b"x" * 8192)
        assert reply.status == 413
        assert reply.payload["error"]["code"] == "body-too-large"
        assert "REPRO_SERVER_MAX_BODY_BYTES" in reply.payload["error"]["message"]

    def test_missing_content_length_is_411(self, server):
        import socket

        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(b"POST /v1/optimize HTTP/1.1\r\nHost: x\r\n\r\n")
            raw = sock.recv(4096)
        assert raw.startswith(b"HTTP/1.1 411 ")


class TestWorkerCrash:
    def test_crash_maps_to_500_with_traceback_and_digest(self, client):
        reply = client.optimize(SOURCE, fault="boom")
        assert reply.status == 500
        error = reply.payload["error"]
        assert error["code"] == "worker-failure"
        assert "RuntimeError" in error["detail"]
        assert "injected worker fault" in error["detail"]
        assert len(error["input_digest"]) == 12

    def test_crash_leaves_a_server_remark(self, server):
        server.client.optimize(SOURCE, fault="boom")
        remarks = [r for r in server.server.obs.remarks if r.pass_name == "server"]
        assert remarks and remarks[0].kind == "failed"
        assert remarks[0].reason == "worker-failure"

    def test_crash_is_never_cached_and_siblings_survive(self, server):
        assert server.client.optimize(SOURCE, fault="boom").status == 500
        healthy = server.client.optimize(SOURCE)
        assert healthy.status == 200
        assert healthy.cache_state == "miss"  # the 500 did not poison the key

    def test_poison_request_in_a_shared_batch_fails_alone(self, server_factory):
        """One boom + healthy siblings land in one batch: only it 500s."""
        handle = server_factory(
            debug_faults=True, batch_max=4, batch_window_ms=200.0
        )

        def call(i):
            if i == 0:
                return handle.client.optimize(SOURCE, fault="boom").status
            scaled = SOURCE.replace("32", str(32 + 8 * i))
            return handle.client.optimize(scaled).status

        with ThreadPoolExecutor(4) as pool:
            statuses = sorted(pool.map(call, range(4)))
        assert statuses == [200, 200, 200, 500]


class TestBackpressure:
    def test_full_queue_answers_429_with_retry_after(self, server_factory):
        handle = server_factory(
            debug_faults=True, queue_depth=1, batch_max=1
        )

        def call(i):
            scaled = SOURCE.replace("32", str(32 + 8 * i))
            return handle.client.optimize(scaled, fault="sleep:0.5")

        with ThreadPoolExecutor(6) as pool:
            replies = list(pool.map(call, range(6)))
        statuses = sorted(reply.status for reply in replies)
        assert 429 in statuses
        assert 200 in statuses
        rejected = next(reply for reply in replies if reply.status == 429)
        assert rejected.headers["retry-after"] == "1"
        assert rejected.payload["error"]["code"] == "queue-full"

    def test_rejected_request_succeeds_on_retry(self, server_factory):
        handle = server_factory(debug_faults=True, queue_depth=1, batch_max=1)

        def call(i):
            scaled = SOURCE.replace("32", str(32 + 8 * i))
            return handle.client.optimize(scaled, fault="sleep:0.3")

        with ThreadPoolExecutor(6) as pool:
            replies = list(pool.map(call, range(6)))
        retried = [
            i for i, reply in enumerate(replies) if reply.status == 429
        ]
        assert retried, "load did not trigger backpressure"
        for i in retried:
            scaled = SOURCE.replace("32", str(32 + 8 * i))
            assert handle.client.optimize(scaled).status == 200


class TestTimeout:
    def test_slow_request_is_504(self, server_factory):
        handle = server_factory(debug_faults=True, request_timeout_s=0.3)
        reply = handle.client.optimize(SOURCE, fault="sleep:2")
        assert reply.status == 504
        assert reply.payload["error"]["code"] == "timeout"
        assert "REPRO_SERVER_REQUEST_TIMEOUT_S" in reply.payload["error"]["message"]


class TestGracefulShutdown:
    def test_inflight_request_survives_shutdown(self, server_factory):
        """Shutdown mid-request: the drained response still arrives."""
        handle = server_factory(debug_faults=True)
        result = {}

        def go():
            result["reply"] = handle.client.optimize(SOURCE, fault="sleep:0.6")

        worker = threading.Thread(target=go)
        worker.start()
        time.sleep(0.2)  # request is in flight
        drain = handle.shutdown_async()
        worker.join(timeout=15)
        drain.result(timeout=15)
        assert result["reply"].status == 200
        assert result["reply"].payload["endpoint"] == "optimize"

    def test_new_requests_rejected_while_draining(self, server_factory):
        handle = server_factory(debug_faults=True)
        blocker = threading.Thread(
            target=lambda: handle.client.optimize(SOURCE, fault="sleep:0.8")
        )
        blocker.start()
        time.sleep(0.2)
        drain = handle.shutdown_async()
        time.sleep(0.1)
        # The listener is closed; a fresh connection must be refused.
        with pytest.raises(OSError):
            handle.client.healthz()
        blocker.join(timeout=15)
        drain.result(timeout=15)
