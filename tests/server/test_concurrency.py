"""Concurrent-client behaviour: cache hit rates and single-flight dedup."""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import pytest

pytestmark = pytest.mark.tier1


def nest(scale: int) -> str:
    return (
        "PROGRAM t\n"
        f"PARAMETER N = {scale}\n"
        "REAL A(N,N), B(N,N)\n"
        "DO J = 1, N\n"
        "  DO I = 1, N\n"
        "    A(I,J) = B(J,I) + 1.0\n"
        "  ENDDO\n"
        "ENDDO\n"
        "END\n"
    )


class TestCacheUnderConcurrency:
    def test_hit_rate_across_concurrent_clients(self, server):
        """4 clients x 8 requests over 4 distinct nests: 4 misses total."""
        sources = [nest(16 + 8 * i) for i in range(4)]

        def hammer(worker: int) -> list[str]:
            states = []
            for i in range(8):
                reply = server.client.optimize(sources[(worker + i) % 4])
                assert reply.status == 200
                states.append(reply.cache_state)
            return states

        with ThreadPoolExecutor(4) as pool:
            all_states = [s for states in pool.map(hammer, range(4)) for s in states]
        metrics = server.client.metrics().payload
        # A concurrent requester may probe the cache before the leader
        # fills it (an extra counted miss), but it coalesces onto the
        # leader's future — the number of *computations* is exact.
        assert metrics["singleflight"]["led"] == 4
        assert metrics["cache"]["hits"] + metrics["cache"]["misses"] == 32
        assert metrics["cache"]["hits"] >= 32 - 4 - metrics["singleflight"]["coalesced"]
        assert all_states.count("hit") == metrics["cache"]["hits"]

    def test_eviction_keeps_serving(self, server_factory):
        """A 2-entry cache cycles 4 nests: every reply stays correct."""
        handle = server_factory(cache_cap=2)
        sources = [nest(16 + 8 * i) for i in range(4)]
        for _ in range(3):
            for source in sources:
                assert handle.client.optimize(source).status == 200
        stats = handle.client.metrics().payload["cache"]
        assert stats["evictions"] > 0
        assert stats["size"] <= 2


class TestSingleFlight:
    def test_identical_inflight_requests_coalesce(self, server):
        """N concurrent identical misses: one leader, N-1 followers."""
        source = nest(24)
        workers = 6

        def call(_):
            # The sleep holds the leader in flight long enough for every
            # follower to arrive and join its future.
            return server.client.optimize(source, fault="sleep:0.4")

        with ThreadPoolExecutor(workers) as pool:
            replies = list(pool.map(call, range(workers)))
        assert all(reply.status == 200 for reply in replies)
        bodies = {reply.body for reply in replies}
        assert len(bodies) == 1
        flight = server.client.metrics().payload["singleflight"]
        assert flight["led"] == 1
        assert flight["coalesced"] == workers - 1

    def test_distinct_requests_do_not_coalesce(self, server):
        sources = [nest(16 + 8 * i) for i in range(3)]
        with ThreadPoolExecutor(3) as pool:
            replies = list(pool.map(server.client.optimize, sources))
        assert all(reply.status == 200 for reply in replies)
        flight = server.client.metrics().payload["singleflight"]
        assert flight["led"] == 3
        assert flight["coalesced"] == 0


@pytest.mark.slow
class TestSoak:
    def test_cache_hit_is_an_order_of_magnitude_faster(self, server):
        """The acceptance bar: second identical request >= 10x faster.

        Timed over repeated trials against the *autotune* endpoint (the
        priciest compile) so the miss cost dwarfs HTTP overhead.
        """
        source = nest(32)
        start = time.perf_counter()
        first = server.client.autotune(source, budget=32, beam=4)
        miss_elapsed = time.perf_counter() - start
        assert first.cache_state == "miss"

        hits = []
        for _ in range(5):
            start = time.perf_counter()
            reply = server.client.autotune(source, budget=32, beam=4)
            hits.append(time.perf_counter() - start)
            assert reply.cache_state == "hit"
            assert reply.body == first.body
        assert min(hits) * 10 <= miss_elapsed, (
            f"hit {min(hits) * 1000:.2f}ms vs miss {miss_elapsed * 1000:.2f}ms"
        )

    def test_sustained_mixed_load(self, server_factory):
        """200 requests, 8 clients, 4 workers sharded: zero failures."""
        handle = server_factory(jobs=2, batch_max=4, batch_window_ms=5.0)
        sources = [nest(16 + 4 * i) for i in range(10)]

        def hammer(worker: int) -> int:
            ok = 0
            for i in range(25):
                reply = handle.client.optimize(sources[(worker * 7 + i) % 10])
                ok += reply.status == 200
            return ok

        with ThreadPoolExecutor(8) as pool:
            totals = list(pool.map(hammer, range(8)))
        assert sum(totals) == 200
        metrics = handle.client.metrics().payload
        assert metrics["requests"]["by_status"] == {"200": 200}
