"""Service-test plumbing: an in-process server on an ephemeral port.

The fixture boots :class:`repro.server.ReproServer` inside a dedicated
background thread running its own event loop, binds port 0, and hands
tests a :class:`repro.server.client.ReproClient` pointed at it — real
sockets, real HTTP, no subprocess. ``server_factory`` builds servers
with custom configs (tiny queues, short timeouts) for the fault tests;
the default ``server``/``client`` pair is session-scoped-per-module
cheap enough to rebuild per test.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.server import ReproServer, ServerConfig
from repro.server.client import ReproClient


class ServerHandle:
    """One live server: its config, its loop thread, and a client."""

    def __init__(self, config: ServerConfig):
        self.server = ReproServer(config)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self.loop.run_forever, name="repro-server-test", daemon=True
        )
        self._thread.start()
        self.host, self.port = self.call(self.server.start())
        self.client = ReproClient(self.host, self.port)
        self._stopped = False

    def call(self, coroutine, timeout: float = 30.0):
        """Run a coroutine on the server loop from the test thread."""
        return asyncio.run_coroutine_threadsafe(
            coroutine, self.loop
        ).result(timeout)

    def shutdown_async(self):
        """Kick off a graceful shutdown without waiting (drain tests)."""
        self._stopped = True
        return asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self.loop
        )

    def stop(self) -> None:
        if not self._stopped:
            self._stopped = True
            self.call(self.server.shutdown())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=10)


@pytest.fixture
def server_factory():
    """Build servers with custom configs; all are stopped at teardown."""
    handles: list[ServerHandle] = []

    def make(**overrides) -> ServerHandle:
        overrides.setdefault("port", 0)
        overrides.setdefault("ledger", False)
        handle = ServerHandle(ServerConfig(**overrides))
        handles.append(handle)
        return handle

    yield make
    for handle in handles:
        handle.stop()


@pytest.fixture
def server(server_factory) -> ServerHandle:
    """A default-config server with fault injection enabled."""
    return server_factory(debug_faults=True)


@pytest.fixture
def client(server) -> ReproClient:
    return server.client
