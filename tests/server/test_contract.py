"""Golden request/response contract tests, one per endpoint.

Response bodies are deterministic by design (stable field order, no
volatile values — timing and cache state travel in headers), so the
full body is snapshotted under ``tests/golden/server/`` and compared
byte-for-byte. Refresh after a deliberate contract change with::

    PYTHONPATH=src python -m pytest tests/server/test_contract.py --update-golden
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.tier1

SOURCE = (
    "PROGRAM contract\n"
    "PARAMETER N = 32\n"
    "REAL A(N,N), B(N,N)\n"
    "DO J = 1, N\n"
    "  DO I = 1, N\n"
    "    A(I,J) = B(J,I) + 1.0\n"
    "  ENDDO\n"
    "ENDDO\n"
    "END\n"
)

#: the same nest as SOURCE, expressed as the structured JSON IR
IR = {
    "name": "contract",
    "params": {"N": 32},
    "arrays": [
        {"name": "A", "shape": ["N", "N"], "elem_size": 8},
        {"name": "B", "shape": ["N", "N"], "elem_size": 8},
    ],
    "body": [
        {
            "loop": {
                "var": "J",
                "lb": 1,
                "ub": "N",
                "step": 1,
                "body": [
                    {
                        "loop": {
                            "var": "I",
                            "lb": 1,
                            "ub": "N",
                            "step": 1,
                            "body": [
                                {"assign": {"lhs": "A(I,J)", "rhs": "B(J,I) + 1.0"}}
                            ],
                        }
                    }
                ],
            }
        }
    ],
}


def body_text(reply) -> str:
    return reply.body.decode("utf-8")


class TestEndpointGoldens:
    def test_optimize(self, client, golden):
        reply = client.optimize(SOURCE, scalar_replace=True)
        assert reply.status == 200
        assert reply.cache_state == "miss"
        assert reply.headers["x-repro-digest"] == reply.payload["digest"]
        golden("server/optimize.json", body_text(reply))

    def test_optimize_from_ir_is_the_same_response(self, client, golden):
        reply = client.optimize(ir=IR, scalar_replace=True)
        assert reply.status == 200
        # Same canonical nest, same params -> the same contract bytes.
        golden("server/optimize.json", body_text(reply))

    def test_lint(self, client, golden):
        reply = client.lint(SOURCE)
        assert reply.status == 200
        assert reply.payload["result"]["counts"]["warning"] >= 1
        golden("server/lint.json", body_text(reply))

    def test_locality(self, client, golden):
        reply = client.locality(SOURCE, capacities=[16, 64, 512])
        assert reply.status == 200
        ladder = [row["miss_ratio"] for row in reply.payload["capacities"]]
        assert ladder == sorted(ladder, reverse=True)
        golden("server/locality.json", body_text(reply))

    def test_autotune(self, client, golden):
        reply = client.autotune(SOURCE, budget=8, beam=2)
        assert reply.status == 200
        assert reply.payload["locality"]["improvement_pp"] >= 0
        golden("server/autotune.json", body_text(reply))

    def test_parse_error_diagnostic(self, client, golden):
        reply = client.optimize("PROGRAM t\nDO = oops\nEND\n")
        assert reply.status == 400
        assert reply.payload["error"]["code"] == "parse-error"
        assert "^" in reply.payload["error"]["detail"]
        golden("server/error_parse.json", body_text(reply))

    def test_healthz(self, client):
        reply = client.healthz()
        assert reply.status == 200
        assert reply.payload == {"schema": 1, "status": "ok"}


class TestCacheContract:
    def test_hit_is_byte_identical_to_miss(self, client):
        first = client.optimize(SOURCE)
        second = client.optimize(SOURCE)
        assert (first.cache_state, second.cache_state) == ("miss", "hit")
        assert first.body == second.body

    def test_alpha_variant_shares_the_cache_entry(self, client):
        """Renamed loop vars + reordered decls -> same key, same bytes."""
        variant = (
            "PROGRAM renamed\n"
            "PARAMETER N = 32\n"
            "REAL B(N,N), A(N,N)\n"
            "DO JJ = 1, N\n"
            "  DO II = 1, N\n"
            "    A(II,JJ) = B(JJ,II) + 1.0\n"
            "  ENDDO\n"
            "ENDDO\n"
            "END\n"
        )
        first = client.optimize(SOURCE)
        second = client.optimize(variant)
        assert second.cache_state == "hit"
        assert first.body == second.body
        assert first.headers["x-repro-digest"] == second.headers["x-repro-digest"]

    def test_different_params_miss(self, client):
        client.optimize(SOURCE)
        other = client.optimize(SOURCE, cls=8)
        assert other.cache_state == "miss"

    def test_metrics_report_the_hits(self, server):
        client = server.client
        for _ in range(3):
            client.lint(SOURCE)
        metrics = client.metrics().payload
        assert metrics["cache"]["hits"] == 2
        assert metrics["cache"]["misses"] == 1
        assert metrics["requests"]["by_endpoint"]["lint"] == 3
        assert metrics["requests"]["by_status"]["200"] >= 3
