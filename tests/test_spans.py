"""Frontend source spans and caret-style parse errors."""

import pytest

from repro.errors import ParseError
from repro.frontend import parse_program
from repro.ir import Assign, Loop, Ref, Span, Var

SOURCE = """\
PROGRAM demo
PARAMETER N = 8
REAL A(N,N), B(N,N)
DO I = 1, N
  DO J = 1, N
    A(I,J) = B(I,J) + 1
  ENDDO
ENDDO
END
"""


class TestSpans:
    def test_loop_spans_cover_headers(self):
        program = parse_program(SOURCE)
        outer = program.body[0]
        assert isinstance(outer, Loop)
        assert outer.span is not None
        assert (outer.span.line, outer.span.column) == (4, 1)
        inner = outer.body[0]
        assert inner.span is not None
        assert inner.span.line == 5
        assert inner.span.column == 3

    def test_assignment_span(self):
        program = parse_program(SOURCE)
        stmt = program.body[0].body[0].body[0]
        assert isinstance(stmt, Assign)
        assert stmt.span is not None
        assert stmt.span.line == 6
        assert stmt.span.column == 5
        assert stmt.span.end_line == 6

    def test_span_excluded_from_equality(self):
        # Spans are provenance only; structurally identical nodes must
        # stay equal (analysis caches key on node equality/hash).
        ref = Ref("A", (Var("I"),))
        one = Assign(ref, Var("I"), span=Span.point(1, 1))
        two = Assign(ref, Var("I"), span=Span.point(9, 9))
        bare = Assign(ref, Var("I"))
        assert one == two == bare
        assert hash(one) == hash(two) == hash(bare)

    def test_spans_survive_renumbering(self):
        program = parse_program(SOURCE)
        stmt = program.body[0].body[0].body[0]
        renumbered = stmt.with_sid(99)
        assert renumbered.span == stmt.span

    def test_str_and_merge(self):
        span = Span(2, 3, 2, 10)
        assert str(span) == "2:3"
        merged = span.merge(Span(4, 1, 4, 6))
        assert (merged.line, merged.column) == (2, 3)
        assert (merged.end_line, merged.end_column) == (4, 6)


class TestParseErrors:
    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse_program("PROGRAM x\nREAL A(4)\nDO I = 1, 4\nEND")
        exc = info.value
        assert exc.line == 4
        assert "missing ENDDO" in exc.message
        assert str(exc).startswith("4:")

    def test_error_quotes_source_with_caret(self):
        with pytest.raises(ParseError) as info:
            parse_program("PROGRAM x\nREAL A(4)\nA(1) = = 2\nEND")
        rendered = str(info.value)
        assert "A(1) = = 2" in rendered
        assert "^" in rendered
