"""Benchmark: regenerate Figure 7 (Cholesky loop organizations)."""

from repro.experiments import figure7_cholesky

from conftest import emit, run_once


def test_figure7_cholesky(benchmark):
    result = run_once(benchmark, figure7_cholesky.run, n=96)
    emit(figure7_cholesky.render(result))
    assert result.simulated_ranking == result.model_ranking
    assert result.compound_matches_best
