"""Benchmark: regenerate Figures 8 and 9 (memory-order histograms)."""

from repro.experiments import figures8_9

from conftest import emit, run_once


def test_figures8_9(benchmark):
    result = run_once(benchmark, figures8_9.run, n=16)
    emit(figures8_9.render(result))
    assert result.share_at_least(result.nests_transformed, 80) > 0.5
    assert result.share_at_least(result.inner_transformed, 90) > 0.5
