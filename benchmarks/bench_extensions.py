"""Benchmarks for the framework extensions (paper §6 and step 3).

Tiling and scalar replacement are the next steps of the paper's
optimization framework after memory ordering; these benches quantify
their effect on top of Compound's output.
"""

from repro.cache import CACHE2
from repro.exec import Machine, simulate
from repro.frontend import parse_program
from repro.transforms import scalar_replace_program, tile_nest

from conftest import emit, run_once

MACHINE = Machine(cache=CACHE2, miss_penalty=20)


def _const_matmul(n):
    return parse_program(
        f"""
        PROGRAM mm
        REAL A({n},{n}), B({n},{n}), C({n},{n})
        DO J = 1, {n}
          DO K = 1, {n}
            DO I = 1, {n}
              C(I,J) = C(I,J) + A(I,K)*B(K,J)
            ENDDO
          ENDDO
        ENDDO
        END
        """
    )


def test_tiling_beyond_memory_order(benchmark):
    """Memory-order matmul still misses on long-term reuse; tiling J and
    K captures it (paper §6: tiling creates loop-invariant references)."""

    def sweep():
        rows = []
        for n in (32, 64, 96):
            base = _const_matmul(n)
            tiled_loop = tile_nest(base.top_loops[0], {"J": 16, "K": 16}).loop
            tiled = base.with_body((tiled_loop,))
            perf_base = simulate(base, MACHINE)
            perf_tiled = simulate(tiled, MACHINE)
            rows.append(
                (n, perf_base.cycles, perf_tiled.cycles,
                 perf_base.cache.misses, perf_tiled.cache.misses)
            )
        return rows

    rows = run_once(benchmark, sweep)
    lines = ["Tiling (16x16) on memory-order matmul:"]
    lines.append(f"{'N':>4} {'cycles':>10} {'tiled':>10} {'misses':>9} {'tiled':>9}")
    for n, c0, c1, m0, m1 in rows:
        lines.append(f"{n:>4} {c0:>10} {c1:>10} {m0:>9} {m1:>9}")
    emit("\n".join(lines))
    # Tiling wins once the reuse no longer fits (N=64 here). At N=96 the
    # untuned 16x16 tile's working set itself overflows the 8KB cache and
    # tiling loses -- the paper's §6 caution that tiling "must be applied
    # judiciously" and needs capacity/interference analysis.
    n64 = rows[1]
    assert n64[2] < n64[1] and n64[4] < n64[3]


def test_scalar_replacement_traffic(benchmark):
    """Promoting the I-invariant B(K,J) removes a quarter of matmul's
    memory references."""

    def sweep():
        program = _const_matmul(48)
        result = scalar_replace_program(program)
        before = simulate(program, MACHINE)
        after = simulate(result.program, MACHINE)
        return result.replaced, before, after

    replaced, before, after = run_once(benchmark, sweep)
    emit(
        f"Scalar replacement: {replaced} refs promoted; accesses "
        f"{before.accesses} -> {after.accesses}; cycles "
        f"{before.cycles} -> {after.cycles}"
    )
    assert replaced == 1
    # One of four references per inner iteration is gone; the hoisted
    # pre-loads add one B read per (J, K) pair.
    assert after.accesses == before.accesses * 3 // 4 + 48 * 48
    assert after.cycles < before.cycles


def test_reuse_distance_profiles(benchmark):
    """Reuse-distance (LRU stack distance) profiles before/after Compound:
    optimization moves reuse mass toward short distances, independent of
    any particular cache geometry."""
    from repro.cache.reuse import reuse_profile
    from repro.model import CostModel
    from repro.suite import get_entry
    from repro.transforms import compound

    def sweep():
        rows = []
        for name in ("arc2d_like", "jacobi", "vpenta_like"):
            program = get_entry(name).program(32)
            final = compound(program, CostModel(cls=4)).program
            before = reuse_profile(program, line=32)
            after = reuse_profile(final, line=32)
            capacity = 256  # lines = 8KB at 32B
            rows.append(
                (
                    name,
                    before.hit_rate_for_capacity(capacity),
                    after.hit_rate_for_capacity(capacity),
                    before.percentile(0.9),
                    after.percentile(0.9),
                )
            )
        return rows

    rows = run_once(benchmark, sweep)
    lines = ["Reuse-distance profiles (32B lines, capacity 256 lines):"]
    lines.append(f"{'program':<14} {'hit<cap':>8} {'after':>8} {'p90 dist':>9} {'after':>7}")
    for name, h0, h1, p0, p1 in rows:
        lines.append(f"{name:<14} {h0:>8.1%} {h1:>8.1%} {p0:>9} {p1:>7}")
    emit("\n".join(lines))
    # Profiles may cross at a single capacity (a transformed program can
    # trade a little long-distance reuse for much more short-distance
    # reuse), so assert no material degradation plus clear wins.
    assert all(h1 >= h0 - 0.02 for _, h0, h1, _, _ in rows)
    assert any(h1 > h0 + 0.03 for _, h0, h1, _, _ in rows)
    assert all(p1 <= p0 for _, _, _, p0, p1 in rows)
    assert any(p1 < p0 / 4 for _, _, _, p0, p1 in rows)
