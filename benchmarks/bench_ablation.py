"""Ablation benches for the design choices DESIGN.md calls out.

Each test varies one model parameter and reports its effect on the
decisions the compiler makes (printed) while timing the sweep:

* RefGroup's |d| <= 2 group-temporal threshold;
* the cache-line-size parameter cls feeding consecutive-cost and
  group-spatial detection;
* the timing model's miss penalty (does the predicted ranking survive?);
* fusion's profitability test (greedy-with-benefit vs fuse-anything).
"""

from repro.exec import Machine, simulate
from repro.cache import CACHE2
from repro.model import CostModel
from repro.suite import MATMUL_ORDERS, matmul, suite_entries
from repro.transforms import compound, fuse_adjacent

from conftest import emit, run_once


def test_ablation_temporal_threshold(benchmark):
    """|d| <= k in RefGroup condition 1(b): k=0 loses group-temporal
    reuse between nearby iterations; k=2 is the paper's choice.

    The references differ in the *second* subscript (condition 2 cannot
    group them), so only the temporal threshold decides.
    """
    from repro.frontend import parse_program

    def sweep():
        prog = parse_program(
            """
            PROGRAM p
            PARAMETER N = 64
            REAL A(N,N), B(N,N)
            DO I = 1, N
              DO J = 3, N
                B(I,J) = A(I,J) + A(I,J-2)
              ENDDO
            ENDDO
            END
            """
        )
        nest = prog.top_loops[0]
        out = {}
        for k in (0, 1, 2, 4, 8):
            model = CostModel(cls=4, temporal_max=k)
            out[k] = len(model.groups(nest, "J"))
        return out

    groups = run_once(benchmark, sweep)
    emit(f"Ablation temporal_max -> group count (w.r.t. J): {groups}")
    # Below the distance (2) the A references stay separate; at the
    # paper's threshold they merge. Larger thresholds only merge groups.
    assert groups[0] == 3 and groups[1] == 3
    assert groups[2] == 2
    counts = [groups[k] for k in sorted(groups)]
    assert counts == sorted(counts, reverse=True)


def test_ablation_cls(benchmark):
    """cls (line size in elements) scales consecutive costs; the chosen
    memory order for matmul is cls-invariant but the predicted benefit
    is not."""

    def sweep():
        out = {}
        nest = matmul(16, "IJK").top_loops[0]
        for cls in (2, 4, 8, 16):
            model = CostModel(cls=cls)
            costs = model.loop_costs(nest)
            out[cls] = (
                tuple(model.memory_order(nest)),
                costs["J"].magnitude() / costs["I"].magnitude(),
            )
        return out

    results = run_once(benchmark, sweep)
    emit(
        "Ablation cls -> (memory order, J/I cost ratio): "
        + ", ".join(f"{k}: {v[0]} {v[1]:.1f}" for k, v in results.items())
    )
    orders = {v[0] for v in results.values()}
    assert orders == {("J", "K", "I")}
    ratios = [results[c][1] for c in sorted(results)]
    assert ratios == sorted(ratios)  # longer lines favour I more


def test_ablation_miss_penalty(benchmark):
    """The model's predicted winner must not depend on the timing
    model's miss penalty (rankings are miss-count driven)."""

    def sweep():
        out = {}
        for penalty in (4, 16, 64):
            machine = Machine(cache=CACHE2, miss_penalty=penalty)
            cycles = {
                order: simulate(matmul(48, order), machine).cycles
                for order in MATMUL_ORDERS
            }
            out[penalty] = min(cycles, key=cycles.get)
        return out

    winners = run_once(benchmark, sweep)
    emit(f"Ablation miss penalty -> best matmul order: {winners}")
    assert set(winners.values()) == {"JKI"}


def test_ablation_fusion_profitability(benchmark):
    """Greedy fusion with the benefit test vs fuse-everything-legal:
    the benefit test never fuses more, and skips no-reuse pairs."""

    def sweep():
        model = CostModel(cls=4)
        with_benefit = 0
        without = 0
        for entry in suite_entries():
            program = entry.program(12)
            with_benefit += fuse_adjacent(program.body, model).fused
            without += fuse_adjacent(
                program.body, model, require_benefit=False
            ).fused
        return with_benefit, without

    with_benefit, without = run_once(benchmark, sweep)
    emit(
        f"Ablation fusion: fused with benefit test = {with_benefit}, "
        f"without = {without}"
    )
    assert with_benefit <= without
    assert with_benefit > 0
