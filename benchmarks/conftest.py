"""Shared helpers for the benchmark harness.

Each bench regenerates one of the paper's tables/figures: the benchmark
fixture times the experiment run, and the rendered table is printed
(visible with ``pytest benchmarks/ --benchmark-only -s``) *and* appended
to ``bench_tables.txt`` at the repo root, so the regenerated rows survive
pytest's output capture.
"""

import os
import sys

_TABLES_PATH = os.environ.get(
    "REPRO_BENCH_TABLES",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "bench_tables.txt"),
)
_started = False


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` with a single round (experiments are seconds-long)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(text: str) -> None:
    """Print a rendered table and persist it to the tables file."""
    global _started
    sys.stdout.write("\n" + text + "\n")
    mode = "a" if _started else "w"
    _started = True
    with open(_TABLES_PATH, mode) as handle:
        handle.write(text + "\n\n")
