"""Benchmark: regenerate Table 4 (simulated cache hit rates)."""

from repro.experiments import table4_hitrates

from conftest import emit, run_once


def test_table4_hit_rates(benchmark):
    result = run_once(benchmark, table4_hitrates.run, scale=1.0)
    emit(table4_hitrates.render(result))
    # The paper's headline: the big cache is nearly saturated while the
    # small cache shows the improvements.
    assert len(result.improved_whole("cache2")) > len(
        result.improved_whole("cache1")
    )
