"""Analytic locality prediction vs trace-driven simulation.

For each gate kernel the analytic predictor
(:func:`repro.locality.predict_locality`) and the exact trace-driven
reuse-distance profile are compared on fully-associative LRU hit rates
at two geometries (fa1 = 64KB/128B lines, fa2 = 8KB/32B lines), and the
predictor is timed against the per-event trace simulation it replaces.
Two gates:

* **accuracy** — |predicted - simulated| warm hit rate within 2
  percentage points on every (kernel, geometry) pair;
* **speedup** — prediction at least 50x faster than the event-trace
  simulation on every full-size kernel (it is usually 1000x+).

The measured trajectory is written to ``BENCH_locality.json`` so future
PRs can track both accuracy and speedup. Runs standalone
(``python benchmarks/bench_locality.py [--quick]``) and under pytest
(``pytest benchmarks/bench_locality.py``) without the pytest-benchmark
fixture. ``--quick`` uses small sizes and skips the speedup gate (tiny
kernels finish in microseconds either way; CI boxes are noisy) but
still enforces the 2pp accuracy gate and writes the artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.cache.reuse import reuse_profile
from repro.exec import simulate
from repro.locality import predict_locality
from repro.suite import get_entry

ERROR_BOUND_PP = 2.0
SPEEDUP_TARGET = 50.0

#: name -> (line bytes, capacity in lines); mirrors table4_analytic.
FA_CONFIGS = {
    "fa1": (128, 512),  # 64 KB
    "fa2": (32, 256),  # 8 KB
}

#: Same gate kernels and sizes as bench_trace_engine.py.
FULL_KERNELS = [
    ("jacobi", 513),
    ("adi", 481),
    ("erlebacher_like", 97),
    ("cholesky", 161),
    ("transpose", 769),
]

QUICK_KERNELS = [
    ("jacobi", 65),
    ("adi", 49),
    ("erlebacher_like", 17),
    ("cholesky", 41),
    ("transpose", 97),
]

DEFAULT_JSON_PATH = os.environ.get(
    "REPRO_BENCH_LOCALITY",
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_locality.json",
    ),
)


def measure(kernels, time_event: bool) -> list[dict]:
    """Accuracy (and optionally speedup) rows, one per (kernel, config)."""
    rows = []
    for name, n in kernels:
        program = get_entry(name).program(n)
        event_s = None
        if time_event:
            start = time.perf_counter()
            simulate(program, engine="event")
            event_s = time.perf_counter() - start
        for config, (line, lines) in FA_CONFIGS.items():
            trace = reuse_profile(program, line=line, max_accesses=1 << 25)
            start = time.perf_counter()
            prediction = predict_locality(program, line=line)
            predict_s = time.perf_counter() - start
            simulated = trace.hit_rate_for_capacity(lines)
            predicted = prediction.hit_rate_for_capacity(lines)
            rows.append(
                {
                    "kernel": name,
                    "n": n,
                    "config": config,
                    "accesses": trace.accesses,
                    "simulated": simulated,
                    "predicted": predicted,
                    "error_pp": abs(predicted - simulated) * 100.0,
                    "predict_s": predict_s,
                    "event_s": event_s,
                    "speedup": (event_s / predict_s) if event_s else None,
                }
            )
    return rows


def run(quick: bool = False) -> dict:
    kernels = QUICK_KERNELS if quick else FULL_KERNELS
    rows = measure(kernels, time_event=not quick)
    worst = max(r["error_pp"] for r in rows)
    speedups = [r["speedup"] for r in rows if r["speedup"] is not None]
    return {
        "quick": quick,
        "error_bound_pp": ERROR_BOUND_PP,
        "speedup_target": SPEEDUP_TARGET,
        "kernels": rows,
        "worst_error_pp": worst,
        "min_speedup": min(speedups) if speedups else None,
    }


def write_json(payload: dict, path: str = DEFAULT_JSON_PATH) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------------
# pytest entry points (quick-sized so `pytest benchmarks/` stays fast)
# ----------------------------------------------------------------------
def test_prediction_within_two_points_quick():
    rows = measure(QUICK_KERNELS, time_event=False)
    offenders = [
        (r["kernel"], r["config"], r["error_pp"])
        for r in rows
        if r["error_pp"] > ERROR_BOUND_PP
    ]
    assert not offenders, offenders


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, no speedup gate (accuracy gate only)",
    )
    parser.add_argument("--json", default=DEFAULT_JSON_PATH)
    parser.add_argument(
        "--no-ledger", action="store_true", help="skip the run-ledger append"
    )
    args = parser.parse_args(argv)

    payload = run(quick=args.quick)
    write_json(payload, args.json)
    if not args.no_ledger:
        from bench_trace_engine import ledger_append

        ledger_append("locality", list(argv or sys.argv[1:]), payload)

    for row in payload["kernels"]:
        speed = (
            f" predict={row['predict_s'] * 1e3:7.2f} ms"
            f" event={row['event_s']:7.2f} s"
            f" speedup={row['speedup']:8.0f}x"
            if row["speedup"] is not None
            else f" predict={row['predict_s'] * 1e3:7.2f} ms"
        )
        print(
            f"{row['kernel']:>16s} n={row['n']:<4d} {row['config']} "
            f"sim={row['simulated']:.4f} pred={row['predicted']:.4f} "
            f"err={row['error_pp']:4.2f}pp{speed}"
        )
    print(f"artifact: {args.json}")
    ok = payload["worst_error_pp"] <= ERROR_BOUND_PP
    print(
        f"accuracy: worst error {payload['worst_error_pp']:.2f}pp "
        f"(bound {ERROR_BOUND_PP}pp): {'PASS' if ok else 'FAIL'}"
    )
    if not args.quick:
        fast = payload["min_speedup"] is not None and (
            payload["min_speedup"] >= SPEEDUP_TARGET
        )
        print(
            f"speedup: min {payload['min_speedup']:.0f}x "
            f"(target {SPEEDUP_TARGET:.0f}x): {'PASS' if fast else 'FAIL'}"
        )
        ok = ok and fast
    else:
        print("PASS (quick mode: speedup gate skipped)" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
