"""Benchmark: regenerate Table 1 (Erlebacher hand/distributed/fused)."""

from repro.experiments import table1_erlebacher

from conftest import emit, run_once


def test_table1_erlebacher(benchmark):
    result = run_once(benchmark, table1_erlebacher.run, n=24)
    emit(table1_erlebacher.render(result))
    assert result.fused_always_best
