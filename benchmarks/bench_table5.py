"""Benchmark: regenerate Table 5 (data access properties)."""

from repro.experiments import table5_access

from conftest import emit, run_once


def test_table5_access_properties(benchmark):
    result = run_once(benchmark, table5_access.run, n=16)
    emit(table5_access.render(result))
    panel = result.panel("all programs")
    assert panel.final.row["Unit%"] > panel.original.row["Unit%"]
