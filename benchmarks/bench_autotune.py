"""Model-driven autotuning vs exhaustive simulation: regret and speedup.

For each gate kernel the autotuner searches the permutation x tiling x
fusion space with the *analytic* cost oracle only, and the winner is
compared against a brute-force reference that scores **every** candidate
the search generated with the trace-driven cache simulator:

* **regret** — the simulated miss ratio of the model-chosen config minus
  the best simulated miss ratio over the whole candidate pool, in
  percentage points. Within 2pp on every kernel: trusting the analytic
  model costs almost nothing in result quality;
* **speedup** — the model-driven search must be at least 50x cheaper
  than simulating the same candidate pool (candidate generation time is
  charged to both sides; only the scoring method differs);
* **dominance** — the chosen config's predicted misses never exceed the
  paper's compound algorithm output (the search seeds it, so this is a
  regression check on the ranking).

The measured trajectory is written to ``BENCH_autotune.json`` so future
PRs can track search quality. Runs standalone
(``python benchmarks/bench_autotune.py [--quick]``) and under pytest
(``pytest benchmarks/bench_autotune.py``). ``--quick`` uses small sizes
and skips the speedup gate (tiny simulations finish in milliseconds; CI
boxes are noisy) but still enforces the regret and dominance gates and
writes the artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.autotune import autotune
from repro.autotune.search import SIM_MAX_ACCESSES, _sim_eval
from repro.experiments.common import run_sharded
from repro.suite import get_entry

REGRET_BOUND_PP = 2.0
SPEEDUP_TARGET = 50.0

#: Search geometry: the 8 KB / 32 B-line fa2 config whose analytic
#: predictions bench_locality gates to 2pp on the whole suite. At
#: 128-byte lines the predictor under-estimates capacity misses on
#: cholesky's triangular column accesses and misranks a predicted
#: near-tie (7pp simulated regret at n=97) — the model is only a
#: trustworthy search oracle inside its validated envelope, which is
#: exactly what this bench pins down.
LINE = 32
CAPACITY = 256
BUDGET = 64
BEAM = 4

#: Same gate kernels as the other benches, sized so the brute-force
#: simulation reference stays under a few minutes total.
FULL_KERNELS = [
    ("jacobi", 257),
    ("adi", 241),
    ("erlebacher_like", 33),
    ("cholesky", 129),
    ("transpose", 385),
]

#: Quick sizes still put every array clearly past the 8 KB cache —
#: right at the capacity boundary (jacobi n=33: 8.7 KB arrays) the
#: analytic threshold model can land on the wrong side and regret spikes.
QUICK_KERNELS = [
    ("jacobi", 65),
    ("adi", 25),
    ("erlebacher_like", 9),
    ("cholesky", 17),
    ("transpose", 49),
]

DEFAULT_JSON_PATH = os.environ.get(
    "REPRO_BENCH_AUTOTUNE",
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_autotune.json",
    ),
)

_EPS = 1e-9


def measure(kernels, jobs: int | None = None) -> list[dict]:
    """One row per kernel: search outcome, regret, and honest timings."""
    rows = []
    for name, n in kernels:
        program = get_entry(name).program(n)
        result = autotune(
            program,
            line=LINE,
            capacity=CAPACITY,
            budget=BUDGET,
            beam=BEAM,
            topk=0,
        )
        # Brute-force reference: simulate every candidate the search
        # generated. Sharded across workers for wall time, but the
        # *charged* cost is the serial sum of per-candidate seconds —
        # what a simulation-driven search would actually have to spend.
        calls = [
            (c.program, LINE, CAPACITY, LINE // 8, SIM_MAX_ACCESSES)
            for c in result.ranked
        ]
        sim_rows = run_sharded(_sim_eval, calls, jobs)
        sim_ratios = {}
        sim_serial_s = 0.0
        for candidate, (misses, accesses, seconds) in zip(result.ranked, sim_rows):
            sim_ratios[candidate.text] = misses / accesses if accesses else 0.0
            sim_serial_s += seconds
        chosen_sim = sim_ratios[result.best.text]
        best_sim = min(sim_ratios.values())
        regret_pp = (chosen_sim - best_sim) * 100.0

        model_search_s = result.elapsed_s
        sim_search_s = result.generation_s + sim_serial_s
        assert result.best.cost is not None
        assert result.original.cost is not None
        assert result.compound.cost is not None
        rows.append(
            {
                "kernel": name,
                "n": n,
                "candidates": len(result.ranked),
                "evals": result.evaluated,
                "best": result.best.describe(),
                "source": result.best.source,
                "verified": result.verified,
                "miss_ratio_orig": result.original.cost.miss_ratio,
                "miss_ratio_model": result.best.cost.miss_ratio,
                "sim_ratio_chosen": chosen_sim,
                "sim_ratio_best": best_sim,
                "regret_pp": regret_pp,
                "beats_compound": (
                    result.best.cost.misses
                    <= result.compound.cost.misses + _EPS
                ),
                "model_search_s": model_search_s,
                "sim_search_s": sim_search_s,
                "speedup": sim_search_s / model_search_s
                if model_search_s
                else None,
            }
        )
    return rows


def run(quick: bool = False, jobs: int | None = None) -> dict:
    kernels = QUICK_KERNELS if quick else FULL_KERNELS
    rows = measure(kernels, jobs=jobs)
    return {
        "quick": quick,
        "line": LINE,
        "capacity": CAPACITY,
        "budget": BUDGET,
        "beam": BEAM,
        "regret_bound_pp": REGRET_BOUND_PP,
        "speedup_target": SPEEDUP_TARGET,
        "kernels": rows,
        "worst_regret_pp": max(r["regret_pp"] for r in rows),
        "min_speedup": min(r["speedup"] for r in rows if r["speedup"]),
        "all_beat_compound": all(r["beats_compound"] for r in rows),
    }


def write_json(payload: dict, path: str = DEFAULT_JSON_PATH) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------------
# pytest entry points (quick-sized so `pytest benchmarks/` stays fast)
# ----------------------------------------------------------------------
def test_autotune_regret_within_two_points_quick():
    rows = measure(QUICK_KERNELS)
    offenders = [
        (r["kernel"], r["regret_pp"]) for r in rows if r["regret_pp"] > REGRET_BOUND_PP
    ]
    assert not offenders, offenders
    losers = [r["kernel"] for r in rows if not r["beats_compound"]]
    assert not losers, losers


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, no speedup gate (regret + dominance gates only)",
    )
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--json", default=DEFAULT_JSON_PATH)
    parser.add_argument(
        "--no-ledger", action="store_true", help="skip the run-ledger append"
    )
    args = parser.parse_args(argv)

    start = time.perf_counter()
    payload = run(quick=args.quick, jobs=args.jobs)
    payload["bench_s"] = time.perf_counter() - start
    write_json(payload, args.json)
    if not args.no_ledger:
        from bench_trace_engine import ledger_append

        ledger_append("autotune", list(argv or sys.argv[1:]), payload)

    for row in payload["kernels"]:
        print(
            f"{row['kernel']:>16s} n={row['n']:<4d} "
            f"cands={row['candidates']:<3d} best={row['best']:<24s} "
            f"sim={row['sim_ratio_chosen']:.4f} "
            f"regret={row['regret_pp']:5.2f}pp "
            f"model={row['model_search_s'] * 1e3:8.1f} ms "
            f"sim={row['sim_search_s']:7.2f} s "
            f"speedup={row['speedup']:8.0f}x"
        )
    print(f"artifact: {args.json}")
    ok = payload["worst_regret_pp"] <= REGRET_BOUND_PP
    print(
        f"regret: worst {payload['worst_regret_pp']:.2f}pp "
        f"(bound {REGRET_BOUND_PP}pp): {'PASS' if ok else 'FAIL'}"
    )
    dom = payload["all_beat_compound"]
    print(f"dominance: chosen <= compound on all kernels: {'PASS' if dom else 'FAIL'}")
    ok = ok and dom
    if not args.quick:
        fast = payload["min_speedup"] >= SPEEDUP_TARGET
        print(
            f"speedup: min {payload['min_speedup']:.0f}x "
            f"(target {SPEEDUP_TARGET:.0f}x): {'PASS' if fast else 'FAIL'}"
        )
        ok = ok and fast
    else:
        print("PASS (quick mode: speedup gate skipped)" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
