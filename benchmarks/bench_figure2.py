"""Benchmark: regenerate Figure 2 (matmul permutation ranking)."""

from repro.experiments import figure2_matmul
from repro.experiments.common import MACHINE1, MACHINE2

from conftest import emit, run_once


def test_figure2_matmul(benchmark):
    result = run_once(
        benchmark,
        figure2_matmul.run,
        sizes=(48, 96),
        machines={"i860": MACHINE2, "rs6000": MACHINE1},
    )
    emit(figure2_matmul.render(result))
    assert result.model_ranking[0] == "JKI"
    assert result.simulated_rankings[("i860", 96)] == result.model_ranking
