"""Benchmark: regenerate Table 3 (original vs transformed performance)."""

from repro.experiments import table3_perf

from conftest import emit, run_once


def test_table3_performance(benchmark):
    result = run_once(benchmark, table3_perf.run, scale=1.0)
    emit(table3_perf.render(result))
    assert result.row("arc2d_like").speedup > 1.3
    assert len(result.improved) >= 8
    assert not result.degraded
