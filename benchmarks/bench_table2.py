"""Benchmark: regenerate Table 2 (memory order statistics)."""

from repro.experiments import table2_stats

from conftest import emit, run_once


def test_table2_stats(benchmark):
    result = run_once(benchmark, table2_stats.run, n=16)
    emit(table2_stats.render(result))
    totals = result.totals
    assert totals["MO-Orig%"] + totals["MO-Perm%"] >= 80
    assert totals["Fus-A"] > 0 and totals["Dist-D"] > 0
