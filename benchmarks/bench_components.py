"""Micro-benchmarks of the library's substrates.

Not a paper artifact: these time the analysis and simulation building
blocks so regressions in the infrastructure are visible.
"""

from repro.cache import CACHE2, SetAssocCache
from repro.dependence import region_dependences
from repro.exec import Interpreter, simulate
from repro.exec.codegen import compile_trace
from repro.model import CostModel
from repro.suite import cholesky, matmul, spd_init
from repro.transforms import compound


def test_dependence_analysis_cholesky(benchmark):
    prog = cholesky(24, "KIJ")
    nest = prog.top_loops[0]
    deps = benchmark(lambda: region_dependences(nest, include_inputs=True))
    assert deps


def test_loopcost_matmul(benchmark):
    prog = matmul(32, "IJK")

    def run():
        model = CostModel(cls=4)
        return model.loop_costs(prog.top_loops[0])

    costs = benchmark(run)
    assert len(costs) == 3


def test_compound_cholesky(benchmark):
    def run():
        return compound(cholesky(24, "KIJ"), CostModel(cls=4))

    outcome = benchmark(run)
    assert outcome.distribution_applied == 1


def test_cache_simulator_throughput(benchmark):
    addresses = [(i * 24) % 65536 for i in range(50_000)]

    def run():
        cache = SetAssocCache(CACHE2)
        for addr in addresses:
            cache.access(addr)
        return cache.stats

    stats = benchmark(run)
    assert stats.accesses == 50_000


def test_interpreter_matmul16(benchmark):
    prog = matmul(16, "JKI")
    benchmark(lambda: Interpreter(prog).run())


def test_compiled_trace_matmul32(benchmark):
    prog = matmul(32, "JKI")
    trace = compile_trace(prog)

    def run():
        count = 0

        def access(addr, write, sid):
            nonlocal count
            count += 1

        trace.run(access)
        return count

    count = benchmark(run)
    assert count == 32 ** 3 * 4


def test_simulate_end_to_end_matmul32(benchmark):
    prog = matmul(32, "JKI")
    perf = benchmark(lambda: simulate(prog))
    assert perf.accesses == 32 ** 3 * 4
