"""Batched trace engine vs. per-event reference path.

Times trace-driven simulation (``simulate(engine="block")`` against
``engine="event"``) on a set of suite kernels, asserts the two paths are
bit-identical (accesses/hits/cold/conflict counts, cycles, operations,
and therefore Table 4 hit rates), checks that the batched engine compiles
every suite kernel (no silent scalar fallback), and writes the measured
trajectory to ``BENCH_trace.json`` so future PRs can track it.

Kernel sizes are deliberately *not* multiples of the cache size: when
``8*n*n`` is a multiple of ``sets * line`` every array maps onto the same
set sequence and the interleaved conflict stream is an artifact of the
benchmark geometry, not of the kernel. Odd sizes measure the honest case.

Runs standalone (``python benchmarks/bench_trace_engine.py [--quick]``)
and under pytest (``pytest benchmarks/bench_trace_engine.py``) without
requiring the pytest-benchmark fixture. ``--quick`` uses small sizes and
skips the speedup gate (CI boxes are noisy) but still enforces coverage
and bit-identical results, and still writes the JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

from repro.exec import compile_block_trace, simulate
from repro.suite import get_entry, suite_entries

SPEEDUP_TARGET = 5.0
MIN_FAST_KERNELS = 3

#: (kernel, n) pairs for the full run. Sizes chosen so each kernel issues
#: roughly 1-13M accesses — large enough that per-event Python overhead
#: dominates and the batched path's advantage is stable run to run.
FULL_KERNELS = [
    ("jacobi", 513),
    ("adi", 481),
    ("erlebacher_like", 97),
    ("cholesky", 161),
    ("transpose", 769),
]

QUICK_KERNELS = [
    ("jacobi", 65),
    ("adi", 49),
    ("erlebacher_like", 17),
]

DEFAULT_JSON_PATH = os.environ.get(
    "REPRO_BENCH_TRACE",
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_trace.json",
    ),
)


def _median_seconds(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def suite_coverage() -> list[str]:
    """Suite kernels the batched engine fails to compile (should be [])."""
    failures = []
    for entry in suite_entries():
        try:
            compile_block_trace(entry.program(8))
        except Exception as exc:  # noqa: BLE001 - report, don't mask
            failures.append(f"{entry.name}: {exc}")
    return failures


def measure(kernels, repeats: int = 1) -> list[dict]:
    """Time both engines per kernel and pin bit-identical results."""
    rows = []
    for name, n in kernels:
        program = get_entry(name).program(n)
        block = simulate(program, engine="block")
        event = simulate(program, engine="event")
        block_key = (
            block.cache.accesses,
            block.cache.hits,
            block.cache.cold_misses,
            block.cache.conflict_misses,
            block.cycles,
            block.operations,
        )
        event_key = (
            event.cache.accesses,
            event.cache.hits,
            event.cache.cold_misses,
            event.cache.conflict_misses,
            event.cycles,
            event.operations,
        )
        assert block_key == event_key, (name, block_key, event_key)
        assert block.cache.hit_rate() == event.cache.hit_rate()
        assert block.cache.hit_rate(include_cold=True) == event.cache.hit_rate(
            include_cold=True
        )
        block_s = _median_seconds(
            lambda p=program: simulate(p, engine="block"), repeats
        )
        event_s = _median_seconds(
            lambda p=program: simulate(p, engine="event"), repeats
        )
        rows.append(
            {
                "kernel": name,
                "n": n,
                "accesses": block.cache.accesses,
                "hit_rate": block.cache.hit_rate(),
                "block_s": block_s,
                "event_s": event_s,
                "speedup": event_s / block_s,
            }
        )
    return rows


def run(quick: bool = False, repeats: int | None = None) -> dict:
    kernels = QUICK_KERNELS if quick else FULL_KERNELS
    if repeats is None:
        repeats = 1 if quick else 3
    failures = suite_coverage()
    rows = measure(kernels, repeats)
    fast = [r for r in rows if r["speedup"] >= SPEEDUP_TARGET]
    return {
        "quick": quick,
        "speedup_target": SPEEDUP_TARGET,
        "min_fast_kernels": MIN_FAST_KERNELS,
        "kernels": rows,
        "fast_kernels": [r["kernel"] for r in fast],
        "coverage_failures": failures,
    }


def write_json(payload: dict, path: str = DEFAULT_JSON_PATH) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------------
# pytest entry points (quick-sized so `pytest benchmarks/` stays fast)
# ----------------------------------------------------------------------
def test_block_engine_compiles_whole_suite():
    assert suite_coverage() == []


def test_engines_bit_identical():
    # measure() asserts identity of stats, cycles, ops, and hit rates.
    rows = measure(QUICK_KERNELS, repeats=1)
    assert len(rows) == len(QUICK_KERNELS)


def ledger_append(name: str, argv: list[str], payload: dict) -> None:
    """Record the bench trajectory in the run ledger (best effort)."""
    from repro.obs import ledger

    try:
        ledger.append_record(
            ledger.make_record(
                f"bench.{name}",
                argv,
                config={"bench": name, "quick": payload.get("quick", False)},
                bench=payload,
            )
        )
    except ledger.LedgerError as exc:
        print(f"warning: {exc}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, no speedup gate (coverage + equivalence only)",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--json", default=DEFAULT_JSON_PATH)
    parser.add_argument(
        "--no-ledger", action="store_true", help="skip the run-ledger append"
    )
    args = parser.parse_args(argv)

    payload = run(quick=args.quick, repeats=args.repeats)
    write_json(payload, args.json)
    if not args.no_ledger:
        ledger_append("trace", list(argv or sys.argv[1:]), payload)

    for row in payload["kernels"]:
        print(
            f"{row['kernel']:>16s} n={row['n']:<4d} "
            f"accesses={row['accesses']:>9d} "
            f"block={row['block_s'] * 1e3:8.1f} ms "
            f"event={row['event_s'] * 1e3:8.1f} ms "
            f"speedup={row['speedup']:5.2f}x"
        )
    if payload["coverage_failures"]:
        print("FAIL: batched engine cannot compile:")
        for line in payload["coverage_failures"]:
            print(f"  {line}")
        return 1
    print(f"suite coverage: all {len(list(suite_entries()))} kernels compile")
    print(f"artifact: {args.json}")
    if args.quick:
        print("PASS (quick mode: speedup gate skipped)")
        return 0
    ok = len(payload["fast_kernels"]) >= MIN_FAST_KERNELS
    print(
        f">= {SPEEDUP_TARGET:.0f}x on {len(payload['fast_kernels'])} kernels "
        f"(need {MIN_FAST_KERNELS}): {'PASS' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
