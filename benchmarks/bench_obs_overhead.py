"""Overhead budget for the observability layer.

The obs design keeps the interpreter and cache-simulation hot loops free
of instrumentation calls: the only cost when observability is disabled is
the per-*run* boundary work (one ``get_obs()`` lookup, one no-op span
enter/exit, a couple of ``enabled`` checks). This bench measures an
interpreter run with the default disabled context against the same run
with the boundary instrumentation factored out, and asserts the disabled
path stays within a 2% budget.

Runs standalone (``python benchmarks/bench_obs_overhead.py``) and under
pytest (``pytest benchmarks/bench_obs_overhead.py``) without requiring
the pytest-benchmark fixture.
"""

from __future__ import annotations

import statistics
import time

from repro import parse_program
from repro.exec import Interpreter
from repro.obs import NULL_OBS, Obs, get_obs, use_obs

OVERHEAD_BUDGET = 0.02

SOURCE = """
PROGRAM hot
PARAMETER N = 32
REAL A(N,N), B(N,N), C(N,N)
DO I = 1, N
  DO J = 1, N
    DO K = 1, N
      C(I,J) = C(I,J) + A(I,K)*B(K,J)
    ENDDO
  ENDDO
ENDDO
END
"""


def _median_seconds(fn, repeats: int = 7) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def measure() -> dict[str, float]:
    program = parse_program(SOURCE)
    interp = Interpreter(program)

    def run_disabled() -> None:
        interp.run()

    def run_enabled() -> None:
        with use_obs(Obs()):
            interp.run()

    # The boundary cost the disabled path pays per run, amplified: the
    # hot loop itself carries zero obs calls, so the only overhead is the
    # run-boundary sequence below. Time it directly so the budget check
    # does not hinge on sub-noise timer resolution.
    def boundary(iterations: int = 10_000) -> None:
        for _ in range(iterations):
            obs = get_obs()
            with obs.span("exec.interp", program="hot"):
                pass
            if obs.enabled:  # pragma: no cover - disabled in this bench
                raise AssertionError

    assert get_obs() is NULL_OBS
    disabled = _median_seconds(run_disabled)
    enabled = _median_seconds(run_enabled)
    per_boundary = _median_seconds(lambda: boundary()) / 10_000
    return {
        "disabled_s": disabled,
        "enabled_s": enabled,
        "boundary_s": per_boundary,
        "boundary_ratio": per_boundary / disabled,
        "enabled_ratio": enabled / disabled - 1.0,
    }


def test_disabled_overhead_within_budget():
    results = measure()
    # Per-run boundary cost of the disabled path vs. one interpreter run.
    assert results["boundary_ratio"] < OVERHEAD_BUDGET, results
    # Even fully enabled, boundary-only instrumentation must stay cheap
    # on a value-level interpreter run (generous cap: noise-dominated).
    assert results["enabled_ratio"] < 0.25, results


def main() -> int:
    results = measure()
    print(f"interpreter run (obs disabled): {results['disabled_s'] * 1e3:8.2f} ms")
    print(f"interpreter run (obs enabled):  {results['enabled_s'] * 1e3:8.2f} ms")
    print(f"disabled boundary cost per run: {results['boundary_s'] * 1e6:8.2f} us")
    print(
        f"disabled overhead ratio: {results['boundary_ratio']:.5f} "
        f"(budget {OVERHEAD_BUDGET})"
    )
    ok = results["boundary_ratio"] < OVERHEAD_BUDGET
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
