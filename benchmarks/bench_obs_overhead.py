"""Overhead budget for the observability layer.

The obs design keeps the interpreter and cache-simulation hot loops free
of instrumentation calls: the only cost when observability is disabled is
the per-*run* boundary work (one ``get_obs()`` lookup, one no-op span
enter/exit, a couple of ``enabled`` checks). This bench measures both
execution engines — the value-level interpreter and the batched
block-trace engine — with the default disabled context against the same
run with the boundary instrumentation factored out, and asserts the
disabled path stays within a 2% budget on each.

The block-trace path is the stricter test: a batched run is orders of
magnitude shorter than an interpreter run, so fixed boundary cost is
proportionally larger. The budget is enforced against a generous
over-count of the boundary sequences on that path (span enters for
simulate + blocktrace compile, the enabled checks, and the engine
counters).

Runs standalone (``python benchmarks/bench_obs_overhead.py``) and under
pytest (``pytest benchmarks/bench_obs_overhead.py``) without requiring
the pytest-benchmark fixture.
"""

from __future__ import annotations

import statistics
import time

from repro import parse_program
from repro.exec import Interpreter, simulate
from repro.obs import NULL_OBS, Obs, get_obs, use_obs

OVERHEAD_BUDGET = 0.02

#: Upper bound on disabled-path boundary sequences in one block-engine
#: run (simulate span, blocktrace-compile span, engine/fallback counter
#: checks — counted generously).
BLOCK_BOUNDARIES = 8

SOURCE = """
PROGRAM hot
PARAMETER N = 32
REAL A(N,N), B(N,N), C(N,N)
DO I = 1, N
  DO J = 1, N
    DO K = 1, N
      C(I,J) = C(I,J) + A(I,K)*B(K,J)
    ENDDO
  ENDDO
ENDDO
END
"""

#: Sized so one batched run is short (sub-100ms) — the strict case for
#: fixed boundary cost — but still well above timer noise.
BLOCK_SOURCE = SOURCE.replace("N = 32", "N = 48")


def _median_seconds(fn, repeats: int = 7) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def measure() -> dict[str, float]:
    program = parse_program(SOURCE)
    interp = Interpreter(program)
    block_program = parse_program(BLOCK_SOURCE)

    def run_disabled() -> None:
        interp.run()

    def run_enabled() -> None:
        with use_obs(Obs()):
            interp.run()

    def block_disabled_run() -> None:
        simulate(block_program, engine="block")

    def block_enabled_run() -> None:
        with use_obs(Obs()):
            simulate(block_program, engine="block")

    # The boundary cost the disabled path pays per run, amplified: the
    # hot loop itself carries zero obs calls, so the only overhead is the
    # run-boundary sequence below. Time it directly so the budget check
    # does not hinge on sub-noise timer resolution.
    def boundary(iterations: int = 10_000) -> None:
        for _ in range(iterations):
            obs = get_obs()
            with obs.span("exec.interp", program="hot"):
                pass
            if obs.enabled:  # pragma: no cover - disabled in this bench
                raise AssertionError

    assert get_obs() is NULL_OBS
    disabled = _median_seconds(run_disabled)
    enabled = _median_seconds(run_enabled)
    per_boundary = _median_seconds(lambda: boundary()) / 10_000
    block_disabled = _median_seconds(block_disabled_run)
    block_enabled = _median_seconds(block_enabled_run)
    return {
        "disabled_s": disabled,
        "enabled_s": enabled,
        "boundary_s": per_boundary,
        "boundary_ratio": per_boundary / disabled,
        "enabled_ratio": enabled / disabled - 1.0,
        "block_disabled_s": block_disabled,
        "block_enabled_s": block_enabled,
        "block_boundary_ratio": BLOCK_BOUNDARIES * per_boundary / block_disabled,
        "block_enabled_ratio": block_enabled / block_disabled - 1.0,
    }


def test_disabled_overhead_within_budget():
    results = measure()
    # Per-run boundary cost of the disabled path vs. one interpreter run.
    assert results["boundary_ratio"] < OVERHEAD_BUDGET, results
    # Same budget on the much shorter batched block-trace run, with the
    # boundary count over-counted (BLOCK_BOUNDARIES sequences per run).
    assert results["block_boundary_ratio"] < OVERHEAD_BUDGET, results
    # Even fully enabled, boundary-only instrumentation must stay cheap
    # on a value-level interpreter run (generous cap: noise-dominated).
    assert results["enabled_ratio"] < 0.25, results


def main() -> int:
    results = measure()
    print(f"interpreter run (obs disabled): {results['disabled_s'] * 1e3:8.2f} ms")
    print(f"interpreter run (obs enabled):  {results['enabled_s'] * 1e3:8.2f} ms")
    print(f"block run (obs disabled):       {results['block_disabled_s'] * 1e3:8.2f} ms")
    print(f"block run (obs enabled):        {results['block_enabled_s'] * 1e3:8.2f} ms")
    print(f"disabled boundary cost per run: {results['boundary_s'] * 1e6:8.2f} us")
    print(
        f"disabled overhead ratio (interp): {results['boundary_ratio']:.5f} "
        f"(budget {OVERHEAD_BUDGET})"
    )
    print(
        f"disabled overhead ratio (block):  {results['block_boundary_ratio']:.5f} "
        f"(budget {OVERHEAD_BUDGET}, x{BLOCK_BOUNDARIES} boundaries)"
    )
    ok = (
        results["boundary_ratio"] < OVERHEAD_BUDGET
        and results["block_boundary_ratio"] < OVERHEAD_BUDGET
    )
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
