"""Benchmark: regenerate Figure 3 (ADI fusion LoopCost table)."""

from repro.experiments import figure3_adi

from conftest import emit, run_once


def test_figure3_adi(benchmark):
    result = run_once(benchmark, figure3_adi.run, cls=4)
    emit(figure3_adi.render(result))
    assert result.fusion_profitable
    assert result.interchange_profitable
