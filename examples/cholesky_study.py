"""Cholesky factorization under distribution + triangular interchange
(the Figure 7 walkthrough).

Starting from the KIJ form, shows:
  * the cost model ranking all six loop organizations,
  * Compound distributing the I loop and interchanging the triangular
    J/I nest (the Figure 7b structure),
  * a value-level check that the transformed program still computes the
    same Cholesky factor,
  * simulated performance of all six classic forms vs Compound's output.

Run:  python examples/cholesky_study.py
"""

import numpy as np

from repro import CostModel, Interpreter, Machine, compound, pretty_program, simulate
from repro.cache import CACHE2
from repro.suite import CHOLESKY_FORMS, cholesky, spd_init


def main(n: int = 96) -> None:
    model = CostModel(cls=4)
    machine = Machine(cache=CACHE2, miss_penalty=20)

    original = cholesky(n, "KIJ")
    print("original (KIJ form):")
    print(pretty_program(original))

    ranking = ["".join(o) for o in model.rank_permutations(original.top_loops[0])]
    print(f"\nmodel ranking: {' '.join(ranking)} (paper: KJI JKI KIJ IKJ JIK IJK)")

    outcome = compound(original, model)
    print("\nafter Compound (distribution + triangular interchange):")
    print(pretty_program(outcome.program))

    # Semantics: same factor, down to rounding.
    small, small_opt = cholesky(12, "KIJ"), None
    small_outcome = compound(small, CostModel(cls=4))
    a = Interpreter(small, init=spd_init)
    a.run()
    b = Interpreter(small_outcome.program, init=spd_init)
    b.run()
    same = np.allclose(a.arrays["A"], b.arrays["A"], rtol=1e-12)
    print(f"\ntransformed program computes the identical factor: {same}")

    print(f"\nsimulated cycles at N={n} (i860-style cache):")
    results = {}
    for form in CHOLESKY_FORMS:
        results[form] = simulate(cholesky(n, form), machine).cycles
    results["Compound(KIJ)"] = simulate(outcome.program, machine).cycles
    best = min(results.values())
    for name, cycles in sorted(results.items(), key=lambda kv: kv[1]):
        print(f"  {name:<14} {cycles:>10}  ({cycles / best:.2f}x best)")


if __name__ == "__main__":
    main()
