PROGRAM matmulkij
PARAMETER N = 64
REAL A(N,N), B(N,N), C(N,N)
DO K = 1, N
  DO I = 1, N
    DO J = 1, N
      C(I,J) = C(I,J) + A(I,K)*B(K,J)
    ENDDO
  ENDDO
ENDDO
END
