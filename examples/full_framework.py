"""The paper's full three-step optimization framework, end to end.

§1.1 lays out the strategy:
  1. improve the order of memory accesses (Compound: permutation,
     fusion, distribution — machine-independent, needs only the line
     size);
  2. fully utilize the cache (tiling — needs cache size/associativity);
  3. promote register reuse (unroll-and-jam + scalar replacement —
     needs register counts).

This example drives matrix multiply through all three steps, measuring
cycles, cache misses, and memory references after each, on a two-level
hierarchy with a TLB.

Run:  python examples/full_framework.py
"""

from repro import CostModel, compound, parse_program, pretty_program
from repro.cache import CacheConfig, Hierarchy, tlb_config
from repro.exec.codegen import compile_trace
from repro.transforms import scalar_replace_program, tile_nest

N = 64
L1 = CacheConfig("L1", size=8 * 1024, assoc=2, line=32)
L2 = CacheConfig("L2", size=64 * 1024, assoc=4, line=128)
PENALTIES = {"L1": 8, "L2": 40}
TLB_PENALTY = 30


def measure(program):
    hierarchy = Hierarchy([L1, L2], tlb=tlb_config(entries=16, page=4096))
    trace = compile_trace(program)
    count = [0]

    def access(addr, write, sid):
        count[0] += 1
        hierarchy.access(addr, 8, write)

    _, ops = trace.run(access)
    result = hierarchy.result
    cycles = ops + count[0] + result.memory_cycles(PENALTIES, TLB_PENALTY)
    return cycles, result, count[0]


def report(stage, program):
    cycles, result, accesses = measure(program)
    l1 = result.levels["L1"]
    l2 = result.levels["L2"]
    print(
        f"{stage:<34} cycles={cycles:>9}  refs={accesses:>7}  "
        f"L1 miss={l1.misses:>6}  L2 miss={l2.misses:>6}  "
        f"TLB miss={result.tlb.misses:>4}"
    )
    return cycles


def main() -> None:
    source = f"""
    PROGRAM mm
    REAL A({N},{N}), B({N},{N}), C({N},{N})
    DO I = 1, {N}
      DO J = 1, {N}
        DO K = 1, {N}
          C(I,J) = C(I,J) + A(I,K)*B(K,J)
        ENDDO
      ENDDO
    ENDDO
    END
    """
    original = parse_program(source)
    print(f"matrix multiply, N={N}, two-level hierarchy + TLB\n")
    base = report("0. original (IJK)", original)

    # Step 1: memory order via Compound.
    step1 = compound(original, CostModel(cls=4)).program
    report("1. memory order (Compound -> JKI)", step1)

    # Step 2: tiling for the cache.
    tiled = tile_nest(step1.top_loops[0], {"J": 16, "K": 16}).loop
    step2 = step1.with_body((tiled,))
    report("2. + tiling (16x16)", step2)

    # Step 3: register reuse — scalar-replace the references that are
    # invariant in the innermost loop (see repro.transforms.unroll_jam
    # for the companion unroll-and-jam transformation).
    step3 = scalar_replace_program(step2).program
    cycles = report("3. + scalar replacement", step3)

    print(f"\ntotal improvement: {base / cycles:.2f}x")
    print("\nfinal inner nest:")
    text = pretty_program(step3)
    inner_start = text.index("DO J_T")
    print(text[inner_start : inner_start + 400])


if __name__ == "__main__":
    main()
