"""Quickstart: analyze and optimize a loop nest for data locality.

Covers the core API surface in ~60 lines:
  1. write a program in mini-Fortran (or the builder DSL),
  2. ask the cost model for LoopCost per loop and the memory order,
  3. run the Compound transformation,
  4. check the improvement with the cache simulator.

Run:  python examples/quickstart.py
"""

from repro import (
    CostModel,
    Machine,
    compound,
    parse_program,
    pretty_program,
    simulate,
)
from repro.cache import CACHE2

SOURCE = """
PROGRAM demo
PARAMETER N = 64
REAL A(N,N), B(N,N), C(N,N)
DO I = 1, N
  DO J = 1, N
    DO K = 1, N
      C(I,J) = C(I,J) + A(I,K) * B(K,J)
    ENDDO
  ENDDO
ENDDO
END
"""


def main() -> None:
    program = parse_program(SOURCE)
    model = CostModel(cls=4)  # cache line = 4 array elements

    # --- 1. The cost model: cache lines touched per candidate inner loop.
    nest = program.top_loops[0]
    print("LoopCost per candidate inner loop (symbolic):")
    for var, cost in model.loop_costs(nest).items():
        print(f"  {var}: {cost}")
    print("memory order (outermost ... innermost):", model.memory_order(nest))

    # --- 2. Compound transformation (permutation/fusion/distribution).
    outcome = compound(program, model)
    print("\ntransformed program:")
    print(pretty_program(outcome.program))

    # --- 3. Measure: simulated cycles and cache hit rate, before/after.
    machine = Machine(cache=CACHE2, miss_penalty=20)
    before = simulate(program, machine)
    after = simulate(outcome.program, machine)
    print(f"\ncycles: {before.cycles} -> {after.cycles}"
          f"  (speedup {before.cycles / after.cycles:.2f}x)")
    print(f"hit rate: {before.hit_rate:.1%} -> {after.hit_rate:.1%}")


if __name__ == "__main__":
    main()
