"""Constructing programs with the builder DSL (no Fortran text needed).

Builds a red-black-free Gauss-Seidel-style sweep directly in Python,
analyzes its dependences, and shows which loop orders are legal.

Run:  python examples/builder_api.py
"""

from repro import CostModel, ProgramBuilder, pretty_program
from repro.dependence import region_dependences
from repro.transforms import constraining_vectors, order_is_legal, permute_nest


def main() -> None:
    b = ProgramBuilder("sweep")
    N = b.param("N", 64)
    I, J = b.indices("I", "J")
    U = b.array("U", (N, N))
    with b.loop(I, 2, N - 1):
        with b.loop(J, 2, N - 1):
            b.assign(
                U[I, J],
                (U[I - 1, J] + U[I + 1, J] + U[I, J - 1] + U[I, J + 1]) * 0.25,
            )
    program = b.build()
    print(pretty_program(program))

    nest = program.top_loops[0]
    print("\ndependences:")
    for dep in region_dependences(nest):
        print(f"  {dep}")

    vectors = constraining_vectors(nest)
    for order, indices in (("I J", [0, 1]), ("J I", [1, 0])):
        print(f"order {order}: legal = {order_is_legal(vectors, indices)}")

    model = CostModel(cls=4)
    print("\nmemory order:", model.memory_order(nest))
    result = permute_nest(nest, model)
    print(
        f"permute: applied={result.applied}, achieved memory order="
        f"{result.achieved_memory_order}, order={result.order}"
    )
    if result.applied:
        print(pretty_program(program.with_body((result.loop,))))


if __name__ == "__main__":
    main()
