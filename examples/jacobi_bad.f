PROGRAM jacobibad
PARAMETER N = 64
REAL A(N,N), B(N,N)
DO I = 2, N - 1
  DO J = 2, N - 1
    B(I,J) = A(I,J-1) + A(I,J+1) + A(I-1,J) + A(I+1,J)
  ENDDO
ENDDO
DO I = 2, N - 1
  DO J = 2, N - 1
    A(I,J) = B(I,J)
  ENDDO
ENDDO
END
