"""Explore all six loop orders of matrix multiply (the Figure 2 story).

For each order, prints the model's predicted LoopCost of the innermost
loop and the simulated cycles/hit rate on an i860-style cache, then
shows that the model's ranking predicts the simulated ranking once the
working set exceeds the cache.

Run:  python examples/matmul_exploration.py [N]
"""

import sys

from repro import CostModel, Machine, simulate
from repro.cache import CACHE2
from repro.suite import MATMUL_ORDERS, matmul


def main(n: int = 64) -> None:
    model = CostModel(cls=4)
    machine = Machine(cache=CACHE2, miss_penalty=20)

    reference = matmul(8, "IJK").top_loops[0]
    costs = model.loop_costs(reference)
    print(f"symbolic LoopCost: " + ", ".join(f"{v}={c}" for v, c in costs.items()))
    predicted = ["".join(o) for o in model.rank_permutations(reference)]
    print(f"model ranking (best to worst): {' '.join(predicted)}\n")

    print(f"{'order':>6} {'inner LoopCost':>16} {'cycles':>12} {'hit rate':>9}")
    results = {}
    for order in MATMUL_ORDERS:
        inner_cost = str(costs[order[-1]])
        perf = simulate(matmul(n, order), machine)
        results[order] = perf.cycles
        print(
            f"{order:>6} {inner_cost:>16} {perf.cycles:>12} "
            f"{perf.hit_rate:>9.1%}"
        )

    simulated = sorted(results, key=results.get)
    print(f"\nsimulated ranking at N={n}: {' '.join(simulated)}")
    agreement = simulated[0] == predicted[0]
    print(f"model predicts the winner: {agreement}")
    spread = max(results.values()) / min(results.values())
    print(f"spread between best and worst order: {spread:.2f}x")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
