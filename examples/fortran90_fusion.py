"""The Fortran 90 scalarization story (Figure 3 / Table 1).

Array-syntax code scalarizes into many single-statement loops with poor
temporal locality. This example walks the paper's ADI fragment through
its three stages — distributed (scalarized), fused, fused+interchanged —
showing the LoopCost progression 5n^2 -> 3n^2 -> 3/4 n^2 and the
measured hit rates, then lets Compound do the whole thing automatically.

Run:  python examples/fortran90_fusion.py
"""

from repro import CostModel, Machine, compound, pretty_program, simulate
from repro.cache import CACHE2
from repro.suite import adi


def measure(program, machine):
    perf = simulate(program, machine)
    return perf.cycles, perf.hit_rate


def main(n: int = 64) -> None:
    machine = Machine(cache=CACHE2, miss_penalty=20)
    model = CostModel(cls=4)

    stages = {
        "distributed (F90 scalarizer output)": adi(n, "distributed"),
        "fused": adi(n, "fused"),
        "fused + interchanged (Figure 3c)": adi(n, "interchanged"),
    }
    print(f"{'stage':<38} {'cycles':>10} {'hit rate':>9}")
    for name, program in stages.items():
        cycles, rate = measure(program, machine)
        print(f"{name:<38} {cycles:>10} {rate:>9.1%}")

    print("\nNow let the compiler do it: compound(distributed)")
    outcome = compound(adi(n, "distributed"), model)
    cycles, rate = measure(outcome.program, machine)
    print(f"{'compound output':<38} {cycles:>10} {rate:>9.1%}")
    report = outcome.nests[0]
    print(
        f"\nthe compiler fused the inner loops to enable permutation: "
        f"{report.fusion_enabled_permutation}"
    )
    print(pretty_program(outcome.program))


if __name__ == "__main__":
    main()
