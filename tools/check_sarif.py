#!/usr/bin/env python
"""CI gate over a repro-lint SARIF log.

Usage: python tools/check_sarif.py lint.sarif

Fails (exit 1) when the log contains any **error-level result whose
fix-it failed verification** — the lint engine escalates a diagnostic to
error severity exactly when a transform claimed legality and the
brute-force oracle disagreed, which is a correctness bug in the
transform or analysis layer, not a property of the linted program.

Also sanity-checks the log shape (version 2.1.0, one run, a named
driver) so a malformed artifact cannot pass silently. Ordinary
warnings/notes — expected on the deliberately pessimized example
programs — do not fail the gate.
"""

from __future__ import annotations

import json
import sys


def check(path: str) -> int:
    try:
        with open(path) as handle:
            log = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"check_sarif: cannot read {path}: {exc}", file=sys.stderr)
        return 1

    if log.get("version") != "2.1.0":
        print(f"check_sarif: unexpected SARIF version {log.get('version')!r}",
              file=sys.stderr)
        return 1
    runs = log.get("runs") or []
    if not runs:
        print("check_sarif: log has no runs", file=sys.stderr)
        return 1

    total = 0
    bad: list[str] = []
    for run in runs:
        driver = (run.get("tool") or {}).get("driver") or {}
        if not driver.get("name"):
            print("check_sarif: run has no tool.driver.name", file=sys.stderr)
            return 1
        for result in run.get("results") or []:
            total += 1
            if result.get("level") != "error":
                continue
            fixit = (result.get("properties") or {}).get("fixit")
            if fixit is not None and not fixit.get("verified", False):
                uri = "<unknown>"
                locations = result.get("locations") or []
                if locations:
                    uri = (
                        locations[0]
                        .get("physicalLocation", {})
                        .get("artifactLocation", {})
                        .get("uri", uri)
                    )
                bad.append(
                    f"{uri}: {result.get('ruleId')}: "
                    f"{result.get('message', {}).get('text', '')} "
                    f"[verification: {fixit.get('verification')}]"
                )

    if bad:
        print(
            f"check_sarif: {len(bad)} error-level result(s) with a fix-it "
            f"that failed verification:",
            file=sys.stderr,
        )
        for line in bad:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"check_sarif: {path} clean ({total} result(s), "
          f"no unverified-fix-it errors)")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        raise SystemExit(2)
    raise SystemExit(check(sys.argv[1]))
