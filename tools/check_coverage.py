#!/usr/bin/env python3
"""Coverage ratchet: fail CI when line coverage drops below the baseline.

Usage::

    python tools/check_coverage.py coverage.xml [--ratchet tools/coverage_ratchet.json]

Reads a Cobertura ``coverage.xml`` (as written by ``pytest --cov=repro
--cov-report=xml``) and compares its overall line rate against the
checked-in ratchet file. The ratchet only moves up: when measured
coverage comfortably exceeds the baseline, raise ``min_line_rate`` in
the same PR that adds the tests (the script prints the suggested new
value). The baseline was seeded from a local stdlib-``trace`` run
(~71% line rate) minus a margin for tool differences; see the ratchet
file for the current floor.
"""

from __future__ import annotations

import argparse
import json
import sys
import xml.etree.ElementTree as ET

#: Raise the floor only when measured coverage beats it by this much,
#: so routine jitter between coverage.py versions never churns the file.
RATCHET_HEADROOM = 0.02


def read_line_rate(xml_path: str) -> float:
    root = ET.parse(xml_path).getroot()
    rate = root.get("line-rate")
    if rate is None:
        raise SystemExit(f"{xml_path}: no line-rate attribute (not Cobertura?)")
    return float(rate)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("xml", help="Cobertura coverage.xml to check")
    parser.add_argument(
        "--ratchet",
        default="tools/coverage_ratchet.json",
        help="ratchet file holding min_line_rate",
    )
    args = parser.parse_args(argv)

    with open(args.ratchet) as handle:
        ratchet = json.load(handle)
    floor = float(ratchet["min_line_rate"])
    measured = read_line_rate(args.xml)

    print(f"coverage: measured {measured:.2%}, ratchet floor {floor:.2%}")
    if measured < floor:
        print(
            f"FAIL: line coverage {measured:.2%} fell below the ratchet "
            f"({floor:.2%}). Add tests for the uncovered lines, or — only "
            f"if the drop is a deliberate removal of tested code — lower "
            f"{args.ratchet} in the same PR with justification.",
            file=sys.stderr,
        )
        return 1
    if measured - floor > RATCHET_HEADROOM:
        suggested = round(measured - 0.01, 3)
        print(
            f"note: coverage exceeds the floor by more than "
            f"{RATCHET_HEADROOM:.0%}; consider ratcheting min_line_rate up "
            f"to {suggested} in {args.ratchet}"
        )
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
