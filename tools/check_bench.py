#!/usr/bin/env python3
"""Perf-regression gate: fail CI when BENCH artifacts regress.

Usage::

    python tools/check_bench.py [--smoke] \\
        [--trace BENCH_trace.json] [--locality BENCH_locality.json] \\
        [--autotune BENCH_autotune.json] [--ledger DIR] [--tolerance 0.20]

Reads the benchmark artifacts written by ``benchmarks/bench_trace_engine.py``,
``benchmarks/bench_locality.py``, and ``benchmarks/bench_autotune.py``
plus (when present) the run ledger (``.repro/ledger.jsonl``) and applies
the gates:

* **coverage** — the batched engine must compile every suite kernel
  (``coverage_failures`` empty);
* **accuracy** — analytic-locality ``worst_error_pp`` within its bound
  (accuracy is deterministic, so this holds in smoke mode too);
* **search quality** — autotune regret within its bound on every kernel
  and the chosen config never worse than the compound algorithm
  (both deterministic, so they hold in smoke mode too);
* **speedup floors** (skipped with ``--smoke``: wall-clock gates are
  meaningless on noisy or quick-mode artifacts) — per-kernel batched
  speedup at least ``speedup_target * (1 - tolerance)``, at least
  ``min_fast_kernels`` kernels over target, and locality ``min_speedup``
  at least its target;
* **history** (when the ledger holds a previous non-quick bench record)
  — per-kernel speedup must not drop more than ``tolerance`` below the
  previous ledgered run.

Exit status: 0 all gates pass, 1 regression, 2 usage/missing artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

#: Fractional slack on wall-clock gates (speedups are bimodal between
#: machine classes; 20% absorbs same-machine jitter without letting a
#: real regression through).
DEFAULT_TOLERANCE = 0.20


def load_json(path: str) -> dict:
    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise SystemExit(f"missing bench artifact: {path} (exit 2)\n"
                         f"run the benchmark first, or pass --trace/--locality")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"unreadable bench artifact {path}: {exc}")


def check_trace(payload: dict, smoke: bool, tolerance: float) -> list[str]:
    """Gate failures from the trace-engine artifact."""
    failures = []
    if payload.get("coverage_failures"):
        for line in payload["coverage_failures"]:
            failures.append(f"trace coverage: batched engine cannot compile {line}")
    if smoke or payload.get("quick"):
        return failures
    target = float(payload.get("speedup_target", 0.0))
    floor = target * (1.0 - tolerance)
    for row in payload.get("kernels", ()):
        if row["speedup"] < floor:
            failures.append(
                f"trace speedup: {row['kernel']} at {row['speedup']:.2f}x, "
                f"floor {floor:.2f}x (target {target:.0f}x - {tolerance:.0%})"
            )
    need = int(payload.get("min_fast_kernels", 0))
    fast = payload.get("fast_kernels", [])
    if len(fast) < need:
        failures.append(
            f"trace speedup: only {len(fast)} kernels >= {target:.0f}x "
            f"(need {need}): {fast}"
        )
    return failures


def check_locality(payload: dict, smoke: bool, tolerance: float) -> list[str]:
    """Gate failures from the analytic-locality artifact."""
    failures = []
    bound = float(payload.get("error_bound_pp", 0.0))
    worst = payload.get("worst_error_pp")
    if worst is not None and worst > bound:
        failures.append(
            f"locality accuracy: worst error {worst:.2f}pp exceeds "
            f"{bound:.1f}pp bound"
        )
    for row in payload.get("kernels", ()):
        if row["error_pp"] > bound:
            failures.append(
                f"locality accuracy: {row['kernel']}/{row['config']} at "
                f"{row['error_pp']:.2f}pp (bound {bound:.1f}pp)"
            )
    if smoke or payload.get("quick"):
        return failures
    target = float(payload.get("speedup_target", 0.0))
    floor = target * (1.0 - tolerance)
    minimum = payload.get("min_speedup")
    if minimum is not None and minimum < floor:
        failures.append(
            f"locality speedup: min {minimum:.0f}x under floor {floor:.0f}x "
            f"(target {target:.0f}x - {tolerance:.0%})"
        )
    return failures


def check_autotune(payload: dict, smoke: bool, tolerance: float) -> list[str]:
    """Gate failures from the autotune-search artifact."""
    failures = []
    bound = float(payload.get("regret_bound_pp", 0.0))
    worst = payload.get("worst_regret_pp")
    if worst is not None and worst > bound:
        failures.append(
            f"autotune regret: worst {worst:.2f}pp exceeds {bound:.1f}pp bound"
        )
    for row in payload.get("kernels", ()):
        if row["regret_pp"] > bound:
            failures.append(
                f"autotune regret: {row['kernel']} at {row['regret_pp']:.2f}pp "
                f"(bound {bound:.1f}pp)"
            )
        if not row.get("beats_compound", True):
            failures.append(
                f"autotune dominance: {row['kernel']} chose a config worse "
                f"than the compound algorithm"
            )
    if smoke or payload.get("quick"):
        return failures
    target = float(payload.get("speedup_target", 0.0))
    floor = target * (1.0 - tolerance)
    minimum = payload.get("min_speedup")
    if minimum is not None and minimum < floor:
        failures.append(
            f"autotune speedup: min {minimum:.0f}x under floor {floor:.0f}x "
            f"(target {target:.0f}x - {tolerance:.0%})"
        )
    return failures


def previous_bench(records: list[dict], kind: str) -> dict | None:
    """Latest non-quick ledgered bench payload of the given kind."""
    for record in reversed(records):
        if record.get("kind") != kind:
            continue
        bench = record.get("bench") or {}
        if bench.get("quick"):
            continue
        return bench
    return None


def check_history(
    payload: dict, records: list[dict], kind: str, tolerance: float
) -> list[str]:
    """Per-kernel comparison against the previous ledgered run."""
    previous = previous_bench(records, kind)
    if previous is None:
        return []
    failures = []
    prior = {
        (r["kernel"], r.get("config")): r
        for r in previous.get("kernels", ())
        if r.get("speedup") is not None
    }
    for row in payload.get("kernels", ()):
        speedup = row.get("speedup")
        old = prior.get((row["kernel"], row.get("config")))
        if speedup is None or old is None:
            continue
        floor = old["speedup"] * (1.0 - tolerance)
        if speedup < floor:
            failures.append(
                f"{kind} history: {row['kernel']}"
                f"{'/' + row['config'] if row.get('config') else ''} fell to "
                f"{speedup:.2f}x from {old['speedup']:.2f}x "
                f"(floor {floor:.2f}x)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="skip wall-clock gates (coverage + accuracy only)",
    )
    parser.add_argument(
        "--trace", default=os.path.join(REPO_ROOT, "BENCH_trace.json")
    )
    parser.add_argument(
        "--locality", default=os.path.join(REPO_ROOT, "BENCH_locality.json")
    )
    parser.add_argument(
        "--autotune", default=os.path.join(REPO_ROOT, "BENCH_autotune.json")
    )
    parser.add_argument(
        "--ledger",
        default=None,
        help="ledger directory for history comparison (default: .repro "
        "via REPRO_LEDGER_DIR; pass a nonexistent dir to skip)",
    )
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    args = parser.parse_args(argv)

    trace = load_json(args.trace)
    locality = load_json(args.locality)
    autotune = load_json(args.autotune)

    failures = []
    failures += check_trace(trace, args.smoke, args.tolerance)
    failures += check_locality(locality, args.smoke, args.tolerance)
    failures += check_autotune(autotune, args.smoke, args.tolerance)

    records: list[dict] = []
    try:
        from repro.obs.ledger import read_ledger

        records = read_ledger(args.ledger)
    except Exception:  # noqa: BLE001 - history is best-effort
        records = []
    if records and not args.smoke:
        failures += check_history(trace, records, "bench.trace", args.tolerance)
        failures += check_history(
            locality, records, "bench.locality", args.tolerance
        )
        failures += check_history(
            autotune, records, "bench.autotune", args.tolerance
        )

    mode = "smoke (coverage + accuracy)" if args.smoke else "full"
    print(f"check_bench: mode={mode} tolerance={args.tolerance:.0%} "
          f"ledger_records={len(records)}")
    print(f"  trace:    {len(trace.get('kernels', []))} kernels, "
          f"quick={trace.get('quick')}")
    print(f"  locality: {len(locality.get('kernels', []))} rows, "
          f"worst_error={locality.get('worst_error_pp', 0.0):.2f}pp")
    print(f"  autotune: {len(autotune.get('kernels', []))} kernels, "
          f"worst_regret={autotune.get('worst_regret_pp', 0.0):.2f}pp, "
          f"quick={autotune.get('quick')}")
    if failures:
        print(f"FAIL: {len(failures)} regression(s)")
        for line in failures:
            print(f"  {line}")
        return 1
    print("PASS: no bench regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
