#!/usr/bin/env python
"""CI smoke for the compile service: boot, hammer, assert, export.

Boots ``repro.server`` in-process on an ephemeral port, pushes the five
gate kernels (the autotune benchmark's FULL set) through
``POST /v1/optimize`` **twice**, and asserts:

* every response is 200 (both passes);
* the second pass is served from the cache (``X-Repro-Cache: hit``,
  nonzero hit counters on ``/metrics``) with byte-identical bodies;
* cached replies are at least ``--speedup`` times faster than the
  compiling pass in aggregate (total hit wall-clock vs. total miss
  wall-clock; per-kernel ratios are printed but not gated — the
  cheapest kernels compile in single-digit milliseconds, where fixed
  HTTP overhead dominates the ratio).

Artifacts (``--artifacts DIR``): the final ``/metrics`` snapshot and
the server's ledger (one ``kind="server"`` record per request).

Exit status: 0 on success, 1 with a diagnostic on any violated gate.

Usage::

    PYTHONPATH=src python tools/server_smoke.py --artifacts smoke-artifacts
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import threading
import time

GATE_KERNELS = ["jacobi", "adi", "erlebacher_like", "cholesky", "transpose"]


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifacts", default="server-smoke-artifacts",
                        help="directory for /metrics + ledger artifacts")
    parser.add_argument("--n", type=int, default=64,
                        help="kernel instance size (default 64)")
    parser.add_argument("--speedup", type=float, default=10.0,
                        help="required hit-vs-miss speedup factor (default 10)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="server worker processes (default 2)")
    args = parser.parse_args(argv)

    os.makedirs(args.artifacts, exist_ok=True)
    ledger_dir = os.path.join(args.artifacts, "ledger")
    os.environ["REPRO_LEDGER"] = "1"
    os.environ["REPRO_LEDGER_DIR"] = ledger_dir

    from repro.ir import pretty_program
    from repro.server import ReproServer, ServerConfig
    from repro.server.client import ReproClient
    from repro.suite import get_entry

    sources = {
        name: pretty_program(get_entry(name).program(n=args.n))
        for name in GATE_KERNELS
    }

    server = ReproServer(ServerConfig(port=0, jobs=args.jobs))
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()

    def call(coroutine, timeout: float = 60.0):
        return asyncio.run_coroutine_threadsafe(coroutine, loop).result(timeout)

    host, port = call(server.start())
    client = ReproClient(host, port)
    print(f"server up on http://{host}:{port} (jobs={args.jobs})")

    failures: list[str] = []
    timings: dict[str, dict[str, float]] = {}
    try:
        for passno, state_want in ((1, "miss"), (2, "hit")):
            for name, source in sources.items():
                start = time.perf_counter()
                reply = client.optimize(source)
                elapsed = time.perf_counter() - start
                timings.setdefault(name, {})[state_want] = elapsed
                if reply.status != 200:
                    failures.append(
                        f"pass {passno} {name}: HTTP {reply.status} "
                        f"({reply.payload.get('error', {}).get('code')})"
                    )
                    continue
                if reply.cache_state != state_want:
                    failures.append(
                        f"pass {passno} {name}: expected cache "
                        f"{state_want}, got {reply.cache_state!r}"
                    )
                print(
                    f"  pass {passno} {name:16s} {reply.status} "
                    f"{reply.cache_state:4s} {elapsed * 1000:8.2f}ms "
                    f"miss_after={reply.payload['locality']['miss_after']}"
                )

        miss_total = sum(t.get("miss", 0.0) for t in timings.values())
        hit_total = sum(t.get("hit", 0.0) for t in timings.values())
        ratio = miss_total / hit_total if hit_total else float("inf")
        print(f"aggregate: miss {miss_total * 1000:.2f}ms vs "
              f"hit {hit_total * 1000:.2f}ms ({ratio:.1f}x)")
        if hit_total * args.speedup > miss_total:
            failures.append(
                f"cache pass only {ratio:.1f}x faster than compile pass "
                f"(need {args.speedup:g}x)"
            )

        metrics = client.metrics().payload
        if metrics["cache"]["hits"] < len(GATE_KERNELS):
            failures.append(
                f"expected >= {len(GATE_KERNELS)} cache hits, "
                f"got {metrics['cache']['hits']}"
            )
        if metrics["requests"]["by_status"].get("200", 0) < 2 * len(GATE_KERNELS):
            failures.append("not every request answered 200")

        with open(os.path.join(args.artifacts, "metrics.json"), "w") as handle:
            json.dump(metrics, handle, indent=2)
            handle.write("\n")
    finally:
        call(server.shutdown())
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)

    ledger_path = os.path.join(ledger_dir, "ledger.jsonl")
    if os.path.exists(ledger_path):
        with open(ledger_path) as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        server_records = [r for r in records if r["kind"] == "server"]
        print(f"ledger: {len(server_records)} server records at {ledger_path}")
        if len(server_records) < 2 * len(GATE_KERNELS):
            failures.append(
                f"ledger has {len(server_records)} server records, "
                f"expected >= {2 * len(GATE_KERNELS)}"
            )
    else:
        failures.append(f"no ledger written at {ledger_path}")

    if failures:
        print("\nSERVER SMOKE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nserver smoke OK: {2 * len(GATE_KERNELS)} requests, "
          f"{metrics['cache']['hits']} cache hits, artifacts in {args.artifacts}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
