"""Loop parallelism analysis.

The paper's §5.7 (Simple) discusses the tension its strategy resolves:
programs written so the *inner* loop is dependence-free (vectorizable)
often have terrible locality, and Compound deliberately moves the
recurrence inward when that wins on cache behaviour, "the improvements
in cache performance far outweigh the potential loss in low-level
parallelism."

This module provides the query both sides of that trade need: which
loops of a nest carry no dependence (are DOALL/vectorizable). A loop is
parallel when no legality-constraining dependence is carried at its
level within the nest.
"""

from __future__ import annotations

from repro.ir.nodes import Loop
from repro.ir.visit import enclosing_loops
from repro.dependence.pairs import region_dependences

__all__ = ["parallel_loops", "carried_levels", "is_vectorizable"]


def carried_levels(nest_root: Loop) -> dict[str, bool]:
    """Map each loop var of the nest to whether it carries a dependence.

    A '*' component (unknown direction, e.g. scalar traffic) counts as
    carried — the conservative answer for parallelization.
    """
    chains = enclosing_loops(nest_root)
    carried: dict[str, bool] = {}

    def seed(loop: Loop) -> None:
        carried.setdefault(loop.var, False)
        for item in loop.body:
            if isinstance(item, Loop):
                seed(item)

    seed(nest_root)

    for dep in region_dependences(nest_root):
        if not dep.constrains_legality:
            continue
        level = dep.carried_level()
        if level is None:
            continue
        var = dep.loop_vars[level - 1]
        carried[var] = True
        # A leading '*' can hide deeper carried levels too; be safe.
        comp = dep.vector[level - 1]
        if not isinstance(comp, int) and comp == "*":
            for deeper in dep.loop_vars[level:]:
                carried[deeper] = True
    return carried


def parallel_loops(nest_root: Loop) -> list[str]:
    """Loop vars of the nest that carry no dependence (DOALL loops)."""
    return [var for var, is_carried in carried_levels(nest_root).items() if not is_carried]


def is_vectorizable(nest_root: Loop) -> bool:
    """Is some innermost loop of the nest dependence-free?

    This is the property vector-style code maximizes — often at the cost
    of locality, which is exactly the trade §5.7 describes for Simple.
    """
    carried = carried_levels(nest_root)

    def innermost(loop: Loop) -> list[Loop]:
        inner = [i for i in loop.body if isinstance(i, Loop)]
        if not inner:
            return [loop]
        out: list[Loop] = []
        for item in inner:
            out.extend(innermost(item))
        return out

    return any(not carried[loop.var] for loop in innermost(nest_root))
