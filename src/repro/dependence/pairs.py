"""Statement-pair dependence driver.

Walks a program region, runs :func:`analyze_ref_pair` on every pair of
references to the same array, orients the resulting vectors, and produces
:class:`Dependence` records. True (flow), anti, output, and — optionally —
input dependences are reported; input dependences carry reuse information
for the cost model's ``RefGroup`` but never constrain legality.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.ir.expr import Ref
from repro.ir.nodes import Assign, Loop, Program
from repro.ir.visit import enclosing_loops, iter_statements, statement_positions
from repro.dependence.tests import analyze_ref_pair
from repro.dependence.vector import DIR_GT, DIR_LT, DIR_STAR, DepVector

__all__ = ["Dependence", "RefSite", "all_dependences", "region_dependences"]

#: Dependence kinds, named from the source access to the sink access.
FLOW = "flow"  # write -> read
ANTI = "anti"  # read -> write
OUTPUT = "output"  # write -> write
INPUT = "input"  # read -> read (reuse only)


@dataclass(frozen=True)
class RefSite:
    """One reference occurrence: which statement, which ref, read or write.

    ``slot`` is the index of the reference inside ``Assign.refs`` (0 is the
    write), making every occurrence uniquely addressable.
    """

    sid: int
    slot: int
    ref: Ref
    is_write: bool


@dataclass(frozen=True)
class Dependence:
    """An oriented dependence between two reference occurrences.

    ``vector`` has one component per loop *common* to source and sink,
    outermost first; ``loop_vars`` names those loops. Loop-independent
    dependences have an all-zero / all-'=' vector.
    """

    kind: str
    source: RefSite
    sink: RefSite
    vector: DepVector
    loop_vars: tuple[str, ...]

    @property
    def is_loop_independent(self) -> bool:
        return self.vector.is_loop_independent()

    def carried_level(self) -> int | None:
        """1-based common-loop level carrying the dependence (None = LI)."""
        return self.vector.carried_level()

    @property
    def constrains_legality(self) -> bool:
        """Input dependences never constrain transformations."""
        return self.kind != INPUT

    def __str__(self) -> str:
        arrow = {FLOW: "->", ANTI: "-/>", OUTPUT: "=>", INPUT: "~>"}[self.kind]
        return (
            f"{self.source.ref}@S{self.source.sid} {arrow} "
            f"{self.sink.ref}@S{self.sink.sid} {self.vector}"
        )


def _ref_sites(stmt: Assign) -> list[RefSite]:
    sites = []
    for slot, ref in enumerate(stmt.refs):
        sites.append(RefSite(stmt.sid, slot, ref, is_write=(slot == 0)))
    return sites


def _kind(src_write: bool, dst_write: bool) -> str:
    if src_write and dst_write:
        return OUTPUT
    if src_write:
        return FLOW
    if dst_write:
        return ANTI
    return INPUT


def region_dependences(
    root: "Program | Loop", include_inputs: bool = False
) -> list[Dependence]:
    """All dependences between statements inside ``root``.

    When ``root`` is a :class:`Loop`, that loop and its inner loops form
    the common nesting; when it is a :class:`Program`, statements in
    disjoint top-level nests share no loops and their dependences are
    loop-independent orderings at nesting depth zero.
    """
    from repro.obs import get_obs

    chains = enclosing_loops(root)
    positions = statement_positions(root)
    statements = list(iter_statements(root))
    deps: list[Dependence] = []

    with get_obs().span("dependence.region", statements=len(statements)):
        for i, stmt_a in enumerate(statements):
            for stmt_b in statements[i:]:
                deps.extend(
                    _pair_dependences(
                        stmt_a,
                        stmt_b,
                        chains[stmt_a.sid],
                        chains[stmt_b.sid],
                        positions,
                        include_inputs,
                    )
                )
    return deps


#: Backwards-compatible alias used throughout the transforms.
all_dependences = region_dependences


def _pair_dependences(
    stmt_a: Assign,
    stmt_b: Assign,
    chain_a: tuple[Loop, ...],
    chain_b: tuple[Loop, ...],
    positions: dict[int, int],
    include_inputs: bool,
) -> Iterator[Dependence]:
    # Common prefix of the two loop chains.
    k = 0
    while k < len(chain_a) and k < len(chain_b) and chain_a[k] is chain_b[k]:
        k += 1
    common = chain_a[:k]
    only_a = chain_a[k:]
    only_b = chain_b[k:]
    loop_vars = tuple(l.var for l in common)
    same_stmt = stmt_a.sid == stmt_b.sid

    sites_a = _ref_sites(stmt_a)
    sites_b = _ref_sites(stmt_b)

    for site_a in sites_a:
        for site_b in sites_b:
            if same_stmt and site_b.slot < site_a.slot:
                continue  # each unordered pair once
            if not (site_a.is_write or site_b.is_write):
                if not include_inputs:
                    continue
                if site_a.ref.array != site_b.ref.array:
                    continue
            if site_a.ref.array != site_b.ref.array:
                continue
            identical_occurrence = same_stmt and site_a.slot == site_b.slot
            vectors = analyze_ref_pair(
                site_a.ref, site_b.ref, common, only_a, only_b
            )
            kind_fwd = _kind(site_a.is_write, site_b.is_write)
            kind_bwd = _kind(site_b.is_write, site_a.is_write)
            for vec in vectors:
                yield from _orient(
                    site_a,
                    site_b,
                    vec,
                    loop_vars,
                    positions,
                    kind_fwd,
                    kind_bwd,
                    identical_occurrence,
                    same_stmt,
                )


def _orient(
    site_a: RefSite,
    site_b: RefSite,
    vec: DepVector,
    loop_vars: tuple[str, ...],
    positions: dict[int, int],
    kind_fwd: str,
    kind_bwd: str,
    identical_occurrence: bool,
    same_stmt: bool,
) -> Iterator[Dependence]:
    """Turn a B-minus-A vector into oriented Dependence records."""
    if vec.is_lex_positive():
        yield Dependence(kind_fwd, site_a, site_b, vec, loop_vars)
        return
    if vec.is_lex_negative():
        yield Dependence(kind_bwd, site_b, site_a, vec.negated(), loop_vars)
        return
    if vec.is_loop_independent():
        if identical_occurrence:
            return  # the access itself, not a dependence
        if same_stmt:
            # Within one instance reads precede the write.
            read, write = (
                (site_a, site_b) if site_b.is_write else (site_b, site_a)
            )
            if site_a.is_write and site_b.is_write:
                return  # single write slot; unreachable for sane IR
            if not (site_a.is_write or site_b.is_write):
                yield Dependence(INPUT, site_a, site_b, vec, loop_vars)
                return
            yield Dependence(_kind(read.is_write, write.is_write), read, write, vec, loop_vars)
            return
        first, second = (
            (site_a, site_b)
            if positions[site_a.sid] < positions[site_b.sid]
            else (site_b, site_a)
        )
        yield Dependence(
            _kind(first.is_write, second.is_write), first, second, vec, loop_vars
        )
        return
    # Ambiguous: the leading '*' admits <, 0 and > cases. Split the first
    # ambiguous component and orient each case; deeper '*'s are harmless
    # once a leading '<' decides the orientation.
    split_at = next(
        i for i, comp in enumerate(vec.components) if vec.direction(i) == DIR_STAR
    )
    for refined in (DIR_LT, 0, DIR_GT):
        comps = list(vec.components)
        comps[split_at] = refined
        yield from _orient(
            site_a,
            site_b,
            DepVector(tuple(comps)),
            loop_vars,
            positions,
            kind_fwd,
            kind_bwd,
            identical_occurrence,
            same_stmt,
        )
