"""Data dependence analysis: tests, vectors, pair driver, graph."""

from repro.dependence.graph import DependenceGraph, strongly_connected_components
from repro.dependence.parallel import carried_levels, is_vectorizable, parallel_loops
from repro.dependence.pairs import (
    ANTI,
    FLOW,
    INPUT,
    OUTPUT,
    Dependence,
    RefSite,
    all_dependences,
    region_dependences,
)
from repro.dependence.tests import analyze_ref_pair
from repro.dependence.vector import DepVector

__all__ = [
    "ANTI",
    "FLOW",
    "INPUT",
    "OUTPUT",
    "Dependence",
    "DependenceGraph",
    "DepVector",
    "RefSite",
    "all_dependences",
    "analyze_ref_pair",
    "carried_levels",
    "is_vectorizable",
    "parallel_loops",
    "region_dependences",
    "strongly_connected_components",
]
