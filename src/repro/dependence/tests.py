"""Data dependence tests for affine array references.

Implements practical dependence testing in the style of Goff, Kennedy &
Tseng [GKT91], the analysis the paper builds on:

* **ZIV** and **GCD** screening per subscript dimension;
* **strong-SIV distance pinning**: dimensions of the form
  ``a*i + c1 = a*i' + c2`` fix the dependence distance exactly, producing
  the paper's hybrid *distance*/direction vectors;
* **Fourier-Motzkin feasibility** over the exact iteration-space
  constraints for the remaining direction-vector hierarchy, handling
  triangular bounds precisely and symbolic bounds conservatively.

Distances and directions are expressed in *loop index value* space
(divided by the step, so components count iterations): this is the space
in which permutation legality must be judged — normalizing lower bounds
away would silently skew vectors for nests whose inner bounds depend on
outer indices.

The entry point is :func:`analyze_ref_pair`, which returns the set of
feasible hybrid vectors for ``B - A`` over the common loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Mapping, Sequence

from repro.ir.affine import Affine
from repro.ir.expr import Ref
from repro.ir.nodes import Loop
from repro.dependence.vector import DIR_EQ, DIR_GT, DIR_LT, DIR_STAR, DepVector
from repro.obs import get_obs

__all__ = ["analyze_ref_pair", "MAX_VECTORS"]

#: Safety valve: beyond this many feasible vectors the result collapses to
#: a single all-'*' vector (fully conservative).
MAX_VECTORS = 81

#: Pair-test memo: the result depends only on the two references and the
#: canonical (var, lb, ub, step) chains, all of which are frozen values.
#: Backed by the shared :class:`repro.model.memo.MemoCache` layer (LRU
#: eviction + hit/miss counters); created lazily because importing
#: ``repro.model`` from here at module scope would close an import cycle
#: (model.nest -> dependence.pairs -> dependence.tests).
_PAIR_CACHE_CAP = 50_000
_pair_cache_singleton = None


def _pair_cache():
    global _pair_cache_singleton
    if _pair_cache_singleton is None:
        from repro.model.memo import MemoCache

        _pair_cache_singleton = MemoCache("dep.cache", cap=_PAIR_CACHE_CAP)
    return _pair_cache_singleton


def __getattr__(name: str):
    # PEP 562: `from repro.dependence.tests import _PAIR_CACHE` resolves
    # to the live singleton even before the first pair test ran.
    if name == "_PAIR_CACHE":
        return _pair_cache()
    raise AttributeError(name)

#: Constraint-count cap per elimination step; beyond it the FME test
#: gives up and reports "feasible" (fully conservative).
_FME_CONSTRAINT_CAP = 400


# ----------------------------------------------------------------------
# Rational Fourier-Motzkin feasibility
# ----------------------------------------------------------------------
def _fme_feasible(constraints: list[Affine], variables: set[str]) -> bool:
    """Rational Fourier-Motzkin feasibility of ``form >= 0`` constraints.

    Eliminates the loop variables in ``variables``; any other names
    (symbolic problem sizes) ride along as opaque constants.
    Infeasibility is reported only from symbol-free constant
    contradictions, so the answer is conservative both for symbolic sizes
    and for rational-vs-integer gaps (with a GCD tightening that recovers
    most of the latter).
    """
    current = _strengthen(constraints)
    if current is None:
        return False
    remaining = [v for v in variables if any(c.coeff(v) for c in current)]
    # Eliminate low-occurrence variables first to limit growth.
    remaining.sort(key=lambda v: sum(1 for c in current if c.coeff(v)))
    for var in remaining:
        lowers = []  # coeff > 0: a*v + f >= 0  =>  v >= -f/a
        uppers = []  # coeff < 0: -b*v + g >= 0 =>  v <= g/b
        rest = []
        for con in current:
            coeff = con.coeff(var)
            if coeff > 0:
                lowers.append((coeff, con - Affine.var(var, coeff)))
            elif coeff < 0:
                uppers.append((-coeff, con - Affine.var(var, coeff)))
            else:
                rest.append(con)
        new = rest
        for a, low in lowers:  # v >= -low/a
            for b, up in uppers:  # v <= up/b
                new.append(low * b + up * a)
        if len(new) > _FME_CONSTRAINT_CAP:
            return True  # give up, conservatively feasible
        strengthened = _strengthen(new)
        if strengthened is None:
            return False
        current = strengthened
    return True


def _strengthen(constraints: list[Affine]) -> list[Affine] | None:
    """Normalize, dedupe, and check constant constraints.

    Each ``form >= 0`` is divided by the GCD of its variable coefficients
    with the constant floored — valid for integer-valued variables and
    strictly stronger. Returns None when a symbol-free constraint is a
    plain contradiction.
    """
    best: dict[tuple, int] = {}
    for con in constraints:
        if not con.terms:
            if con.const < 0:
                return None
            continue
        g = 0
        for _, coeff in con.terms:
            g = gcd(g, abs(coeff))
        terms = tuple((n, c // g) for n, c in con.terms)
        const = con.const // g  # floor division: integer tightening
        if terms not in best or const < best[terms]:
            best[terms] = const
    # A pair f + c1 >= 0 and -f + c2 >= 0 with c1 + c2 < 0 is infeasible
    # even when f contains symbols.
    for terms, const in best.items():
        negated = tuple((n, -c) for n, c in terms)
        if negated in best and const + best[negated] < 0:
            return None
    return [Affine(terms, const) for terms, const in best.items()]


# ----------------------------------------------------------------------
# Per-side loop views
# ----------------------------------------------------------------------
@dataclass
class _SideLoop:
    """One loop as seen from one side of the reference pair."""

    var: str  # original index name
    value: str  # renamed value variable for this side
    step: int
    lb_res: Affine  # bounds with outer vars renamed to this side
    ub_res: Affine
    upper: int | None  # trip - 1 when statically known
    empty: bool  # definitely zero-trip
    aux: str | None  # auxiliary counter name when |step| != 1


def _side_chain(
    chain: Sequence[Loop], prefix: str, env: dict[str, Affine]
) -> list[_SideLoop]:
    """Rename each loop's index to a side-local value variable."""
    out: list[_SideLoop] = []
    for loop in chain:
        value = f"{prefix}{loop.var}"
        lb = loop.lb
        ub = loop.ub
        for name in list(lb.names):
            if name in env:
                lb = lb.substitute(name, env[name])
        for name in list(ub.names):
            if name in env:
                ub = ub.substitute(name, env[name])
        env[loop.var] = Affine.var(value)
        span = ub - lb
        upper: int | None = None
        empty = False
        if span.is_constant():
            trip = (span.const + loop.step) // loop.step
            if trip <= 0:
                empty = True
                upper = 0
            else:
                upper = trip - 1
        aux = f"{value}#t" if abs(loop.step) != 1 else None
        out.append(_SideLoop(loop.var, value, loop.step, lb, ub, upper, empty, aux))
    return out


def _rename_ref(ref: Ref, env: Mapping[str, Affine]) -> list[Affine]:
    subs = []
    for sub in ref.subs:
        for name in list(sub.names):
            if name in env:
                sub = sub.substitute(name, env[name])
        subs.append(sub)
    return subs


def _bound_constraints(side: _SideLoop) -> list[Affine]:
    """``form >= 0`` constraints confining the loop's value variable."""
    v = Affine.var(side.value)
    if side.step > 0:
        cons = [v - side.lb_res, side.ub_res - v]
    else:
        cons = [side.lb_res - v, v - side.ub_res]
    if side.aux is not None:
        t = Affine.var(side.aux)
        # v = lb + step * t with t >= 0 (exact stride membership).
        cons.append(t)
        eq = v - side.lb_res - t * side.step
        cons.append(eq)
        cons.append(-eq)
    return cons


# ----------------------------------------------------------------------
# The pair test
# ----------------------------------------------------------------------
def _chain_key(chain: Sequence[Loop]) -> tuple:
    """Canonical per-loop signature: everything the pair test reads.

    Bodies are irrelevant — only the index variable, bounds, and step of
    each enclosing loop enter the constraint system. Names outside the
    chains are opaque symbols on every path, so two call sites with equal
    keys are indistinguishable to the analysis.
    """
    return tuple((loop.var, loop.lb, loop.ub, loop.step) for loop in chain)


class _KindRecorder:
    """Metrics-registry shim capturing counter bumps for cache replay."""

    __slots__ = ("events",)

    def __init__(self):
        self.events: list[tuple[str, int]] = []

    def counter(self, name: str) -> "_RecCounter":
        return _RecCounter(self.events, name)


class _RecCounter:
    __slots__ = ("_events", "_name")

    def __init__(self, events: list, name: str):
        self._events = events
        self._name = name

    def inc(self, amount: int = 1) -> None:
        self._events.append((self._name, amount))


def analyze_ref_pair(
    ref_a: Ref,
    ref_b: Ref,
    common: Sequence[Loop],
    only_a: Sequence[Loop] = (),
    only_b: Sequence[Loop] = (),
) -> list[DepVector]:
    """Feasible hybrid dependence vectors for instance(B) - instance(A).

    ``common`` are the loops enclosing both references (outermost first);
    ``only_a``/``only_b`` the additional loops enclosing just one side
    (treated as free variables). Returns an empty list when the references
    are proven independent; components are exact int *iteration* distances
    where the strong-SIV pattern pins them, directions otherwise, ``'*'``
    for loops the subscripts do not constrain.

    The trivial all-zero vector (same instance, same access) *is* included
    when feasible; callers drop it for identical occurrences.

    Results are memoized on the canonical (refs, chains) key. A cache hit
    replays the recorded ``dep.*`` kind counters, so observability output
    is identical to an uncached run; ``dep.cache.hits`` / ``.misses``
    report the cache's own effectiveness.
    """
    obs = get_obs()
    key = (
        ref_a,
        ref_b,
        _chain_key(common),
        _chain_key(only_a),
        _chain_key(only_b),
    )
    cache = _pair_cache()
    cached = cache.get(key)  # the cache emits dep.cache.hits/misses
    if cached is not None:
        vectors, events = cached
        if obs.enabled:
            metrics = obs.metrics
            for name, amount in events:
                metrics.counter(name).inc(amount)
        return list(vectors)
    recorder = _KindRecorder()
    vectors = _analyze_ref_pair_impl(
        ref_a, ref_b, common, only_a, only_b, recorder
    )
    cache.put(key, (tuple(vectors), tuple(recorder.events)))
    if obs.enabled:
        metrics = obs.metrics
        for name, amount in recorder.events:
            metrics.counter(name).inc(amount)
    return vectors


def _analyze_ref_pair_impl(
    ref_a: Ref,
    ref_b: Ref,
    common: Sequence[Loop],
    only_a: Sequence[Loop],
    only_b: Sequence[Loop],
    metrics,
) -> list[DepVector]:
    if ref_a.array != ref_b.array:
        return []
    if ref_a.rank != ref_b.rank:
        # Cannot relate the layouts; be conservative.
        return [DepVector((DIR_STAR,) * len(common))]

    env_a: dict[str, Affine] = {}
    side_common_a = _side_chain(common, "a.", env_a)
    env_b: dict[str, Affine] = {}
    side_common_b = _side_chain(common, "b.", env_b)
    side_only_a = _side_chain(only_a, "fa.", env_a)
    side_only_b = _side_chain(only_b, "fb.", env_b)
    all_sides = side_common_a + side_common_b + side_only_a + side_only_b

    if any(side.empty for side in all_sides):
        return []

    subs_a = _rename_ref(ref_a, env_a)
    subs_b = _rename_ref(ref_b, env_b)
    diffs = [sb - sa for sa, sb in zip(subs_a, subs_b)]

    values_a = [side.value for side in side_common_a]
    values_b = [side.value for side in side_common_b]

    _count_test_kinds(metrics, diffs, values_a, values_b)
    steps = [loop.step for loop in common]
    uppers = [side.upper for side in side_common_a]
    k = len(common)

    variables = {side.value for side in all_sides}
    variables |= {side.aux for side in all_sides if side.aux}

    if not _ziv_gcd_screen(diffs, all_sides, variables):
        return []

    # --- strong-SIV distance pinning ------------------------------------
    pinned: dict[int, int] = {}
    for diff in diffs:
        for l in range(k):
            alpha = diff.coeff(values_a[l])
            beta = diff.coeff(values_b[l])
            if alpha == 0 and beta == 0:
                continue
            if alpha != -beta or beta == 0:
                continue  # not the strong-SIV shape for loop l
            others = [
                c
                for n, c in diff.terms
                if n not in (values_a[l], values_b[l])
            ]
            if any(others):
                continue  # other variables/symbols present
            # beta*(v'_l - v_l) + const = 0  =>  value delta = -const/beta
            if diff.const % beta != 0:
                return []
            value_delta = -diff.const // beta
            if value_delta % steps[l] != 0:
                return []  # not a whole number of iterations apart
            delta = value_delta // steps[l]
            if l in pinned and pinned[l] != delta:
                return []
            u = uppers[l]
            if u is not None and abs(delta) > u:
                return []
            pinned[l] = delta

    # --- which remaining loops actually constrain the subscripts --------
    def loop_appears(l: int) -> bool:
        return any(
            d.coeff(values_a[l]) != 0 or d.coeff(values_b[l]) != 0
            for d in diffs
        )

    branch_levels = [
        l for l in range(k) if l not in pinned and loop_appears(l)
    ]

    # --- Fourier-Motzkin feasibility for a (partial) assignment ---------
    # Base system: exact per-side loop bounds (triangular couplings are
    # kept as affine constraints between value variables) plus the
    # subscript equations. Symbols are opaque; contradictions only come
    # from symbol-free constants, so the test stays conservative.
    base_constraints: list[Affine] = []
    for side in all_sides:
        base_constraints.extend(_bound_constraints(side))
    for diff in diffs:
        base_constraints.append(diff)  # diff == 0
        base_constraints.append(-diff)

    def feasible(assign: dict[int, "int | str"]) -> bool:
        constraints = list(base_constraints)
        for l in range(k):
            what = assign.get(l, pinned.get(l, DIR_STAR))
            delta = Affine.var(values_b[l]) - Affine.var(values_a[l])
            step = steps[l]
            if isinstance(what, int):
                constraints.append(delta - what * step)
                constraints.append(what * step - delta)
            elif what == DIR_LT:  # sink at a later iteration
                if step > 0:
                    constraints.append(delta - step)
                else:
                    constraints.append(step * 1 - delta)
            elif what == DIR_GT:  # sink at an earlier iteration
                if step > 0:
                    constraints.append(-delta - step)
                else:
                    constraints.append(delta + step * 1)
            elif what == DIR_EQ:
                constraints.append(delta)
                constraints.append(-delta)
        return _fme_feasible(constraints, variables)

    if not feasible({}):
        return []

    # --- enumerate the direction hierarchy over branch_levels -----------
    results: list[DepVector] = []

    def emit(assign: dict[int, "int | str"]) -> None:
        comps: list["int | str"] = []
        for l in range(k):
            if l in pinned:
                comps.append(pinned[l])
            elif l in assign:
                # '=' is exactly distance 0; keep vectors canonical.
                comps.append(0 if assign[l] == DIR_EQ else assign[l])
            else:
                comps.append(DIR_STAR)
        results.append(DepVector(tuple(comps)))

    def recurse(idx: int, assign: dict[int, "int | str"]) -> None:
        if len(results) > MAX_VECTORS:
            return
        if idx == len(branch_levels):
            emit(assign)
            return
        level = branch_levels[idx]
        for direction in (DIR_LT, DIR_EQ, DIR_GT):
            trial = dict(assign)
            trial[level] = direction
            if feasible(trial):
                recurse(idx + 1, trial)

    recurse(0, {})

    if len(results) > MAX_VECTORS:
        return [DepVector((DIR_STAR,) * k)]
    return results


def _count_test_kinds(
    metrics, diffs: list[Affine], values_a: list[str], values_b: list[str]
) -> None:
    """Classify each subscript dimension as ZIV / SIV / MIV (GKT91 naming)
    and bump the matching counters (observability only — no screening)."""
    metrics.counter("dep.pairs").inc()
    for diff in diffs:
        levels = sum(
            1
            for va, vb in zip(values_a, values_b)
            if diff.coeff(va) != 0 or diff.coeff(vb) != 0
        )
        if levels == 0:
            metrics.counter("dep.test.ziv").inc()
        elif levels == 1:
            metrics.counter("dep.test.siv").inc()
        else:
            metrics.counter("dep.test.miv").inc()


def _ziv_gcd_screen(
    diffs: list[Affine], sides: list[_SideLoop], variables: set[str]
) -> bool:
    """ZIV and GCD screening per subscript dimension.

    The GCD test needs the stride of each loop variable, which is
    ``step`` when the lower bound is constant. Loops with symbolic or
    coupled lower bounds contribute an effective stride of 1
    (conservative); symbolic offsets disable the test for that dimension.
    """
    stride_of: dict[str, int] = {}
    offset_of: dict[str, int | None] = {}
    for side in sides:
        stride_of[side.value] = abs(side.step)
        if side.lb_res.is_constant():
            offset_of[side.value] = side.lb_res.const
        else:
            offset_of[side.value] = None
            stride_of[side.value] = 1

    for diff in diffs:
        loop_terms = [(n, c) for n, c in diff.terms if n in variables]
        sym_terms = [c for n, c in diff.terms if n not in variables]
        if sym_terms:
            continue  # symbolic offset: cannot disprove here
        if not loop_terms:
            if diff.const != 0:
                return False  # ZIV
            continue
        g = 0
        const = diff.const
        usable = True
        for name, coeff in loop_terms:
            stride = stride_of.get(name, 1)
            offset = offset_of.get(name, 0)
            if offset is None:
                offset = 0  # folded into an effective stride of 1
            g = gcd(g, abs(coeff) * stride)
            const += coeff * offset  # v = offset + stride * t
        if g and const % g != 0:
            return False
    return True
