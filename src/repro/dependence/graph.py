"""Statement-level dependence graph with SCC (recurrence) machinery.

Loop distribution needs the *finest partitions* such that statements in a
recurrence stay together (§4.4): those are the strongly connected
components of the dependence graph restricted to dependences carried at a
given level or deeper (plus loop-independent ones), in topological order.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.dependence.pairs import Dependence

__all__ = ["DependenceGraph", "strongly_connected_components"]


@dataclass
class DependenceGraph:
    """A multigraph over statement sids built from dependence records.

    Input dependences are excluded — they express reuse, not ordering.
    """

    nodes: tuple[int, ...]
    edges: dict[int, dict[int, list[Dependence]]] = field(default_factory=dict)

    @staticmethod
    def build(sids: Iterable[int], deps: Iterable[Dependence]) -> "DependenceGraph":
        graph = DependenceGraph(tuple(sids))
        graph.edges = {sid: defaultdict(list) for sid in graph.nodes}
        node_set = set(graph.nodes)
        for dep in deps:
            if not dep.constrains_legality:
                continue
            if dep.source.sid in node_set and dep.sink.sid in node_set:
                graph.edges[dep.source.sid][dep.sink.sid].append(dep)
        return graph

    def dependences(self) -> list[Dependence]:
        out: list[Dependence] = []
        for src in self.nodes:
            for deps in self.edges[src].values():
                out.extend(deps)
        return out

    def restricted_to_level(self, level: int) -> "DependenceGraph":
        """Keep dependences carried at ``level`` (1-based) or deeper, plus
        loop-independent ones — the graph used when distributing the loop
        at ``level``."""

        def keep(dep: Dependence) -> bool:
            carried = dep.carried_level()
            return carried is None or carried >= level

        kept = [d for d in self.dependences() if keep(d)]
        return DependenceGraph.build(self.nodes, kept)

    def successors(self, sid: int) -> list[int]:
        return list(self.edges.get(sid, {}))

    def sccs(self) -> list[tuple[int, ...]]:
        """Strongly connected components in topological order."""
        adjacency = {sid: self.successors(sid) for sid in self.nodes}
        return strongly_connected_components(self.nodes, adjacency)

    def has_path(self, src: int, dst: int, blocked: frozenset[int] = frozenset()) -> bool:
        """DFS reachability avoiding ``blocked`` intermediate nodes."""
        stack = [src]
        seen = {src}
        while stack:
            node = stack.pop()
            for nxt in self.successors(node):
                if nxt == dst:
                    return True
                if nxt not in seen and nxt not in blocked:
                    seen.add(nxt)
                    stack.append(nxt)
        return False


def strongly_connected_components(
    nodes: Sequence[int], adjacency: dict[int, list[int]]
) -> list[tuple[int, ...]]:
    """Iterative Tarjan SCC, components in topological order.

    Tarjan emits components in *reverse* topological order; the result is
    reversed so that sources come first. Within a component, node order
    follows the input sequence for determinism.
    """
    index_of: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    components: list[tuple[int, ...]] = []
    counter = 0

    for root in nodes:
        if root in index_of:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, child_idx = work[-1]
            if child_idx == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = adjacency.get(node, [])
            while child_idx < len(children):
                child = children[child_idx]
                child_idx += 1
                if child not in index_of:
                    work[-1] = (node, child_idx)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                order = {sid: i for i, sid in enumerate(nodes)}
                component.sort(key=order.__getitem__)
                components.append(tuple(component))
            else:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    components.reverse()
    return _stable_topo_order(nodes, adjacency, components)


def _stable_topo_order(
    nodes: Sequence[int],
    adjacency: dict[int, list[int]],
    components: list[tuple[int, ...]],
) -> list[tuple[int, ...]]:
    """Kahn's algorithm over the condensation, preferring source order.

    Ties (components with no ordering constraint between them) are broken
    by the smallest original-node position, so unconstrained statements
    keep their textual order — loop distribution relies on this.
    """
    import heapq

    order = {sid: i for i, sid in enumerate(nodes)}
    comp_of = {sid: ci for ci, comp in enumerate(components) for sid in comp}
    succs: dict[int, set[int]] = {ci: set() for ci in range(len(components))}
    indegree = {ci: 0 for ci in range(len(components))}
    for src, dsts in adjacency.items():
        for dst in dsts:
            a, b = comp_of[src], comp_of[dst]
            if a != b and b not in succs[a]:
                succs[a].add(b)
                indegree[b] += 1

    key = {ci: min(order[sid] for sid in comp) for ci, comp in enumerate(components)}
    ready = [(key[ci], ci) for ci in indegree if indegree[ci] == 0]
    heapq.heapify(ready)
    result: list[tuple[int, ...]] = []
    while ready:
        _, ci = heapq.heappop(ready)
        result.append(components[ci])
        for nxt in succs[ci]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                heapq.heappush(ready, (key[nxt], nxt))
    return result
