"""Hybrid distance/direction dependence vectors.

A :class:`DepVector` has one component per common loop, outermost first
(the paper's δ = {δ1 ... δk}). Each component is *hybrid*: an exact integer
distance when known, otherwise a direction ``'<'``, ``'='``, ``'>'`` or
``'*'`` (unknown).

Sign convention: the component is ``iteration(sink) - iteration(source)``,
so a *positive* distance (direction ``'<'``) means the dependence is
carried forward by that loop. A dependence vector of an actually-occurring
dependence is always lexicographically non-negative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import DependenceError

__all__ = ["Component", "DepVector", "DIR_LT", "DIR_EQ", "DIR_GT", "DIR_STAR"]

DIR_LT = "<"
DIR_EQ = "="
DIR_GT = ">"
DIR_STAR = "*"

_DIRS = (DIR_LT, DIR_EQ, DIR_GT, DIR_STAR)

#: A component is an exact int distance or one of the direction strings.
Component = "int | str"


def _direction(comp: "int | str") -> str:
    """The direction class of a component."""
    if isinstance(comp, bool):
        raise DependenceError("boolean is not a dependence component")
    if isinstance(comp, int):
        if comp > 0:
            return DIR_LT
        if comp < 0:
            return DIR_GT
        return DIR_EQ
    if comp in _DIRS:
        return comp
    raise DependenceError(f"bad dependence component {comp!r}")


def _negate(comp: "int | str") -> "int | str":
    if isinstance(comp, int):
        return -comp
    return {DIR_LT: DIR_GT, DIR_GT: DIR_LT, DIR_EQ: DIR_EQ, DIR_STAR: DIR_STAR}[comp]


@dataclass(frozen=True)
class DepVector:
    """An immutable hybrid distance/direction vector."""

    components: tuple["int | str", ...]

    def __post_init__(self) -> None:
        for comp in self.components:
            _direction(comp)  # validates

    @staticmethod
    def of(*components: "int | str") -> "DepVector":
        return DepVector(tuple(components))

    @staticmethod
    def zero(length: int) -> "DepVector":
        return DepVector((0,) * length)

    def __len__(self) -> int:
        return len(self.components)

    def __getitem__(self, index: int) -> "int | str":
        return self.components[index]

    def direction(self, index: int) -> str:
        """Direction class ('<', '=', '>', '*') of component ``index``."""
        return _direction(self.components[index])

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def is_loop_independent(self) -> bool:
        """All components are definitely zero."""
        return all(_direction(c) == DIR_EQ for c in self.components)

    def carried_level(self) -> int | None:
        """1-based level of the outermost definitely-non-'=' component.

        ``None`` for loop-independent vectors. A leading ``'*'`` makes the
        carried level that position (conservative).
        """
        for i, comp in enumerate(self.components):
            if _direction(comp) != DIR_EQ:
                return i + 1
        return None

    def is_lex_positive(self) -> bool:
        """Definitely lexicographically positive (first non-= is '<')."""
        for comp in self.components:
            d = _direction(comp)
            if d == DIR_LT:
                return True
            if d in (DIR_GT, DIR_STAR):
                return False
        return False

    def is_lex_negative(self) -> bool:
        for comp in self.components:
            d = _direction(comp)
            if d == DIR_GT:
                return True
            if d in (DIR_LT, DIR_STAR):
                return False
        return False

    def is_legal(self) -> bool:
        """Lexicographically non-negative: a valid dependence orientation.

        A vector with a leading '*' is *possibly* negative, hence not legal
        as-is; callers must split '*' into cases first.
        """
        for comp in self.components:
            d = _direction(comp)
            if d == DIR_LT:
                return True
            if d in (DIR_GT, DIR_STAR):
                return False
        return True  # all '='

    # ------------------------------------------------------------------
    # Transformation support
    # ------------------------------------------------------------------
    def permuted(self, order: Sequence[int]) -> "DepVector":
        """Reorder components: new[j] = old[order[j]].

        ``order`` is the permutation used to reorder the loops, given as the
        old index of each new position.
        """
        if sorted(order) != list(range(len(self.components))):
            raise DependenceError(f"{order} is not a permutation of 0..{len(self)-1}")
        return DepVector(tuple(self.components[i] for i in order))

    def reversed_at(self, index: int) -> "DepVector":
        """Negate the component at ``index`` (loop reversal)."""
        comps = list(self.components)
        comps[index] = _negate(comps[index])
        return DepVector(tuple(comps))

    def negated(self) -> "DepVector":
        return DepVector(tuple(_negate(c) for c in self.components))

    def truncated(self, length: int) -> "DepVector":
        """Keep the outermost ``length`` components."""
        return DepVector(self.components[:length])

    def extended(self, suffix: Iterable["int | str"]) -> "DepVector":
        return DepVector(self.components + tuple(suffix))

    # ------------------------------------------------------------------
    # Queries used by the cost model
    # ------------------------------------------------------------------
    def constant_entry(self, index: int) -> int | None:
        """The exact distance at ``index`` when known, else None."""
        comp = self.components[index]
        return comp if isinstance(comp, int) else None

    def zero_except(self, index: int) -> bool:
        """True when every component other than ``index`` is exactly 0."""
        return all(
            _direction(c) == DIR_EQ
            for i, c in enumerate(self.components)
            if i != index
        )

    def __str__(self) -> str:
        return "(" + ", ".join(str(c) for c in self.components) + ")"
