"""Command-line source-to-source translator (a small Memoria).

Usage::

    python -m repro FILE.f [options]

Reads a mini-Fortran program, applies the paper's compound locality
transformations, and prints the transformed program. Options add a
transformation report, simulated before/after measurements, the
post-pass scalar replacement, and observability output (optimization
remarks, metrics, a hierarchical profile, and JSONL / Chrome traces).

Options:
    --cls N           cache line size in elements for the cost model (4)
    --report          print the per-nest transformation report
    --simulate        simulate cycles/hit-rate before and after
    --scalar-replace  run scalar replacement after Compound
    --cache NAME      cache geometry for --simulate: cache1|cache2 (cache2)
    --explain         print optimization remarks (why each transformation
                      was applied or rejected) to stderr
    --metrics         print pipeline metrics (dependence tests by kind,
                      RefGroup sizes, cache counters, ...) to stderr
    --profile         print the hierarchical phase profile (wall + CPU
                      time, tracemalloc peak memory, counter attribution)
                      to stderr
    --trace FILE      write spans + remarks + metrics as JSONL to FILE
    --chrome-trace F  write a Chrome trace-event / Perfetto JSON to F
                      (load it at https://ui.perfetto.dev)
    --no-ledger       skip the run-ledger append for this invocation
                      (equivalent to REPRO_LEDGER=0)
    --version         print the package version and exit
    -o FILE           write the transformed program to FILE

All observability flags share ONE context and one sink each: combining
--trace/--metrics/--profile/--chrome-trace records every span, remark,
and counter exactly once.

Every invocation also appends one structured record (run id, seed, git
sha, config digest, phase timings, metrics) to ``.repro/ledger.jsonl``
— see ``python -m repro report``.

Subcommands:
    verify            differential fuzzing of the whole pipeline:
                      ``python -m repro verify --fuzz N --seed S [--shrink]``
                      (see ``python -m repro verify --help``)
    locality          analytic reuse-distance / miss-ratio prediction:
                      ``python -m repro locality FILE.f [--compare]``
                      (see ``python -m repro locality --help``)
    lint              static locality diagnostics with verified fix-its:
                      ``python -m repro lint FILE.f [--fix] [--sarif F]``
                      (see ``python -m repro lint --help``)
    report            render the run ledger as markdown/HTML:
                      ``python -m repro report [--format html] [-o FILE]``
                      (see ``python -m repro report --help``)
    autotune          model-driven search over permutation x tiling x
                      fusion: ``python -m repro autotune FILE.f
                      [--budget N] [--topk K] [--compare-sim]``
                      (see ``python -m repro autotune --help``)
    serve             long-lived HTTP compile service (optimize / lint /
                      locality / autotune over the wire, content-addressed
                      result cache, batched workers):
                      ``python -m repro serve [--port P] [--jobs N]``
                      (see ``python -m repro serve --help`` and
                      ``docs/server.md``)
"""

from __future__ import annotations

import os
import sys

from repro import __version__
from repro.cache import CACHE1, CACHE2
from repro.errors import ReproError
from repro.exec import Machine, simulate
from repro.frontend import parse_program
from repro.ir import pretty_program
from repro.model import CostModel
from repro.obs import NULL_OBS, Obs, use_obs, write_jsonl
from repro.stats.report import render_metrics, render_remarks
from repro.transforms import compound, scalar_replace_program

_CACHES = {"cache1": CACHE1, "cache2": CACHE2}


def _append_ledger(
    kind: str,
    argv: list[str],
    obs,
    *,
    config: dict | None = None,
    bench: dict | None = None,
) -> str | None:
    """Append this invocation to the run ledger.

    Raises :class:`repro.obs.LedgerError` when the ledger directory is
    unwritable — callers turn that into a clean non-zero exit.
    """
    from repro.obs import ledger

    record = ledger.make_record(
        kind,
        argv,
        config=config,
        phases=ledger.phases_from_obs(obs) if obs.enabled else {},
        metrics=ledger.counters_from_obs(obs) if obs.enabled else {},
        bench=bench,
    )
    return ledger.append_record(record)


_VERIFY_HELP = """\
Usage: python -m repro verify [options]

Differential verification: generate random loop nests and check

  * analytic dependences cover the brute-force oracle,
  * every legality-admitted transform preserves program output
    bit-for-bit (rejected transforms are re-checked to measure
    over-conservatism),
  * batched and scalar cache engines agree on random streams.

Options:
    --fuzz N      number of fuzz cases to run (default 50)
    --seed S      base seed; (seed, case) pins every program
                  (default $REPRO_SEED, else 0)
    --shrink      minimize failing programs before printing the repro
    --explain     print verify remarks to stderr
    --metrics     print verify counters to stderr

Environment:
    REPRO_FUZZ_BUDGET   when set, raises the case count to at least this
                        value (used by the nightly CI profile)
    REPRO_SEED          run-wide base seed shared with the test and
                        bench harnesses (printed in every failure repro)
"""


def _verify_main(args: list[str]) -> int:
    from repro.seeds import base_seed
    from repro.verify.runner import run_fuzz

    if "-h" in args or "--help" in args:
        print(_VERIFY_HELP)
        return 0

    def flag(name: str) -> bool:
        if name in args:
            args.remove(name)
            return True
        return False

    def option(name: str, default: str) -> str:
        if name in args:
            index = args.index(name)
            args.pop(index)
            if index >= len(args):
                print(f"missing value for {name}", file=sys.stderr)
                raise SystemExit(2)
            return args.pop(index)
        return default

    want_shrink = flag("--shrink")
    want_explain = flag("--explain")
    want_metrics = flag("--metrics")
    try:
        fuzz = int(option("--fuzz", "50"))
        seed = int(option("--seed", str(base_seed())))
    except ValueError as exc:
        print(f"verify: expected an integer: {exc}", file=sys.stderr)
        return 2
    if args:
        print(f"verify: unknown arguments {args}", file=sys.stderr)
        return 2
    budget = os.environ.get("REPRO_FUZZ_BUDGET", "")
    if budget:
        try:
            fuzz = max(fuzz, int(budget))
        except ValueError:
            print(
                f"REPRO_FUZZ_BUDGET must be an integer, got {budget!r}",
                file=sys.stderr,
            )
            return 2

    obs = Obs() if (want_explain or want_metrics) else NULL_OBS
    with use_obs(obs if obs is not NULL_OBS else None):
        report = run_fuzz(fuzz, seed=seed, shrink=want_shrink)
    print(report.summary())
    for failure in report.failures:
        print()
        print(failure.repro_script())
    if want_explain:
        print("\n--- verify remarks ---", file=sys.stderr)
        print(render_remarks(obs.remarks, title=""), file=sys.stderr)
    if want_metrics:
        print("\n--- verify metrics ---", file=sys.stderr)
        print(render_metrics(obs.metrics, title=""), file=sys.stderr)
    return 0 if report.ok else 1


_LOCALITY_HELP = """\
Usage: python -m repro locality FILE.f [options]

Analytic reuse-distance prediction: derives the reuse-distance histogram
and miss ratios of the program straight from its affine subscripts and
loop bounds -- no trace, no simulation. Optionally cross-checks the
prediction against the exact trace-driven histogram.

Options:
    --line N      cache line size in bytes, power of two (default 128)
    --capacities  comma-separated FA-LRU capacities in lines to report
                  (default 64,512)
    --sets N      also predict an N-set LRU cache (with --assoc)
    --assoc N     associativity for --sets (default 2)
    --compare     run the exact trace analyzer and print predicted vs
                  traced hit rates side by side
    --explain     print locality remarks to stderr
"""


def _locality_main(args: list[str]) -> int:
    from repro.locality import predict_locality

    if "-h" in args or "--help" in args:
        print(_LOCALITY_HELP)
        return 0

    def flag(name: str) -> bool:
        if name in args:
            args.remove(name)
            return True
        return False

    def option(name: str, default: str) -> str:
        if name in args:
            index = args.index(name)
            args.pop(index)
            if index >= len(args):
                print(f"missing value for {name}", file=sys.stderr)
                raise SystemExit(2)
            return args.pop(index)
        return default

    want_compare = flag("--compare")
    want_explain = flag("--explain")
    try:
        line = int(option("--line", "128"))
        capacities = [int(c) for c in option("--capacities", "64,512").split(",")]
        sets = int(option("--sets", "0"))
        assoc = int(option("--assoc", "2"))
    except ValueError as exc:
        print(f"locality: expected an integer: {exc}", file=sys.stderr)
        return 2
    if len(args) != 1:
        print("locality: exactly one input file expected; see --help",
              file=sys.stderr)
        return 2
    try:
        with open(args[0]) as handle:
            source = handle.read()
    except OSError as exc:
        print(f"cannot read {args[0]}: {exc}", file=sys.stderr)
        return 1

    obs = Obs() if want_explain else NULL_OBS
    try:
        with use_obs(obs if obs is not NULL_OBS else None):
            program = parse_program(source)
            prediction = predict_locality(program, line=line)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    path = "exact" if prediction.exact else "model"
    print(
        f"{program.name}: {prediction.accesses} accesses, "
        f"{prediction.cold} cold, line {line}B ({path} path)"
    )
    kinds = prediction.by_kind()
    breakdown = ", ".join(
        f"{kind} {count}" for kind, count in kinds.items() if count
    )
    if breakdown:
        print(f"  reuse classes: {breakdown}")
    trace = None
    if want_compare:
        from repro.cache.reuse import reuse_profile

        trace = reuse_profile(program, line=line, max_accesses=1 << 25)
    for capacity in capacities:
        predicted = prediction.hit_rate_for_capacity(capacity)
        row = (
            f"  {capacity:>6} lines ({capacity * line // 1024:>4} KB): "
            f"predicted hit rate {predicted:.2%}, "
            f"miss ratio {prediction.miss_ratio_for_capacity(capacity):.2%}"
        )
        if trace is not None:
            traced = trace.hit_rate_for_capacity(capacity)
            row += f"; traced {traced:.2%} (err {abs(predicted - traced):.2%})"
        print(row)
    if sets:
        rate = prediction.hit_rate_set_assoc(sets, assoc)
        print(
            f"  {sets} sets x {assoc}-way "
            f"({sets * assoc * line // 1024} KB): predicted hit rate {rate:.2%}"
        )
    if want_explain:
        print("\n--- locality remarks ---", file=sys.stderr)
        print(render_remarks(obs.remarks, title=""), file=sys.stderr)
    return 0


_LINT_HELP = """\
Usage: python -m repro lint FILE.f [FILE2.f ...] [options]

Static locality diagnostics over the parsed loop nests: non-unit-stride
accesses, memory-order-violating loop permutations, fusion candidates,
parallelization-blocking loop-carried dependences, scalar-replaceable
redundant reads, and alias hazards. Where a repair is mechanically
expressible the diagnostic carries a fix-it bound to one of the existing
transforms; every fix-it is verified against the brute-force
dependence/execution oracles and scored with the analytic miss-ratio
predictor before it is surfaced. See docs/lint.md for the check catalog.

Options:
    --fix           apply the verified fix-its (one input file only) and
                    print the fixed program to stdout (or -o FILE); the
                    diagnostic report moves to stderr
    --sarif FILE    also write a SARIF 2.1.0 log aggregating every input
    --format FMT    report format: text (default) or json
    --checks LIST   comma-separated check ids or names (default: all);
                    e.g. --checks LOC002,scalar-replace
    --line N        cache line size in bytes for scoring (default 128)
    --capacity N    FA-LRU capacity in lines for scoring (default 512)
    --no-verify     skip fix-it verification (fix-its stay candidates;
                    --fix refuses to apply them)
    --explain       print lint remarks to stderr
    --metrics       print lint counters to stderr
    --no-ledger     skip the run-ledger append for this invocation
    -o FILE         write the report (or, with --fix, the fixed program)
                    to FILE instead of stdout

Exit status: 0 clean; 1 on parse errors or any error-severity
diagnostic (a fix-it that fails verification escalates its diagnostic
to error); 2 on usage errors.
"""


def _lint_main(args: list[str]) -> int:
    import json as _json

    from repro.lint import apply_fixes, lint_program, render_text, to_sarif

    if "-h" in args or "--help" in args:
        print(_LINT_HELP)
        return 0

    def flag(name: str) -> bool:
        if name in args:
            args.remove(name)
            return True
        return False

    def option(name: str, default: str) -> str:
        if name in args:
            index = args.index(name)
            args.pop(index)
            if index >= len(args):
                print(f"missing value for {name}", file=sys.stderr)
                raise SystemExit(2)
            return args.pop(index)
        return default

    want_fix = flag("--fix")
    no_verify = flag("--no-verify")
    want_explain = flag("--explain")
    want_metrics = flag("--metrics")
    no_ledger = flag("--no-ledger")
    fmt = option("--format", "text")
    sarif_path = option("--sarif", "")
    checks_text = option("--checks", "")
    out_path = option("-o", "")
    try:
        line = int(option("--line", "128"))
        capacity = int(option("--capacity", "512"))
    except ValueError as exc:
        print(f"lint: expected an integer: {exc}", file=sys.stderr)
        return 2
    if fmt not in ("text", "json"):
        print(f"lint: unknown format {fmt!r}; choose text or json",
              file=sys.stderr)
        return 2
    bad = [a for a in args if a.startswith("-")]
    if bad:
        print(f"lint: unknown arguments {bad}", file=sys.stderr)
        return 2
    if not args:
        print("lint: at least one input file expected; see --help",
              file=sys.stderr)
        return 2
    if want_fix and len(args) != 1:
        print("lint: --fix expects exactly one input file", file=sys.stderr)
        return 2
    if want_fix and no_verify:
        print("lint: --fix requires verification; drop --no-verify",
              file=sys.stderr)
        return 2
    checks = tuple(c for c in checks_text.split(",") if c) or None

    obs = Obs() if (want_explain or want_metrics) else NULL_OBS
    results: list[tuple] = []  # (LintResult, path)
    payloads: list[dict] = []
    report_lines: list[str] = []
    fixed_text = ""
    parse_failed = False
    with use_obs(obs if obs is not NULL_OBS else None):
        for path in args:
            try:
                with open(path) as handle:
                    source = handle.read()
            except OSError as exc:
                print(f"cannot read {path}: {exc}", file=sys.stderr)
                return 1
            try:
                program = parse_program(source)
            except ReproError as exc:
                print(f"{path}:{exc}", file=sys.stderr)
                parse_failed = True
                continue
            try:
                if want_fix:
                    outcome = apply_fixes(
                        program, checks=checks, line=line, capacity=capacity
                    )
                    result = outcome.result
                    fixed_text = pretty_program(outcome.program)
                    for applied in outcome.applied:
                        print(
                            f"{path}: applied {applied.transform} "
                            f"({applied.check_id}): {applied.description}; "
                            f"predicted miss ratio {applied.miss_before:.4f}"
                            f" -> {applied.miss_after:.4f}",
                            file=sys.stderr,
                        )
                    if not outcome.applied:
                        print(f"{path}: no verified fix-its to apply",
                              file=sys.stderr)
                else:
                    result = lint_program(
                        program,
                        checks=checks,
                        verify=not no_verify,
                        line=line,
                        capacity=capacity,
                    )
            except (ReproError, ValueError) as exc:
                print(f"lint: {exc}", file=sys.stderr)
                return 1
            results.append((result, path))
            if fmt == "json":
                payload = result.to_dict()
                payload["path"] = path
                payloads.append(payload)
            else:
                report_lines.append(render_text(result, path))

    if fmt == "json":
        report = _json.dumps(
            payloads[0] if len(payloads) == 1 else payloads,
            indent=2,
            sort_keys=True,
        )
    else:
        report = "\n".join(report_lines)
    if want_fix:
        # The fixed program is the primary output; the report narrates.
        if report:
            print(report, file=sys.stderr)
        if out_path:
            try:
                with open(out_path, "w") as handle:
                    handle.write(fixed_text + "\n")
            except OSError as exc:
                print(f"cannot write {out_path}: {exc}", file=sys.stderr)
                return 1
        elif fixed_text:
            print(fixed_text)
    elif out_path:
        try:
            with open(out_path, "w") as handle:
                handle.write(report + "\n")
        except OSError as exc:
            print(f"cannot write {out_path}: {exc}", file=sys.stderr)
            return 1
    elif report:
        print(report)

    if sarif_path:
        try:
            with open(sarif_path, "w") as handle:
                handle.write(to_sarif(results) + "\n")
        except OSError as exc:
            print(f"cannot write {sarif_path}: {exc}", file=sys.stderr)
            return 1
        total = sum(len(result.diagnostics) for result, _ in results)
        print(
            f"wrote SARIF log with {total} result(s) over "
            f"{len(results)} program(s) to {sarif_path}",
            file=sys.stderr,
        )

    if want_explain:
        print("\n--- lint remarks ---", file=sys.stderr)
        print(render_remarks(obs.remarks, title=""), file=sys.stderr)
    if want_metrics:
        print("\n--- lint metrics ---", file=sys.stderr)
        print(render_metrics(obs.metrics, title=""), file=sys.stderr)
    if not no_ledger:
        from repro.obs import LedgerError

        try:
            _append_ledger(
                "lint",
                args,
                obs,
                config={
                    "line": line,
                    "capacity": capacity,
                    "fix": want_fix,
                    "verify": not no_verify,
                    "checks": list(checks) if checks else "all",
                },
            )
        except LedgerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    errors = sum(result.errors for result, _ in results)
    return 1 if (parse_failed or errors) else 0


_AUTOTUNE_HELP = """\
Usage: python -m repro autotune FILE.f [options]

Model-driven autotuning: beam-search loop permutation x tile sizes x
fusion/distribution for the program, scoring every candidate with the
analytic miss-ratio predictor (no simulation during the search). The
chosen configuration is checked by the execution-equivalence and
dependence oracles before it is printed; candidates that fail fall back
to the next-best verified one, ending at the original program, so the
output never has a worse predicted miss ratio than the input.

Options:
    --budget N      max distinct oracle evaluations (default 128)
    --beam N        beam width per nest step (default 4)
    --topk K        candidates kept for --compare-sim (default 5)
    --compare-sim   rerank the top-k candidates with the exact cache
                    simulation oracle and print both rankings
    --line N        cache line size in bytes (default 128)
    --capacity N    FA-LRU capacity in lines for scoring (default 512)
    --cls N         cost-model line size in elements (default line/8)
    --jobs N        worker processes for the simulation rerank
                    (default $REPRO_JOBS, else 1)
    --no-verify     print the best *predicted* candidate without the
                    equivalence/dependence verification pass
    --explain       print search remarks to stderr
    --metrics       print search counters (oracle evals, memo cache
                    hits/misses, ...) to stderr
    --no-ledger     skip the run-ledger append for this invocation
    -o FILE         write the tuned program to FILE instead of stdout
"""


def _autotune_main(args: list[str]) -> int:
    from repro.autotune import autotune
    from repro.model import CostModel

    if "-h" in args or "--help" in args:
        print(_AUTOTUNE_HELP)
        return 0

    def flag(name: str) -> bool:
        if name in args:
            args.remove(name)
            return True
        return False

    def option(name: str, default: str) -> str:
        if name in args:
            index = args.index(name)
            args.pop(index)
            if index >= len(args):
                print(f"missing value for {name}", file=sys.stderr)
                raise SystemExit(2)
            return args.pop(index)
        return default

    want_compare = flag("--compare-sim")
    no_verify = flag("--no-verify")
    want_explain = flag("--explain")
    want_metrics = flag("--metrics")
    no_ledger = flag("--no-ledger")
    out_path = option("-o", "")
    try:
        budget = int(option("--budget", "128"))
        beam = int(option("--beam", "4"))
        topk = int(option("--topk", "5"))
        line = int(option("--line", "128"))
        capacity = int(option("--capacity", "512"))
        cls = int(option("--cls", str(max(1, line // 8))))
        jobs_text = option("--jobs", "")
        jobs = int(jobs_text) if jobs_text else None
    except ValueError as exc:
        print(f"autotune: expected an integer: {exc}", file=sys.stderr)
        return 2
    if len(args) != 1:
        print("autotune: exactly one input file expected; see --help",
              file=sys.stderr)
        return 2
    try:
        with open(args[0]) as handle:
            source = handle.read()
    except OSError as exc:
        print(f"cannot read {args[0]}: {exc}", file=sys.stderr)
        return 1

    obs = Obs() if (want_explain or want_metrics) else NULL_OBS
    try:
        with use_obs(obs if obs is not NULL_OBS else None):
            program = parse_program(source)
            result = autotune(
                program,
                model=CostModel(cls=cls),
                line=line,
                capacity=capacity,
                budget=budget,
                beam=beam,
                topk=topk,
                compare_sim=want_compare,
                jobs=jobs,
                verify=not no_verify,
            )
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    text = pretty_program(result.best.program)
    if out_path:
        try:
            with open(out_path, "w") as handle:
                handle.write(text + "\n")
        except OSError as exc:
            print(f"cannot write {out_path}: {exc}", file=sys.stderr)
            return 1
    else:
        print(text)

    best = result.best
    assert best.cost is not None and result.original.cost is not None
    print(
        f"\n--- autotune: {program.name} ---\n"
        f"searched {len(result.ranked)} configs "
        f"({result.evaluated} oracle evals of budget {result.budget}"
        f"{', exhausted' if result.budget_exhausted else ''}) "
        f"in {result.elapsed_s:.2f}s\n"
        f"best: {best.describe()} [{best.source}"
        f"{', verified' if result.verified else ', UNVERIFIED'}]\n"
        f"predicted miss ratio {result.original.cost.miss_ratio:.4f} -> "
        f"{best.cost.miss_ratio:.4f} "
        f"({result.improvement_pp:+.2f}pp) at {capacity} lines x {line}B",
        file=sys.stderr,
    )
    for describe, slug in result.rejected:
        print(f"rejected by verifier: {describe}: {slug}", file=sys.stderr)
    if want_compare and result.sim_ranked:
        print(
            f"simulation rerank of top {len(result.sim_ranked)} "
            f"({result.sim_s:.2f}s):",
            file=sys.stderr,
        )
        for candidate in result.sim_ranked:
            assert candidate.sim is not None and candidate.cost is not None
            print(
                f"  sim {candidate.sim.miss_ratio:.4f} "
                f"(model {candidate.cost.miss_ratio:.4f}): "
                f"{candidate.describe()}",
                file=sys.stderr,
            )

    if want_explain:
        print("\n--- autotune remarks ---", file=sys.stderr)
        print(render_remarks(obs.remarks, title=""), file=sys.stderr)
    if want_metrics:
        print("\n--- autotune metrics ---", file=sys.stderr)
        print(render_metrics(obs.metrics, title=""), file=sys.stderr)
    if not no_ledger:
        from repro.obs import LedgerError

        try:
            _append_ledger(
                "autotune",
                args,
                obs,
                config={
                    "line": line,
                    "capacity": capacity,
                    "cls": cls,
                    "budget": budget,
                    "beam": beam,
                    "topk": topk,
                    "compare_sim": want_compare,
                    "verify": not no_verify,
                },
                bench={
                    "program": program.name,
                    "candidates": len(result.ranked),
                    "evals": result.evaluated,
                    "miss_ratio_before": result.original.cost.miss_ratio,
                    "miss_ratio_after": best.cost.miss_ratio,
                    "elapsed_s": result.elapsed_s,
                    "verified": result.verified,
                },
            )
        except LedgerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    return 0


_REPORT_HELP = """\
Usage: python -m repro report [options]

Render the persistent run ledger (.repro/ledger.jsonl) as a markdown or
HTML artifact: a run overview, latest-vs-history phase timings and
counter drift for every (kind, run id) stream, and per-kernel benchmark
trajectories for ledgered bench runs.

Options:
    --format FMT    md (default) or html
    --ledger DIR    ledger directory (default $REPRO_LEDGER_DIR or .repro)
    --last N        cap the run-overview table at the last N runs (20)
    -o FILE         write the artifact to FILE instead of stdout

Environment:
    REPRO_LEDGER_DIR   default ledger directory
    REPRO_LEDGER=0     disables ledger appends repo-wide (report still
                       reads whatever history exists)
"""


def _report_main(args: list[str]) -> int:
    from repro.obs.ledger import LedgerError, read_ledger
    from repro.obs.report import render_report

    if "-h" in args or "--help" in args:
        print(_REPORT_HELP)
        return 0

    def option(name: str, default: str) -> str:
        if name in args:
            index = args.index(name)
            args.pop(index)
            if index >= len(args):
                print(f"missing value for {name}", file=sys.stderr)
                raise SystemExit(2)
            return args.pop(index)
        return default

    fmt = option("--format", "md")
    directory = option("--ledger", "") or None
    out_path = option("-o", "")
    try:
        last = int(option("--last", "20"))
    except ValueError as exc:
        print(f"report: expected an integer: {exc}", file=sys.stderr)
        return 2
    if args:
        print(f"report: unknown arguments {args}", file=sys.stderr)
        return 2
    try:
        records = read_ledger(directory)
        text = render_report(records, fmt=fmt, history=last)
    except (LedgerError, ValueError) as exc:
        print(f"report: {exc}", file=sys.stderr)
        return 1
    if out_path:
        try:
            with open(out_path, "w") as handle:
                handle.write(text)
        except OSError as exc:
            print(f"cannot write {out_path}: {exc}", file=sys.stderr)
            return 1
        print(
            f"wrote {fmt} report over {len(records)} ledgered runs to {out_path}",
            file=sys.stderr,
        )
    else:
        try:
            print(text)
            sys.stdout.flush()
        except BrokenPipeError:
            # Reader (e.g. `| head`) closed stdout early — not an error.
            # Point stdout at /dev/null so the interpreter-exit flush
            # doesn't raise again.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 0
    return 0


_SERVE_HELP = """\
Usage: python -m repro serve [options]

Boot the optimization service: an asyncio HTTP server exposing the
pipeline as POST /v1/optimize, /v1/lint, /v1/locality, /v1/autotune
plus GET /healthz and /metrics. Requests carry mini-Fortran 'source'
text or a structured 'ir' JSON object; identical requests (up to loop
variable naming and declaration order) are answered from a
content-addressed result cache. See docs/server.md for the API.

Options:
    --host HOST   bind address (default 127.0.0.1)
    --port P      bind port; 0 picks an ephemeral port (default 8642)
    --jobs N      worker processes per batch (default 1)

Every other knob is environment-driven (REPRO_SERVER_QUEUE_DEPTH,
REPRO_SERVER_BATCH_MAX, REPRO_SERVER_REQUEST_TIMEOUT_S,
REPRO_SERVER_MAX_BODY_BYTES, REPRO_SERVER_CACHE_CAP, ...); the full
table is in docs/server.md. SIGINT/SIGTERM drains in-flight work
before exiting.
"""


def _serve_main(args: list[str]) -> int:
    if "-h" in args or "--help" in args:
        try:
            print(_SERVE_HELP)
        except BrokenPipeError:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0

    def option(name: str, default: str) -> str:
        if name in args:
            index = args.index(name)
            args.pop(index)
            if index >= len(args):
                print(f"missing value for {name}", file=sys.stderr)
                raise SystemExit(2)
            return args.pop(index)
        return default

    host = option("--host", "")
    port_text = option("--port", "")
    jobs_text = option("--jobs", "")
    if args:
        print(f"serve: unknown arguments {args}", file=sys.stderr)
        return 2
    overrides: dict = {}
    if host:
        overrides["host"] = host
    try:
        if port_text:
            overrides["port"] = int(port_text)
        if jobs_text:
            overrides["jobs"] = int(jobs_text)
    except ValueError as exc:
        print(f"serve: expected an integer: {exc}", file=sys.stderr)
        return 2
    from repro.server import ServerConfig, serve

    try:
        config = ServerConfig.from_env(**overrides)
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    return serve(config)


def main(argv: list[str]) -> int:
    args = list(argv)
    if args and args[0] == "verify":
        return _verify_main(args[1:])
    if args and args[0] == "locality":
        return _locality_main(args[1:])
    if args and args[0] == "lint":
        return _lint_main(args[1:])
    if args and args[0] == "report":
        return _report_main(args[1:])
    if args and args[0] == "autotune":
        return _autotune_main(args[1:])
    if args and args[0] == "serve":
        return _serve_main(args[1:])
    if "--version" in args:
        print(f"repro {__version__}")
        return 0
    if not args or "-h" in args or "--help" in args:
        print(__doc__)
        return 0 if args else 2

    def flag(name: str) -> bool:
        if name in args:
            args.remove(name)
            return True
        return False

    def option(name: str, default: str) -> str:
        if name in args:
            index = args.index(name)
            args.pop(index)
            if index >= len(args):
                print(f"missing value for {name}", file=sys.stderr)
                raise SystemExit(2)
            return args.pop(index)
        return default

    want_report = flag("--report")
    want_simulate = flag("--simulate")
    want_scalar = flag("--scalar-replace")
    want_explain = flag("--explain")
    want_metrics = flag("--metrics")
    want_profile = flag("--profile")
    no_ledger = flag("--no-ledger")
    cls_text = option("--cls", "4")
    try:
        cls = int(cls_text)
    except ValueError:
        print(f"--cls expects an integer, got {cls_text!r}", file=sys.stderr)
        return 2
    cache_name = option("--cache", "cache2")
    trace_path = option("--trace", "")
    chrome_path = option("--chrome-trace", "")
    out_path = option("-o", "")
    if cache_name not in _CACHES:
        print(f"unknown cache {cache_name!r}; choose from {sorted(_CACHES)}",
              file=sys.stderr)
        return 2
    if len(args) != 1:
        print("exactly one input file expected; see --help", file=sys.stderr)
        return 2

    try:
        with open(args[0]) as handle:
            source = handle.read()
    except OSError as exc:
        print(f"cannot read {args[0]}: {exc}", file=sys.stderr)
        return 1

    # One observability context for every flag: --explain/--metrics/
    # --profile/--trace/--chrome-trace compose over a single span/metric
    # sink, so combining them never duplicates records.
    want_obs = (
        want_explain or want_metrics or want_profile or trace_path or chrome_path
    )
    obs = Obs(profile=want_profile) if want_obs else NULL_OBS
    tracing_memory = False
    if want_profile:
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
            tracing_memory = True
    try:
        with use_obs(obs if obs is not NULL_OBS else None):
            program = parse_program(source)
            model = CostModel(cls=cls)
            outcome = compound(program, model)
            final = outcome.program
            replaced = 0
            if want_scalar:
                result = scalar_replace_program(final)
                final = result.program
                replaced = result.replaced
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    text = pretty_program(final)
    if out_path:
        try:
            with open(out_path, "w") as handle:
                handle.write(text + "\n")
        except OSError as exc:
            print(f"cannot write {out_path}: {exc}", file=sys.stderr)
            return 1
    else:
        print(text)

    if want_report:
        print("\n--- transformation report ---", file=sys.stderr)
        for report in outcome.nests:
            line = (
                f"nest {report.nest_index}: depth {report.depth}, "
                f"memory order {report.status}, inner loop {report.inner_status}"
            )
            if report.fusion_enabled_permutation:
                line += ", fusion enabled permutation"
            if report.distributed:
                line += f", distributed into {report.nests_created} nests"
            if report.reversal_used:
                line += ", reversal used"
            print(line, file=sys.stderr)
        print(
            f"fusion: {outcome.nests_fused}/{outcome.fusion_candidates} "
            f"candidate nests fused; distribution applied "
            f"{outcome.distribution_applied} time(s)",
            file=sys.stderr,
        )
        if want_scalar:
            print(f"scalar replacement: {replaced} refs promoted", file=sys.stderr)

    if want_simulate:
        machine = Machine(cache=_CACHES[cache_name], miss_penalty=20)
        with use_obs(obs if obs is not NULL_OBS else None):
            before = simulate(program, machine)
            after = simulate(final, machine)
        print(
            f"\nsimulated on {cache_name}: cycles {before.cycles} -> "
            f"{after.cycles} (speedup {before.cycles / max(after.cycles, 1):.2f}x), "
            f"hit rate {before.hit_rate:.1%} -> {after.hit_rate:.1%}",
            file=sys.stderr,
        )

    if want_explain:
        print("\n--- optimization remarks ---", file=sys.stderr)
        print(render_remarks(obs.remarks, title=""), file=sys.stderr)
    if want_metrics:
        print("\n--- metrics ---", file=sys.stderr)
        print(render_metrics(obs.metrics, title=""), file=sys.stderr)
    if want_profile:
        from repro.obs import render_profile

        if tracing_memory:
            import tracemalloc

            tracemalloc.stop()
        print("\n--- phase profile ---", file=sys.stderr)
        print(
            render_profile(obs.tracer.spans, obs.metrics, title=""),
            file=sys.stderr,
        )
    if trace_path:
        try:
            records = write_jsonl(obs, trace_path)
        except OSError as exc:
            print(f"cannot write {trace_path}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {records} trace records to {trace_path}", file=sys.stderr)
    if chrome_path:
        from repro.obs import write_chrome_trace

        try:
            events = write_chrome_trace(obs, chrome_path)
        except OSError as exc:
            print(f"cannot write {chrome_path}: {exc}", file=sys.stderr)
            return 1
        print(
            f"wrote {events} trace events to {chrome_path} "
            f"(load at https://ui.perfetto.dev)",
            file=sys.stderr,
        )
    if not no_ledger:
        from repro.obs import LedgerError

        try:
            _append_ledger(
                "cli",
                list(argv),
                obs,
                config={"cls": cls, "cache": cache_name,
                        "scalar_replace": want_scalar},
            )
        except LedgerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
