"""Reusable trace consumers.

The interpreter and the trace compiler both emit per-access events; the
consumers here turn those streams into the measurements the experiments
need: cache feeds, counters, stride histograms, and recorded traces that
can be replayed into several cache configurations without re-executing
the program.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.cache.cache import CacheConfig, CacheStats, SetAssocCache
from repro.ir.nodes import Program
from repro.obs import get_obs

__all__ = [
    "AccessCounter",
    "CacheFeed",
    "StrideHistogram",
    "TraceRecorder",
    "record_trace",
    "replay",
]


class CacheFeed:
    """Feeds accesses into a cache; usable with both event styles."""

    def __init__(self, config: CacheConfig, elem_size: int = 8):
        self.cache = SetAssocCache(config)
        self.elem_size = elem_size

    def __call__(self, address: int, write: bool, sid: int) -> None:
        self.cache.access(address, self.elem_size, write)

    def on_event(self, event) -> None:
        self.cache.access(event.address, event.size, event.write)

    def on_block(self, block) -> None:
        """Batched feed: one :class:`repro.exec.AccessBlock` per call."""
        self.cache.access_block(block.addresses, block.sizes)

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    def to_metrics(self, metrics=None, prefix: str = "cache") -> None:
        """Publish the fed cache's stats into a metrics registry
        (default: the active observability context's)."""
        metrics = metrics if metrics is not None else get_obs().metrics
        stats = self.cache.stats
        metrics.counter(f"{prefix}.accesses").inc(stats.accesses)
        metrics.counter(f"{prefix}.misses").inc(stats.misses)


@dataclass
class AccessCounter:
    """Counts reads/writes, optionally per statement."""

    reads: int = 0
    writes: int = 0
    per_sid: Counter = field(default_factory=Counter)

    def __call__(self, address: int, write: bool, sid: int) -> None:
        if write:
            self.writes += 1
        else:
            self.reads += 1
        self.per_sid[sid] += 1

    def on_block(self, block) -> None:
        """Batched counting; per-sid tallies match the scalar feed."""
        writes = int(np.count_nonzero(block.writes))
        self.writes += writes
        self.reads += len(block) - writes
        sids, counts = np.unique(block.sids, return_counts=True)
        for sid, count in zip(sids.tolist(), counts.tolist()):
            self.per_sid[sid] += count

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def merge(self, other: "AccessCounter") -> "AccessCounter":
        """Fold another counter in (multi-nest / multi-run aggregation)."""
        self.reads += other.reads
        self.writes += other.writes
        self.per_sid.update(other.per_sid)
        return self

    def to_metrics(self, metrics=None, prefix: str = "trace") -> None:
        """Publish read/write totals into a metrics registry (default:
        the active observability context's)."""
        metrics = metrics if metrics is not None else get_obs().metrics
        metrics.counter(f"{prefix}.reads").inc(self.reads)
        metrics.counter(f"{prefix}.writes").inc(self.writes)


class StrideHistogram:
    """Histogram of successive address deltas (global stream stride).

    Unit-stride-dominated programs show a spike at ``+elem_size``; the
    non-contiguous programs the paper improves show column-sized strides.
    """

    def __init__(self):
        self.deltas: Counter = Counter()
        self._last: int | None = None

    def __call__(self, address: int, write: bool, sid: int) -> None:
        if self._last is not None:
            self.deltas[address - self._last] += 1
        self._last = address

    def on_block(self, block) -> None:
        """Batched deltas: the in-block diffs vectorize; only the seam to
        the previous block is handled scalar."""
        addresses = block.addresses
        if addresses.shape[0] == 0:
            return
        if self._last is not None:
            self.deltas[int(addresses[0]) - self._last] += 1
        if addresses.shape[0] > 1:
            values, counts = np.unique(np.diff(addresses), return_counts=True)
            for value, count in zip(values.tolist(), counts.tolist()):
                self.deltas[value] += count
        self._last = int(addresses[-1])

    def top(self, n: int = 5) -> list[tuple[int, int]]:
        return self.deltas.most_common(n)

    def unit_fraction(self, elem_size: int = 8) -> float:
        total = sum(self.deltas.values())
        if not total:
            return 0.0
        return self.deltas.get(elem_size, 0) / total

    def merge(self, other: "StrideHistogram") -> "StrideHistogram":
        """Fold another histogram's deltas in. The seam between the two
        streams contributes no delta (the runs were independent)."""
        self.deltas.update(other.deltas)
        return self

    def to_metrics(self, metrics=None, prefix: str = "trace") -> None:
        """Publish the stride distribution into a metrics registry
        (default: the active observability context's)."""
        metrics = metrics if metrics is not None else get_obs().metrics
        histogram = metrics.histogram(f"{prefix}.stride")
        for delta, count in self.deltas.items():
            histogram.record(delta, count)


class TraceRecorder:
    """Records (address, write, sid) triples for later replay."""

    def __init__(self):
        self.events: list[tuple[int, bool, int]] = []

    def __call__(self, address: int, write: bool, sid: int) -> None:
        self.events.append((address, write, sid))

    def on_block(self, block) -> None:
        self.events.extend(
            zip(
                block.addresses.tolist(),
                block.writes.tolist(),
                block.sids.tolist(),
            )
        )

    def __len__(self) -> int:
        return len(self.events)


def record_trace(program: Program, params=None) -> TraceRecorder:
    """Execute the compiled trace once, recording every access."""
    from repro.exec.codegen import compile_trace

    recorder = TraceRecorder()
    compile_trace(program, params).run(recorder)
    return recorder


def replay(
    recorder: TraceRecorder, config: CacheConfig, elem_size: int = 8
) -> CacheStats:
    """Replay a recorded trace into a fresh cache; returns its stats."""
    cache = SetAssocCache(config)
    for address, write, _ in recorder.events:
        cache.access(address, elem_size, write)
    return cache.stats
