"""Loop-nest interpreter: evaluates values and emits an address trace.

The interpreter serves two roles the paper's testbed served:

* **semantics**: it computes real floating-point results, so tests can
  assert that a transformed program produces the same values as the
  original (our strongest check on transformation correctness);
* **tracing**: every array access is reported (reads before the write,
  left-to-right) to a consumer — typically a cache simulator — giving the
  trace-driven hit rates of Table 4 and the cycle model of Table 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.errors import ExecutionError
from repro.ir.expr import Bin, Call, Const, Expr, INTRINSICS, Ref, Sym, Var
from repro.ir.nodes import Assign, Loop, Program
from repro.exec.layout import MemoryLayout
from repro.obs import get_obs

__all__ = ["AccessEvent", "Interpreter", "run_program", "default_init"]


@dataclass(frozen=True)
class AccessEvent:
    """One dynamic array access."""

    array: str
    address: int
    size: int
    write: bool
    sid: int


def default_init(name: str, extents: tuple[int, ...]) -> np.ndarray:
    """Deterministic, strictly positive initial data.

    Values are small and varied so reuse patterns are realistic and
    divisions are safe; diagonal-ish dominance is the suite's job where
    algorithms (like Cholesky) need it.
    """
    count = math.prod(extents)
    seed = sum(ord(c) for c in name) % 97
    flat = ((np.arange(count, dtype=np.float64) * 13 + seed) % 101) / 101.0 + 0.5
    return flat.reshape(extents, order="F") if extents else flat.reshape(())


class Interpreter:
    """Executes a program over concrete parameter bindings.

    Args:
        program: the IR program to run.
        params: overrides for the program's symbolic parameters.
        on_access: optional callback receiving every :class:`AccessEvent`.
        init: per-array initializer ``(name, extents) -> ndarray``;
            defaults to :func:`default_init`.
        check_values: raise on NaN/inf appearing in computed values.
    """

    def __init__(
        self,
        program: Program,
        params: Mapping[str, int] | None = None,
        on_access: Callable[[AccessEvent], None] | None = None,
        init: Callable[[str, tuple[int, ...]], np.ndarray] | None = None,
        check_values: bool = True,
    ):
        self.program = program
        self.env = dict(program.param_env) | dict(params or {})
        self.layout = MemoryLayout.for_program(program, self.env)
        self.on_access = on_access
        self.check_values = check_values
        init = init or default_init
        self.arrays: dict[str, np.ndarray] = {}
        for decl in program.arrays:
            extents = decl.extents(self.env)
            data = np.array(init(decl.name, extents), dtype=np.float64)
            if tuple(data.shape) != extents:
                raise ExecutionError(
                    f"initializer for {decl.name} produced shape {data.shape}, "
                    f"expected {extents}"
                )
            self.arrays[decl.name] = data
        self.statements_executed = 0
        self.operations_executed = 0
        self._current_sid = -1

    # ------------------------------------------------------------------
    def run(self) -> dict[str, np.ndarray]:
        """Execute the whole program; returns the (live) array values.

        Observability happens only at this boundary — never inside the
        per-access hot loop — so a disabled tracer costs nothing there.
        """
        obs = get_obs()
        with obs.span("exec.interp", program=self.program.name):
            for node in self.program.body:
                self._run_node(node, {})
        if obs.enabled:
            metrics = obs.metrics
            metrics.counter("exec.runs").inc()
            metrics.counter("exec.statements").inc(self.statements_executed)
            metrics.counter("exec.operations").inc(self.operations_executed)
        return self.arrays

    # ------------------------------------------------------------------
    def _run_node(self, node: "Loop | Assign", bindings: dict[str, int]) -> None:
        if isinstance(node, Assign):
            self._run_statement(node, bindings)
            return
        for value in node.iter_values({**self.env, **bindings}):
            bindings[node.var] = value
            for child in node.body:
                self._run_node(child, bindings)
        bindings.pop(node.var, None)

    def _run_statement(self, stmt: Assign, bindings: dict[str, int]) -> None:
        self._current_sid = stmt.sid
        value, ops = self._eval(stmt.rhs, bindings)
        if self.check_values and not np.isfinite(value):
            raise ExecutionError(
                f"statement {stmt.sid} computed non-finite value {value}"
            )
        self._store(stmt.lhs, value, bindings)
        self.statements_executed += 1
        self.operations_executed += ops + 1

    # ------------------------------------------------------------------
    def _subscripts(self, ref: Ref, bindings: dict[str, int]) -> tuple[int, ...]:
        scope = {**self.env, **bindings}
        return tuple(sub.evaluate(scope) for sub in ref.subs)

    def _load(self, ref: Ref, bindings: dict[str, int]) -> float:
        subs = self._subscripts(ref, bindings)
        layout = self.layout[ref.array]
        # Rank-0 references model compiler temporaries / locals held in
        # registers: they generate no memory traffic.
        if self.on_access is not None and subs:
            self.on_access(
                AccessEvent(
                    ref.array,
                    layout.address(subs),
                    layout.elem_size,
                    False,
                    self._current_sid,
                )
            )
        data = self.arrays[ref.array]
        return float(data[tuple(s - 1 for s in subs)]) if subs else float(data)

    def _store(self, ref: Ref, value: float, bindings: dict[str, int]) -> None:
        subs = self._subscripts(ref, bindings)
        layout = self.layout[ref.array]
        if self.on_access is not None and subs:
            self.on_access(
                AccessEvent(
                    ref.array,
                    layout.address(subs),
                    layout.elem_size,
                    True,
                    self._current_sid,
                )
            )
        if subs:
            self.arrays[ref.array][tuple(s - 1 for s in subs)] = value
        else:
            self.arrays[ref.array][()] = value

    def _eval(self, expr: Expr, bindings: dict[str, int]) -> tuple[float, int]:
        """Evaluate an expression; returns (value, operation count)."""
        if isinstance(expr, Const):
            return float(expr.value), 0
        if isinstance(expr, Sym):
            if expr.name not in self.env:
                raise ExecutionError(f"unbound parameter {expr.name}")
            return float(self.env[expr.name]), 0
        if isinstance(expr, Var):
            if expr.name not in bindings:
                raise ExecutionError(f"unbound index variable {expr.name}")
            return float(bindings[expr.name]), 0
        if isinstance(expr, Ref):
            return self._load(expr, bindings), 0
        if isinstance(expr, Bin):
            left, ops_l = self._eval(expr.left, bindings)
            right, ops_r = self._eval(expr.right, bindings)
            ops = ops_l + ops_r + 1
            if expr.op == "+":
                return left + right, ops
            if expr.op == "-":
                return left - right, ops
            if expr.op == "*":
                return left * right, ops
            if right == 0.0:
                raise ExecutionError(f"division by zero in {expr}")
            return left / right, ops
        if isinstance(expr, Call):
            values = []
            ops = 1
            for arg in expr.args:
                value, arg_ops = self._eval(arg, bindings)
                values.append(value)
                ops += arg_ops
            fn = INTRINSICS[expr.fn]
            try:
                return float(fn(*values)), ops
            except ValueError as exc:
                raise ExecutionError(f"{expr.fn}{tuple(values)}: {exc}") from exc
        raise ExecutionError(f"cannot evaluate {expr!r}")


def run_program(
    program: Program,
    params: Mapping[str, int] | None = None,
    on_access: Callable[[AccessEvent], None] | None = None,
    init: Callable[[str, tuple[int, ...]], np.ndarray] | None = None,
) -> dict[str, np.ndarray]:
    """Convenience wrapper: build an interpreter and run it."""
    return Interpreter(program, params, on_access, init).run()
