"""Program execution: interpreter, memory layout, timing model."""

from repro.exec.interp import AccessEvent, Interpreter, default_init, run_program
from repro.exec.layout import ArrayLayout, MemoryLayout
from repro.exec.timing import Machine, PerfResult, simulate
from repro.exec.trace import (
    AccessCounter,
    CacheFeed,
    StrideHistogram,
    TraceRecorder,
    record_trace,
    replay,
)
from repro.exec.codegen import CompiledTrace, compile_trace

__all__ = [
    "AccessCounter",
    "AccessEvent",
    "CacheFeed",
    "CompiledTrace",
    "StrideHistogram",
    "TraceRecorder",
    "compile_trace",
    "record_trace",
    "replay",
    "ArrayLayout",
    "Interpreter",
    "Machine",
    "MemoryLayout",
    "PerfResult",
    "default_init",
    "run_program",
    "simulate",
]
