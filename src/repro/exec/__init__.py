"""Program execution: interpreter, memory layout, timing model."""

from repro.exec.interp import AccessEvent, Interpreter, default_init, run_program
from repro.exec.layout import ArrayLayout, MemoryLayout
from repro.exec.timing import Machine, PerfResult, resolve_engine, simulate
from repro.exec.trace import (
    AccessCounter,
    CacheFeed,
    StrideHistogram,
    TraceRecorder,
    record_trace,
    replay,
)
from repro.exec.codegen import CompiledTrace, compile_trace
from repro.exec.blocktrace import (
    AccessBlock,
    BlockTraceError,
    CompiledBlockTrace,
    block_events,
    compile_block_trace,
)

__all__ = [
    "AccessBlock",
    "AccessCounter",
    "AccessEvent",
    "BlockTraceError",
    "CacheFeed",
    "CompiledBlockTrace",
    "CompiledTrace",
    "StrideHistogram",
    "TraceRecorder",
    "block_events",
    "compile_block_trace",
    "compile_trace",
    "record_trace",
    "replay",
    "ArrayLayout",
    "Interpreter",
    "Machine",
    "MemoryLayout",
    "PerfResult",
    "default_init",
    "resolve_engine",
    "run_program",
    "simulate",
]
