"""Cycle-level performance model over the interpreter's trace.

The paper reports wall-clock seconds on 1990s hardware; we substitute a
simple timing model over the exact address trace:

    cycles = operations + load/store cycles + miss_penalty * misses

Relative comparisons between loop orders — the paper's actual claims —
are dominated by the miss term, which the cache simulator computes
exactly for the configured geometry.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping

from repro.cache.cache import CacheConfig, CacheStats, SetAssocCache
from repro.cache.configs import CACHE1
from repro.ir.nodes import Program
from repro.exec.interp import Interpreter
from repro.obs import get_obs

__all__ = ["Machine", "PerfResult", "resolve_engine", "simulate"]


def resolve_engine(engine: str | None = None) -> str:
    """The trace engine to use: explicit arg, else ``REPRO_TRACE_ENGINE``
    (``block`` | ``event``), else the batched default."""
    engine = engine or os.environ.get("REPRO_TRACE_ENGINE", "block")
    if engine not in ("block", "event"):
        raise ValueError(f"unknown trace engine {engine!r}")
    return engine


@dataclass(frozen=True)
class Machine:
    """A simulated machine: one data cache plus scalar cost parameters."""

    cache: CacheConfig = CACHE1
    miss_penalty: int = 16  # cycles per cache-line miss
    access_cycles: int = 1  # cycles per load/store that hits
    op_cycles: int = 1  # cycles per arithmetic operation

    @property
    def name(self) -> str:
        return self.cache.name


@dataclass
class PerfResult:
    """Outcome of one simulated run."""

    program: str
    machine: Machine
    cycles: int
    accesses: int
    operations: int
    cache: CacheStats

    @property
    def hit_rate(self) -> float:
        return self.cache.hit_rate()

    def speedup_over(self, other: "PerfResult") -> float:
        if self.cycles == 0:
            return float("inf")
        return other.cycles / self.cycles


def simulate(
    program: Program,
    machine: Machine | None = None,
    params: Mapping[str, int] | None = None,
    init=None,
    compiled: bool = True,
    engine: str | None = None,
) -> PerfResult:
    """Run ``program`` against a machine model; returns timing + stats.

    With ``compiled=True`` (default) a trace compiler drives the cache —
    identical address stream, no value computation. ``engine`` selects the
    batched NumPy engine (``"block"``, the default) or the per-event one
    (``"event"``); both produce bit-identical statistics, and the batched
    path falls back to per-event when a program defeats it. Pass
    ``compiled=False`` (or an ``init``) to execute real arithmetic via
    the validating interpreter.
    """
    machine = machine or Machine()
    obs = get_obs()
    cache = SetAssocCache(machine.cache)

    with obs.span(
        "exec.simulate", program=program.name, machine=machine.name
    ):
        if compiled and init is None:
            engine = resolve_engine(engine)
            trace = None
            if engine == "block":
                from repro.exec.blocktrace import (
                    BlockTraceError,
                    compile_block_trace,
                )

                try:
                    trace = compile_block_trace(program, params)
                except BlockTraceError:
                    engine = "event"
                    if obs.enabled:
                        obs.metrics.counter("trace.block.fallback").inc()
            if trace is not None:
                def on_block(block) -> None:
                    cache.access_block(block.addresses, block.sizes)

                _, operations = trace.run(on_block)
            else:
                from repro.exec.codegen import compile_trace

                event_trace = compile_trace(program, params)
                elem = 8

                def access(address: int, write: bool, sid: int) -> None:
                    cache.access(address, elem, write)

                _, operations = event_trace.run(access)
            if obs.enabled:
                obs.metrics.counter(f"trace.engine.{engine}").inc()
        else:
            def on_access(event) -> None:
                cache.access(event.address, event.size, event.write)

            interp = Interpreter(program, params, on_access=on_access, init=init)
            interp.run()
            operations = interp.operations_executed

    stats = cache.stats
    if obs.enabled:
        metrics = obs.metrics
        metrics.counter("cache.accesses").inc(stats.accesses)
        metrics.counter("cache.misses").inc(stats.misses)
        metrics.counter("exec.simulations").inc()
    cycles = (
        operations * machine.op_cycles
        + stats.accesses * machine.access_cycles
        + stats.misses * machine.miss_penalty
    )
    return PerfResult(
        program=program.name,
        machine=machine,
        cycles=cycles,
        accesses=stats.accesses,
        operations=operations,
        cache=stats,
    )
