"""Column-major (Fortran) array layout and address computation.

Arrays are laid out consecutively in a flat byte address space with
line-aligned bases, column-major element order, 1-based subscripts —
matching the storage assumptions of the paper's cost model (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ExecutionError
from repro.ir.nodes import ArrayDecl, Program

__all__ = ["ArrayLayout", "MemoryLayout"]

#: Default alignment for array base addresses (a large cache line).
_BASE_ALIGN = 128


@dataclass(frozen=True)
class ArrayLayout:
    """Placement of one array: base address, extents, element size."""

    name: str
    base: int
    extents: tuple[int, ...]
    elem_size: int

    @property
    def strides(self) -> tuple[int, ...]:
        """Byte stride per dimension; the first dimension is contiguous."""
        out = []
        stride = self.elem_size
        for extent in self.extents:
            out.append(stride)
            stride *= extent
        return tuple(out)

    @property
    def total_bytes(self) -> int:
        total = self.elem_size
        for extent in self.extents:
            total *= extent
        return total

    def address(self, subscripts: Sequence[int]) -> int:
        """Byte address of the element at 1-based ``subscripts``."""
        if len(subscripts) != len(self.extents):
            raise ExecutionError(
                f"{self.name}: rank {len(self.extents)} accessed with "
                f"{len(subscripts)} subscripts"
            )
        offset = 0
        for value, extent, stride in zip(subscripts, self.extents, self.strides):
            if not 1 <= value <= extent:
                raise ExecutionError(
                    f"{self.name}{tuple(subscripts)}: subscript {value} outside "
                    f"1..{extent}"
                )
            offset += (value - 1) * stride
        return self.base + offset


@dataclass(frozen=True)
class MemoryLayout:
    """Layouts for every array of a program."""

    arrays: dict[str, ArrayLayout]

    @staticmethod
    def for_program(
        program: Program,
        env: Mapping[str, int] | None = None,
        base: int = 0x10000,
    ) -> "MemoryLayout":
        """Lay the program's arrays out consecutively from ``base``."""
        env = dict(program.param_env) | dict(env or {})
        layouts: dict[str, ArrayLayout] = {}
        cursor = base
        for decl in program.arrays:
            extents = decl.extents(env)
            if any(e <= 0 for e in extents):
                raise ExecutionError(
                    f"array {decl.name} has non-positive extent {extents}"
                )
            layout = ArrayLayout(decl.name, cursor, extents, decl.elem_size)
            layouts[decl.name] = layout
            cursor += layout.total_bytes
            cursor = (cursor + _BASE_ALIGN - 1) // _BASE_ALIGN * _BASE_ALIGN
        return MemoryLayout(layouts)

    def __getitem__(self, name: str) -> ArrayLayout:
        try:
            return self.arrays[name]
        except KeyError:
            raise ExecutionError(f"array {name!r} has no layout") from None
