"""Batched trace engine: compile loop nests to NumPy address blocks.

The per-event trace compiler (:mod:`repro.exec.codegen`) still pays one
Python callback per dynamic array access, which dominates trace-driven
simulation wall-clock. This module compiles the same programs into code
that walks only the *outer* loops in Python and turns each innermost loop
into NumPy index arithmetic: every affine access stream becomes

    addresses[slot::M] = const_part + coeff * iota(lb, ub, step)

so a whole innermost-loop execution is emitted as one structured
:class:`AccessBlock` (address/size/write/sid arrays) instead of ``M * trip``
callbacks. Blocks are coalesced up to ``block_size`` entries before being
handed to the consumer, and the event order inside the concatenated stream
is exactly the interpreter's (reads before the write, left-to-right,
statements in body order) — tested against the event-by-event oracle.

Like :mod:`repro.exec.codegen`, subscript bounds are NOT checked here; run
the validating interpreter first if the program is untrusted.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

import numpy as np

from repro.errors import ExecutionError
from repro.ir.nodes import Assign, Loop, Program
from repro.exec.codegen import _affine_expr, _static_ops
from repro.exec.layout import MemoryLayout

__all__ = [
    "AccessBlock",
    "BlockTraceError",
    "CompiledBlockTrace",
    "block_events",
    "compile_block_trace",
]

#: Entries accumulated before a coalesced block is emitted.
DEFAULT_BLOCK_SIZE = 1 << 16

#: Consumer protocol: one call per coalesced AccessBlock.
BlockFn = Callable[["AccessBlock"], None]


class BlockTraceError(ExecutionError):
    """The program cannot be compiled to the batched engine."""


@dataclass(frozen=True)
class AccessBlock:
    """A batch of dynamic array accesses in stream order.

    Structure-of-arrays layout: ``addresses`` (byte addresses, int64),
    ``sizes`` (bytes per access), ``writes`` (bool), ``sids`` (statement
    ids). All four arrays share one length.
    """

    addresses: np.ndarray
    sizes: np.ndarray
    writes: np.ndarray
    sids: np.ndarray

    def __len__(self) -> int:
        return int(self.addresses.shape[0])

    def events(self) -> Iterator[tuple[int, int, bool, int]]:
        """Per-access ``(address, size, write, sid)`` tuples (test oracle)."""
        yield from zip(
            self.addresses.tolist(),
            self.sizes.tolist(),
            self.writes.tolist(),
            self.sids.tolist(),
        )


@dataclass(frozen=True)
class _Site:
    """Per-emission-site slot patterns (one entry per access slot)."""

    writes: np.ndarray
    sids: np.ndarray
    sizes: np.ndarray


class _BlockBuffer:
    """Coalesces emitted address runs into AccessBlocks of bounded size."""

    def __init__(self, on_block: BlockFn, sites: tuple[_Site, ...], block_size: int):
        self._on_block = on_block
        self._sites = sites
        self._block_size = block_size
        self._parts: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        self._pending = 0
        # site_id -> grown (writes, sids, sizes) tiles, reused across
        # innermost-loop executions so short trip counts don't pay a
        # np.tile allocation each time. The cached tiles are only ever
        # replaced (never mutated), so the slices handed out stay valid.
        self._tiles: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    def _site_tiles(self, site_id: int, reps: int):
        cached = self._tiles.get(site_id)
        if cached is None or cached[0].shape[0] < reps * self._sites[site_id].writes.shape[0]:
            site = self._sites[site_id]
            grow = max(reps, 2 * (cached[0].shape[0] // site.writes.shape[0]) if cached else reps)
            cached = (
                np.tile(site.writes, grow),
                np.tile(site.sids, grow),
                np.tile(site.sizes, grow),
            )
            self._tiles[site_id] = cached
        return cached

    def vec(self, site_id: int, addresses: np.ndarray) -> None:
        """One vectorized innermost-loop execution (slot-major interleave)."""
        n = addresses.shape[0]
        site = self._sites[site_id]
        reps = n // site.writes.shape[0]
        writes, sids, sizes = self._site_tiles(site_id, reps)
        self._parts.append((addresses, writes[:n], sids[:n], sizes[:n]))
        self._pending += n
        if self._pending >= self._block_size:
            self.flush()

    def scalar(self, site_id: int, addresses: tuple[int, ...]) -> None:
        """One statement instance outside any vectorized loop."""
        site = self._sites[site_id]
        self._parts.append(
            (
                np.array(addresses, dtype=np.int64),
                site.writes,
                site.sids,
                site.sizes,
            )
        )
        self._pending += len(addresses)
        if self._pending >= self._block_size:
            self.flush()

    def flush(self) -> None:
        if not self._parts:
            return
        if len(self._parts) == 1:
            addresses, writes, sids, sizes = self._parts[0]
        else:
            addresses = np.concatenate([p[0] for p in self._parts])
            writes = np.concatenate([p[1] for p in self._parts])
            sids = np.concatenate([p[2] for p in self._parts])
            sizes = np.concatenate([p[3] for p in self._parts])
        self._parts = []
        self._pending = 0
        self._on_block(AccessBlock(addresses, sizes, writes, sids))


@dataclass
class CompiledBlockTrace:
    """A compiled batched trace generator for one (program, params) pair."""

    program_name: str
    source: str
    _fn: Callable[[_BlockBuffer], tuple[int, int]]
    layout: MemoryLayout
    _sites: tuple[_Site, ...]
    block_size: int = DEFAULT_BLOCK_SIZE

    def run(self, on_block: BlockFn) -> tuple[int, int]:
        """Execute the trace; returns (statement instances, operations)."""
        buffer = _BlockBuffer(self._on_block_adapter(on_block), self._sites, self.block_size)
        return self._fn(buffer)

    @staticmethod
    def _on_block_adapter(on_block) -> BlockFn:
        """Accept either a callable or an object with ``on_block``."""
        if callable(on_block):
            return on_block
        return on_block.on_block


def compile_block_trace(
    program: Program,
    params: Mapping[str, int] | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> CompiledBlockTrace:
    """Compile ``program`` (with concrete parameters) to a block trace.

    Raises:
        BlockTraceError: when an access or bound cannot be reduced to the
            affine arithmetic the engine generates (same coverage as the
            per-event trace compiler).
    """
    from repro.obs import get_obs

    with get_obs().span("exec.blocktrace.compile", program=program.name):
        return _compile_block_trace(program, params, block_size)


def _compile_block_trace(
    program: Program,
    params: Mapping[str, int] | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> CompiledBlockTrace:
    env = dict(program.param_env) | dict(params or {})
    layout = MemoryLayout.for_program(program, env)

    out = io.StringIO()
    sites: list[_Site] = []
    out.write("def __trace(__buf):\n")
    out.write("    __vec = __buf.vec\n")
    out.write("    __sca = __buf.scalar\n")
    out.write("    __count = 0\n")
    out.write("    __ops = 0\n")
    try:
        for node in program.body:
            _emit(node, env, layout, out, depth=1, sites=sites)
    except ExecutionError as exc:
        raise BlockTraceError(str(exc)) from exc
    out.write("    __buf.flush()\n")
    out.write("    return __count, __ops\n")
    source = out.getvalue()

    namespace: dict = {"_np": np}
    exec(compile(source, f"<blocktrace:{program.name}>", "exec"), namespace)
    return CompiledBlockTrace(
        program.name, source, namespace["__trace"], layout, tuple(sites), block_size
    )


def _slots(body: tuple[Assign, ...]) -> list[tuple]:
    """(ref, sid, is_write) per memory-access slot, in stream order."""
    slots = []
    for stmt in body:
        for ref in stmt.reads:
            if ref.rank:
                slots.append((ref, stmt.sid, False))
        if stmt.lhs.rank:
            slots.append((stmt.lhs, stmt.sid, True))
    return slots


def _register_site(sites: list[_Site], slots: list[tuple], layout: MemoryLayout) -> int:
    sites.append(
        _Site(
            writes=np.array([w for _, _, w in slots], dtype=bool),
            sids=np.array([sid for _, sid, _ in slots], dtype=np.int64),
            sizes=np.array(
                [layout[ref.array].elem_size for ref, _, _ in slots],
                dtype=np.int64,
            ),
        )
    )
    return len(sites) - 1


def _address_affine(ref, env: Mapping[str, int], layout: MemoryLayout):
    """Base + column-major strides folded into one affine form."""
    from repro.ir.affine import Affine

    arr = layout[ref.array]
    addr = Affine.constant(arr.base)
    for sub, stride in zip(ref.subs, arr.strides):
        addr = addr + (sub.partial_evaluate(env) - 1) * stride
    return addr


def _range_args(node: Loop, env: Mapping[str, int]) -> tuple[str, str]:
    lb = _affine_expr(node.lb, env)
    ub = _affine_expr(node.ub, env)
    stop = f"({ub}) + 1" if node.step > 0 else f"({ub}) - 1"
    return lb, stop


def _emit(
    node: "Loop | Assign",
    env: Mapping[str, int],
    layout: MemoryLayout,
    out: io.StringIO,
    depth: int,
    sites: list[_Site],
) -> None:
    pad = "    " * depth
    if isinstance(node, Assign):
        _emit_scalar_stmt(node, env, layout, out, pad, sites)
        return
    if all(isinstance(child, Assign) for child in node.body) and node.body:
        _emit_vector_loop(node, env, layout, out, pad, sites)
        return
    lb, stop = _range_args(node, env)
    out.write(f"{pad}for {node.var} in range({lb}, {stop}, {node.step}):\n")
    if not node.body:
        out.write(f"{pad}    pass\n")
    for child in node.body:
        _emit(child, env, layout, out, depth + 1, sites)


def _emit_scalar_stmt(
    stmt: Assign,
    env: Mapping[str, int],
    layout: MemoryLayout,
    out: io.StringIO,
    pad: str,
    sites: list[_Site],
) -> None:
    slots = _slots((stmt,))
    if slots:
        site_id = _register_site(sites, slots, layout)
        exprs = ", ".join(
            _affine_expr(_address_affine(ref, env, layout), env)
            for ref, _, _ in slots
        )
        comma = "," if len(slots) == 1 else ""
        out.write(f"{pad}__sca({site_id}, ({exprs}{comma}))\n")
    out.write(f"{pad}__count += 1\n")
    out.write(f"{pad}__ops += {_static_ops(stmt) + 1}\n")


def _emit_vector_loop(
    node: Loop,
    env: Mapping[str, int],
    layout: MemoryLayout,
    out: io.StringIO,
    pad: str,
    sites: list[_Site],
) -> None:
    """An innermost loop (body is all Assigns): one NumPy block per run."""
    slots = _slots(node.body)
    m = len(slots)
    lb, stop = _range_args(node, env)
    ops_per_iter = sum(_static_ops(stmt) + 1 for stmt in node.body)
    inner = pad + "    "
    if m == 0:
        # No memory traffic: only the instance/operation counters advance.
        out.write(f"{pad}__n = len(range({lb}, {stop}, {node.step}))\n")
        out.write(f"{pad}__count += __n * {len(node.body)}\n")
        out.write(f"{pad}__ops += __n * {ops_per_iter}\n")
        return
    site_id = _register_site(sites, slots, layout)
    out.write(
        f"{pad}__iv = _np.arange({lb}, {stop}, {node.step}, dtype=_np.int64)\n"
    )
    out.write(f"{pad}__n = __iv.shape[0]\n")
    out.write(f"{pad}if __n:\n")
    out.write(f"{inner}__count += __n * {len(node.body)}\n")
    out.write(f"{inner}__ops += __n * {ops_per_iter}\n")
    out.write(f"{inner}__a = _np.empty({m} * __n, dtype=_np.int64)\n")
    for slot, (ref, _, _) in enumerate(slots):
        addr = _address_affine(ref, env, layout)
        coeff = addr.coeff(node.var)
        const_src = _affine_expr(addr.substitute(node.var, 0), env)
        if coeff == 0:
            out.write(f"{inner}__a[{slot}::{m}] = {const_src}\n")
        elif coeff == 1:
            out.write(f"{inner}__a[{slot}::{m}] = ({const_src}) + __iv\n")
        else:
            out.write(
                f"{inner}__a[{slot}::{m}] = ({const_src}) + {coeff} * __iv\n"
            )
    out.write(f"{inner}__vec({site_id}, __a)\n")


def block_events(
    program: Program, params: Mapping[str, int] | None = None
) -> list[tuple[int, int, bool, int]]:
    """Run the batched engine, flattening blocks back to event tuples.

    Only useful for equivalence testing and debugging — it reintroduces
    the per-event cost the engine exists to avoid.
    """
    events: list[tuple[int, int, bool, int]] = []
    compile_block_trace(program, params).run(
        lambda block: events.extend(block.events())
    )
    return events
