"""Trace compiler: generate specialized Python code for address tracing.

Cache simulation only needs the *address stream*, not computed values, so
this module compiles a program into a Python function that walks the
iteration space with native ``range`` loops and emits one callback per
array access — roughly an order of magnitude faster than the
value-computing interpreter. The generated trace is bit-identical to the
interpreter's (tested), just without the floating-point work.

Subscript bounds are NOT checked here; run the validating interpreter
first if the program is untrusted.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import ExecutionError
from repro.ir.affine import Affine
from repro.ir.nodes import Assign, Loop, Program
from repro.exec.layout import MemoryLayout

__all__ = ["CompiledTrace", "compile_trace"]

#: Callback protocol: (byte_address, is_write, sid) -> None
AccessFn = Callable[[int, bool, int], None]


@dataclass
class CompiledTrace:
    """A compiled trace generator for one (program, parameters) pair."""

    program_name: str
    source: str
    _fn: Callable[[AccessFn], tuple[int, int]]
    layout: MemoryLayout

    def run(self, access: AccessFn) -> tuple[int, int]:
        """Execute the trace; returns (statement instances, operations)."""
        return self._fn(access)


def compile_trace(
    program: Program, params: Mapping[str, int] | None = None
) -> CompiledTrace:
    """Compile ``program`` (with concrete parameters) to a trace function."""
    env = dict(program.param_env) | dict(params or {})
    layout = MemoryLayout.for_program(program, env)

    out = io.StringIO()
    out.write("def __trace(access):\n")
    out.write("    __count = 0\n")
    out.write("    __ops = 0\n")
    body_emitted = False
    for node in program.body:
        _emit(node, env, layout, out, depth=1)
        body_emitted = True
    if not body_emitted:
        out.write("    pass\n")
    out.write("    return __count, __ops\n")
    source = out.getvalue()

    namespace: dict = {}
    exec(compile(source, f"<trace:{program.name}>", "exec"), namespace)
    return CompiledTrace(program.name, source, namespace["__trace"], layout)


def _emit(
    node: "Loop | Assign",
    env: Mapping[str, int],
    layout: MemoryLayout,
    out: io.StringIO,
    depth: int,
) -> None:
    pad = "    " * depth
    if isinstance(node, Assign):
        # Rank-0 references are register temporaries: no memory traffic
        # (matching the interpreter).
        for ref in node.reads:
            if ref.rank == 0:
                continue
            out.write(
                f"{pad}access({_address_expr(ref, env, layout)}, False, {node.sid})\n"
            )
        if node.lhs.rank:
            out.write(
                f"{pad}access({_address_expr(node.lhs, env, layout)}, True, {node.sid})\n"
            )
        out.write(f"{pad}__count += 1\n")
        out.write(f"{pad}__ops += {_static_ops(node) + 1}\n")
        return
    lb = _affine_expr(node.lb, env)
    ub = _affine_expr(node.ub, env)
    if node.step > 0:
        out.write(f"{pad}for {node.var} in range({lb}, ({ub}) + 1, {node.step}):\n")
    else:
        out.write(f"{pad}for {node.var} in range({lb}, ({ub}) - 1, {node.step}):\n")
    if not node.body:
        out.write(f"{pad}    pass\n")
    for child in node.body:
        _emit(child, env, layout, out, depth + 1)


def _static_ops(stmt: Assign) -> int:
    """Arithmetic operations per dynamic instance of the statement."""
    from repro.ir.expr import Bin, Call

    def count(expr) -> int:
        total = 1 if isinstance(expr, (Bin, Call)) else 0
        return total + sum(count(c) for c in expr.children())

    return count(stmt.rhs)


def _address_expr(ref, env: Mapping[str, int], layout: MemoryLayout) -> str:
    """Fold base + column-major strides into a single affine expression."""
    arr = layout[ref.array]
    addr = Affine.constant(arr.base)
    for sub, stride in zip(ref.subs, arr.strides):
        addr = addr + (sub.partial_evaluate(env) - 1) * stride
    return _affine_expr(addr, env)


def _affine_expr(form: Affine, env: Mapping[str, int]) -> str:
    form = form.partial_evaluate(env)
    unknown = [n for n, _ in form.terms if not n.isidentifier()]
    if unknown:
        raise ExecutionError(f"cannot compile names {unknown} in {form}")
    parts = [str(form.const)]
    for name, coeff in form.terms:
        if name in env:
            continue  # already folded by partial_evaluate
        parts.append(f"{coeff}*{name}" if coeff != 1 else name)
    return " + ".join(parts)
