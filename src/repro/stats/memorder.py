"""Memory-order statistics (Table 2) for a program before/after Compound.

For each program we report, matching the paper's columns:

* lines (pretty-printed), loop count, nest count (depth >= 2);
* % of nests originally in / permuted into / failing memory order;
* the same for the innermost loop position;
* fusion candidates (C) and nests actually fused (A);
* nests distributed (D) and nests that resulted (R);
* LoopCost ratios original/final and original/ideal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.nodes import Loop, Program
from repro.ir.visit import iter_loops
from repro.model.loopcost import CostModel
from repro.transforms.compound import FAIL, ORIG, PERM, CompoundOutcome, compound

__all__ = ["ProgramStats", "collect_program_stats", "ideal_cost", "program_cost"]


@dataclass(frozen=True)
class ProgramStats:
    """One row of Table 2."""

    name: str
    lines: int
    loops: int
    nests: int
    memory_order_orig: int
    memory_order_perm: int
    memory_order_fail: int
    inner_orig: int
    inner_perm: int
    inner_fail: int
    fusion_candidates: int
    nests_fused: int
    distribution_applied: int
    distribution_resulting: int
    cost_ratio_final: float
    cost_ratio_ideal: float

    def pct(self, value: int) -> int:
        if self.nests == 0:
            return 0
        return round(100 * value / self.nests)

    @property
    def row(self) -> dict:
        return {
            "Program": self.name,
            "Lines": self.lines,
            "Loops": self.loops,
            "Nests": self.nests,
            "MO-Orig%": self.pct(self.memory_order_orig),
            "MO-Perm%": self.pct(self.memory_order_perm),
            "MO-Fail%": self.pct(self.memory_order_fail),
            "IL-Orig%": self.pct(self.inner_orig),
            "IL-Perm%": self.pct(self.inner_perm),
            "IL-Fail%": self.pct(self.inner_fail),
            "Fus-C": self.fusion_candidates,
            "Fus-A": self.nests_fused,
            "Dist-D": self.distribution_applied,
            "Dist-R": self.distribution_resulting,
            "Ratio-Final": round(self.cost_ratio_final, 2),
            "Ratio-Ideal": round(self.cost_ratio_ideal, 2),
        }


def program_cost(program: Program, model: CostModel) -> float:
    """LoopCost of the program as currently organized.

    Per nest, per reference group (computed with respect to the group's
    innermost enclosing loop): ``RefCost(rep, inner) * prod(trips of the
    rep's other enclosing loops)``. This values each statement at its own
    innermost loop, so imperfect and distributed nests are costed
    consistently. Costs are evaluated at the program's concrete parameter
    values (falling back to the dominant magnitude for unbound symbols).
    """
    return _cost(program, model, ideal=False)


def ideal_cost(program: Program, model: CostModel) -> float:
    """LoopCost of the *ideal* program (paper §5.2): each reference group
    gets the cheapest loop of its enclosing chain innermost, regardless of
    dependence constraints or implementation limits."""
    return _cost(program, model, ideal=True)


def _cost(program: Program, model: CostModel, ideal: bool) -> float:
    env = program.param_env
    total = 0.0
    for nest in program.top_loops:
        current = _organization_cost(nest, model, env)
        if not ideal:
            total += current
            continue
        # Ideal (paper §5.2): the nest reaches memory order regardless of
        # dependences — one loop choice per nest, every group it encloses
        # charged with that loop innermost (grouping recomputed w.r.t.
        # the candidate); groups outside the candidate keep their current
        # innermost loop.
        info = model.nest_info(nest)
        best = current
        for loop in info.loops:
            candidate_total = 0.0
            for group in model.groups(nest, loop.var):
                rep = group.representative
                chain = info.chains[rep.sid]
                if not chain:
                    continue
                target = loop if loop in chain else chain[-1]
                candidate_total += _group_cost(
                    model, info, rep, target, chain, env
                )
            best = min(best, candidate_total)
        total += best
    return total


def _organization_cost(
    nest: Loop, model: CostModel, env: dict | None = None
) -> float:
    """Cost of the nest as written: each group at its own innermost loop."""
    info = model.nest_info(nest)
    total = 0.0
    for inner in _innermost_loop_objects(nest):
        for group in model.groups(nest, inner.var):
            rep = group.representative
            chain = info.chains[rep.sid]
            if not chain or chain[-1] is not inner:
                continue
            total += _group_cost(model, info, rep, inner, chain, env)
    return total


def _group_cost(model, info, rep, inner_loop, chain, env=None) -> float:
    from repro.errors import ReproError

    cost = model.ref_cost(info, rep.ref, inner_loop)
    for enclosing in chain:
        if enclosing is not inner_loop:
            cost = cost * info.trips[enclosing.var]
    if env:
        try:
            return cost.evaluate(env)
        except ReproError:
            pass
    return cost.magnitude()


def _innermost_loop_objects(nest: Loop) -> list[Loop]:
    out: list[Loop] = []

    def walk(loop: Loop) -> None:
        inner = [i for i in loop.body if isinstance(i, Loop)]
        if not inner:
            out.append(loop)
        for item in inner:
            walk(item)

    walk(nest)
    return out


def collect_program_stats(
    program: Program, model: CostModel | None = None
) -> tuple[ProgramStats, CompoundOutcome]:
    """Run Compound on ``program`` and assemble its Table-2 row."""
    model = model or CostModel()
    outcome = compound(program, model)

    counts = outcome.counts
    inner = outcome.inner_counts
    lines = len(str(program).splitlines())
    loops = sum(1 for _ in iter_loops(program))
    nests = len(outcome.nests)

    fresh = CostModel(cls=model.cls, temporal_max=model.temporal_max)
    original_cost = program_cost(program, fresh)
    final_cost = program_cost(outcome.program, fresh)
    # The ideal bound is about loop *order* only; fusion can beat it by
    # creating group reuse, so the final organization is folded in.
    ideal = min(ideal_cost(program, fresh), final_cost)

    stats = ProgramStats(
        name=program.name,
        lines=lines,
        loops=loops,
        nests=nests,
        memory_order_orig=counts[ORIG],
        memory_order_perm=counts[PERM],
        memory_order_fail=counts[FAIL],
        inner_orig=inner[ORIG],
        inner_perm=inner[PERM],
        inner_fail=inner[FAIL],
        fusion_candidates=outcome.fusion_candidates,
        nests_fused=outcome.nests_fused,
        distribution_applied=outcome.distribution_applied,
        distribution_resulting=outcome.distribution_resulting,
        cost_ratio_final=(original_cost / final_cost) if final_cost else 1.0,
        cost_ratio_ideal=(original_cost / ideal) if ideal else 1.0,
    )
    return stats, outcome
