"""Data access properties (Table 5).

For a program version, classify every reference group of every nest with
respect to the nest's innermost loop:

* locality kind of the group's representative — loop-invariant (Inv),
  unit-stride (Unit), or none (None);
* whether the group was built (partly) from group-spatial reuse;
* references per group by kind (group-temporal reuse indicator);
* LoopCost improvement ratios (plain and nesting-depth-weighted).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.nodes import Loop, Program
from repro.model.loopcost import CONSECUTIVE, INVARIANT, CostModel

__all__ = ["AccessProperties", "collect_access_properties", "cost_ratios"]


@dataclass(frozen=True)
class AccessProperties:
    """One Table-5 panel (for one program version)."""

    name: str
    groups_invariant: int
    groups_unit: int
    groups_none: int
    groups_spatial: int
    refs_invariant: int
    refs_unit: int
    refs_none: int

    @property
    def total_groups(self) -> int:
        return self.groups_invariant + self.groups_unit + self.groups_none

    def _pct(self, value: int) -> int:
        return round(100 * value / self.total_groups) if self.total_groups else 0

    @property
    def row(self) -> dict:
        refs_per = lambda refs, groups: round(refs / groups, 2) if groups else 0.0
        total_refs = self.refs_invariant + self.refs_unit + self.refs_none
        return {
            "Version": self.name,
            "Inv%": self._pct(self.groups_invariant),
            "Unit%": self._pct(self.groups_unit),
            "None%": self._pct(self.groups_none),
            "Group%": self._pct(self.groups_spatial),
            "Refs/Inv": refs_per(self.refs_invariant, self.groups_invariant),
            "Refs/Unit": refs_per(self.refs_unit, self.groups_unit),
            "Refs/None": refs_per(self.refs_none, self.groups_none),
            "Refs/Avg": refs_per(total_refs, self.total_groups),
        }


def collect_access_properties(
    program: Program, model: CostModel | None = None, name: str = ""
) -> AccessProperties:
    """Classify the reference groups of every nest at its inner loop."""
    model = model or CostModel()
    counts = {INVARIANT: 0, CONSECUTIVE: 0, "none": 0}
    refs = {INVARIANT: 0, CONSECUTIVE: 0, "none": 0}
    spatial = 0

    for nest in program.top_loops:
        info = model.nest_info(nest)
        for inner in _innermost_loops(nest):
            groups = model.groups(nest, inner.var)
            for group in groups:
                rep = group.representative
                if inner not in info.chains[rep.sid]:
                    continue  # group lives outside this inner loop
                kind = model.ref_cost_kind(rep.ref, inner)
                key = kind if kind in (INVARIANT, CONSECUTIVE) else "none"
                counts[key] += 1
                refs[key] += group.size
                if group.has_group_spatial:
                    spatial += 1

    return AccessProperties(
        name=name or program.name,
        groups_invariant=counts[INVARIANT],
        groups_unit=counts[CONSECUTIVE],
        groups_none=counts["none"],
        groups_spatial=spatial,
        refs_invariant=refs[INVARIANT],
        refs_unit=refs[CONSECUTIVE],
        refs_none=refs["none"],
    )


def cost_ratios(
    original: Program, other: Program, model: CostModel
) -> tuple[float, float]:
    """(plain, depth-weighted) LoopCost improvement ratios original/other.

    When the two versions have the same nest count, ratios are averaged
    per nest (the paper's convention), weighting by nesting depth for the
    "Wt" column. Distribution changes the nest count; then the whole-
    program ratio is used for both.
    """
    from repro.stats.memorder import _organization_cost

    env = original.param_env
    orig_nests = original.top_loops
    new_nests = other.top_loops
    if len(orig_nests) == len(new_nests):
        plain: list[float] = []
        weighted_num = 0.0
        weighted_den = 0.0
        for orig_nest, new_nest in zip(orig_nests, new_nests):
            orig_cost = _organization_cost(orig_nest, model, env)
            new_cost = _organization_cost(new_nest, model, env)
            if orig_cost <= 0 or new_cost <= 0:
                continue
            ratio = orig_cost / new_cost
            plain.append(ratio)
            depth = orig_nest.depth
            weighted_num += ratio * depth
            weighted_den += depth
        if plain:
            return (
                sum(plain) / len(plain),
                weighted_num / weighted_den if weighted_den else 1.0,
            )
    total_orig = sum(_organization_cost(nest, model, env) for nest in orig_nests)
    total_new = sum(_organization_cost(nest, model, env) for nest in new_nests)
    ratio = total_orig / total_new if total_new > 0 else 1.0
    return ratio, ratio


def _innermost_loops(nest: Loop) -> list[Loop]:
    out: list[Loop] = []

    def walk(loop: Loop) -> None:
        inner = [i for i in loop.body if isinstance(i, Loop)]
        if not inner:
            out.append(loop)
        for item in inner:
            walk(item)

    walk(nest)
    return out
