"""Statistics collection: Table 2 memory-order stats, Table 5 access
properties, and plain-text report rendering (tables + observability)."""

from repro.stats.access import AccessProperties, collect_access_properties, cost_ratios
from repro.stats.memorder import (
    ProgramStats,
    collect_program_stats,
    ideal_cost,
    program_cost,
)
from repro.stats.report import (
    render_histogram,
    render_metrics,
    render_remarks,
    render_spans,
    render_table,
)

__all__ = [
    "AccessProperties",
    "ProgramStats",
    "collect_access_properties",
    "collect_program_stats",
    "cost_ratios",
    "ideal_cost",
    "program_cost",
    "render_histogram",
    "render_metrics",
    "render_remarks",
    "render_spans",
    "render_table",
]
