"""Plain-text rendering: experiment tables plus observability output
(optimization remarks, span trees, metrics summaries)."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = [
    "render_table",
    "render_histogram",
    "render_remarks",
    "render_spans",
    "render_metrics",
]


def render_table(
    rows: Sequence[Mapping[str, object]],
    title: str = "",
    columns: Sequence[str] | None = None,
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns or rows[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    out = []
    if title:
        out.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    out.append(header)
    out.append("-" * len(header))
    for line in cells:
        out.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(out)


def render_histogram(
    buckets: Mapping[str, int], title: str = "", width: int = 40
) -> str:
    """Render labelled counts as a horizontal bar chart (Figures 8/9)."""
    out = [title] if title else []
    peak = max(buckets.values(), default=0)
    for label, count in buckets.items():
        bar = "#" * (round(width * count / peak) if peak else 0)
        out.append(f"{label:>12} | {bar} {count}")
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


# ----------------------------------------------------------------------
# Observability rendering (repro.obs)
# ----------------------------------------------------------------------
def render_remarks(remarks: Iterable, title: str = "optimization remarks") -> str:
    """One stable line per remark (``--explain``). Deterministic: remarks
    carry no timestamps, so identical inputs render identically."""
    lines = [title] if title else []
    count = 0
    for remark in remarks:
        lines.append("  " + remark.format())
        count += 1
    if count == 0:
        lines.append("  (no remarks)")
    return "\n".join(lines)


def render_spans(spans: Sequence, title: str = "spans") -> str:
    """Indented span tree with wall-time durations in milliseconds."""
    lines = [title] if title else []
    spans = list(spans)
    if not spans:
        lines.append("  (no spans)")
        return "\n".join(lines)
    children: dict = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)

    def walk(span, depth: int) -> None:
        attrs = "".join(f" {k}={v}" for k, v in span.attrs.items())
        lines.append(
            f"  {'  ' * depth}{span.name:<28} {span.duration * 1e3:10.3f} ms{attrs}"
        )
        for child in children.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)
    return "\n".join(lines)


def render_metrics(metrics, title: str = "metrics") -> str:
    """Counters, gauges, and histogram summaries as aligned tables.

    Accepts a ``MetricsRegistry`` (anything with ``snapshot()``) or an
    already-taken snapshot dict.
    """
    snapshot = metrics.snapshot() if hasattr(metrics, "snapshot") else metrics
    sections = [title] if title else []
    counters = snapshot.get("counters") or {}
    if counters:
        sections.append(
            render_table(
                [{"counter": n, "value": v} for n, v in counters.items()]
            )
        )
    gauges = snapshot.get("gauges") or {}
    if gauges:
        sections.append(
            render_table([{"gauge": n, "value": v} for n, v in gauges.items()])
        )
    histograms = snapshot.get("histograms") or {}
    if histograms:
        rows = []
        for name, data in histograms.items():
            mean = data["total"] / data["count"] if data["count"] else 0.0
            rows.append(
                {
                    "histogram": name,
                    "count": data["count"],
                    "mean": mean,
                    "min": data["min"],
                    "max": data["max"],
                }
            )
        sections.append(render_table(rows))
    shards = snapshot.get("shards") or {}
    if shards:
        sections.append(
            render_table(
                [
                    {"shard": key, "merged": 1, "offers": count}
                    for key, count in shards.items()
                ],
                title=f"shards ({len(shards)} merged, duplicates deduped)",
            )
        )
    if len(sections) == (1 if title else 0):
        sections.append("(no metrics)")
    return "\n".join(sections)
