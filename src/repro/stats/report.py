"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["render_table", "render_histogram"]


def render_table(
    rows: Sequence[Mapping[str, object]],
    title: str = "",
    columns: Sequence[str] | None = None,
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns or rows[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    out = []
    if title:
        out.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    out.append(header)
    out.append("-" * len(header))
    for line in cells:
        out.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(out)


def render_histogram(
    buckets: Mapping[str, int], title: str = "", width: int = 40
) -> str:
    """Render labelled counts as a horizontal bar chart (Figures 8/9)."""
    out = [title] if title else []
    peak = max(buckets.values(), default=0)
    for label, count in buckets.items():
        bar = "#" * (round(width * count / peak) if peak else 0)
        out.append(f"{label:>12} | {bar} {count}")
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
