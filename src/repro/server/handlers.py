"""Endpoint handlers: pure, picklable compile jobs.

:func:`execute` is the single entry point the pool dispatches — a
module-level function over plain data (endpoint name, canonical source
text, parameter dict), so batches shard cleanly across the experiment
process pool. Each job:

* re-parses the canonical text (workers share nothing with the parent),
* runs under a **fresh** :class:`repro.obs.Obs` context so its spans,
  metrics, and remarks can be grafted into the server context
  request-scoped (see :meth:`repro.obs.Obs.merge_shard`),
* returns ``(payload, metrics, remarks, spans)`` — the deterministic
  response payload plus the plain (picklable) observation data, the
  same shape ``experiments.common._shard_worker`` ships across the
  process boundary.

Handler payloads contain no volatile fields (times, pids); that is what
lets the app cache serialized bytes and golden-test the contract.
"""

from __future__ import annotations

import time

from repro.frontend import parse_program
from repro.ir.nodes import Program
from repro.ir.pretty import pretty_program
from repro.model import CostModel
from repro.obs import Obs, use_obs
from repro.server.protocol import SCHEMA_VERSION

__all__ = ["execute"]


def _inject_fault(fault: str) -> None:
    """Honor a debug fault directive (the app gates on config)."""
    if not fault:
        return
    if fault.startswith("sleep:"):
        time.sleep(float(fault.split(":", 1)[1]))
        return
    if fault == "boom":
        raise RuntimeError("injected worker fault (debug_faults)")
    raise RuntimeError(f"unknown fault directive {fault!r}")


def _remarks_payload(obs: Obs) -> list[dict]:
    """Remarks as wire dicts, deterministic field order."""
    rows = []
    for remark in obs.remarks:
        row: dict = {
            "pass": remark.pass_name,
            "kind": remark.kind,
            "message": remark.message,
        }
        if remark.nest is not None:
            row["nest"] = remark.nest
        if remark.loops:
            row["loops"] = list(remark.loops)
        if remark.reason is not None:
            row["reason"] = remark.reason
        rows.append(row)
    return rows


def _base_payload(endpoint: str, digest: str, program: Program) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "endpoint": endpoint,
        "digest": digest,
        "program": program.name,
        "params": dict(program.params),
    }


def _handle_optimize(program: Program, digest: str, params: dict, obs: Obs) -> dict:
    from repro.locality import predict_locality
    from repro.transforms import compound, scalar_replace_program

    model = CostModel(cls=params["cls"])
    outcome = compound(program, model)
    final = outcome.program
    replaced = 0
    if params["scalar_replace"]:
        result = scalar_replace_program(final)
        final = result.program
        replaced = result.replaced

    line, capacity = params["line"], params["capacity"]
    before = predict_locality(program, line=line)
    after = predict_locality(final, line=line)
    miss_before = before.miss_ratio_for_capacity(capacity)
    miss_after = after.miss_ratio_for_capacity(capacity)

    payload = _base_payload("optimize", digest, program)
    payload["transformed"] = pretty_program(final)
    payload["nests"] = [
        {
            "index": report.nest_index,
            "depth": report.depth,
            "status": report.status,
            "inner_status": report.inner_status,
            "distributed": report.distributed,
            "reversal_used": report.reversal_used,
        }
        for report in outcome.nests
    ]
    payload["fusion"] = {
        "candidates": outcome.fusion_candidates,
        "fused": outcome.nests_fused,
        "distribution_applied": outcome.distribution_applied,
    }
    if params["scalar_replace"]:
        payload["scalar_replaced"] = replaced
    payload["locality"] = {
        "line": line,
        "capacity": capacity,
        "miss_before": round(miss_before, 6),
        "miss_after": round(miss_after, 6),
        "improvement_pp": round((miss_before - miss_after) * 100.0, 4),
    }
    payload["remarks"] = _remarks_payload(obs)
    return payload


def _handle_lint(program: Program, digest: str, params: dict, obs: Obs) -> dict:
    from repro.lint import lint_program

    checks = tuple(params["checks"]) if params["checks"] else None
    result = lint_program(
        program,
        checks=checks,
        verify=params["verify"],
        line=params["line"],
        capacity=params["capacity"],
    )
    payload = _base_payload("lint", digest, program)
    payload["result"] = result.to_dict()
    payload["remarks"] = _remarks_payload(obs)
    return payload


def _handle_locality(program: Program, digest: str, params: dict, obs: Obs) -> dict:
    from repro.locality import predict_locality

    line = params["line"]
    prediction = predict_locality(program, line=line)
    payload = _base_payload("locality", digest, program)
    payload["line"] = line
    payload["accesses"] = prediction.accesses
    payload["cold"] = prediction.cold
    payload["path"] = "exact" if prediction.exact else "model"
    payload["reuse_classes"] = {
        kind: count for kind, count in prediction.by_kind().items() if count
    }
    payload["capacities"] = [
        {
            "lines": capacity,
            "hit_rate": round(prediction.hit_rate_for_capacity(capacity), 6),
            "miss_ratio": round(
                prediction.miss_ratio_for_capacity(capacity), 6
            ),
        }
        for capacity in params["capacities"]
    ]
    return payload


def _handle_autotune(program: Program, digest: str, params: dict, obs: Obs) -> dict:
    from repro.autotune import autotune

    line, capacity = params["line"], params["capacity"]
    result = autotune(
        program,
        model=CostModel(cls=max(1, line // 8)),
        line=line,
        capacity=capacity,
        budget=params["budget"],
        beam=params["beam"],
        verify=params["verify"],
    )
    best = result.best
    assert best.cost is not None and result.original.cost is not None
    payload = _base_payload("autotune", digest, program)
    payload["tuned"] = pretty_program(best.program)
    payload["best"] = {
        "source": best.source,
        "describe": best.describe(),
        "verified": result.verified,
    }
    payload["search"] = {
        "budget": result.budget,
        "evaluated": result.evaluated,
        "generated": result.generated,
        "candidates": len(result.ranked),
        "budget_exhausted": result.budget_exhausted,
    }
    payload["locality"] = {
        "line": line,
        "capacity": capacity,
        "miss_before": round(result.original.cost.miss_ratio, 6),
        "miss_after": round(best.cost.miss_ratio, 6),
        "improvement_pp": round(result.improvement_pp, 4),
    }
    payload["rejected"] = [
        {"candidate": describe, "slug": slug}
        for describe, slug in result.rejected
    ]
    return payload


_HANDLERS = {
    "optimize": _handle_optimize,
    "lint": _handle_lint,
    "locality": _handle_locality,
    "autotune": _handle_autotune,
}


def execute(endpoint: str, canonical_text: str, digest: str, params: dict,
            fault: str = "") -> tuple:
    """Run one compile job; returns ``(payload, metrics, remarks, spans)``.

    Raised exceptions propagate to the pool layer, which captures them
    as :class:`~repro.experiments.common.ShardFailure` rows — one poison
    request fails alone, its batch siblings complete.
    """
    request_obs = Obs()
    with use_obs(request_obs):
        with request_obs.span(
            "server.execute", endpoint=endpoint, digest=digest
        ):
            _inject_fault(fault)
            program = parse_program(canonical_text)
            payload = _HANDLERS[endpoint](program, digest, params, request_obs)
    return (
        payload,
        request_obs.metrics,
        tuple(request_obs.remarks),
        tuple(request_obs.tracer.spans),
    )
