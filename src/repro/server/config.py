"""Server configuration: deployment knobs with ``REPRO_SERVER_*`` overrides.

Every knob has a code default, an environment override (the deployment
surface), and a constructor override (the test surface). Precedence:
explicit constructor argument > environment variable > default.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields

__all__ = ["ServerConfig", "ENV_PREFIX"]

ENV_PREFIX = "REPRO_SERVER_"


def _env_name(field_name: str) -> str:
    return ENV_PREFIX + field_name.upper()


@dataclass(frozen=True)
class ServerConfig:
    """Immutable server configuration.

    Attributes (environment override in parentheses):
        host: bind address (``REPRO_SERVER_HOST``).
        port: bind port; 0 picks an ephemeral port (``REPRO_SERVER_PORT``).
        jobs: worker processes per batch; 1 = in-thread execution with
            no process pool (``REPRO_SERVER_JOBS``).
        queue_depth: bounded request queue capacity; a full queue answers
            429 with ``Retry-After`` (``REPRO_SERVER_QUEUE_DEPTH``).
        batch_max: max requests dispatched per pool batch
            (``REPRO_SERVER_BATCH_MAX``).
        batch_window_ms: how long the dispatcher waits to fill a batch
            after the first request arrives (``REPRO_SERVER_BATCH_WINDOW_MS``).
        request_timeout_s: per-request wall budget, queue wait included;
            exceeded → 504 (``REPRO_SERVER_REQUEST_TIMEOUT_S``).
        max_body_bytes: request body cap; larger → 413
            (``REPRO_SERVER_MAX_BODY_BYTES``).
        cache_cap: result-cache capacity in entries
            (``REPRO_SERVER_CACHE_CAP``).
        max_autotune_budget: server-side clamp on a request's autotune
            oracle budget (``REPRO_SERVER_MAX_AUTOTUNE_BUDGET``).
        drain_timeout_s: graceful-shutdown budget for in-flight work
            (``REPRO_SERVER_DRAIN_TIMEOUT_S``).
        debug_faults: honor the ``fault`` request field (test-only
            injection; ``REPRO_SERVER_DEBUG_FAULTS=1``).
        ledger: append one ``kind="server"`` ledger record per request
            (``REPRO_SERVER_LEDGER``; the repo-wide ``REPRO_LEDGER=0``
            kill-switch still wins).
    """

    host: str = "127.0.0.1"
    port: int = 8642
    jobs: int = 1
    queue_depth: int = 64
    batch_max: int = 8
    batch_window_ms: float = 2.0
    request_timeout_s: float = 30.0
    max_body_bytes: int = 1 << 20
    cache_cap: int = 1024
    max_autotune_budget: int = 256
    drain_timeout_s: float = 10.0
    debug_faults: bool = False
    ledger: bool = True

    def __post_init__(self) -> None:
        if self.queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        if self.batch_max <= 0:
            raise ValueError("batch_max must be positive")
        if self.jobs <= 0:
            raise ValueError("jobs must be positive")
        if self.max_body_bytes <= 0:
            raise ValueError("max_body_bytes must be positive")

    @classmethod
    def from_env(cls, environ: dict | None = None, **overrides) -> "ServerConfig":
        """Build a config from ``REPRO_SERVER_*`` variables + overrides.

        Malformed environment values raise ``ValueError`` naming the
        variable, so a typo'd deployment fails loudly at boot rather
        than running with a silent default.
        """
        env = os.environ if environ is None else environ
        values: dict = {}
        for spec in fields(cls):
            if spec.name in overrides:
                values[spec.name] = overrides.pop(spec.name)
                continue
            raw = env.get(_env_name(spec.name), "").strip()
            if not raw:
                continue
            try:
                if spec.type in ("int", int):
                    values[spec.name] = int(raw)
                elif spec.type in ("float", float):
                    values[spec.name] = float(raw)
                elif spec.type in ("bool", bool):
                    values[spec.name] = raw.lower() not in ("0", "false", "off", "no")
                else:
                    values[spec.name] = raw
            except ValueError as exc:
                raise ValueError(
                    f"{_env_name(spec.name)} is malformed: {exc}"
                ) from exc
        if overrides:
            raise TypeError(f"unknown config override(s) {sorted(overrides)}")
        return cls(**values)

    def describe(self) -> dict:
        """Plain-dict view for /metrics and the boot banner."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}
