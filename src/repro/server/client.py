"""A small blocking client for the compile service (stdlib ``http.client``).

Used by the test harness and the CI smoke script; also convenient from
a REPL::

    from repro.server.client import ReproClient

    client = ReproClient("127.0.0.1", 8642)
    reply = client.optimize(source)
    reply.payload["locality"]["miss_after"]

Every call returns a :class:`Reply` carrying the HTTP status, response
headers (including the ``X-Repro-Cache`` hit/miss marker), the raw
bytes, and the decoded JSON payload. Non-2xx responses are returned,
not raised — fault-path tests assert on them directly; call
:meth:`Reply.raise_for_status` when you want the exception behaviour.
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass

__all__ = ["Reply", "ReproClient", "ServerReplyError"]


class ServerReplyError(Exception):
    """A non-2xx reply surfaced via :meth:`Reply.raise_for_status`."""

    def __init__(self, reply: "Reply"):
        error = reply.payload.get("error", {}) if reply.payload else {}
        message = error.get("message") or repr(reply.body[:200])
        super().__init__(
            f"HTTP {reply.status}: {error.get('code', 'unknown')} — {message}"
        )
        self.reply = reply


@dataclass(frozen=True)
class Reply:
    """One HTTP exchange: status, headers, raw body, decoded payload."""

    status: int
    headers: dict
    body: bytes
    payload: dict

    @property
    def cache_state(self) -> str:
        """``hit`` / ``miss`` / ``error`` / ``""`` (non-compile paths)."""
        return self.headers.get("x-repro-cache", "")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def raise_for_status(self) -> "Reply":
        if not self.ok:
            raise ServerReplyError(self)
        return self


class ReproClient:
    """One-connection-per-request client (the server closes after each)."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(
        self, method: str, path: str, body: dict | bytes | None = None
    ) -> Reply:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            raw: bytes | None
            if isinstance(body, dict):
                raw = json.dumps(body).encode("utf-8")
            else:
                raw = body
            headers = {"Content-Type": "application/json"} if raw else {}
            try:
                connection.request(method, path, body=raw, headers=headers)
            except (BrokenPipeError, ConnectionResetError):
                # The server answered early (e.g. 413 on an oversized
                # body) and closed its read side; the response is still
                # on the wire.
                pass
            response = connection.getresponse()
            data = response.read()
            try:
                payload = json.loads(data.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {}
            return Reply(
                status=response.status,
                headers={k.lower(): v for k, v in response.getheaders()},
                body=data,
                payload=payload,
            )
        finally:
            connection.close()

    def _compile(self, endpoint: str, source: str | None, ir: dict | None,
                 **params) -> Reply:
        body: dict = dict(params)
        if source is not None:
            body["source"] = source
        if ir is not None:
            body["ir"] = ir
        return self.request("POST", f"/v1/{endpoint}", body)

    def optimize(self, source: str | None = None, *, ir: dict | None = None,
                 **params) -> Reply:
        return self._compile("optimize", source, ir, **params)

    def lint(self, source: str | None = None, *, ir: dict | None = None,
             **params) -> Reply:
        return self._compile("lint", source, ir, **params)

    def locality(self, source: str | None = None, *, ir: dict | None = None,
                 **params) -> Reply:
        return self._compile("locality", source, ir, **params)

    def autotune(self, source: str | None = None, *, ir: dict | None = None,
                 **params) -> Reply:
        return self._compile("autotune", source, ir, **params)

    def healthz(self) -> Reply:
        return self.request("GET", "/healthz")

    def metrics(self) -> Reply:
        return self.request("GET", "/metrics")
