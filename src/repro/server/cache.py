"""The content-addressed result cache and single-flight deduplication.

Two layers, both keyed on :attr:`CompileRequest.cache_key` (endpoint +
canonical nest digest + parameter digest):

* :class:`ResultCache` — completed response *bytes* in a
  :class:`repro.model.memo.MemoCache` (LRU eviction, hit/miss/eviction
  counters, thread-safe), shared across every endpoint. Storing the
  serialized bytes — not the payload dict — makes a hit byte-identical
  to the miss that populated it, by construction.
* :class:`SingleFlight` — an asyncio future per *in-flight* key:
  concurrent identical requests await the leader's future instead of
  enqueueing duplicate work. Failures propagate to every waiter but are
  never cached, so a transient fault doesn't poison the key.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

from repro.model.memo import MemoCache

__all__ = ["ResultCache", "SingleFlight"]


class ResultCache:
    """Serialized response bytes, content-addressed and LRU-evicted.

    A thin facade over :class:`MemoCache` (``register=False`` — each
    server instance owns its cache; /metrics exports the stats) that
    only ever stores ``bytes``.
    """

    def __init__(self, cap: int = 1024, name: str = "server.results"):
        self._memo = MemoCache(name, cap=cap, register=False)

    def get(self, key: str) -> bytes | None:
        value = self._memo.get(key)
        assert value is None or isinstance(value, bytes)
        return value

    def put(self, key: str, body: bytes) -> None:
        if not isinstance(body, bytes):
            raise TypeError("ResultCache stores serialized response bytes")
        self._memo.put(key, body)

    def __contains__(self, key: str) -> bool:
        return key in self._memo

    def __len__(self) -> int:
        return len(self._memo)

    def clear(self) -> None:
        self._memo.clear()

    @property
    def hits(self) -> int:
        return self._memo.hits

    @property
    def misses(self) -> int:
        return self._memo.misses

    def stats(self) -> dict:
        return self._memo.stats()


class SingleFlight:
    """Deduplicate concurrent identical work on one event loop.

    ``run(key, supplier)`` — the first caller for a key becomes the
    leader and executes ``supplier()``; followers arriving while the
    leader is in flight await the same future. ``coalesced`` counts the
    follower joins (the requests that never became work).
    """

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Future] = {}
        self.coalesced = 0
        self.led = 0

    def leader_count(self) -> int:
        return len(self._inflight)

    async def run(self, key: str, supplier: Callable[[], Awaitable[bytes]]) -> bytes:
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            return await asyncio.shield(existing)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self.led += 1
        try:
            result = await supplier()
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                # Mark retrieved: followers may never materialize, and an
                # unretrieved future exception warns at GC time.
                future.exception()
            raise
        else:
            if not future.done():
                future.set_result(result)
            return result
        finally:
            self._inflight.pop(key, None)
