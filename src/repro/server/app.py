"""The asyncio HTTP server: routing, batching, backpressure, drain.

Stdlib only — :func:`asyncio.start_server` plus a small HTTP/1.1
request parser (``Connection: close`` per response; the service is a
compile server, not a CDN). The request path:

1. **Admission** — draining → 503; body over the cap → 413; malformed
   JSON / schema / source → 400 (parse diagnostics included).
2. **Cache** — the canonical content address (endpoint + nest digest +
   params digest) is looked up in the shared :class:`ResultCache`; a
   hit replays the stored bytes (``X-Repro-Cache: hit``).
3. **Single flight** — concurrent identical misses share one
   computation; only the leader enqueues work.
4. **Bounded queue** — a full queue answers 429 + ``Retry-After``
   instead of accepting unbounded work.
5. **Batched dispatch** — one dispatcher task drains the queue into
   batches (``batch_max`` / ``batch_window_ms``) and runs them through
   :func:`repro.experiments.common.run_sharded` on a worker thread
   with ``return_exceptions=True``: one poison request becomes a
   :class:`ShardFailure` row (→ 500 with traceback + input digest)
   while its batch siblings complete.
6. **Observability** — each completed job's metrics/remarks/spans are
   grafted into the server's long-lived ``Obs`` via ``merge_shard``
   (one ``req-N`` shard key per request), a ``kind="server"`` ledger
   record is appended per request, and ``/metrics`` exports cache,
   queue, single-flight, and request counters.

Graceful shutdown (:meth:`ReproServer.shutdown`) stops accepting,
drains the queue and every in-flight response within
``drain_timeout_s``, then stops the dispatcher — in-flight requests
get their answers, not a reset connection.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, replace

from repro.experiments.common import ShardFailure, run_sharded
from repro.ir.pretty import pretty_program
from repro.obs import NULL_OBS, Obs, use_obs
from repro.server.cache import ResultCache, SingleFlight
from repro.server.config import ServerConfig
from repro.server.handlers import execute
from repro.server.protocol import (
    SCHEMA_VERSION,
    ProtocolError,
    error_body,
    parse_request,
    render_body,
)

__all__ = ["ReproServer", "serve"]

_SENTINEL = None


class _Backpressure(Exception):
    """Raised by the enqueue supplier when the bounded queue is full."""


@dataclass
class _WorkItem:
    """One enqueued compile job awaiting dispatch."""

    endpoint: str
    key: str
    digest: str
    text: str  # canonical mini-Fortran text (picklable job input)
    params: dict
    fault: str
    future: asyncio.Future = field(repr=False)


@dataclass
class _Response:
    status: int
    body: bytes
    headers: dict


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ReproServer:
    """The compile service: one instance, one event loop, one cache.

    Lifecycle::

        server = ReproServer(ServerConfig.from_env(port=0))
        host, port = await server.start()
        ...
        await server.shutdown()   # graceful: drains in-flight work

    All mutable state (queue, single-flight table, counters) lives on
    the event loop; the only off-loop work is the batched compile call
    itself (``asyncio.to_thread`` → ``run_sharded``).
    """

    def __init__(self, config: ServerConfig | None = None):
        self.config = config or ServerConfig.from_env()
        self.cache = ResultCache(cap=self.config.cache_cap)
        self.flight = SingleFlight()
        self.obs = Obs()
        self._queue: asyncio.Queue = asyncio.Queue(
            maxsize=self.config.queue_depth
        )
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self._draining = False
        self._open_requests = 0
        self._completed_seq = 0
        self._started_monotonic = 0.0
        self.requests_total = 0
        self.requests_by_status: dict[int, int] = {}
        self.requests_by_endpoint: dict[str, int] = {}

    @property
    def address(self) -> tuple[str, int]:
        assert self._server is not None, "server not started"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind, start the dispatcher, return the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-server-dispatch"
        )
        self._started_monotonic = time.monotonic()
        return self.address

    async def shutdown(self) -> None:
        """Graceful stop: no new work, in-flight work drained, then halt.

        The drain budget is ``config.drain_timeout_s``; work still
        running past it is abandoned (its connections see a close), but
        within the budget every accepted request gets its response.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_timeout_s
        while (self._open_requests or not self._queue.empty()) and (
            time.monotonic() < deadline
        ):
            await asyncio.sleep(0.01)
        await self._queue.put(_SENTINEL)
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- HTTP plumbing ------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            response = await self._respond(reader)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # a handler bug must not kill the loop
            response = self._error(500, "internal-error", f"unhandled: {exc}")
        try:
            self._count(response)
            writer.write(self._render_http(response))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()

    def _render_http(self, response: _Response) -> bytes:
        reason = _REASONS.get(response.status, "Unknown")
        lines = [f"HTTP/1.1 {response.status} {reason}"]
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(response.body)),
            "Connection": "close",
            **response.headers,
        }
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        return head + response.body

    def _count(self, response: _Response) -> None:
        self.requests_total += 1
        self.requests_by_status[response.status] = (
            self.requests_by_status.get(response.status, 0) + 1
        )

    def _error(
        self, status: int, code: str, message: str, detail: str = "",
        headers: dict | None = None,
    ) -> _Response:
        body = render_body(error_body(status, code, message, detail))
        return _Response(status, body, headers or {})

    async def _respond(self, reader) -> _Response:
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError):
            return self._error(400, "bad-request", "connection dropped")
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            return self._error(400, "bad-request", "malformed request line")
        method, raw_path = parts[0], parts[1]
        path = raw_path.split("?", 1)[0]

        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1", "replace").partition(":")
            headers[name.strip().lower()] = value.strip()

        if method == "GET":
            if path == "/healthz":
                return self._healthz()
            if path == "/metrics":
                return self._metrics()
            return self._error(404, "not-found", f"no such path {path!r}")
        if method != "POST":
            return self._error(405, "method-not-allowed", f"{method} unsupported")
        if not path.startswith("/v1/"):
            return self._error(404, "not-found", f"no such path {path!r}")
        endpoint = path[len("/v1/"):]

        length_text = headers.get("content-length")
        if length_text is None:
            return self._error(411, "length-required", "Content-Length required")
        try:
            length = int(length_text)
        except ValueError:
            return self._error(400, "bad-request", "malformed Content-Length")
        if length > self.config.max_body_bytes:
            return self._error(
                413,
                "body-too-large",
                f"request body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte cap "
                "(REPRO_SERVER_MAX_BODY_BYTES)",
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            return self._error(400, "bad-request", "body shorter than declared")

        return await self._compile(endpoint, body)

    # -- introspection endpoints --------------------------------------

    def _healthz(self) -> _Response:
        payload = {
            "schema": SCHEMA_VERSION,
            "status": "draining" if self._draining else "ok",
        }
        return _Response(200, render_body(payload), {})

    def _metrics(self) -> _Response:
        payload = {
            "schema": SCHEMA_VERSION,
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            "draining": self._draining,
            "requests": {
                "total": self.requests_total,
                "by_status": {
                    str(status): count
                    for status, count in sorted(self.requests_by_status.items())
                },
                "by_endpoint": dict(sorted(self.requests_by_endpoint.items())),
            },
            "cache": self.cache.stats(),
            "singleflight": {
                "led": self.flight.led,
                "coalesced": self.flight.coalesced,
                "inflight": self.flight.leader_count(),
            },
            "queue": {
                "depth": self._queue.qsize(),
                "capacity": self.config.queue_depth,
            },
            "counters": dict(
                sorted(self.obs.metrics.snapshot()["counters"].items())
            ),
            "config": self.config.describe(),
        }
        return _Response(200, render_body(payload), {})

    # -- the compile path ---------------------------------------------

    async def _compile(self, endpoint: str, body: bytes) -> _Response:
        started = time.monotonic()
        if self._draining:
            return self._error(
                503, "draining", "server is shutting down; no new work"
            )
        try:
            request = parse_request(endpoint, body, self.config.debug_faults)
        except ProtocolError as exc:
            return self._error(exc.status, exc.code, exc.message, exc.detail)
        if endpoint == "autotune":
            budget = min(
                request.params["budget"], self.config.max_autotune_budget
            )
            if budget != request.params["budget"]:
                request = replace(
                    request, params={**request.params, "budget": budget}
                )
        self.requests_by_endpoint[endpoint] = (
            self.requests_by_endpoint.get(endpoint, 0) + 1
        )

        # Fault-injected requests (test-only) bypass the result cache —
        # both lookup and fill — and coalesce only with each other.
        key = request.cache_key
        if request.fault:
            key = f"{key}:fault:{request.fault}"
        cached = self.cache.get(key) if not request.fault else None
        if cached is not None:
            self._ledger_record(
                endpoint, request.digest, request.params, 200, "hit", started
            )
            return _Response(
                200, cached, self._compile_headers("hit", request.digest, started)
            )

        item = _WorkItem(
            endpoint=endpoint,
            key=key,
            digest=request.digest,
            text=pretty_program(request.program),
            params=request.params,
            fault=request.fault,
            future=asyncio.get_running_loop().create_future(),
        )

        async def supplier() -> bytes:
            try:
                self._queue.put_nowait(item)
            except asyncio.QueueFull:
                raise _Backpressure()
            return await asyncio.shield(item.future)

        self._open_requests += 1
        try:
            raw = await asyncio.wait_for(
                self.flight.run(key, supplier), self.config.request_timeout_s
            )
        except _Backpressure:
            return self._error(
                429,
                "queue-full",
                f"request queue at capacity ({self.config.queue_depth}); "
                "retry shortly",
                headers={"Retry-After": "1"},
            )
        except (asyncio.TimeoutError, TimeoutError):
            self._ledger_record(
                endpoint, request.digest, request.params, 504, "timeout", started
            )
            return self._error(
                504,
                "timeout",
                f"request exceeded {self.config.request_timeout_s}s "
                "(REPRO_SERVER_REQUEST_TIMEOUT_S); the result may be "
                "cached when you retry",
            )
        except asyncio.CancelledError:
            # A coalesced follower whose leader timed out: same verdict.
            return self._error(
                504, "timeout", "shared in-flight computation timed out"
            )
        finally:
            self._open_requests -= 1

        status, response_body = raw
        cache_state = "miss" if status == 200 else "error"
        self._ledger_record(
            endpoint, request.digest, request.params, status, cache_state,
            started,
        )
        return _Response(
            status,
            response_body,
            self._compile_headers(cache_state, request.digest, started),
        )

    def _compile_headers(self, state: str, digest: str, started: float) -> dict:
        return {
            "X-Repro-Cache": state,
            "X-Repro-Digest": digest,
            "X-Repro-Elapsed-Ms": f"{(time.monotonic() - started) * 1000:.3f}",
        }

    # -- dispatcher ----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Drain the queue into batches and run them off-loop.

        One long-lived task; batches are cut at ``batch_max`` items or
        when ``batch_window_ms`` elapses after the first item arrives,
        whichever is first.
        """
        loop = asyncio.get_running_loop()
        window = self.config.batch_window_ms / 1000.0
        while True:
            item = await self._queue.get()
            if item is _SENTINEL:
                return
            batch = [item]
            deadline = loop.time() + window
            while len(batch) < self.config.batch_max:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    extra = await asyncio.wait_for(
                        self._queue.get(), remaining
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    break
                if extra is _SENTINEL:
                    await self._queue.put(_SENTINEL)
                    break
                batch.append(extra)
            calls = [
                (it.endpoint, it.text, it.digest, it.params, it.fault)
                for it in batch
            ]
            try:
                results = await asyncio.to_thread(self._run_batch, calls)
            except Exception as exc:  # defensive: the pool layer captures
                results = [
                    ShardFailure(error=f"batch dispatch failed: {exc}")
                ] * len(batch)
            for work, result in zip(batch, results):
                self._complete(work, result)

    def _run_batch(self, calls: list) -> list:
        """Run one batch through the experiment pool (worker thread).

        Under the *null* obs context: per-request observation data comes
        back in each job's result tuple and is grafted request-scoped by
        ``_complete`` — letting ``run_sharded`` auto-merge here would
        double-count it under anonymous shard keys.
        """
        with use_obs(NULL_OBS):
            return run_sharded(
                execute, calls, jobs=self.config.jobs, return_exceptions=True
            )

    def _complete(self, work: _WorkItem, result) -> None:
        """Resolve one work item: cache + graft on success, 500 on failure."""
        self._completed_seq += 1
        if isinstance(result, ShardFailure):
            self.obs.remark(
                "server",
                "failed",
                f"{work.endpoint} worker failure: {result.error}",
                reason="worker-failure",
                input_digest=result.input_digest,
            )
            payload = error_body(
                500,
                "worker-failure",
                f"compile job raised: {result.error}",
                detail=result.traceback,
            )
            payload["error"]["input_digest"] = result.input_digest
            outcome = (500, render_body(payload))
        else:
            payload, metrics, remarks, spans = result
            self.obs.merge_shard(
                f"req-{self._completed_seq}",
                metrics,
                remarks=remarks,
                spans=spans,
            )
            body = render_body(payload)
            if not work.fault:
                self.cache.put(work.key, body)
            outcome = (200, body)
        if not work.future.done():
            work.future.set_result(outcome)

    # -- ledger --------------------------------------------------------

    def _ledger_record(
        self,
        endpoint: str,
        digest: str,
        params: dict,
        status: int,
        cache_state: str,
        started: float,
    ) -> None:
        """Append one ``kind="server"`` record (best-effort, never fatal)."""
        if not self.config.ledger:
            return
        from repro.obs import ledger

        if not ledger.ledger_enabled():
            return
        try:
            record = ledger.make_record(
                "server",
                argv=(endpoint, digest),
                config=dict(params),
                metrics={
                    "status": status,
                    "cache": cache_state,
                    "elapsed_ms": round(
                        (time.monotonic() - started) * 1000, 3
                    ),
                },
            )
            ledger.append_record(record)
        except Exception:
            pass


def serve(config: ServerConfig | None = None) -> int:
    """Blocking entry point: boot, run until SIGINT/SIGTERM, drain, exit."""
    import signal

    config = config or ServerConfig.from_env()

    async def _run() -> None:
        server = ReproServer(config)
        host, port = await server.start()
        print(
            f"repro.server listening on http://{host}:{port} "
            f"(jobs={config.jobs}, queue={config.queue_depth}, "
            f"cache={config.cache_cap})",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        serving = asyncio.create_task(server.serve_forever(), name="repro-serve")
        await stop.wait()
        serving.cancel()
        try:
            await serving
        except (asyncio.CancelledError, RuntimeError):
            pass
        await server.shutdown()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0
