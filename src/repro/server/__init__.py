"""repro.server — optimization-as-a-service over the whole pipeline.

A long-lived asyncio HTTP service (stdlib only) that wraps the pipeline
(parse → dependence → compound transform → locality predict → autotune)
behind five endpoints:

* ``POST /v1/optimize``  — compound transform + before/after predicted
  miss ratios + applied/rejected remarks with legality slugs;
* ``POST /v1/lint``      — static locality diagnostics with verified
  fix-its (the ``repro.lint`` engine);
* ``POST /v1/locality``  — trace-free analytic miss-ratio prediction;
* ``POST /v1/autotune``  — model-driven beam search, verified winner;
* ``GET  /healthz`` and ``GET /metrics`` — liveness and introspection.

Requests carry mini-Fortran ``source`` text or a structured ``ir`` JSON
object (:mod:`repro.ir.jsonio`). Production concerns are first-class:

* a **content-addressed result cache** over canonicalized nests
  (:mod:`repro.ir.canon` keys, :class:`repro.model.memo.MemoCache`
  storage) shared across endpoints, LRU-evictable, stats on
  ``/metrics``;
* **single-flight deduplication** — identical in-flight requests share
  one computation;
* **batched sharding** across the experiment process pool
  (:func:`repro.experiments.common.run_sharded`) with
  :class:`~repro.experiments.common.ShardFailure` isolation, so one
  poison request never kills a worker batch;
* a **bounded queue with backpressure** (HTTP 429 + ``Retry-After``),
  per-request timeouts (504), and graceful shutdown that drains
  in-flight work;
* ``repro.obs`` spans/metrics per request, grafted into the server's
  context, plus a ledger record (``kind="server"``) per request.

Start it with ``python -m repro serve`` (see ``docs/server.md``) and
talk to it with :mod:`repro.server.client` or plain ``curl``.
"""

from repro.server.app import ReproServer, serve
from repro.server.cache import ResultCache
from repro.server.config import ServerConfig
from repro.server.protocol import SCHEMA_VERSION, ProtocolError

__all__ = [
    "ReproServer",
    "ResultCache",
    "SCHEMA_VERSION",
    "ServerConfig",
    "ProtocolError",
    "serve",
]
