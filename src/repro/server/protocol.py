"""Wire protocol v1: request validation and deterministic responses.

One schema version covers every compile endpoint. Requests are JSON
objects carrying exactly one of ``source`` (mini-Fortran text) or ``ir``
(the :mod:`repro.ir.jsonio` object) plus endpoint-specific knobs; the
tables below are exhaustive — unknown fields are a 400, so contract
drift fails loudly instead of being silently ignored.

Responses are built with **stable field ordering** (insertion-ordered
dicts, serialized without re-sorting) and contain no volatile values —
no timestamps, no wall times — so a cache hit replays the stored bytes
exactly and golden contract tests can compare raw text. Volatile
request metadata travels in headers instead (``X-Repro-Cache``,
``X-Repro-Elapsed-Ms``, ``X-Repro-Digest``).

The server canonicalizes every nest before compiling
(:mod:`repro.ir.canon`): alpha-renamed loop variables and sorted
declarations. Responses therefore describe the *canonical* form — the
``rename`` table is NOT part of the body (it differs between
alpha-variant requesters sharing one cache entry); clients that need
their own spelling back apply the digest-stable canonical mapping
themselves.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import ParseError, ReproError
from repro.ir.canon import canonical_program, content_digest
from repro.ir.jsonio import program_from_json
from repro.ir.nodes import Program
from repro.obs.ledger import config_digest

__all__ = [
    "SCHEMA_VERSION",
    "ENDPOINTS",
    "CompileRequest",
    "ProtocolError",
    "error_body",
    "parse_request",
    "render_body",
]

SCHEMA_VERSION = 1

#: endpoint name -> {field: (type, default)}; ``None`` default = optional
#: with a handler-side default. ``source``/``ir``/``fault`` are common.
_COMMON_FIELDS = {"source", "ir", "fault"}
ENDPOINTS: dict[str, dict[str, tuple]] = {
    "optimize": {
        "cls": (int, 4),
        "scalar_replace": (bool, False),
        "line": (int, 128),
        "capacity": (int, 512),
    },
    "lint": {
        "checks": (list, None),
        "verify": (bool, True),
        "line": (int, 128),
        "capacity": (int, 512),
    },
    "locality": {
        "line": (int, 128),
        "capacities": (list, [64, 512]),
    },
    "autotune": {
        "budget": (int, 64),
        "beam": (int, 4),
        "line": (int, 128),
        "capacity": (int, 512),
        "verify": (bool, True),
    },
}


class ProtocolError(Exception):
    """A request the protocol rejects; carries the HTTP status to answer.

    ``detail`` is an optional multi-line diagnostic (e.g. the frontend's
    caret-rendered parse error) surfaced verbatim in the error body.
    """

    def __init__(self, status: int, code: str, message: str, detail: str = ""):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.detail = detail


@dataclass(frozen=True)
class CompileRequest:
    """One validated compile request, canonicalized and content-addressed.

    ``cache_key`` combines the endpoint, the canonical nest digest, and
    a digest of the effective parameters — two requests with the same
    key are answered with the same bytes.
    """

    endpoint: str
    program: Program  # the canonical form
    digest: str  # content digest of the canonical nest
    params: dict  # effective (defaulted) endpoint parameters
    fault: str  # debug fault directive ("" = none)

    @property
    def params_digest(self) -> str:
        return config_digest(self.params)

    @property
    def cache_key(self) -> str:
        return f"{self.endpoint}:{self.digest}:{self.params_digest}"


def _type_name(expected: type) -> str:
    return {int: "an integer", bool: "a boolean", list: "a list"}.get(
        expected, expected.__name__
    )


def parse_request(endpoint: str, body: bytes, debug_faults: bool) -> CompileRequest:
    """Validate and canonicalize one compile request.

    Raises :class:`ProtocolError` with the right HTTP status: 400 for
    malformed JSON, schema violations, source the frontend rejects
    (caret diagnostic included), or non-affine nests the pipeline
    cannot analyze.
    """
    if endpoint not in ENDPOINTS:
        raise ProtocolError(404, "unknown-endpoint", f"no such endpoint {endpoint!r}")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(400, "bad-json", f"request body is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise ProtocolError(400, "bad-json", "request body must be a JSON object")

    known = _COMMON_FIELDS | set(ENDPOINTS[endpoint])
    unknown = set(payload) - known
    if unknown:
        raise ProtocolError(
            400,
            "unknown-field",
            f"unknown field(s) {sorted(unknown)}; "
            f"{endpoint} accepts {sorted(known)}",
        )

    source = payload.get("source")
    ir_payload = payload.get("ir")
    if (source is None) == (ir_payload is None):
        raise ProtocolError(
            400, "bad-input", "provide exactly one of 'source' or 'ir'"
        )

    params: dict = {}
    for name, (expected, default) in sorted(ENDPOINTS[endpoint].items()):
        value = payload.get(name, default)
        if value is None:
            params[name] = None
            continue
        if expected is int and isinstance(value, bool):
            raise ProtocolError(
                400, "bad-field", f"field {name!r} must be {_type_name(expected)}"
            )
        if not isinstance(value, expected):
            raise ProtocolError(
                400, "bad-field", f"field {name!r} must be {_type_name(expected)}"
            )
        if expected is int and value <= 0:
            raise ProtocolError(
                400, "bad-field", f"field {name!r} must be positive"
            )
        params[name] = value

    fault = payload.get("fault") or ""
    if fault and not isinstance(fault, str):
        raise ProtocolError(400, "bad-field", "field 'fault' must be a string")
    if fault and not debug_faults:
        raise ProtocolError(
            400,
            "fault-disabled",
            "fault injection requires REPRO_SERVER_DEBUG_FAULTS=1",
        )

    if source is not None:
        if not isinstance(source, str):
            raise ProtocolError(400, "bad-input", "field 'source' must be a string")
        from repro.frontend import parse_program

        try:
            program = parse_program(source)
        except ParseError as exc:
            # str(exc) carries the line:col prefix plus the caret-rendered
            # source line — the same diagnostic the CLI prints.
            raise ProtocolError(
                400, "parse-error", f"mini-Fortran parse error: {exc.message}",
                detail=str(exc),
            )
        except ReproError as exc:
            raise ProtocolError(400, "bad-program", str(exc))
    else:
        try:
            program = program_from_json(ir_payload)
        except ReproError as exc:
            raise ProtocolError(400, "bad-ir", str(exc))

    try:
        canonical, _mapping = canonical_program(program)
        digest = content_digest(program)
    except ReproError as exc:
        raise ProtocolError(400, "bad-program", str(exc))

    return CompileRequest(
        endpoint=endpoint,
        program=canonical,
        digest=digest,
        params=params,
        fault=fault,
    )


def render_body(payload: dict) -> bytes:
    """Serialize a response body with stable (insertion) field ordering."""
    return (json.dumps(payload, indent=2) + "\n").encode("utf-8")


def error_body(status: int, code: str, message: str, detail: str = "") -> dict:
    """The uniform error payload (schema'd like every other response)."""
    body: dict = {
        "schema": SCHEMA_VERSION,
        "error": {"status": status, "code": code, "message": message},
    }
    if detail:
        body["error"]["detail"] = detail
    return body
