"""The set runner: run a whole named suite set, sharded, with a report.

``python -m repro.suite run SET`` drives this module. For every entry of
the set (always the whole set — curation happens in the registry, never
at run time) a worker builds the program at the requested instance, runs
the compound transform, and scores locality before/after with the
analytic predictor. Entries shard across the experiment process pool
(:func:`repro.experiments.common.run_sharded`); worker obs metrics,
remarks, and spans merge back shard-deduplicated, one entry raising
never poisons its siblings (captured as a per-entry failure row), every
set run appends a ledger record (kind ``suite.set``), and the result
renders to a markdown/HTML artifact via
:func:`repro.obs.report.render_set_report`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.experiments.common import (
    ShardFailure,
    resolve_jobs,
    run_sharded,
    shard_input_digest,
)
from repro.ir.visit import iter_loops, iter_statements
from repro.locality import predict_locality
from repro.model import CostModel
from repro.obs import get_obs
from repro.suite.registry import get_entry, get_set

__all__ = ["EntryResult", "SetRunResult", "run_set", "DEFAULT_LINE", "DEFAULT_CAPACITY"]

#: Scoring geometry defaults (bytes per line / FA-LRU lines), matching
#: the lint and autotune CLIs.
DEFAULT_LINE = 128
DEFAULT_CAPACITY = 512


@dataclass(frozen=True)
class EntryResult:
    """One suite entry's outcome within a set run."""

    name: str
    category: str
    status: str  # "ok" | "failed"
    instance: str
    n: int | None = None
    loops: int = 0
    statements: int = 0
    accesses: int = 0
    miss_before: float | None = None
    miss_after: float | None = None
    remarks: int = 0
    wall_s: float = 0.0
    error: str = ""
    traceback: str = ""
    digest: str = ""  # stable digest of the entry's shard input

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def improvement_pp(self) -> float | None:
        if self.miss_before is None or self.miss_after is None:
            return None
        return (self.miss_before - self.miss_after) * 100.0


@dataclass(frozen=True)
class SetRunResult:
    """A whole-set run: per-entry rows plus the run configuration."""

    set_name: str
    instance: str
    jobs: int
    line: int
    capacity: int
    results: tuple[EntryResult, ...]
    wall_s: float

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> tuple[EntryResult, ...]:
        return tuple(r for r in self.results if not r.ok)

    def report_payload(self) -> dict:
        """The plain-data view :mod:`repro.obs.report` renders.

        Keeping the payload dict-shaped (not suite dataclasses) keeps
        ``repro.obs`` free of suite imports — obs stays the base layer.
        """
        return {
            "set": self.set_name,
            "instance": self.instance,
            "jobs": self.jobs,
            "line": self.line,
            "capacity": self.capacity,
            "entries": len(self.results),
            "failed": len(self.failures),
            "wall_s": round(self.wall_s, 3),
            "rows": [
                {
                    "program": r.name,
                    "category": r.category,
                    "status": r.status,
                    "n": r.n,
                    "loops": r.loops,
                    "statements": r.statements,
                    "accesses": r.accesses,
                    "miss_before": (
                        round(r.miss_before, 4) if r.miss_before is not None else None
                    ),
                    "miss_after": (
                        round(r.miss_after, 4) if r.miss_after is not None else None
                    ),
                    "improvement_pp": (
                        round(r.improvement_pp, 2)
                        if r.improvement_pp is not None
                        else None
                    ),
                    "wall_ms": round(r.wall_s * 1e3, 2),
                    "error": r.error,
                    "traceback": r.traceback,
                    "digest": r.digest,
                }
                for r in self.results
            ],
        }

    def ledger_payload(self) -> dict:
        """Compact per-set summary ledgered with each ``suite.set`` run.

        Failed rows keep their full diagnosis — the captured traceback
        and the shard-input digest — so a ledgered failure is actionable
        (and replayable) long after the run's in-memory state is gone;
        ok rows stay compact.
        """
        payload = self.report_payload()
        compact = []
        for row in payload["rows"]:
            keep = {
                k: row[k]
                for k in ("program", "status", "miss_before", "miss_after")
            }
            if row["status"] != "ok":
                keep["error"] = row["error"]
                keep["traceback"] = row["traceback"]
                keep["digest"] = row["digest"]
            compact.append(keep)
        payload["rows"] = compact
        return payload


def _run_entry(name: str, instance: str, line: int, capacity: int) -> dict:
    """One entry's measurement; module-level so shards can pickle it.

    Takes the entry *name* (builders are lambdas and do not pickle) and
    resolves it inside the worker. Exceptions propagate — the runner's
    ``return_exceptions=True`` sharding captures them per entry.
    """
    from repro.transforms import compound

    entry = get_entry(name)
    started = time.perf_counter()
    obs = get_obs()
    with obs.span("suite.entry", program=name, instance=instance):
        program = entry.program(instance=instance)
        n = entry.instance_n(instance)
        before = predict_locality(program, line=line)
        remarks_before = len(obs.remarks)
        outcome = compound(program, CostModel(cls=max(1, line // 8)))
        after = predict_locality(outcome.program, line=line)
    return {
        "name": name,
        "category": entry.category,
        "status": "ok",
        "instance": instance,
        "n": n,
        "loops": sum(1 for _ in iter_loops(program)),
        "statements": sum(1 for _ in iter_statements(program)),
        "accesses": before.accesses,
        "miss_before": before.miss_ratio_for_capacity(capacity),
        "miss_after": after.miss_ratio_for_capacity(capacity),
        "remarks": max(len(obs.remarks) - remarks_before, 0),
        "wall_s": time.perf_counter() - started,
    }


def run_set(
    set_name: str,
    instance: str = "medium",
    jobs: int | None = None,
    line: int = DEFAULT_LINE,
    capacity: int = DEFAULT_CAPACITY,
) -> SetRunResult:
    """Run every member of the named set; never a subset.

    Entries shard over ``jobs`` worker processes (``REPRO_JOBS`` is the
    fallback); a raising entry becomes a ``failed`` row while its
    siblings complete, so one broken kernel cannot sink the whole set's
    results.
    """
    suite_set = get_set(set_name)
    jobs = resolve_jobs(jobs)
    obs = get_obs()
    started = time.perf_counter()
    calls = [(name, instance, line, capacity) for name in suite_set.members]
    with obs.span(
        "suite.set", set=set_name, instance=instance, entries=len(suite_set)
    ):
        raw = run_sharded(_run_entry, calls, jobs, return_exceptions=True)
    results = []
    for args, row in zip(calls, raw):
        name = args[0]
        digest = shard_input_digest(args)
        if isinstance(row, ShardFailure):
            results.append(
                EntryResult(
                    name=name,
                    category=get_entry(name).category,
                    status="failed",
                    instance=instance,
                    error=row.error,
                    traceback=row.traceback,
                    digest=row.input_digest or digest,
                )
            )
        else:
            results.append(
                EntryResult(status=row.pop("status"), digest=digest, **row)
            )
    if obs.enabled:
        obs.metrics.counter("suite.set.entries").inc(len(results))
        failed = sum(1 for r in results if not r.ok)
        if failed:
            obs.metrics.counter("suite.set.failed").inc(failed)
    return SetRunResult(
        set_name=set_name,
        instance=instance,
        jobs=jobs,
        line=line,
        capacity=capacity,
        results=tuple(results),
        wall_s=time.perf_counter() - started,
    )
