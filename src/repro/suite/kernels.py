"""Kernels used in the paper's worked examples and kernel experiments.

* :func:`matmul` — matrix multiply in any of the six loop orders
  (Figure 2).
* :func:`cholesky` — Cholesky factorization in the six classic loop
  organizations KIJ/KJI/JKI/JIK/IKJ/IJK (Figure 7; Wolfe enumerates
  these). All six compute identical factors — the test suite checks this
  with the interpreter.
* :func:`adi` — the ADI integration fragment of Figure 3 in three forms:
  Fortran-90-scalarized ("distributed"), fused, and fused+interchanged.
* :func:`erlebacher` — a fully distributed single-statement-loop program
  in the style of Erlebacher (Table 1).

Every factory takes the problem size so experiments can scale runs to
simulation-friendly sizes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.frontend import parse_program
from repro.ir.nodes import Program

__all__ = [
    "MATMUL_ORDERS",
    "CHOLESKY_FORMS",
    "matmul",
    "cholesky",
    "spd_init",
    "adi",
    "erlebacher",
    "transpose",
    "jacobi",
]

MATMUL_ORDERS = ("IJK", "IKJ", "JIK", "JKI", "KIJ", "KJI")


def matmul(n: int = 64, order: str = "IJK") -> Program:
    """C = C + A*B with the given loop order (outermost first)."""
    order = order.upper()
    if order not in MATMUL_ORDERS:
        raise ReproError(f"unknown matmul order {order!r}")
    opened = "\n".join(f"DO {var} = 1, N" for var in order)
    closed = "\n".join("ENDDO" for _ in order)
    return parse_program(
        f"""
        PROGRAM matmul_{order.lower()}
        PARAMETER N = {n}
        REAL A(N,N), B(N,N), C(N,N)
        {opened}
        C(I,J) = C(I,J) + A(I,K)*B(K,J)
        {closed}
        END
        """
    )


CHOLESKY_FORMS = ("KIJ", "KJI", "JKI", "JIK", "IKJ", "IJK")

_CHOLESKY_BODIES = {
    # The paper's original (Figure 7a).
    "KIJ": """
        DO K = 1, N
          A(K,K) = SQRT(A(K,K))
          DO I = K+1, N
            A(I,K) = A(I,K) / A(K,K)
            DO J = K+1, I
              A(I,J) = A(I,J) - A(I,K)*A(J,K)
            ENDDO
          ENDDO
        ENDDO
    """,
    # Distributed + interchanged (Figure 7b, unshifted form).
    "KJI": """
        DO K = 1, N
          A(K,K) = SQRT(A(K,K))
          DO I = K+1, N
            A(I,K) = A(I,K) / A(K,K)
          ENDDO
          DO J = K+1, N
            DO I = J, N
              A(I,J) = A(I,J) - A(I,K)*A(J,K)
            ENDDO
          ENDDO
        ENDDO
    """,
    # Left-looking (bordered) column forms.
    "JKI": """
        DO J = 1, N
          DO K = 1, J-1
            DO I = J, N
              A(I,J) = A(I,J) - A(I,K)*A(J,K)
            ENDDO
          ENDDO
          A(J,J) = SQRT(A(J,J))
          DO I = J+1, N
            A(I,J) = A(I,J) / A(J,J)
          ENDDO
        ENDDO
    """,
    "JIK": """
        DO J = 1, N
          DO I = J, N
            DO K = 1, J-1
              A(I,J) = A(I,J) - A(I,K)*A(J,K)
            ENDDO
          ENDDO
          A(J,J) = SQRT(A(J,J))
          DO I = J+1, N
            A(I,J) = A(I,J) / A(J,J)
          ENDDO
        ENDDO
    """,
    # Row-oriented (up-looking) forms.
    "IKJ": """
        DO I = 1, N
          DO K = 1, I-1
            A(I,K) = A(I,K) / A(K,K)
            DO J = K+1, I
              A(I,J) = A(I,J) - A(I,K)*A(J,K)
            ENDDO
          ENDDO
          A(I,I) = SQRT(A(I,I))
        ENDDO
    """,
    "IJK": """
        DO I = 1, N
          DO J = 1, I-1
            DO K = 1, J-1
              A(I,J) = A(I,J) - A(I,K)*A(J,K)
            ENDDO
            A(I,J) = A(I,J) / A(J,J)
          ENDDO
          DO K = 1, I-1
            A(I,I) = A(I,I) - A(I,K)*A(I,K)
          ENDDO
          A(I,I) = SQRT(A(I,I))
        ENDDO
    """,
}


def cholesky(n: int = 32, form: str = "KIJ") -> Program:
    """Cholesky factorization in one of the six loop organizations."""
    form = form.upper()
    if form not in _CHOLESKY_BODIES:
        raise ReproError(f"unknown cholesky form {form!r}")
    return parse_program(
        f"""
        PROGRAM cholesky_{form.lower()}
        PARAMETER N = {n}
        REAL A(N,N)
        {_CHOLESKY_BODIES[form]}
        END
        """
    )


def spd_init(name: str, extents: tuple[int, ...]) -> np.ndarray:
    """Symmetric positive-definite data for Cholesky runs."""
    if len(extents) != 2:
        from repro.exec.interp import default_init

        return default_init(name, extents)
    n = extents[0]
    base = np.fromfunction(lambda i, j: 1.0 / (1.0 + np.abs(i - j)), extents)
    return base + np.eye(n) * n


_ADI_BODIES = {
    # Fortran-90 scalarization: fully distributed single-statement loops
    # (Figure 3b). The K loops are siblings inside I.
    "distributed": """
        DO I = 2, N
          DO K = 1, N
            X(I,K) = X(I,K) - X(I-1,K)*A(I,K)/B(I-1,K)
          ENDDO
          DO K = 1, N
            B(I,K) = B(I,K) - A(I,K)*A(I,K)/B(I-1,K)
          ENDDO
        ENDDO
    """,
    # Fused K loops (temporal locality for A and B).
    "fused": """
        DO I = 2, N
          DO K = 1, N
            X(I,K) = X(I,K) - X(I-1,K)*A(I,K)/B(I-1,K)
            B(I,K) = B(I,K) - A(I,K)*A(I,K)/B(I-1,K)
          ENDDO
        ENDDO
    """,
    # Fused and interchanged (Figure 3c): unit stride on the I loop.
    "interchanged": """
        DO K = 1, N
          DO I = 2, N
            X(I,K) = X(I,K) - X(I-1,K)*A(I,K)/B(I-1,K)
            B(I,K) = B(I,K) - A(I,K)*A(I,K)/B(I-1,K)
          ENDDO
        ENDDO
    """,
}


def adi(n: int = 64, form: str = "distributed") -> Program:
    """The ADI integration fragment of Figure 3."""
    if form not in _ADI_BODIES:
        raise ReproError(f"unknown adi form {form!r}")
    return parse_program(
        f"""
        PROGRAM adi_{form}
        PARAMETER N = {n}
        REAL X(N,N), A(N,N), B(N,N)
        {_ADI_BODIES[form]}
        END
        """
    )


def erlebacher(n: int = 24, form: str = "hand") -> Program:
    """An Erlebacher-style ADI sweep over 3-D arrays (Table 1).

    The program computes x-direction derivative sweeps as a sequence of
    single-statement loops over 3-D arrays — the structure §4.3.4
    describes ("mostly single statement loops in memory order", heavily
    shared arrays between adjacent nests).

    Forms:
      * ``hand`` — the hand-coded original: nests in memory order.
      * ``distributed`` — same statements, inner loops in a
        vector-friendly (non-memory) order, fully distributed.
    """
    if form == "hand":
        loops = [
            ("K", "J", "I", "F(I,J,K) = UX(I,J,K) * A(I,J,K)"),
            ("K2", "J2", "I2", "G(I2,J2,K2) = F(I2,J2,K2) + UX(I2,J2,K2)*B(I2,J2,K2)"),
            ("K3", "J3", "I3", "H(I3,J3,K3) = G(I3,J3,K3) - F(I3,J3,K3)*C(I3,J3,K3)"),
            ("K4", "J4", "I4", "UX(I4,J4,K4) = H(I4,J4,K4) * D(I4,J4,K4)"),
        ]
    elif form == "distributed":
        loops = [
            ("I", "J", "K", "F(I,J,K) = UX(I,J,K) * A(I,J,K)"),
            ("I2", "J2", "K2", "G(I2,J2,K2) = F(I2,J2,K2) + UX(I2,J2,K2)*B(I2,J2,K2)"),
            ("I3", "J3", "K3", "H(I3,J3,K3) = G(I3,J3,K3) - F(I3,J3,K3)*C(I3,J3,K3)"),
            ("I4", "J4", "K4", "UX(I4,J4,K4) = H(I4,J4,K4) * D(I4,J4,K4)"),
        ]
    else:
        raise ReproError(f"unknown erlebacher form {form!r}")

    nests = []
    for outer, mid, inner, stmt in loops:
        nests.append(
            f"""
        DO {outer} = 1, N
          DO {mid} = 1, N
            DO {inner} = 1, N
              {stmt}
            ENDDO
          ENDDO
        ENDDO"""
        )
    body = "\n".join(nests)
    return parse_program(
        f"""
        PROGRAM erlebacher_{form}
        PARAMETER N = {n}
        REAL UX(N,N,N), F(N,N,N), G(N,N,N), H(N,N,N)
        REAL A(N,N,N), B(N,N,N), C(N,N,N), D(N,N,N)
        {body}
        END
        """
    )


def transpose(n: int = 64) -> Program:
    """Out-of-place transpose: every order leaves one access strided."""
    return parse_program(
        f"""
        PROGRAM transpose
        PARAMETER N = {n}
        REAL A(N,N), B(N,N)
        DO I = 1, N
          DO J = 1, N
            B(I,J) = A(J,I)
          ENDDO
        ENDDO
        END
        """
    )


def jacobi(n: int = 64) -> Program:
    """Five-point Jacobi sweep written row-major (permutable)."""
    return parse_program(
        f"""
        PROGRAM jacobi
        PARAMETER N = {n}
        REAL U(N,N), V(N,N)
        DO I = 2, N - 1
          DO J = 2, N - 1
            V(I,J) = (U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1)) * 0.25
          ENDDO
        ENDDO
        DO I2 = 2, N - 1
          DO J2 = 2, N - 1
            U(I2,J2) = V(I2,J2)
          ENDDO
        ENDDO
        END
        """
    )
