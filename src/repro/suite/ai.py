"""AI-era loop nests: convolution and attention-style contractions.

The AutoLALA line of work (see PAPERS.md) analyzes exactly these nests
with the same reuse-distance machinery the paper applies to Fortran
kernels; registering them here puts conv and attention through the
identical pipeline — dependence analysis, compound transformation,
autotuning, lint, and analytic locality prediction — and under the same
conformance harness as every other suite entry.

Shapes are sized by one parameter ``n`` (sequence length / image side);
reduction and channel dimensions derive from it so instances stay
footprint-monotone.
"""

from __future__ import annotations

from repro.frontend import parse_program
from repro.ir.nodes import Program
from repro.suite.registry import register

__all__ = ["conv2d_im2col", "attention_qk", "conv1d_channels"]


@register("conv2d_im2col", "ai", 12, tags=("conv",),
          source="3x3 conv lowered im2col-style: patch gather, then a "
                 "GEMM-shaped contraction against the filter")
def conv2d_im2col(n: int = 12) -> Program:
    m = n + 2
    return parse_program(f"""
        PROGRAM conv2d_im2col
        PARAMETER N = {n}
        PARAMETER M = {m}
        REAL IN(M,M), COL(3,3,N,N), W(3,3), OUT(N,N)
        DO KI = 1, 3
          DO KJ = 1, 3
            DO OI = 1, N
              DO OJ = 1, N
                COL(KI,KJ,OI,OJ) = IN(OI+KI-1, OJ+KJ-1)
              ENDDO
            ENDDO
          ENDDO
        ENDDO
        DO OI2 = 1, N
          DO OJ2 = 1, N
            DO KI2 = 1, 3
              DO KJ2 = 1, 3
                OUT(OI2,OJ2) = OUT(OI2,OJ2) + COL(KI2,KJ2,OI2,OJ2) * W(KI2,KJ2)
              ENDDO
            ENDDO
          ENDDO
        ENDDO
        END
        """)


@register("attention_qk", "ai", 16, tags=("attention",),
          source="attention-like contraction: S = Q*K^T then O = S*V "
                 "(no softmax -- the bilinear core)")
def attention_qk(n: int = 16) -> Program:
    d = max(4, n // 2)
    return parse_program(f"""
        PROGRAM attention_qk
        PARAMETER N = {n}
        PARAMETER D = {d}
        REAL Q(N,D), KM(N,D), V(N,D), S(N,N), O(N,D)
        DO I = 1, N
          DO J = 1, N
            DO K = 1, D
              S(I,J) = S(I,J) + Q(I,K) * KM(J,K)
            ENDDO
          ENDDO
        ENDDO
        DO I2 = 1, N
          DO K2 = 1, D
            DO J2 = 1, N
              O(I2,K2) = O(I2,K2) + S(I2,J2) * V(J2,K2)
            ENDDO
          ENDDO
        ENDDO
        END
        """)


@register("conv1d_channels", "ai", 24, tags=("conv",),
          source="batched 1-D convolution over channels (depthwise)")
def conv1d_channels(n: int = 24) -> Program:
    m = n + 4
    c = max(4, n // 4)
    return parse_program(f"""
        PROGRAM conv1d_channels
        PARAMETER N = {n}
        PARAMETER M = {m}
        PARAMETER C = {c}
        REAL IN(M,C), W(5,C), OUT(N,C)
        DO L = 1, C
          DO I = 1, N
            DO K = 1, 5
              OUT(I,L) = OUT(I,L) + IN(I+K-1,L) * W(K,L)
            ENDDO
          ENDDO
        ENDDO
        END
        """)
