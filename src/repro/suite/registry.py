"""The suite registry: programs × instances × curated sets.

Every benchmark program is one :class:`SuiteEntry` — a factory plus
metadata (category, tags, named size *instances*) — registered either
through the :func:`register` decorator (the idiom for new kernels; see
``polybench.py`` / ``ai.py``) or the :func:`add_entry` helper (the
paper-era kernels and application stand-ins).

Programs are grouped into curated :class:`SuiteSet` objects (``paper``,
``polybench``, ``ai``, ``smoke``, ``all``) that are run *whole* by the
set runner (:mod:`repro.suite.runner`) — no cherry-picking; the paper's
evaluation methodology (run entire collections) is the contract, and the
conformance harness (``tests/test_suite_conformance.py``) auto-covers
every registered entry with golden locality stats, an
execution-equivalence check, and schema validation.

Sizes are *named instances* (``mini`` < ``small`` < ``medium`` by
footprint); experiments pick the instance that matches their simulation
budget, and the conformance suite checks the monotonicity contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.errors import ReproError
from repro.ir.nodes import Program
from repro.suite import apps, kernels

__all__ = [
    "SuiteEntry",
    "SuiteSet",
    "SUITE",
    "SETS",
    "DEFAULT_INSTANCES",
    "register",
    "add_entry",
    "register_set",
    "suite_entries",
    "get_entry",
    "get_set",
    "set_names",
    "entry_footprint",
]

#: Canonical instance ladder, smallest first. Every entry's ``instances``
#: mapping uses these names (a subset is allowed but must stay ordered).
DEFAULT_INSTANCES = ("mini", "small", "medium")


def _derived_instances(default_n: int) -> dict[str, int]:
    """The standard mini < small < medium ladder around ``default_n``."""
    mini = max(6, default_n // 4)
    small = max(mini + 2, default_n // 2)
    medium = max(small + 2, default_n)
    return {"mini": mini, "small": small, "medium": medium}


@dataclass(frozen=True)
class SuiteEntry:
    """One registered program: factory, category, initializer, instances.

    ``build`` takes the problem size ``n`` and returns the IR program.
    ``instances`` maps instance names (``mini``/``small``/``medium``) to
    sizes, smallest first; ``default_n`` is the ``medium`` size unless
    registered otherwise. ``tags`` are free-form labels used to curate
    sets (``stencil``, ``blas``, ``paper`` ...); ``source`` is one line
    of provenance for docs and reports.
    """

    name: str
    build: Callable[[int], Program]
    category: str  # 'kernel' | 'perfect' | 'spec' | 'nas' | 'misc' | 'polybench' | 'ai'
    default_n: int = 24
    init: Callable[[str, tuple[int, ...]], np.ndarray] | None = None
    instances: Mapping[str, int] = field(default_factory=dict)
    tags: frozenset[str] = frozenset()
    source: str = ""

    def __post_init__(self) -> None:
        if not self.instances:
            object.__setattr__(self, "instances", _derived_instances(self.default_n))

    def instance_n(self, instance: str) -> int:
        try:
            return self.instances[instance]
        except KeyError:
            raise ReproError(
                f"suite entry {self.name!r} has no instance {instance!r} "
                f"(choose from {', '.join(self.instances)})"
            ) from None

    def program(self, n: int | None = None, instance: str | None = None) -> Program:
        """Build the program at size ``n``, a named ``instance``, or the
        default size.

        Sizes are validated: ``n`` must be a positive integer (``n=0``
        used to silently fall back to the default size — the classic
        falsy-``or`` bug — and now raises instead).
        """
        if n is not None and instance is not None:
            raise ReproError("pass either n or instance, not both")
        if instance is not None:
            n = self.instance_n(instance)
        if n is None:
            n = self.default_n
        if not isinstance(n, int) or isinstance(n, bool) or n <= 0:
            raise ReproError(
                f"suite entry {self.name!r}: problem size must be a "
                f"positive integer, got {n!r}"
            )
        return self.build(n)


@dataclass(frozen=True)
class SuiteSet:
    """A curated, named collection of suite entries that is run whole.

    ``members`` is the stable run order. Sets are first-class: the set
    runner takes a set name, runs every member (never a hand-picked
    subset), and reports per-entry plus aggregate results.
    """

    name: str
    description: str
    members: tuple[str, ...]

    def entries(self) -> list[SuiteEntry]:
        return [get_entry(name) for name in self.members]

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, name: str) -> bool:
        return name in self.members


SUITE: dict[str, SuiteEntry] = {}
SETS: dict[str, SuiteSet] = {}


def add_entry(
    name: str,
    build: Callable[[int], Program],
    category: str,
    default_n: int = 24,
    init: Callable[[str, tuple[int, ...]], np.ndarray] | None = None,
    instances: Mapping[str, int] | None = None,
    tags: Iterable[str] = (),
    source: str = "",
) -> SuiteEntry:
    """Register one entry; raises on duplicate names."""
    if name in SUITE:
        raise ReproError(f"suite entry {name!r} is already registered")
    entry = SuiteEntry(
        name,
        build,
        category,
        default_n,
        init,
        dict(instances) if instances else {},
        frozenset(tags),
        source,
    )
    SUITE[name] = entry
    return entry


def register(
    name: str,
    category: str,
    default_n: int = 24,
    init: Callable[[str, tuple[int, ...]], np.ndarray] | None = None,
    instances: Mapping[str, int] | None = None,
    tags: Iterable[str] = (),
    source: str = "",
) -> Callable[[Callable[[int], Program]], Callable[[int], Program]]:
    """Decorator: register a kernel factory as a suite entry.

    The decorated factory takes the problem size and returns a
    :class:`~repro.ir.nodes.Program`; it stays importable and callable
    directly. Adding a kernel is the factory plus this decorator —
    nothing else (docs/suite.md shows the ≤10-line recipe).
    """

    def decorate(build: Callable[[int], Program]) -> Callable[[int], Program]:
        add_entry(
            name, build, category, default_n, init, instances, tags, source
        )
        return build

    return decorate


def register_set(name: str, description: str, members: Iterable[str]) -> SuiteSet:
    """Register a curated set; every member must already be registered."""
    members = tuple(members)
    if name in SETS:
        raise ReproError(f"suite set {name!r} is already registered")
    unknown = [m for m in members if m not in SUITE]
    if unknown:
        raise ReproError(f"suite set {name!r} references unknown entries {unknown}")
    if len(set(members)) != len(members):
        raise ReproError(f"suite set {name!r} has duplicate members")
    suite_set = SuiteSet(name, description, members)
    SETS[name] = suite_set
    return suite_set


def suite_entries(categories: tuple[str, ...] | None = None) -> list[SuiteEntry]:
    """All entries, optionally filtered by category, in stable order."""
    entries = [SUITE[name] for name in sorted(SUITE)]
    if categories:
        entries = [e for e in entries if e.category in categories]
    return entries


def get_entry(name: str) -> SuiteEntry:
    try:
        return SUITE[name]
    except KeyError:
        raise KeyError(f"unknown suite program {name!r}") from None


def get_set(name: str) -> SuiteSet:
    try:
        return SETS[name]
    except KeyError:
        raise KeyError(
            f"unknown suite set {name!r} (choose from {', '.join(sorted(SETS))})"
        ) from None


def set_names() -> list[str]:
    return sorted(SETS)


def entry_footprint(entry: SuiteEntry, n: int) -> int:
    """Total declared array bytes of ``entry`` at size ``n``.

    The conformance harness checks this is strictly monotone over the
    instance ladder, so "bigger instance" always means "bigger data".
    """
    program = entry.program(n)
    env = dict(program.param_env)
    return sum(
        math.prod(decl.extents(env)) * decl.elem_size
        for decl in program.arrays
        if decl.rank > 0
    )


# ----------------------------------------------------------------------
# Paper-era registrations: the worked-example kernels and the
# Perfect/SPEC/NAS application stand-ins.
# ----------------------------------------------------------------------

def _register_paper_suite() -> None:
    add = add_entry
    add("matmul", lambda n: kernels.matmul(n, "IJK"), "kernel", 32,
        tags=("paper", "blas"), source="Figure 2 matrix multiply (IJK)")
    add("cholesky", lambda n: kernels.cholesky(n, "KIJ"), "kernel", 24,
        kernels.spd_init, tags=("paper", "factorization"),
        source="Figure 7 Cholesky (KIJ)")
    add("adi", lambda n: kernels.adi(n, "distributed"), "kernel", 32,
        tags=("paper", "stencil"), source="Figure 3 ADI fragment")
    add("erlebacher_like", lambda n: kernels.erlebacher(n, "hand"), "misc", 16,
        tags=("paper",), source="Table 1 Erlebacher-style sweep")
    add("jacobi", kernels.jacobi, "kernel", 32,
        tags=("paper", "stencil"), source="five-point Jacobi sweep")
    add("transpose", kernels.transpose, "kernel", 32,
        tags=("paper",), source="out-of-place transpose")

    categories = {
        "arc2d_like": "perfect",
        "trfd_like": "perfect",
        "qcd_like": "perfect",
        "mdg_like": "perfect",
        "ocean_like": "perfect",
        "gmtry_like": "spec",
        "vpenta_like": "spec",
        "btrix_like": "spec",
        "hydro2d_like": "spec",
        "tomcatv_like": "spec",
        "swm256_like": "spec",
        "su2cor_like": "spec",
        "applu_like": "nas",
        "appsp_like": "nas",
        "appbt_like": "nas",
        "mg3d_like": "nas",
        "fftpde_like": "nas",
        "simple_like": "misc",
        "wave_like": "misc",
        "linpackd_like": "misc",
        "adm_like": "perfect",
        "bdna_like": "perfect",
        "dyfesm_like": "perfect",
        "flo52_like": "perfect",
        "spec77_like": "perfect",
        "track_like": "perfect",
        "doduc_like": "spec",
        "matrix300_like": "spec",
        "mdljdp2_like": "spec",
        "ora_like": "spec",
        "embar_like": "nas",
        "mgrid_like": "nas",
        "fpppp_like": "spec",
        "buk_like": "nas",
        "mxm_like": "spec",
        "emit_like": "spec",
    }
    for name, category in categories.items():
        add(
            name,
            (lambda nm: (lambda n: apps.build_app(nm, n)))(name),
            category,
            tags=("paper", "app"),
            source=f"{category} application stand-in (DESIGN.md §2)",
        )


_register_paper_suite()

# Importing the kernel collections registers their entries (each module
# self-registers through the decorator at import time).
from repro.suite import ai as _ai  # noqa: E402,F401  (registration import)
from repro.suite import polybench as _polybench  # noqa: E402,F401


def _register_sets() -> None:
    paper = [e.name for e in suite_entries() if "paper" in e.tags]
    polybench = [e.name for e in suite_entries(("polybench",))]
    ai = [e.name for e in suite_entries(("ai",))]
    register_set(
        "paper",
        "the paper's evaluation suite: worked-example kernels plus the "
        "Perfect/SPEC/NAS application stand-ins",
        paper,
    )
    register_set(
        "polybench",
        "PolyBench-style linear-algebra and stencil kernels",
        polybench,
    )
    register_set(
        "ai",
        "AI-era loop nests: im2col convolution and attention-style "
        "contractions",
        ai,
    )
    register_set(
        "smoke",
        "one representative per category — the fast CI canary",
        ["matmul", "arc2d_like", "gmtry_like", "appsp_like",
         "erlebacher_like", "gemver", "attention_qk"],
    )
    register_set("all", "every registered program", sorted(SUITE))


_register_sets()
