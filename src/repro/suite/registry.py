"""Registry of every suite program with metadata and initializers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.ir.nodes import Program
from repro.suite import apps, kernels

__all__ = ["SuiteEntry", "SUITE", "suite_entries", "get_entry"]


@dataclass(frozen=True)
class SuiteEntry:
    """One registered program: factory, category, initializer."""

    name: str
    build: Callable[[int], Program]
    category: str  # 'kernel' | 'perfect' | 'spec' | 'nas' | 'misc'
    default_n: int = 24
    init: Callable[[str, tuple[int, ...]], np.ndarray] | None = None

    def program(self, n: int | None = None) -> Program:
        return self.build(n or self.default_n)


def _entries() -> dict[str, SuiteEntry]:
    table: dict[str, SuiteEntry] = {}

    def add(name, build, category, default_n=24, init=None):
        table[name] = SuiteEntry(name, build, category, default_n, init)

    # Kernels from the paper's worked examples.
    add("matmul", lambda n: kernels.matmul(n, "IJK"), "kernel", 32)
    add("cholesky", lambda n: kernels.cholesky(n, "KIJ"), "kernel", 24, kernels.spd_init)
    add("adi", lambda n: kernels.adi(n, "distributed"), "kernel", 32)
    add("erlebacher_like", lambda n: kernels.erlebacher(n, "hand"), "misc", 16)
    add("jacobi", kernels.jacobi, "kernel", 32)
    add("transpose", kernels.transpose, "kernel", 32)

    categories = {
        "arc2d_like": "perfect",
        "trfd_like": "perfect",
        "qcd_like": "perfect",
        "mdg_like": "perfect",
        "ocean_like": "perfect",
        "gmtry_like": "spec",
        "vpenta_like": "spec",
        "btrix_like": "spec",
        "hydro2d_like": "spec",
        "tomcatv_like": "spec",
        "swm256_like": "spec",
        "su2cor_like": "spec",
        "applu_like": "nas",
        "appsp_like": "nas",
        "appbt_like": "nas",
        "mg3d_like": "nas",
        "fftpde_like": "nas",
        "simple_like": "misc",
        "wave_like": "misc",
        "linpackd_like": "misc",
        "adm_like": "perfect",
        "bdna_like": "perfect",
        "dyfesm_like": "perfect",
        "flo52_like": "perfect",
        "spec77_like": "perfect",
        "track_like": "perfect",
        "doduc_like": "spec",
        "matrix300_like": "spec",
        "mdljdp2_like": "spec",
        "ora_like": "spec",
        "embar_like": "nas",
        "mgrid_like": "nas",
        "fpppp_like": "spec",
        "buk_like": "nas",
        "mxm_like": "spec",
        "emit_like": "spec",
    }
    for name, category in categories.items():
        add(name, (lambda nm: (lambda n: apps.build_app(nm, n)))(name), category)
    return table


SUITE: dict[str, SuiteEntry] = _entries()


def suite_entries(categories: tuple[str, ...] | None = None) -> list[SuiteEntry]:
    """All entries, optionally filtered by category, in stable order."""
    entries = [SUITE[name] for name in sorted(SUITE)]
    if categories:
        entries = [e for e in entries if e.category in categories]
    return entries


def get_entry(name: str) -> SuiteEntry:
    try:
        return SUITE[name]
    except KeyError:
        raise KeyError(f"unknown suite program {name!r}") from None
