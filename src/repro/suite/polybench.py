"""PolyBench-style kernels: dense linear algebra, solvers, stencils.

Each kernel is a mini-Fortran factory registered through
:func:`repro.suite.registry.register`, so the whole pipeline —
dependence analysis, the compound transform, the autotuner, lint, and
the locality predictor — applies unchanged, and the conformance harness
(``tests/test_suite_conformance.py``) auto-covers every entry with
golden locality stats and an execution-equivalence check.

The shapes follow the PolyBench 4.2 collection (BLAS routines, kernels
like atax/bicg/mvt, solvers, and stencils), sized down to
simulation-friendly defaults; loop orders are the *textbook* ones, which
deliberately leaves permutation/fusion headroom for the optimizer.
"""

from __future__ import annotations

from repro.frontend import parse_program
from repro.ir.nodes import Program
from repro.suite.registry import register

__all__ = [
    "gemver", "syrk", "syr2k", "trmm", "mvt", "bicg", "atax",
    "gesummv", "doitgen", "trisolv", "seidel_2d", "heat_2d",
    "fdtd_2d", "correlation", "k2mm", "k3mm",
]


@register("gemver", "polybench", 24, tags=("blas",),
          source="PolyBench gemver: rank-2 update + two A^T/A matvecs")
def gemver(n: int = 24) -> Program:
    return parse_program(f"""
        PROGRAM gemver
        PARAMETER N = {n}
        REAL A(N,N), U1(N), V1(N), U2(N), V2(N)
        REAL X(N), Y(N), Z(N), W(N)
        DO I = 1, N
          DO J = 1, N
            A(I,J) = A(I,J) + U1(I)*V1(J) + U2(I)*V2(J)
          ENDDO
        ENDDO
        DO I2 = 1, N
          DO J2 = 1, N
            X(I2) = X(I2) + A(J2,I2) * Y(J2)
          ENDDO
        ENDDO
        DO I3 = 1, N
          X(I3) = X(I3) + Z(I3)
        ENDDO
        DO I4 = 1, N
          DO J4 = 1, N
            W(I4) = W(I4) + A(I4,J4) * X(J4)
          ENDDO
        ENDDO
        END
        """)


@register("syrk", "polybench", 24, tags=("blas", "triangular"),
          source="PolyBench syrk: C += A*A^T on the lower triangle")
def syrk(n: int = 24) -> Program:
    return parse_program(f"""
        PROGRAM syrk
        PARAMETER N = {n}
        REAL A(N,N), C(N,N)
        DO I = 1, N
          DO J = 1, I
            DO K = 1, N
              C(I,J) = C(I,J) + A(I,K) * A(J,K)
            ENDDO
          ENDDO
        ENDDO
        END
        """)


@register("syr2k", "polybench", 24, tags=("blas", "triangular"),
          source="PolyBench syr2k: C += A*B^T + B*A^T on the lower triangle")
def syr2k(n: int = 24) -> Program:
    return parse_program(f"""
        PROGRAM syr2k
        PARAMETER N = {n}
        REAL A(N,N), B(N,N), C(N,N)
        DO I = 1, N
          DO J = 1, I
            DO K = 1, N
              C(I,J) = C(I,J) + A(I,K)*B(J,K) + B(I,K)*A(J,K)
            ENDDO
          ENDDO
        ENDDO
        END
        """)


@register("trmm", "polybench", 24, tags=("blas", "triangular"),
          source="PolyBench trmm: B = A^T*B, A unit lower triangular")
def trmm(n: int = 24) -> Program:
    return parse_program(f"""
        PROGRAM trmm
        PARAMETER N = {n}
        REAL A(N,N), B(N,N)
        DO I = 1, N
          DO J = 1, N
            DO K = I + 1, N
              B(I,J) = B(I,J) + A(K,I) * B(K,J)
            ENDDO
          ENDDO
        ENDDO
        END
        """)


@register("mvt", "polybench", 32, tags=("blas",),
          source="PolyBench mvt: x1 += A*y1 and x2 += A^T*y2")
def mvt(n: int = 32) -> Program:
    return parse_program(f"""
        PROGRAM mvt
        PARAMETER N = {n}
        REAL A(N,N), X1(N), X2(N), Y1(N), Y2(N)
        DO I = 1, N
          DO J = 1, N
            X1(I) = X1(I) + A(I,J) * Y1(J)
          ENDDO
        ENDDO
        DO I2 = 1, N
          DO J2 = 1, N
            X2(I2) = X2(I2) + A(J2,I2) * Y2(J2)
          ENDDO
        ENDDO
        END
        """)


@register("bicg", "polybench", 32, tags=("blas",),
          source="PolyBench bicg: q = A*p and s = A^T*r")
def bicg(n: int = 32) -> Program:
    return parse_program(f"""
        PROGRAM bicg
        PARAMETER N = {n}
        REAL A(N,N), P(N), Q(N), R(N), S(N)
        DO I = 1, N
          DO J = 1, N
            Q(I) = Q(I) + A(I,J) * P(J)
          ENDDO
        ENDDO
        DO J2 = 1, N
          DO I2 = 1, N
            S(J2) = S(J2) + A(I2,J2) * R(I2)
          ENDDO
        ENDDO
        END
        """)


@register("atax", "polybench", 32, tags=("blas",),
          source="PolyBench atax: y = A^T*(A*x)")
def atax(n: int = 32) -> Program:
    return parse_program(f"""
        PROGRAM atax
        PARAMETER N = {n}
        REAL A(N,N), X(N), Y(N), TMP(N)
        DO I = 1, N
          DO J = 1, N
            TMP(I) = TMP(I) + A(I,J) * X(J)
          ENDDO
        ENDDO
        DO I2 = 1, N
          DO J2 = 1, N
            Y(J2) = Y(J2) + A(I2,J2) * TMP(I2)
          ENDDO
        ENDDO
        END
        """)


@register("gesummv", "polybench", 32, tags=("blas",),
          source="PolyBench gesummv: y = alpha*A*x + beta*B*x")
def gesummv(n: int = 32) -> Program:
    return parse_program(f"""
        PROGRAM gesummv
        PARAMETER N = {n}
        REAL A(N,N), B(N,N), X(N), Y(N), TMP(N)
        DO I = 1, N
          DO J = 1, N
            TMP(I) = TMP(I) + A(I,J) * X(J)
            Y(I) = Y(I) + B(I,J) * X(J)
          ENDDO
        ENDDO
        DO I2 = 1, N
          Y(I2) = Y(I2) * 1.5 + TMP(I2) * 0.5
        ENDDO
        END
        """)


@register("doitgen", "polybench", 10, tags=("tensor",),
          source="PolyBench doitgen: multi-resolution tensor contraction")
def doitgen(n: int = 10) -> Program:
    return parse_program(f"""
        PROGRAM doitgen
        PARAMETER N = {n}
        REAL A(N,N,N), A2(N,N,N), C4(N,N), WRK(N,N,N)
        DO R = 1, N
          DO Q = 1, N
            DO P = 1, N
              DO S = 1, N
                WRK(R,Q,P) = WRK(R,Q,P) + A(R,Q,S) * C4(S,P)
              ENDDO
            ENDDO
          ENDDO
        ENDDO
        DO R2 = 1, N
          DO Q2 = 1, N
            DO P2 = 1, N
              A2(R2,Q2,P2) = WRK(R2,Q2,P2)
            ENDDO
          ENDDO
        ENDDO
        END
        """)


@register("trisolv", "polybench", 32, tags=("solver", "triangular"),
          source="PolyBench trisolv: forward substitution L*x = b")
def trisolv(n: int = 32) -> Program:
    return parse_program(f"""
        PROGRAM trisolv
        PARAMETER N = {n}
        REAL L(N,N), X(N), B(N)
        DO I = 1, N
          X(I) = B(I)
          DO J = 1, I - 1
            X(I) = X(I) - L(I,J) * X(J)
          ENDDO
          X(I) = X(I) / L(I,I)
        ENDDO
        END
        """)


@register("seidel_2d", "polybench", 20, tags=("stencil",),
          source="PolyBench seidel-2d: in-place Gauss-Seidel sweep")
def seidel_2d(n: int = 20) -> Program:
    return parse_program(f"""
        PROGRAM seidel_2d
        PARAMETER N = {n}
        REAL A(N,N)
        DO T = 1, 2
          DO I = 2, N - 1
            DO J = 2, N - 1
              A(I,J) = (A(I-1,J) + A(I+1,J) + A(I,J-1) + A(I,J+1) + A(I,J)) * 0.2
            ENDDO
          ENDDO
        ENDDO
        END
        """)


@register("heat_2d", "polybench", 20, tags=("stencil",),
          source="heat-equation stencil, ping-pong arrays over time steps")
def heat_2d(n: int = 20) -> Program:
    return parse_program(f"""
        PROGRAM heat_2d
        PARAMETER N = {n}
        REAL A(N,N), B(N,N)
        DO T = 1, 2
          DO I = 2, N - 1
            DO J = 2, N - 1
              B(I,J) = A(I,J) + (A(I-1,J) - 2.0*A(I,J) + A(I+1,J)) * 0.125
            ENDDO
          ENDDO
          DO I2 = 2, N - 1
            DO J2 = 2, N - 1
              A(I2,J2) = B(I2,J2) + (B(I2,J2-1) - 2.0*B(I2,J2) + B(I2,J2+1)) * 0.125
            ENDDO
          ENDDO
        ENDDO
        END
        """)


@register("fdtd_2d", "polybench", 20, tags=("stencil",),
          source="PolyBench fdtd-2d: finite-difference time domain sweeps")
def fdtd_2d(n: int = 20) -> Program:
    return parse_program(f"""
        PROGRAM fdtd_2d
        PARAMETER N = {n}
        REAL EX(N,N), EY(N,N), HZ(N,N)
        DO T = 1, 2
          DO I = 1, N
            DO J = 2, N
              EY(I,J) = EY(I,J) - 0.5 * (HZ(I,J) - HZ(I,J-1))
            ENDDO
          ENDDO
          DO I2 = 2, N
            DO J2 = 1, N
              EX(I2,J2) = EX(I2,J2) - 0.5 * (HZ(I2,J2) - HZ(I2-1,J2))
            ENDDO
          ENDDO
          DO I3 = 1, N - 1
            DO J3 = 1, N - 1
              HZ(I3,J3) = HZ(I3,J3) - 0.7 * (EX(I3+1,J3) - EX(I3,J3) + EY(I3,J3+1) - EY(I3,J3))
            ENDDO
          ENDDO
        ENDDO
        END
        """)


@register("correlation", "polybench", 16, tags=("statistics",),
          source="PolyBench correlation-style two-pass: means, then the "
                 "upper-triangular product matrix")
def correlation(n: int = 16) -> Program:
    return parse_program(f"""
        PROGRAM correlation
        PARAMETER N = {n}
        REAL D(N,N), MEAN(N), C(N,N)
        DO J = 1, N
          DO I = 1, N
            MEAN(J) = MEAN(J) + D(I,J)
          ENDDO
        ENDDO
        DO J2 = 1, N
          MEAN(J2) = MEAN(J2) / N
        ENDDO
        DO J3 = 1, N
          DO K = J3, N
            DO I2 = 1, N
              C(J3,K) = C(J3,K) + (D(I2,J3) - MEAN(J3)) * (D(I2,K) - MEAN(K))
            ENDDO
          ENDDO
        ENDDO
        END
        """)


@register("k2mm", "polybench", 16, tags=("blas",),
          source="PolyBench 2mm: E = (A*B)*C")
def k2mm(n: int = 16) -> Program:
    return parse_program(f"""
        PROGRAM k2mm
        PARAMETER N = {n}
        REAL A(N,N), B(N,N), C(N,N), E(N,N), TMP(N,N)
        DO I = 1, N
          DO J = 1, N
            DO K = 1, N
              TMP(I,J) = TMP(I,J) + A(I,K) * B(K,J)
            ENDDO
          ENDDO
        ENDDO
        DO I2 = 1, N
          DO J2 = 1, N
            DO K2 = 1, N
              E(I2,J2) = E(I2,J2) + TMP(I2,K2) * C(K2,J2)
            ENDDO
          ENDDO
        ENDDO
        END
        """)


@register("k3mm", "polybench", 16, tags=("blas",),
          source="PolyBench 3mm: G = (A*B)*(C*D)")
def k3mm(n: int = 16) -> Program:
    return parse_program(f"""
        PROGRAM k3mm
        PARAMETER N = {n}
        REAL A(N,N), B(N,N), C(N,N), D(N,N), E(N,N), F(N,N), G(N,N)
        DO I = 1, N
          DO J = 1, N
            DO K = 1, N
              E(I,J) = E(I,J) + A(I,K) * B(K,J)
            ENDDO
          ENDDO
        ENDDO
        DO I2 = 1, N
          DO J2 = 1, N
            DO K2 = 1, N
              F(I2,J2) = F(I2,J2) + C(I2,K2) * D(K2,J2)
            ENDDO
          ENDDO
        ENDDO
        DO I3 = 1, N
          DO J3 = 1, N
            DO K3 = 1, N
              G(I3,J3) = G(I3,J3) + E(I3,K3) * F(K3,J3)
            ENDDO
          ENDDO
        ENDDO
        END
        """)
