"""Synthetic multi-nest applications standing in for the paper's suite.

The paper evaluates 35 programs from the Perfect, SPEC and NAS suites
plus miscellaneous codes. Those Fortran sources are not available
offline, so each factory here builds a small application whose *loop
structure mix* mirrors the documented character of its namesake:
fraction of nests already in memory order, fusable adjacent nests,
distribution-requiring nests, dependence-blocked nests, scalarized
vector style, etc. (§2 of DESIGN.md documents this substitution.)

Sizes default to simulation-friendly values; pass ``n`` to scale.
"""

from __future__ import annotations

from repro.frontend import parse_program
from repro.ir.nodes import Program

__all__ = ["APP_SOURCES", "build_app", "app_names"]


def _arc2d_like(n: int) -> str:
    # Perfect's Arc2d: implicit fluid-flow solver whose main routines use
    # non-unit-stride (row-major style) accesses; the paper improves it
    # 2.15x. The main computational nest is imperfect with inner loops of
    # depth 2 and 3, all permutable into memory order.
    return f"""
    PROGRAM arc2d_like
    PARAMETER N = {n}
    REAL Q(N,N), QP(N,N), S(N,N), XX(N,N), WORK(N,N), PRESS(N,N)
    DO I = 2, N - 1
      DO J = 2, N - 1
        DO L = 1, 3
          S(I,J) = S(I,J) + Q(I,J)*XX(I,J) + L*0.01
        ENDDO
      ENDDO
      DO J2 = 2, N - 1
        DO L2 = 1, 3
          QP(I,J2) = QP(I,J2) + S(I,J2)*PRESS(I,J2) + L2*0.02
        ENDDO
      ENDDO
    ENDDO
    DO J3 = 2, N - 1
      DO I3 = 2, N - 1
        WORK(I3,J3) = QP(I3,J3) - Q(I3,J3)
      ENDDO
    ENDDO
    DO I4 = 2, N - 1
      DO J4 = 2, N - 1
        PRESS(I4,J4) = WORK(I4,J4) * 0.5 + PRESS(I4,J4) * 0.5
      ENDDO
    ENDDO
    END
    """


def _simple_like(n: int) -> str:
    # §5.7 Simple: loops written in "vectorizable" form — the recurrence
    # runs in the OUTER loop so the inner loop is dependence-free, at the
    # price of strided accesses. Compound interchanges, moving the
    # recurrence inward for unit stride: cache wins over parallelism.
    return f"""
    PROGRAM simple_like
    PARAMETER N = {n}
    REAL R(N,N), Z(N,N), P(N,N), ED(N,N)
    DO J = 2, N
      DO I = 1, N
        R(J,I) = R(J-1,I) + Z(J,I)
      ENDDO
    ENDDO
    DO J2 = 2, N
      DO I2 = 1, N
        P(J2,I2) = P(J2-1,I2) * 0.5 + R(J2,I2)
      ENDDO
    ENDDO
    DO I3 = 1, N
      DO J3 = 1, N
        ED(I3,J3) = P(I3,J3) + R(I3,J3)
      ENDDO
    ENDDO
    END
    """


def _gmtry_like(n: int) -> str:
    # SPEC dnasa7 'gmtry': Gaussian elimination across ROWS (the update's
    # inner loop walks the second subscript), so no spatial locality.
    # Distribution peels the scaling statement, and permutation then gets
    # unit stride in the update (8.7x in the paper).
    return f"""
    PROGRAM gmtry_like
    PARAMETER N = {n}
    REAL RMATRX(N,N)
    DO I = 1, N
      RMATRX(I,I) = 1.0 / RMATRX(I,I)
      DO J = I + 1, N
        RMATRX(J,I) = RMATRX(J,I) * RMATRX(I,I)
        DO K = I + 1, N
          RMATRX(J,K) = RMATRX(J,K) - RMATRX(J,I) * RMATRX(I,K)
        ENDDO
      ENDDO
    ENDDO
    END
    """


def _vpenta_like(n: int) -> str:
    # SPEC dnasa7 'vpenta': pentadiagonal inversion written with the
    # vector dimension outermost; permutation gets unit stride (1.29x).
    return f"""
    PROGRAM vpenta_like
    PARAMETER N = {n}
    REAL A(N,N), B(N,N), C(N,N), F(N,N), X(N,N), Y(N,N)
    DO I = 3, N - 2
      DO J = 1, N
        X(I,J) = F(I,J) - A(I,J)*X(I-2,J) - B(I,J)*X(I-1,J)
      ENDDO
    ENDDO
    DO I2 = 3, N - 2
      DO J2 = 1, N
        Y(I2,J2) = X(I2,J2) * C(I2,J2)
      ENDDO
    ENDDO
    END
    """


def _btrix_like(n: int) -> str:
    # SPEC dnasa7 'btrix': block tridiagonal solver over 4-D arrays with
    # a small block dimension; inner nests permute (paper: 1.20x).
    m = max(n // 4, 4)
    return f"""
    PROGRAM btrix_like
    PARAMETER N = {n}
    PARAMETER M = {m}
    REAL S(5,5,M,N), RHS(5,M,N)
    DO J = 1, M
      DO K = 1, N
        DO L = 1, 5
          DO L2 = 1, 5
            S(L,L2,J,K) = S(L,L2,J,K) * 0.99
          ENDDO
        ENDDO
      ENDDO
    ENDDO
    DO K2 = 2, N
      DO J2 = 1, M
        DO L3 = 1, 5
          RHS(L3,J2,K2) = RHS(L3,J2,K2) - RHS(L3,J2,K2-1)*S(L3,L3,J2,K2)
        ENDDO
      ENDDO
    ENDDO
    END
    """


def _hydro2d_like(n: int) -> str:
    # SPEC hydro2d: everything already in memory order (100% orig), with
    # many compatible adjacent nests for fusion (paper: C=44, A=11).
    return f"""
    PROGRAM hydro2d_like
    PARAMETER N = {n}
    REAL RO(N,N), EN(N,N), ZP(N,N), ZQ(N,N), ZR(N,N)
    DO J = 1, N
      DO I = 1, N
        ZP(I,J) = RO(I,J) * EN(I,J)
      ENDDO
    ENDDO
    DO J2 = 1, N
      DO I2 = 1, N
        ZQ(I2,J2) = ZP(I2,J2) + RO(I2,J2)
      ENDDO
    ENDDO
    DO J3 = 1, N
      DO I3 = 1, N
        ZR(I3,J3) = ZQ(I3,J3) - EN(I3,J3)
      ENDDO
    ENDDO
    DO J4 = 1, N
      DO I4 = 1, N
        EN(I4,J4) = ZR(I4,J4) * 0.998
      ENDDO
    ENDDO
    END
    """


def _tomcatv_like(n: int) -> str:
    # SPEC tomcatv: mesh generation, already 100% in memory order; the
    # residual recurrence blocks nothing because it is innermost-correct.
    return f"""
    PROGRAM tomcatv_like
    PARAMETER N = {n}
    REAL X(N,N), Y(N,N), RX(N,N), RY(N,N)
    DO J = 2, N - 1
      DO I = 2, N - 1
        RX(I,J) = X(I-1,J) + X(I+1,J) + X(I,J-1) + X(I,J+1) - 4.0*X(I,J)
      ENDDO
    ENDDO
    DO J2 = 2, N - 1
      DO I2 = 2, N - 1
        RY(I2,J2) = Y(I2-1,J2) + Y(I2+1,J2) - 2.0*Y(I2,J2)
      ENDDO
    ENDDO
    DO J3 = 2, N - 1
      DO I3 = 2, N - 1
        X(I3,J3) = X(I3,J3) + 0.25*RX(I3,J3)
        Y(I3,J3) = Y(I3,J3) + 0.25*RY(I3,J3)
      ENDDO
    ENDDO
    END
    """


def _swm256_like(n: int) -> str:
    # SPEC swm256: shallow-water stencils, 88% originally in memory
    # order; one nest needs permutation.
    return f"""
    PROGRAM swm256_like
    PARAMETER N = {n}
    REAL U(N,N), V(N,N), P(N,N), UNEW(N,N), CU(N,N)
    DO J = 1, N - 1
      DO I = 1, N - 1
        CU(I,J) = 0.5*(P(I+1,J) + P(I,J)) * U(I,J)
      ENDDO
    ENDDO
    DO I2 = 1, N - 1
      DO J2 = 1, N - 1
        UNEW(I2,J2) = U(I2,J2) + CU(I2,J2) * 0.2
      ENDDO
    ENDDO
    DO J3 = 1, N
      DO I3 = 1, N
        P(I3,J3) = P(I3,J3) * 0.99 + V(I3,J3) * 0.01
      ENDDO
    ENDDO
    END
    """


def _applu_like(n: int) -> str:
    # NAS applu: main arrays have tiny leading dimensions (5x5); the
    # model prefers unit stride but the original reductions were slightly
    # better on real hardware (the paper's only degradation, -2%).
    return f"""
    PROGRAM applu_like
    PARAMETER N = {n}
    REAL U(5,N,N), RSD(5,N,N), FLUX(5,N,N)
    DO J = 2, N - 1
      DO I = 2, N - 1
        DO M = 1, 5
          FLUX(M,I,J) = U(M,I,J) * 0.4 + RSD(M,I,J)
        ENDDO
      ENDDO
    ENDDO
    DO J2 = 2, N - 1
      DO I2 = 2, N - 1
        DO M2 = 1, 5
          RSD(M2,I2,J2) = FLUX(M2,I2,J2) - FLUX(M2,I2-1,J2)
        ENDDO
      ENDDO
    ENDDO
    END
    """


def _appsp_like(n: int) -> str:
    # NAS appsp: ADI-like sweeps; most nests fine, some permutable, and
    # fusable pairs (paper: C=8, A=4).
    return f"""
    PROGRAM appsp_like
    PARAMETER N = {n}
    REAL U(N,N,N), RHS(N,N,N), LHS(N,N,N)
    DO K = 2, N - 1
      DO J = 2, N - 1
        DO I = 2, N - 1
          RHS(I,J,K) = U(I+1,J,K) - 2.0*U(I,J,K) + U(I-1,J,K)
        ENDDO
      ENDDO
    ENDDO
    DO K2 = 2, N - 1
      DO J2 = 2, N - 1
        DO I2 = 2, N - 1
          LHS(I2,J2,K2) = RHS(I2,J2,K2) * 0.5
        ENDDO
      ENDDO
    ENDDO
    DO I3 = 2, N - 1
      DO J3 = 2, N - 1
        DO K3 = 2, N - 1
          U(I3,J3,K3) = U(I3,J3,K3) + LHS(I3,J3,K3)
        ENDDO
      ENDDO
    ENDDO
    END
    """


def _trfd_like(n: int) -> str:
    # Perfect trfd: integral transforms; half the nests are blocked by
    # dependences (paper: 48% fail, ideal ratio 14.8 -- big unrealized
    # potential).
    # Both nests want the unit-stride I loop innermost, but the paired
    # wavefront dependences (1,-1) and (1,1) block the interchange and
    # also defeat reversal, leaving a large unrealized ideal ratio.
    return f"""
    PROGRAM trfd_like
    PARAMETER N = {n}
    REAL XIJ(N,N), XKL(N,N)
    DO I = 2, N - 1
      DO J = 2, N - 1
        XIJ(I,J) = XIJ(I-1,J+1) + XIJ(I-1,J-1)
      ENDDO
    ENDDO
    DO I2 = 2, N - 1
      DO J2 = 2, N - 1
        XKL(I2,J2) = XKL(I2-1,J2+1) * 0.5 + XKL(I2-1,J2-1)
      ENDDO
    ENDDO
    END
    """


def _qcd_like(n: int) -> str:
    # Perfect qcd: lattice gauge code; many small nests blocked by
    # dependences or already fine; little to gain.
    return f"""
    PROGRAM qcd_like
    PARAMETER N = {n}
    REAL UR(N,N), UI(N,N), PR(N,N), PI(N,N)
    DO J = 1, N
      DO I = 1, N
        PR(I,J) = UR(I,J)*0.8 - UI(I,J)*0.2
      ENDDO
    ENDDO
    DO J2 = 2, N
      DO I2 = 2, N
        UR(I2,J2) = UR(I2-1,J2-1) + PR(I2,J2)
      ENDDO
    ENDDO
    END
    """


def _mdg_like(n: int) -> str:
    # Perfect mdg: molecular dynamics; dominated by depth-1 loops (only
    # a handful of deep nests, mostly already in order).
    return f"""
    PROGRAM mdg_like
    PARAMETER N = {n}
    REAL FX(N), FY(N), RS(N), VAR(N,N)
    DO I = 1, N
      FX(I) = FX(I) * 0.5
    ENDDO
    DO I2 = 1, N
      FY(I2) = FY(I2) + FX(I2)
    ENDDO
    DO J = 1, N
      DO I3 = 1, N
        VAR(I3,J) = VAR(I3,J) + FX(I3)*FY(J)
      ENDDO
    ENDDO
    DO I4 = 1, N
      RS(I4) = FX(I4) + FY(I4)
    ENDDO
    END
    """


def _ocean_like(n: int) -> str:
    # Perfect ocean: 2-D ocean model; distribution applied (paper D=3,
    # R=6): an imperfect nest whose statements prefer different orders.
    return f"""
    PROGRAM ocean_like
    PARAMETER N = {n}
    REAL UA(N,N), VA(N,N), WORK(N,N)
    DO I = 2, N
      DO J = 1, N
        UA(I,J) = UA(I,J) + VA(I-1,J)
      ENDDO
      DO J2 = 2, N
        WORK(I,J2) = WORK(I,J2-1) * 0.5 + UA(I,J2)
      ENDDO
    ENDDO
    DO J3 = 1, N
      DO I3 = 1, N
        VA(I3,J3) = WORK(I3,J3) + UA(I3,J3)
      ENDDO
    ENDDO
    END
    """


def _wave_like(n: int) -> str:
    # Misc wave: electromagnetic PIC code; the paper fuses 26 of 70
    # candidate nests and permutes 29% into memory order (1.08x).
    return f"""
    PROGRAM wave_like
    PARAMETER N = {n}
    REAL EX(N,N), EY(N,N), BZ(N,N), JX(N,N), JY(N,N)
    DO I = 2, N - 1
      DO J = 2, N - 1
        EX(I,J) = EX(I,J) + BZ(I,J) - BZ(I,J-1) - JX(I,J)
      ENDDO
    ENDDO
    DO I2 = 2, N - 1
      DO J2 = 2, N - 1
        EY(I2,J2) = EY(I2,J2) - BZ(I2,J2) + BZ(I2-1,J2) - JY(I2,J2)
      ENDDO
    ENDDO
    DO J3 = 2, N - 1
      DO I3 = 2, N - 1
        BZ(I3,J3) = BZ(I3,J3) * 0.99
      ENDDO
    ENDDO
    DO J4 = 1, N
      DO I4 = 1, N
        JX(I4,J4) = JX(I4,J4) * 0.5
      ENDDO
    ENDDO
    DO J5 = 1, N
      DO I5 = 1, N
        JY(I5,J5) = JY(I5,J5) * 0.5
      ENDDO
    ENDDO
    END
    """


def _linpackd_like(n: int) -> str:
    # Linpackd: modular daxpy style (depth-1 loops behind calls, which
    # our single-procedure IR flattens to depth-1 nests) plus the matgen
    # initialization nest the paper accidentally improved via fusion.
    return f"""
    PROGRAM linpackd_like
    PARAMETER N = {n}
    REAL A(N,N), B(N,N), X(N)
    DO J = 1, N
      DO I = 1, N
        A(I,J) = A(I,J) * 0.99 + 0.01
      ENDDO
    ENDDO
    DO J2 = 1, N
      DO I2 = 1, N
        B(I2,J2) = A(I2,J2) + 1.0
      ENDDO
    ENDDO
    DO I3 = 1, N
      X(I3) = X(I3) * 2.0
    ENDDO
    END
    """


def _su2cor_like(n: int) -> str:
    # SPEC su2cor: quark propagator; distribution applied (paper D=4,
    # R=8); sizable blocked fraction.
    return f"""
    PROGRAM su2cor_like
    PARAMETER N = {n}
    REAL U1(N,N), U2(N,N), W(N,N)
    DO I = 2, N
      DO J = 1, N
        U1(I,J) = U1(I,J) * 0.9 + U2(I-1,J)
      ENDDO
      DO J2 = 2, N
        U2(I,J2) = U2(I,J2-1) + U1(I,J2)
      ENDDO
    ENDDO
    DO I2 = 2, N
      DO J3 = 2, N
        W(I2,J3) = W(I2-1,J3-1) + U1(I2,J3)
      ENDDO
    ENDDO
    END
    """


def _mg3d_like(n: int) -> str:
    # NAS mg3d is written with linearized arrays; symbolic strides make
    # real dependence analysis imprecise. With a constant stride the
    # pattern is analyzable but strided — the compiler finds nothing to
    # improve, mirroring the paper's 1.00 ratio for mg3d.
    stride = n
    return f"""
    PROGRAM mg3d_like
    PARAMETER N = {n}
    PARAMETER NN = {n * n}
    REAL R(NN), Z(NN)
    DO J = 1, N - 1
      DO I = 1, N - 1
        Z(I + {stride}*J) = R(I + {stride}*J) * 0.5
      ENDDO
    ENDDO
    DO J2 = 1, N - 1
      DO I2 = 1, N - 1
        R(I2 + {stride}*J2) = Z(I2 + {stride}*J2) + R(I2 + {stride}*J2)
      ENDDO
    ENDDO
    END
    """


def _fftpde_like(n: int) -> str:
    # NAS fftpde: butterflies with power-of-two strides; inner loops are
    # already positioned correctly (paper: 100% inner orig).
    half = n // 2
    return f"""
    PROGRAM fftpde_like
    PARAMETER N = {n}
    PARAMETER H = {half}
    REAL XR(N,N), XI(N,N)
    DO J = 1, N
      DO I = 1, H
        XR(2*I-1,J) = XR(2*I-1,J) + XR(2*I,J)
        XI(2*I-1,J) = XI(2*I-1,J) - XI(2*I,J)
      ENDDO
    ENDDO
    END
    """


def _appbt_like(n: int) -> str:
    # NAS appbt: 98% of nests already in memory order; tiny gains.
    return f"""
    PROGRAM appbt_like
    PARAMETER N = {n}
    REAL U(5,N,N), RES(5,N,N)
    DO K = 2, N - 1
      DO J = 2, N - 1
        DO M = 1, 5
          RES(M,J,K) = U(M,J,K) - 0.5*U(M,J-1,K)
        ENDDO
      ENDDO
    ENDDO
    DO K2 = 2, N - 1
      DO J2 = 2, N - 1
        DO M2 = 1, 5
          U(M2,J2,K2) = U(M2,J2,K2) + RES(M2,J2,K2)
        ENDDO
      ENDDO
    ENDDO
    END
    """


def _doduc_like(n: int) -> str:
    # SPEC doduc: Monte Carlo thermohydraulics; 88% of nests blocked by
    # dependences in the paper (6% orig, 6% perm). Nests carry paired
    # wavefront dependences that defeat permutation and reversal.
    return f"""
    PROGRAM doduc_like
    PARAMETER N = {n}
    REAL T(N,N), P(N,N), H(N,N)
    DO I = 2, N - 1
      DO J = 2, N - 1
        T(I,J) = T(I-1,J+1) + T(I-1,J-1) + P(I,J)
      ENDDO
    ENDDO
    DO I2 = 2, N - 1
      DO J2 = 2, N - 1
        P(I2,J2) = P(I2-1,J2+1) * 0.5 + P(I2-1,J2-1) * 0.5
      ENDDO
    ENDDO
    DO I3 = 2, N - 1
      DO J3 = 2, N - 1
        H(I3,J3) = H(I3-1,J3+1) - H(I3-1,J3-1) + T(I3,J3)
      ENDDO
    ENDDO
    END
    """


def _adm_like(n: int) -> str:
    # Perfect adm: pseudospectral air-pollution model; about half the
    # nests already fine, a third blocked, some permutable.
    return f"""
    PROGRAM adm_like
    PARAMETER N = {n}
    REAL U(N,N), W(N,N), DU(N,N), WK(N,N)
    DO J = 1, N
      DO I = 1, N
        DU(I,J) = U(I,J) * 0.5
      ENDDO
    ENDDO
    DO I2 = 1, N
      DO J2 = 1, N
        WK(I2,J2) = DU(I2,J2) + W(I2,J2)
      ENDDO
    ENDDO
    DO I3 = 2, N - 1
      DO J3 = 2, N - 1
        W(I3,J3) = W(I3-1,J3+1) + W(I3-1,J3-1) + WK(I3,J3)
      ENDDO
    ENDDO
    END
    """


def _spec77_like(n: int) -> str:
    # Perfect spec77: spectral weather model; mostly fine or blocked,
    # little fusion/distribution (paper: 64% orig, 29% fail, no C/A/D).
    return f"""
    PROGRAM spec77_like
    PARAMETER N = {n}
    REAL VO(N,N), DI(N,N), ZE(N,N)
    DO J = 1, N
      DO I = 1, N
        VO(I,J) = VO(I,J) * 0.99 + DI(I,J) * 0.01
      ENDDO
    ENDDO
    DO I2 = 2, N - 1
      DO J2 = 2, N - 1
        ZE(I2,J2) = ZE(I2-1,J2+1) + ZE(I2-1,J2-1) + VO(I2,J2)
      ENDDO
    ENDDO
    END
    """


def _track_like(n: int) -> str:
    # Perfect track: missile tracking; half orig, a third blocked, a
    # little fusion and distribution (paper: C=2 A=1 D=1 R=2).
    return f"""
    PROGRAM track_like
    PARAMETER N = {n}
    REAL XS(N,N), PM(N,N), QM(N,N)
    DO J = 1, N
      DO I = 1, N
        PM(I,J) = XS(I,J) + 0.1
      ENDDO
    ENDDO
    DO J2 = 1, N
      DO I2 = 1, N
        QM(I2,J2) = PM(I2,J2) * XS(I2,J2)
      ENDDO
    ENDDO
    DO I3 = 2, N
      DO J3 = 1, N
        XS(I3,J3) = XS(I3-1,J3) + QM(I3,J3)
      ENDDO
      DO J4 = 2, N
        PM(I3,J4) = PM(I3,J4-1) * 0.5
      ENDDO
    ENDDO
    END
    """


def _bdna_like(n: int) -> str:
    # Perfect bdna: molecular dynamics of DNA; mostly in memory order
    # with a few distributions (paper: 75% orig, D=3 R=6).
    return f"""
    PROGRAM bdna_like
    PARAMETER N = {n}
    REAL FX(N,N), FY(N,N), RS(N,N)
    DO J = 1, N
      DO I = 1, N
        FX(I,J) = FX(I,J) * 0.5 + RS(I,J)
      ENDDO
    ENDDO
    DO I2 = 2, N
      DO J2 = 1, N
        FY(I2,J2) = FY(I2,J2) + FX(I2-1,J2)
      ENDDO
      DO J3 = 2, N
        RS(I2,J3) = RS(I2,J3-1) + FY(I2,J3)
      ENDDO
    ENDDO
    END
    """


def _dyfesm_like(n: int) -> str:
    # Perfect dyfesm: structural dynamics FEM; 63% orig, 22% fail, a
    # sizable unrealized ideal (paper ratio 3.08 vs 8.62).
    return f"""
    PROGRAM dyfesm_like
    PARAMETER N = {n}
    REAL XD(N,N), VD(N,N), AD(N,N)
    DO J = 1, N
      DO I = 1, N
        XD(I,J) = XD(I,J) + VD(I,J) * 0.1
      ENDDO
    ENDDO
    DO I2 = 1, N
      DO J2 = 1, N
        VD(I2,J2) = VD(I2,J2) + AD(I2,J2) * 0.1
      ENDDO
    ENDDO
    DO I3 = 2, N - 1
      DO J3 = 2, N - 1
        AD(I3,J3) = AD(I3-1,J3+1) + AD(I3-1,J3-1) - XD(I3,J3)
      ENDDO
    ENDDO
    END
    """


def _flo52_like(n: int) -> str:
    # Perfect flo52: transonic flow; 83% orig / 17% perm, zero failures
    # in the paper -- everything analyzable and mostly already right.
    return f"""
    PROGRAM flo52_like
    PARAMETER N = {n}
    REAL W1(N,N), W2(N,N), FS(N,N)
    DO J = 1, N
      DO I = 1, N
        FS(I,J) = W1(I,J) + W2(I,J)
      ENDDO
    ENDDO
    DO J2 = 1, N
      DO I2 = 1, N
        W1(I2,J2) = FS(I2,J2) * 0.25
      ENDDO
    ENDDO
    DO I3 = 1, N
      DO J3 = 1, N
        W2(I3,J3) = FS(I3,J3) * 0.75
      ENDDO
    ENDDO
    END
    """


def _ora_like(n: int) -> str:
    # SPEC ora: ray tracing through optics, dominated by scalar code and
    # depth-1 loops; nothing for the compiler to do (100% orig).
    return f"""
    PROGRAM ora_like
    PARAMETER N = {n}
    REAL RX(N), RY(N), RZ(N)
    DO I = 1, N
      RX(I) = RX(I) * 0.7 + 0.1
    ENDDO
    DO I2 = 1, N
      RY(I2) = RY(I2) * 0.7 + RX(I2)
    ENDDO
    DO J = 1, N
      DO K = 1, N
        RZ(K) = RZ(K) + RX(K) * RY(K)
      ENDDO
    ENDDO
    END
    """


def _matrix300_like(n: int) -> str:
    # SPEC matrix300: matrix multiply behind call layers; the paper's
    # translator sees one nest in memory order and one permutable
    # (50/50), with one distribution.
    return f"""
    PROGRAM matrix300_like
    PARAMETER N = {n}
    REAL A(N,N), B(N,N), C(N,N), D(N,N)
    DO J = 1, N
      DO K = 1, N
        DO I = 1, N
          C(I,J) = C(I,J) + A(I,K) * B(K,J)
        ENDDO
      ENDDO
    ENDDO
    DO I2 = 1, N
      DO J2 = 1, N
        DO K2 = 1, N
          D(I2,J2) = D(I2,J2) + C(I2,K2) * B(K2,J2)
        ENDDO
      ENDDO
    ENDDO
    END
    """


def _mdljdp2_like(n: int) -> str:
    # SPEC mdljdp2: molecular dynamics; a single deep nest blocked by
    # its force recurrence (paper: 100% fail, ratio 1.00/1.05).
    return f"""
    PROGRAM mdljdp2_like
    PARAMETER N = {n}
    REAL F(N,N), X(N,N)
    DO I = 2, N - 1
      DO J = 2, N - 1
        F(I,J) = F(I-1,J+1) + F(I-1,J-1) + X(J,I)
      ENDDO
    ENDDO
    END
    """


def _embar_like(n: int) -> str:
    # NAS embar: embarrassingly parallel random-number kernel; one nest
    # fine, one blocked (paper: 50% orig / 50% fail).
    return f"""
    PROGRAM embar_like
    PARAMETER N = {n}
    REAL XR(N,N), Q(N,N)
    DO J = 1, N
      DO I = 1, N
        XR(I,J) = XR(I,J) * 0.9 + 0.05
      ENDDO
    ENDDO
    DO I2 = 2, N - 1
      DO J2 = 2, N - 1
        Q(I2,J2) = Q(I2-1,J2+1) + Q(I2-1,J2-1) + XR(I2,J2)
      ENDDO
    ENDDO
    END
    """


def _mgrid_like(n: int) -> str:
    # NAS mgrid: multigrid V-cycle smoother; already in memory order
    # with strided coarse-grid transfers (paper: 89% orig + 11% perm).
    return f"""
    PROGRAM mgrid_like
    PARAMETER N = {n}
    REAL U(N,N,N), R(N,N,N)
    DO K = 2, N - 1
      DO J = 2, N - 1
        DO I = 2, N - 1
          R(I,J,K) = U(I-1,J,K) + U(I+1,J,K) + U(I,J-1,K) + U(I,J+1,K)
        ENDDO
      ENDDO
    ENDDO
    DO K2 = 2, N - 1, 2
      DO J2 = 2, N - 1, 2
        DO I2 = 2, N - 1, 2
          U(I2,J2,K2) = R(I2,J2,K2) * 0.5
        ENDDO
      ENDDO
    ENDDO
    END
    """


def _fpppp_like(n: int) -> str:
    # SPEC fpppp: two-electron integrals, dominated by straight-line code
    # and depth-1 loops; no nests of depth 2 for the compiler (the paper
    # reports 8 nests, 88% orig, ratio 1.03 -- essentially nothing).
    return f"""
    PROGRAM fpppp_like
    PARAMETER N = {n}
    REAL F1(N), F2(N), G(N)
    T1 = 0.25
    T2 = T1 * 4.0
    DO I = 1, N
      F1(I) = F1(I) * T1 + T2
    ENDDO
    DO I2 = 1, N
      F2(I2) = F1(I2) - G(I2)
    ENDDO
    DO I3 = 1, N
      G(I3) = F2(I3) * 0.5
    ENDDO
    END
    """


def _buk_like(n: int) -> str:
    # NAS buk: bucket sort -- the paper reports zero loops amenable to
    # analysis (index arrays everywhere). We model the analyzable shell:
    # straight-line setup only, no loop nests at all.
    return f"""
    PROGRAM buk_like
    PARAMETER N = {n}
    REAL KEY(N)
    S0 = 0.0
    S1 = S0 + 1.0
    KEY(1) = S1
    KEY(2) = S1 * 2.0
    END
    """


def _mxm_like(n: int) -> str:
    # dnasa7 'mxm': unrolled matrix multiply; already in an efficient
    # order (the paper neither improves nor degrades it on the i860).
    return f"""
    PROGRAM mxm_like
    PARAMETER N = {n}
    REAL A(N,N), B(N,N), C(N,N)
    DO J = 1, N
      DO K = 1, N
        DO I = 1, N
          C(I,J) = C(I,J) + A(I,K) * B(K,J)
        ENDDO
      ENDDO
    ENDDO
    END
    """


def _emit_like(n: int) -> str:
    # dnasa7 'emit': vortex emission; already memory order (paper: 1.00).
    return f"""
    PROGRAM emit_like
    PARAMETER N = {n}
    REAL PS(N,N), GAM(N)
    DO I = 1, N
      GAM(I) = GAM(I) * 0.98
    ENDDO
    DO J = 1, N
      DO I2 = 1, N
        PS(I2,J) = PS(I2,J) + GAM(I2) * 0.1
      ENDDO
    ENDDO
    END
    """


APP_SOURCES = {
    "arc2d_like": _arc2d_like,
    "simple_like": _simple_like,
    "gmtry_like": _gmtry_like,
    "vpenta_like": _vpenta_like,
    "btrix_like": _btrix_like,
    "hydro2d_like": _hydro2d_like,
    "tomcatv_like": _tomcatv_like,
    "swm256_like": _swm256_like,
    "applu_like": _applu_like,
    "appsp_like": _appsp_like,
    "appbt_like": _appbt_like,
    "trfd_like": _trfd_like,
    "qcd_like": _qcd_like,
    "mdg_like": _mdg_like,
    "ocean_like": _ocean_like,
    "wave_like": _wave_like,
    "linpackd_like": _linpackd_like,
    "su2cor_like": _su2cor_like,
    "mg3d_like": _mg3d_like,
    "fftpde_like": _fftpde_like,
    "doduc_like": _doduc_like,
    "adm_like": _adm_like,
    "spec77_like": _spec77_like,
    "track_like": _track_like,
    "bdna_like": _bdna_like,
    "dyfesm_like": _dyfesm_like,
    "flo52_like": _flo52_like,
    "ora_like": _ora_like,
    "matrix300_like": _matrix300_like,
    "mdljdp2_like": _mdljdp2_like,
    "embar_like": _embar_like,
    "mgrid_like": _mgrid_like,
    "fpppp_like": _fpppp_like,
    "buk_like": _buk_like,
    "mxm_like": _mxm_like,
    "emit_like": _emit_like,
}


def app_names() -> list[str]:
    return sorted(APP_SOURCES)


def build_app(name: str, n: int = 24) -> Program:
    """Build a suite application at problem size ``n``."""
    try:
        factory = APP_SOURCES[name]
    except KeyError:
        raise KeyError(f"unknown suite program {name!r}") from None
    return parse_program(factory(n))
