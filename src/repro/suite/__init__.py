"""Benchmark suite: registry, curated sets, and the kernels themselves.

The registry (:mod:`repro.suite.registry`) maps names to
:class:`SuiteEntry` builders — the paper's kernels, synthetic
application stand-ins for the Perfect/SPEC/NAS programs, PolyBench-style
kernels, and AI-era nests — grouped into curated :class:`SuiteSet`\\ s
(``paper``, ``polybench``, ``ai``, ``smoke``, ``all``) that the set
runner (:mod:`repro.suite.runner`) executes whole.

This package module must not import :mod:`repro.suite.runner`: the
runner pulls in :mod:`repro.experiments.common`, whose package imports
the table experiments, which import this module — importing the runner
here would close that cycle. Import it directly where needed.
"""

from repro.suite.apps import APP_SOURCES, app_names, build_app
from repro.suite.kernels import (
    CHOLESKY_FORMS,
    MATMUL_ORDERS,
    adi,
    cholesky,
    erlebacher,
    jacobi,
    matmul,
    spd_init,
    transpose,
)
from repro.suite.registry import (
    SETS,
    SUITE,
    SuiteEntry,
    SuiteSet,
    add_entry,
    entry_footprint,
    get_entry,
    get_set,
    register,
    register_set,
    set_names,
    suite_entries,
)

__all__ = [
    "APP_SOURCES",
    "CHOLESKY_FORMS",
    "MATMUL_ORDERS",
    "SETS",
    "SUITE",
    "SuiteEntry",
    "SuiteSet",
    "add_entry",
    "adi",
    "app_names",
    "build_app",
    "cholesky",
    "entry_footprint",
    "erlebacher",
    "get_entry",
    "get_set",
    "jacobi",
    "matmul",
    "register",
    "register_set",
    "set_names",
    "spd_init",
    "suite_entries",
    "transpose",
]
