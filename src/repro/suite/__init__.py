"""Benchmark suite: the paper's kernels plus synthetic application
stand-ins for the Perfect/SPEC/NAS programs."""

from repro.suite.apps import APP_SOURCES, app_names, build_app
from repro.suite.kernels import (
    CHOLESKY_FORMS,
    MATMUL_ORDERS,
    adi,
    cholesky,
    erlebacher,
    jacobi,
    matmul,
    spd_init,
    transpose,
)
from repro.suite.registry import SUITE, SuiteEntry, get_entry, suite_entries

__all__ = [
    "APP_SOURCES",
    "CHOLESKY_FORMS",
    "MATMUL_ORDERS",
    "SUITE",
    "SuiteEntry",
    "adi",
    "app_names",
    "build_app",
    "cholesky",
    "erlebacher",
    "get_entry",
    "jacobi",
    "matmul",
    "spd_init",
    "suite_entries",
    "transpose",
]
