"""CLI: ``python -m repro.suite [categories...] [--time] [--no-ledger]``.

Lists the benchmark suite registry. With ``--time``, each program is
additionally run through the Compound driver under a span tracer and the
table gains per-kernel wall-time and remark-count columns — the quick way
to spot which kernel a compile-time regression comes from. Timed runs
append a record to the run ledger (``--no-ledger`` or ``REPRO_LEDGER=0``
skips it; see ``python -m repro report``).
"""

from __future__ import annotations

import sys

from repro.ir.visit import iter_loops
from repro.model import CostModel
from repro.obs import LedgerError, Obs, use_obs
from repro.stats.report import render_table
from repro.suite.registry import suite_entries
from repro.transforms import compound


def main(argv: list[str]) -> int:
    args = list(argv)
    want_time = "--time" in args
    if want_time:
        args.remove("--time")
    no_ledger = "--no-ledger" in args
    if no_ledger:
        args.remove("--no-ledger")
    categories = tuple(args) or None

    rows = []
    timings: dict[str, dict[str, float]] = {}
    for entry in suite_entries(categories):
        program = entry.program()
        loops = sum(1 for _ in iter_loops(program))
        nests = sum(1 for l in program.top_loops if l.depth >= 2)
        row = {
            "Program": entry.name,
            "Category": entry.category,
            "Default N": entry.default_n,
            "Loops": loops,
            "Nests": nests,
            "Statements": len(program.statements),
        }
        if want_time:
            obs = Obs()
            with use_obs(obs):
                with obs.span("suite.compound", program=entry.name):
                    compound(program, CostModel())
            (span,) = obs.tracer.find("suite.compound")
            row["Compound ms"] = span.duration * 1e3
            row["Remarks"] = len(obs.remarks)
            timings[entry.name] = {
                "wall_s": span.duration,
                "cpu_s": span.cpu,
                "calls": 1,
            }
        rows.append(row)
    print(render_table(rows, title=f"Suite registry ({len(rows)} programs)"))
    if want_time and not no_ledger:
        from repro.obs import ledger

        try:
            ledger.append_record(
                ledger.make_record(
                    "suite",
                    list(argv),
                    config={"categories": list(categories or ()),
                            "programs": len(rows)},
                    phases=timings,
                )
            )
        except LedgerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
