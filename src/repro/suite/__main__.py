"""CLI: the suite registry and the whole-set runner.

Usage::

    python -m repro.suite [categories...] [--time] [--no-ledger]
    python -m repro.suite list [--sets] [categories...]
    python -m repro.suite run SET [options]

Bare invocation (or ``list``) prints the registry table, optionally
filtered by category; ``list --sets`` prints the curated set table
instead. With ``--time``, each listed program is additionally run
through the Compound driver under a span tracer and the table gains
per-kernel wall-time and remark-count columns — the quick way to spot
which kernel a compile-time regression comes from. Timed runs append a
record to the run ledger (``--no-ledger`` or ``REPRO_LEDGER=0`` skips
it; see ``python -m repro report``).

``run SET`` executes every member of the named set — whole sets only,
no cherry-picking — sharded over worker processes, and prints the
per-entry result table. Options:

    --instance NAME  named size instance: mini | small | medium (medium)
    --jobs N         worker processes (default $REPRO_JOBS, else 1)
    --line N         cache line size in bytes for scoring (128)
    --capacity N     FA-LRU capacity in lines for scoring (512)
    --report FILE    write a markdown/HTML report artifact to FILE
    --format FMT     report format: md | html (md; .html paths imply html)
    --no-ledger      skip the run-ledger append for this run

Exit status: 0 when every entry succeeded; 1 when any entry failed (the
report marks the failed rows) or the ledger is unwritable; 2 on usage
errors.
"""

from __future__ import annotations

import sys

from repro.ir.visit import iter_loops
from repro.model import CostModel
from repro.obs import LedgerError, Obs, use_obs
from repro.stats.report import render_table
from repro.suite.registry import SETS, suite_entries
from repro.transforms import compound


def _flag(args: list[str], name: str) -> bool:
    if name in args:
        args.remove(name)
        return True
    return False


def _option(args: list[str], name: str, default: str) -> str:
    if name in args:
        index = args.index(name)
        args.pop(index)
        if index >= len(args):
            print(f"missing value for {name}", file=sys.stderr)
            raise SystemExit(2)
        return args.pop(index)
    return default


def _list_main(args: list[str]) -> int:
    want_time = _flag(args, "--time")
    no_ledger = _flag(args, "--no-ledger")
    want_sets = _flag(args, "--sets")
    if want_sets:
        rows = [
            {
                "Set": s.name,
                "Members": len(s),
                "Description": s.description,
            }
            for s in (SETS[name] for name in sorted(SETS))
        ]
        print(render_table(rows, title=f"Suite sets ({len(rows)})"))
        return 0
    categories = tuple(args) or None

    rows = []
    timings: dict[str, dict[str, float]] = {}
    for entry in suite_entries(categories):
        program = entry.program()
        loops = sum(1 for _ in iter_loops(program))
        nests = sum(1 for l in program.top_loops if l.depth >= 2)
        row = {
            "Program": entry.name,
            "Category": entry.category,
            "Default N": entry.default_n,
            "Loops": loops,
            "Nests": nests,
            "Statements": len(program.statements),
        }
        if want_time:
            obs = Obs()
            with use_obs(obs):
                with obs.span("suite.compound", program=entry.name):
                    compound(program, CostModel())
            (span,) = obs.tracer.find("suite.compound")
            row["Compound ms"] = span.duration * 1e3
            row["Remarks"] = len(obs.remarks)
            timings[entry.name] = {
                "wall_s": span.duration,
                "cpu_s": span.cpu,
                "calls": 1,
            }
        rows.append(row)
    print(render_table(rows, title=f"Suite registry ({len(rows)} programs)"))
    if want_time and not no_ledger:
        from repro.obs import ledger

        try:
            ledger.append_record(
                ledger.make_record(
                    "suite",
                    list(args) + (["--time"] if want_time else []),
                    config={"categories": list(categories or ()),
                            "programs": len(rows)},
                    phases=timings,
                )
            )
        except LedgerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    return 0


def _run_main(args: list[str]) -> int:
    from repro.obs import ledger
    from repro.obs.report import render_set_report
    from repro.suite.runner import DEFAULT_CAPACITY, DEFAULT_LINE, run_set

    no_ledger = _flag(args, "--no-ledger")
    instance = _option(args, "--instance", "medium")
    report_path = _option(args, "--report", "")
    fmt = _option(args, "--format", "")
    try:
        jobs_text = _option(args, "--jobs", "")
        jobs = int(jobs_text) if jobs_text else None
        line = int(_option(args, "--line", str(DEFAULT_LINE)))
        capacity = int(_option(args, "--capacity", str(DEFAULT_CAPACITY)))
    except ValueError as exc:
        print(f"suite run: expected an integer: {exc}", file=sys.stderr)
        return 2
    if not fmt:
        fmt = "html" if report_path.endswith((".html", ".htm")) else "md"
    if fmt not in ("md", "html"):
        print(f"suite run: unknown format {fmt!r}; choose md or html",
              file=sys.stderr)
        return 2
    bad = [a for a in args if a.startswith("-")]
    if bad:
        print(f"suite run: unknown arguments {bad}", file=sys.stderr)
        return 2
    if len(args) != 1:
        print("suite run: exactly one set name expected; see --help "
              "(python -m repro.suite list --sets shows the sets)",
              file=sys.stderr)
        return 2

    obs = Obs()
    try:
        with use_obs(obs):
            result = run_set(
                args[0], instance=instance, jobs=jobs, line=line,
                capacity=capacity,
            )
    except KeyError as exc:
        print(f"suite run: {exc.args[0]}", file=sys.stderr)
        return 2
    except Exception as exc:  # a broken instance name, not a broken entry
        print(f"suite run: {exc}", file=sys.stderr)
        return 1

    payload = result.report_payload()
    rows = [
        {
            "Program": row["program"],
            "Category": row["category"],
            "N": row["n"] if row["n"] is not None else "—",
            "Status": row["status"],
            "Miss before": (
                f"{row['miss_before']:.4f}" if row["miss_before"] is not None else "—"
            ),
            "Miss after": (
                f"{row['miss_after']:.4f}" if row["miss_after"] is not None else "—"
            ),
            "Wall ms": row["wall_ms"],
        }
        for row in payload["rows"]
    ]
    ok = payload["entries"] - payload["failed"]
    print(render_table(
        rows,
        title=(
            f"Suite set '{result.set_name}' ({ok}/{payload['entries']} ok, "
            f"instance {result.instance}, {result.jobs} job(s))"
        ),
    ))
    for failure in result.failures:
        print(f"FAILED {failure.name}: {failure.error}", file=sys.stderr)

    if report_path:
        text = render_set_report(payload, fmt=fmt)
        try:
            with open(report_path, "w") as handle:
                handle.write(text)
        except OSError as exc:
            print(f"cannot write {report_path}: {exc}", file=sys.stderr)
            return 1
        print(
            f"wrote {fmt} report over {payload['entries']} entries to "
            f"{report_path}",
            file=sys.stderr,
        )

    if not no_ledger:
        try:
            ledger.append_record(
                ledger.make_record(
                    "suite.set",
                    [result.set_name],
                    config={
                        "set": result.set_name,
                        "instance": result.instance,
                        "jobs": result.jobs,
                        "line": result.line,
                        "capacity": result.capacity,
                    },
                    phases=ledger.phases_from_obs(obs),
                    metrics=ledger.counters_from_obs(obs),
                    bench=result.ledger_payload(),
                )
            )
        except LedgerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    return 0 if result.ok else 1


def main(argv: list[str]) -> int:
    args = list(argv)
    if "-h" in args or "--help" in args:
        print(__doc__)
        return 0
    if args and args[0] == "run":
        return _run_main(args[1:])
    if args and args[0] == "list":
        return _list_main(args[1:])
    return _list_main(args)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
