"""CLI: ``python -m repro.suite`` — list the benchmark suite registry."""

from __future__ import annotations

import sys

from repro.ir.visit import iter_loops
from repro.stats.report import render_table
from repro.suite.registry import suite_entries


def main(argv: list[str]) -> int:
    categories = tuple(argv) or None
    rows = []
    for entry in suite_entries(categories):
        program = entry.program()
        loops = sum(1 for _ in iter_loops(program))
        nests = sum(1 for l in program.top_loops if l.depth >= 2)
        rows.append(
            {
                "Program": entry.name,
                "Category": entry.category,
                "Default N": entry.default_n,
                "Loops": loops,
                "Nests": nests,
                "Statements": len(program.statements),
            }
        )
    print(render_table(rows, title=f"Suite registry ({len(rows)} programs)"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
