"""repro.locality — reuse-distance engines and analytic miss-ratio prediction.

Three layers, cheapest last:

* :mod:`repro.locality.histogram` — trace-driven engines: the exact
  per-reference analyzer over the event trace and the batched
  (optionally SHARDS-sampled) variant over the block trace;
* :mod:`repro.locality.analytic` — the trace-free predictor deriving a
  reuse-distance histogram and FA-LRU / set-associative miss ratios
  from affine subscripts, bounds, and layout;
* :mod:`repro.locality.polysum` — exact iteration counting by
  polynomial summation, shared by the predictor.

See ``docs/locality.md`` for the formulas and exactness conditions.
"""

from repro.locality.analytic import (
    LocalityPrediction,
    ReuseTerm,
    predict_locality,
)
from repro.locality.histogram import (
    BlockReuseAnalyzer,
    PerRefReuseAnalyzer,
    RefProfile,
    per_ref_profile,
    sampled_profile,
)
from repro.locality.polysum import (
    Poly,
    PolySumError,
    chain_count,
    weighted_chain_count,
)

__all__ = [
    "BlockReuseAnalyzer",
    "LocalityPrediction",
    "PerRefReuseAnalyzer",
    "Poly",
    "PolySumError",
    "RefProfile",
    "ReuseTerm",
    "chain_count",
    "per_ref_profile",
    "predict_locality",
    "sampled_profile",
    "weighted_chain_count",
]
