"""Exact nested-iteration counting via polynomial summation.

The analytic locality predictor needs *exact* dynamic access counts for
loop chains with affine (possibly triangular) bounds — trace mass must
equal predicted mass, or every downstream ratio drifts. Trip counts of
triangular loops are polynomials in the outer indices, so the count of a
whole chain is obtained by summing polynomials over affine ranges
(Faulhaber's formulas), innermost-out.

:class:`Poly` is a tiny multivariate polynomial over loop-variable names
with ``Fraction`` coefficients — enough machinery for degree-bounded
closed forms, far short of a computer-algebra system.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import Mapping

from repro.ir.affine import Affine

__all__ = ["Poly", "PolySumError", "chain_count", "weighted_chain_count"]

#: Monomial: sorted tuple of (name, power); () is the constant monomial.
Monomial = tuple[tuple[str, int], ...]


class PolySumError(ValueError):
    """The chain cannot be counted exactly by polynomial summation."""


class Poly:
    """Multivariate polynomial with Fraction coefficients (immutable)."""

    __slots__ = ("terms",)

    def __init__(self, terms: Mapping[Monomial, Fraction] | None = None):
        cleaned = {
            m: Fraction(c) for m, c in (terms or {}).items() if c != 0
        }
        object.__setattr__(self, "terms", cleaned)

    def __setattr__(self, *_):  # pragma: no cover - defensive
        raise AttributeError("Poly is immutable")

    # ------------------------------------------------------------------
    @staticmethod
    def constant(value) -> "Poly":
        return Poly({(): Fraction(value)})

    @staticmethod
    def var(name: str) -> "Poly":
        return Poly({((name, 1),): Fraction(1)})

    @staticmethod
    def from_affine(form: Affine) -> "Poly":
        terms: dict[Monomial, Fraction] = {(): Fraction(form.const)}
        for name, coeff in form.terms:
            terms[((name, 1),)] = Fraction(coeff)
        return Poly(terms)

    # ------------------------------------------------------------------
    def __add__(self, other: "Poly") -> "Poly":
        if not isinstance(other, Poly):
            other = Poly.constant(other)
        terms = dict(self.terms)
        for m, c in other.terms.items():
            terms[m] = terms.get(m, Fraction(0)) + c
        return Poly(terms)

    __radd__ = __add__

    def __neg__(self) -> "Poly":
        return Poly({m: -c for m, c in self.terms.items()})

    def __sub__(self, other: "Poly") -> "Poly":
        return self + (-other if isinstance(other, Poly) else Poly.constant(-other))

    def __mul__(self, other) -> "Poly":
        if not isinstance(other, Poly):
            other = Poly.constant(other)
        terms: dict[Monomial, Fraction] = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                powers: dict[str, int] = {}
                for name, p in m1 + m2:
                    powers[name] = powers.get(name, 0) + p
                mono = tuple(sorted(powers.items()))
                terms[mono] = terms.get(mono, Fraction(0)) + c1 * c2
        return Poly(terms)

    __rmul__ = __mul__

    def evaluate(self, env: Mapping[str, int]) -> Fraction:
        total = Fraction(0)
        for mono, coeff in self.terms.items():
            value = coeff
            for name, power in mono:
                if name not in env:
                    raise PolySumError(f"unbound variable {name!r}")
                value *= Fraction(env[name]) ** power
            total += value
        return total

    def substitute(self, name: str, replacement: "Poly") -> "Poly":
        """Replace ``name`` with a polynomial (for x = lb + s*t rewrites)."""
        out = Poly()
        for mono, coeff in self.terms.items():
            piece = Poly.constant(coeff)
            for n, power in mono:
                base = replacement if n == name else Poly.var(n)
                for _ in range(power):
                    piece = piece * base
            out = out + piece
        return out

    @property
    def names(self) -> frozenset[str]:
        return frozenset(n for mono in self.terms for n, _ in mono)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Poly({self.terms!r})"


@lru_cache(maxsize=32)
def _power_sum(k: int) -> tuple[Fraction, ...]:
    """Coefficients of F_k(n) = sum_{x=1..n} x^k as a degree-(k+1) poly.

    Returned low-order first: F_k(n) = sum_i coef[i] * n^i. Derived by
    solving the forward-difference recurrence rather than hard-coding
    Bernoulli numbers, so any degree the nest analysis reaches is
    supported.
    """
    # F_k(n) - F_k(n-1) = n^k and F_k(0) = 0 determine the polynomial.
    # Solve for coefficients c_1..c_{k+1} via the binomial expansion of
    # F_k(n) - F_k(n-1).
    from math import comb

    size = k + 2  # coefficients c_0..c_{k+1}; c_0 = 0
    # difference[j] = coefficient of n^j in F_k(n) - F_k(n-1)
    # = sum_i c_i * (n^i - (n-1)^i) = sum_i c_i * sum_{j<i} comb(i,j) (-1)^(i-1-j) n^j
    # Match with n^k. Solve triangular system top-down (i = k+1 .. 1).
    coefs = [Fraction(0)] * size
    target = [Fraction(0)] * size
    target[k] = Fraction(1)
    for i in range(size - 1, 0, -1):
        # Highest-degree contribution of c_i to the difference is at n^(i-1)
        # with factor comb(i, i-1) = i.
        coefs[i] = target[i - 1] / i
        for j in range(i - 1):
            sign = -1 if (i - 1 - j) % 2 else 1
            target[j] -= coefs[i] * comb(i, j) * sign
    return tuple(coefs)


def _sum_powers(k: int, bound: Poly) -> Poly:
    """``sum_{x=1}^{bound} x^k`` with a polynomial upper bound."""
    coefs = _power_sum(k)
    total = Poly()
    power = Poly.constant(1)
    for coeff in coefs:
        if coeff:
            total = total + power * coeff
        power = power * bound
    return total


def sum_over_range(body: Poly, var: str, lb: Poly, ub: Poly) -> Poly:
    """``sum_{var=lb}^{ub} body`` assuming ``lb <= ub + 1`` pointwise.

    The bounds must not mention ``var``. The empty-range case
    ``ub = lb - 1`` evaluates to zero exactly; ranges emptier than that
    are outside the closed form (callers guard with interval checks).
    """
    if var in lb.names or var in ub.names:
        raise PolySumError(f"bound of {var} depends on itself")
    # Group body terms by the power of `var`.
    by_power: dict[int, Poly] = {}
    for mono, coeff in body.terms.items():
        power = 0
        rest: list[tuple[str, int]] = []
        for name, p in mono:
            if name == var:
                power = p
            else:
                rest.append((name, p))
        rest_mono = tuple(rest)
        by_power.setdefault(power, Poly())
        by_power[power] = by_power[power] + Poly({rest_mono: coeff})
    total = Poly()
    shifted_lb = lb - Poly.constant(1)
    for power, factor in by_power.items():
        piece = _sum_powers(power, ub) - _sum_powers(power, shifted_lb)
        total = total + factor * piece
    return total


def _loop_range(loop) -> tuple[Poly, Poly, str]:
    """Normalized (lb, ub, var) with step folded in; step +-1 only."""
    if loop.step == 1:
        return Poly.from_affine(loop.lb), Poly.from_affine(loop.ub), loop.var
    if loop.step == -1:
        # DO v = lb, ub, -1 iterates ub..lb; the multiset of values is the
        # reversed range, and counting does not care about order.
        return Poly.from_affine(loop.ub), Poly.from_affine(loop.lb), loop.var
    raise PolySumError(f"step {loop.step} outside the exact closed forms")


def _guard_nonempty(loop, env: Mapping[str, int]) -> bool:
    """Can this loop's range be empty somewhere in the iteration space?

    The closed forms tolerate exactly-empty ranges (ub = lb - 1) but not
    "negative" ones. Checked by interval arithmetic over the outer envs
    the caller has already pinned; symbolic leftovers fail safe.
    """
    span = loop.ub - loop.lb + loop.step
    resolved = span.partial_evaluate(env)
    if resolved.is_constant():
        return resolved.const >= 0
    return True  # symbolic: give the closed form a chance; modes check later


def chain_count(chain, env: Mapping[str, int]) -> int:
    """Exact number of iterations of a loop chain (outermost first).

    Raises:
        PolySumError: non-unit steps, self-referential bounds, or ranges
            that can go negative (where the closed form is invalid).
    """
    return weighted_chain_count(chain, env)


def weighted_chain_count(
    chain,
    env: Mapping[str, int],
    modes: Mapping[str, str] | None = None,
) -> int:
    """Exact weighted iteration count of a chain (outermost first).

    ``modes`` maps a loop var to one of:

    * ``"full"`` (default) — the loop contributes its trip count;
    * ``"pairs"`` — the loop contributes (trip - 1): the number of
      *consecutive-iteration pairs*, used to count reuse events carried
      by that loop;
    * ``"once"`` — the loop contributes 1 when its range is non-empty
      (evaluated at its lower bound), used for levels whose sweep sits
      inside a reuse window.

    The result is exact for affine bounds with steps of +-1; anything
    else raises :class:`PolySumError`.
    """
    modes = modes or {}
    body = Poly.constant(1)
    for loop in reversed(list(chain)):
        lb, ub, var = _loop_range(loop)
        mode = modes.get(var, "full")
        if mode == "once":
            body = body.substitute(var, lb)
            continue
        summed = sum_over_range(body, var, lb, ub)
        if mode == "pairs":
            # pairs = full sum minus one body evaluation (at the first
            # iteration): sum_{v=lb+1}^{ub} body(v).
            summed = summed - body.substitute(var, lb)
        body = summed
    # All loop vars are bound by now; parameters come from env.
    value = body.evaluate(env)
    if value.denominator != 1:
        raise PolySumError(f"non-integral count {value}")
    result = int(value)
    if result < 0:
        raise PolySumError(f"negative count {result}: range underflow")
    return result
