"""Trace-driven reuse-distance engines: exact per-reference and sampled.

Two consumers over the execution trace:

* :class:`PerRefReuseAnalyzer` — exact LRU stack distances (line
  granularity) attributed to the *reference slot* that issued each
  access, driven by the per-event trace (:mod:`repro.exec.codegen`).
  The global histogram equals :class:`repro.cache.reuse
  .ReuseDistanceAnalyzer`'s; the per-slot split is what the analytic
  predictor is validated against.
* :class:`BlockReuseAnalyzer` — a fast aggregate variant for the batched
  engine (:mod:`repro.exec.blocktrace`): line extraction and
  adjacent-line collapsing are vectorized, and an optional SHARDS-style
  spatial sampling filter processes only a hash-selected subset of lines
  through the order-statistics structure, scaling distances and counts
  by the inverse rate (bounded-error histogram at a fraction of the
  cost).

Slot identity follows ``Assign.refs`` (write first, reads after), the
same convention as :class:`repro.dependence.pairs.RefSite`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.cache.reuse import COLD, ReuseProfile, _Fenwick
from repro.ir.nodes import Program
from repro.ir.visit import iter_statements

__all__ = [
    "COLD",
    "BlockReuseAnalyzer",
    "PerRefReuseAnalyzer",
    "RefProfile",
    "per_ref_profile",
    "sampled_profile",
]


@dataclass
class RefProfile:
    """Reuse-distance histogram of one reference slot."""

    sid: int
    slot: int
    array: str
    histogram: Counter = field(default_factory=Counter)
    accesses: int = 0

    @property
    def cold(self) -> int:
        return self.histogram.get(COLD, 0)

    def hits_for_capacity(self, lines: int) -> int:
        return sum(
            count
            for distance, count in self.histogram.items()
            if distance != COLD and distance < lines
        )


def _stream_slots(program: Program) -> dict[int, tuple[tuple[int, str], ...]]:
    """Per sid: (refs-slot, array) of each *emitting* slot in stream order.

    The trace engines emit reads left-to-right, then the write; rank-0
    scalar references emit nothing. ``refs`` is write-first, so the read
    at ``reads[i]`` sits at refs slot ``i + 1``.
    """
    table: dict[int, tuple[tuple[int, str], ...]] = {}
    for stmt in iter_statements(program):
        order: list[tuple[int, str]] = []
        for i, ref in enumerate(stmt.reads):
            if ref.rank:
                order.append((i + 1, ref.array))
        if stmt.lhs.rank:
            order.append((0, stmt.lhs.array))
        table[stmt.sid] = tuple(order)
    return table


class PerRefReuseAnalyzer:
    """Exact per-reference reuse distances over one event trace."""

    def __init__(self, program: Program, line: int = 128, max_accesses: int = 1 << 22):
        if line & (line - 1):
            raise ValueError("line size must be a power of two")
        self._shift = line.bit_length() - 1
        self._slots = _stream_slots(program)
        self._cursor: dict[int, int] = {sid: 0 for sid in self._slots}
        self.profiles: dict[tuple[int, int], RefProfile] = {}
        for sid, order in self._slots.items():
            for slot, array in order:
                self.profiles[(sid, slot)] = RefProfile(sid, slot, array)
        self.total = ReuseProfile()
        self._last_time: dict[int, int] = {}
        self._clock = 0
        self._fenwick = _Fenwick(max_accesses)

    def __call__(self, address: int, write: bool = False, sid: int = -1) -> None:
        order = self._slots[sid]
        cursor = self._cursor[sid]
        slot, _ = order[cursor]
        self._cursor[sid] = (cursor + 1) % len(order)
        profile = self.profiles[(sid, slot)]
        profile.accesses += 1
        self.total.accesses += 1

        line = address >> self._shift
        time = self._clock
        self._clock += 1
        previous = self._last_time.get(line)
        if previous is None:
            profile.histogram[COLD] += 1
            self.total.histogram[COLD] += 1
        else:
            distance = self._fenwick.prefix(time - 1) - self._fenwick.prefix(previous)
            profile.histogram[distance] += 1
            self.total.histogram[distance] += 1
            self._fenwick.add(previous, -1)
        self._fenwick.add(time, 1)
        self._last_time[line] = time


def per_ref_profile(
    program: Program, line: int = 128, params: Mapping[str, int] | None = None
) -> PerRefReuseAnalyzer:
    """Run the event trace through the exact per-reference analyzer."""
    from repro.exec.codegen import compile_trace

    analyzer = PerRefReuseAnalyzer(program, line=line)
    compile_trace(program, params).run(analyzer)
    return analyzer


# ----------------------------------------------------------------------
# Batched / sampled variant
# ----------------------------------------------------------------------

#: SHARDS hash modulus (power of two so the threshold is a bit mask).
_SHARDS_MOD = 1 << 24


def _mix_lines(lines: np.ndarray) -> np.ndarray:
    """splitmix64-style avalanche of line ids (vectorized, unsigned)."""
    z = lines.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


class BlockReuseAnalyzer:
    """Aggregate reuse-distance histogram over :class:`AccessBlock`\\ s.

    ``sample_rate`` below 1.0 enables SHARDS spatial sampling: only lines
    whose hash falls under the threshold pass through the exact
    order-statistics path; measured distances and counts are scaled by
    ``1/sample_rate``. ``sample_rate=1.0`` reproduces the exact
    aggregate histogram (adjacent equal lines are collapsed vectorized —
    a zero-distance reuse needs no tree walk).
    """

    def __init__(
        self,
        line: int = 128,
        sample_rate: float = 1.0,
        max_accesses: int = 1 << 22,
    ):
        if line & (line - 1):
            raise ValueError("line size must be a power of two")
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        self._shift = line.bit_length() - 1
        self._threshold = int(round(sample_rate * _SHARDS_MOD))
        self._scale = _SHARDS_MOD / self._threshold
        self.sampled = self._threshold < _SHARDS_MOD
        self.profile = ReuseProfile()
        #: Adjacent-repeat count — exact zero-distance hits, never scaled.
        self._zero_repeats = 0
        self._last_line: int = -1
        self._last_time: dict[int, int] = {}
        self._clock = 0
        self._fenwick = _Fenwick(max_accesses)

    def on_block(self, block) -> None:
        lines = block.addresses >> self._shift
        n = lines.shape[0]
        if n == 0:
            return
        self.profile.accesses += n
        # Collapse runs of equal adjacent lines: every repeat is an exact
        # zero-distance reuse regardless of sampling.
        boundary = np.empty(n, dtype=bool)
        boundary[0] = int(lines[0]) != self._last_line
        np.not_equal(lines[1:], lines[:-1], out=boundary[1:])
        starts = lines[boundary]
        self._zero_repeats += n - int(starts.shape[0])
        self._last_line = int(lines[-1])
        if self.sampled:
            keep = (_mix_lines(starts) & np.uint64(_SHARDS_MOD - 1)) < np.uint64(
                self._threshold
            )
            starts = starts[keep]
        self._consume(starts.tolist())

    def _consume(self, starts: list[int]) -> None:
        histogram = self.profile.histogram
        last_time = self._last_time
        fenwick = self._fenwick
        clock = self._clock
        for line in starts:
            previous = last_time.get(line)
            if previous is None:
                histogram[COLD] += 1
            else:
                distance = fenwick.prefix(clock - 1) - fenwick.prefix(previous)
                histogram[distance] += 1
                fenwick.add(previous, -1)
            fenwick.add(clock, 1)
            last_time[line] = clock
            clock += 1
        self._clock = clock

    def scaled_profile(self) -> ReuseProfile:
        """The histogram with sampling compensation applied.

        Sampled-path distances and counts (including its zero-distance
        measurements — true small distances whose intervening lines were
        not sampled) are multiplied by the inverse sampling rate;
        adjacent-repeat zero-distance hits and total accesses are exact.
        """
        out = ReuseProfile(accesses=self.profile.accesses)
        if self._zero_repeats:
            out.histogram[0] += self._zero_repeats
        for distance, count in self.profile.histogram.items():
            if not self.sampled:
                out.histogram[distance] += count
            elif distance == COLD:
                out.histogram[COLD] += int(round(count * self._scale))
            else:
                out.histogram[int(round(distance * self._scale))] += int(
                    round(count * self._scale)
                )
        return out


def sampled_profile(
    program: Program,
    line: int = 128,
    params: Mapping[str, int] | None = None,
    sample_rate: float = 1.0,
) -> ReuseProfile:
    """Reuse profile via the batched engine (optionally SHARDS-sampled)."""
    from repro.exec.blocktrace import compile_block_trace

    analyzer = BlockReuseAnalyzer(line=line, sample_rate=sample_rate)
    compile_block_trace(program, params).run(analyzer)
    return analyzer.scaled_profile()
