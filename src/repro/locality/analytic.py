"""Analytic reuse-distance and miss-ratio prediction — no trace required.

Predicts the reuse-distance histogram of a program directly from its
affine subscripts, loop bounds, and the column-major layout, in the
spirit of RefGroup classification (§3 of the paper) extended with
footprint/stack-distance formulas. Where simulation walks the whole
trace (O(accesses)), prediction walks the nest structure (O(slots ×
depth)).

Per reference slot the accesses are partitioned into reuse classes:

* **intra** — later occurrences of an identical reference in the same
  statement body (``C(I,J)`` read + write): tiny distance, always hits.
* **temporal** — carried by an enclosing loop whose index does not
  appear in the address (self-temporal reuse); the distance is the
  *window footprint* — distinct lines the whole loop body touches in
  one iteration of the carrier.
* **spatial** — successive iterations of the smallest-stride address
  variable landing on the same line (self-spatial reuse); distance is
  the footprint of one iteration of that variable's loop.
* **group** — members of a RefGroup (same linear address part, constant
  offsets) reusing lines behind the group leader; distance from the
  iteration lag implied by the subscript deltas.
* **sequential** — an earlier sibling nest (or earlier top-level nest)
  touched the same array: reuse at the footprint of everything between.
* **cold** — first touches, capped at the array's line count.

Counts come from exact polynomial summation over the iteration space
(:mod:`repro.locality.polysum`), so predicted histogram mass equals the
access count by construction; mean trip counts only enter distances.

On a restricted program class — one perfect rectangular nest, unit
steps, every reference invariant or iteration-injective, line size equal
to the element size — the predicted histogram is claimed **exact** and
the fuzz oracle (:mod:`repro.verify.localitycheck`) holds it to that.
"""

from __future__ import annotations

import math
from collections import Counter as _Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.cache.reuse import COLD
from repro.ir.affine import Affine
from repro.ir.nodes import Assign, Loop, Program
from repro.ir.visit import enclosing_loops, iter_statements
from repro.exec.layout import MemoryLayout
from repro.obs import get_obs
from repro.locality.polysum import PolySumError, chain_count, weighted_chain_count

__all__ = ["LocalityPrediction", "ReuseTerm", "predict_locality"]

#: Reuse-class slugs, in rough order of distance.
KINDS = ("intra", "temporal", "spatial", "group", "sequential", "cold")


@dataclass(frozen=True)
class ReuseTerm:
    """``count`` accesses predicted to reuse at stack ``distance`` lines."""

    count: int
    distance: int
    kind: str
    array: str
    sid: int
    slot: int
    carrier: str | None = None


@dataclass
class LocalityPrediction:
    """Predicted reuse-distance histogram and derived miss ratios."""

    program: str
    line: int
    accesses: int
    cold: int
    terms: tuple[ReuseTerm, ...]
    exact: bool

    def predicted_histogram(self) -> _Counter:
        """Distance -> count, with :data:`COLD` for first touches."""
        hist: _Counter = _Counter()
        if self.cold:
            hist[COLD] = self.cold
        for term in self.terms:
            hist[term.distance] += term.count
        return hist

    def hits_for_capacity(self, lines: int) -> int:
        """Accesses predicted to hit a fully-associative LRU cache."""
        return sum(t.count for t in self.terms if t.distance < lines)

    def misses_for_capacity(self, lines: int) -> int:
        return self.accesses - self.hits_for_capacity(lines)

    def hit_rate_for_capacity(self, lines: int, include_cold: bool = False) -> float:
        """Predicted FA-LRU hit rate; cold misses excluded by default.

        Degenerate traces (no accesses, or nothing but cold misses)
        report 1.0, matching :class:`repro.cache.reuse.ReuseProfile`.
        """
        denom = self.accesses if include_cold else self.accesses - self.cold
        if denom <= 0:
            return 1.0
        return self.hits_for_capacity(lines) / denom

    def miss_ratio_for_capacity(self, lines: int) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses_for_capacity(lines) / self.accesses

    def hit_rate_set_assoc(
        self, sets: int, assoc: int, include_cold: bool = False
    ) -> float:
        """Predicted hit rate of a ``sets x assoc`` LRU cache.

        Uses the classic conflict model: an access at stack distance ``d``
        hits iff fewer than ``assoc`` of the ``d`` intervening lines map
        to its set — binomial in ``d`` with ``p = 1/sets`` (Poisson for
        large ``d``).
        """
        hits = 0.0
        for term in self.terms:
            hits += term.count * _hit_probability(term.distance, sets, assoc)
        denom = self.accesses if include_cold else self.accesses - self.cold
        if denom <= 0:
            return 0.0
        return min(hits / denom, 1.0)

    def by_kind(self) -> dict[str, int]:
        out = {kind: 0 for kind in KINDS}
        for term in self.terms:
            out[term.kind] += term.count
        out["cold"] = self.cold
        return out


def _hit_probability(distance: int, sets: int, assoc: int) -> float:
    if distance < assoc:
        return 1.0
    if sets == 1:
        return 1.0 if distance < assoc else 0.0
    if distance <= 512:
        p = 1.0 / sets
        q = 1.0 - p
        prob = 0.0
        for i in range(assoc):
            prob += math.comb(distance, i) * p**i * q ** (distance - i)
        return prob
    lam = distance / sets
    if lam > 700:
        return 0.0
    prob = 0.0
    term = math.exp(-lam)
    for i in range(assoc):
        prob += term
        term *= lam / (i + 1)
    return prob


# ======================================================================
# Slot extraction
# ======================================================================


@dataclass
class _Slot:
    """One emitting (rank >= 1) reference occurrence."""

    sid: int
    slot: int  # index into stmt.refs (0 = write)
    pos: int  # stream position within the innermost body
    array: str
    subs: tuple[Affine, ...]
    chain: tuple[Loop, ...]
    addr: Affine  # byte address, params resolved; vars are loop indices
    coeffs: dict[str, int] = field(default_factory=dict)

    @property
    def varying(self) -> frozenset[str]:
        return frozenset(self.coeffs)

    @property
    def group_key(self):
        """Same linear part + same chain => candidate RefGroup family."""
        return (self.array, self.addr.terms, tuple(id(l) for l in self.chain))

    @property
    def addr_key(self):
        return (self.array, self.addr.terms, self.addr.const)


def _collect_slots(
    program: Program, layout: MemoryLayout, env: Mapping[str, int]
) -> list[_Slot]:
    chains = enclosing_loops(program)
    slots: list[_Slot] = []
    body_pos: dict[tuple[int, ...], int] = {}
    for stmt in iter_statements(program):
        chain = chains[stmt.sid]
        key = tuple(id(l) for l in chain)
        pos = body_pos.get(key, 0)
        emitting = [(i + 1, r) for i, r in enumerate(stmt.reads) if r.rank]
        if stmt.lhs.rank:
            emitting.append((0, stmt.lhs))
        for slot_index, ref in emitting:
            arr = layout[ref.array]
            addr = Affine.constant(arr.base)
            for sub, stride in zip(ref.subs, arr.strides):
                addr = addr + sub * stride - stride
            addr = addr.partial_evaluate(env)
            chain_vars = {l.var for l in chain}
            coeffs = {n: c for n, c in addr.terms if n in chain_vars}
            if addr.names - chain_vars:
                # A subscript references a symbol we could not resolve;
                # treat the leftover as constant zero (defensive).
                addr = Affine.build(coeffs, addr.const)
            slots.append(
                _Slot(stmt.sid, slot_index, pos, ref.array, ref.subs, chain, addr, coeffs)
            )
            pos += 1
        body_pos[key] = pos
    return slots


# ======================================================================
# Trip counts and footprints
# ======================================================================


class _NestModel:
    """Mean trips, footprints, and access counts for one program."""

    def __init__(self, program: Program, layout: MemoryLayout, env: dict[str, int], line: int):
        self.program = program
        self.layout = layout
        self.env = env
        self.line = line
        self.slots = _collect_slots(program, layout, env)
        self.trip: dict[int, int] = {}  # id(loop) -> mean trip count
        self.var_range: dict[int, tuple[int, int]] = {}  # id(loop) -> (lo, hi)
        self._resolve_trips(program.body, dict(env))
        self._foot_cache: dict[tuple[int, int], int] = {}

    # -- trips ---------------------------------------------------------
    @staticmethod
    def _interval(
        aff: Affine, ranges: Mapping[str, tuple[int, int]]
    ) -> tuple[int, int]:
        """Conservative [lo, hi] hull of an affine over variable ranges."""
        lo = hi = aff.const
        for name, coeff in aff.terms:
            v_lo, v_hi = ranges.get(name, (1, 8))
            lo += min(coeff * v_lo, coeff * v_hi)
            hi += max(coeff * v_lo, coeff * v_hi)
        return lo, hi

    def _resolve_trips(
        self,
        body: Iterable,
        mid_env: dict[str, int],
        ranges: dict[str, tuple[int, int]] | None = None,
    ) -> None:
        ranges = {} if ranges is None else ranges
        for node in body:
            if not isinstance(node, Loop):
                continue
            lb = node.lb.partial_evaluate(mid_env)
            ub = node.ub.partial_evaluate(mid_env)
            if lb.is_constant() and ub.is_constant():
                trip = max((ub.const - lb.const + node.step) // node.step, 1)
                mid = (lb.const + ub.const) // 2
            else:  # unresolved symbol: assume a modest trip
                trip, mid = 8, 4
            self.trip[id(node)] = trip
            # Value range: a hull over the whole iteration space (params
            # only resolved), so triangular bounds are not pinned to the
            # midpoint of the enclosing loops.
            l_lo, l_hi = self._interval(node.lb.partial_evaluate(self.env), ranges)
            u_lo, u_hi = self._interval(node.ub.partial_evaluate(self.env), ranges)
            lo, hi = min(l_lo, u_lo), max(l_hi, u_hi)
            self.var_range[id(node)] = (lo, hi)
            inner_env = dict(mid_env)
            inner_env[node.var] = mid
            inner_ranges = dict(ranges)
            inner_ranges[node.var] = (lo, hi)
            self._resolve_trips(node.body, inner_env, inner_ranges)

    def array_lines(self, array: str) -> int:
        return max(1, -(-self.layout[array].total_bytes // self.line))

    def addr_span(self, slot: _Slot) -> tuple[int, int]:
        """Interval [lo, hi] of byte addresses the slot can touch."""
        lo = hi = slot.addr.const
        for loop in slot.chain:
            coeff = slot.coeffs.get(loop.var)
            if not coeff:
                continue
            v_lo, v_hi = self.var_range[id(loop)]
            lo += min(coeff * v_lo, coeff * v_hi)
            hi += max(coeff * v_lo, coeff * v_hi)
        return lo, hi

    def distinct_address_cap(self, slot: _Slot) -> int:
        """Upper bound on distinct addresses the slot touches.

        The address range divided by the gcd of the variable strides caps
        the reachable lattice; for coupled subscripts like ``B(I-J)`` it
        is far below the iteration count (diagonals repeat).
        """
        if not slot.coeffs:
            return 1
        lo, hi = self.addr_span(slot)
        step = math.gcd(*(abs(c) for c in slot.coeffs.values()))
        return (hi - lo) // max(step, 1) + 1

    # -- access counts -------------------------------------------------
    #: Iteration budget for the exact-enumeration fallback.
    _ENUM_LIMIT = 200_000

    def _enumerate_count(
        self, chain, modes: Mapping[str, str] | None = None
    ) -> int | None:
        """Ground-truth iteration count by walking the concrete ranges.

        Only used when polynomial summation declines a chain (step 2,
        coupled bounds); bails out (None) past a fixed budget so suite-
        sized nests never pay O(trips^depth).
        """
        modes = modes or {}
        budget = self._ENUM_LIMIT
        env = dict(self.env)

        def rec(i: int) -> int | None:
            nonlocal budget
            if i == len(chain):
                return 1
            loop = chain[i]
            values = loop.iter_values(env)
            mode = modes.get(loop.var, "full")
            total = 0
            for j, value in enumerate(values):
                budget -= 1
                if budget < 0:
                    return None
                env[loop.var] = value
                below = rec(i + 1)
                env.pop(loop.var, None)
                if below is None:
                    return None
                if not (mode == "pairs" and j == 0):
                    total += below
                if mode == "once":
                    break
            return total

        return rec(0)

    def accesses(self, slot: _Slot) -> int:
        try:
            return chain_count(slot.chain, self.env)
        except PolySumError:
            exact = self._enumerate_count(slot.chain)
            if exact is not None:
                return exact
            count = 1
            for loop in slot.chain:
                count *= self.trip[id(loop)]
            return count

    def carried_count(self, slot: _Slot, carrier_index: int) -> int:
        """Accesses whose previous same-address access is carried by the
        chain level at ``carrier_index`` (a non-varying level)."""
        modes: dict[str, str] = {}
        chain = slot.chain
        modes[chain[carrier_index].var] = "pairs"
        for loop in chain[carrier_index + 1 :]:
            if loop.var not in slot.coeffs:
                modes[loop.var] = "once"
        try:
            return weighted_chain_count(chain, self.env, modes)
        except PolySumError:
            exact = self._enumerate_count(chain, modes)
            if exact is not None:
                return exact
            count = 1
            for i, loop in enumerate(chain):
                trip = self.trip[id(loop)]
                if i == carrier_index:
                    count *= max(trip - 1, 0)
                elif i > carrier_index and loop.var not in slot.coeffs:
                    pass  # once
                else:
                    count *= trip
            return count

    # -- footprints ----------------------------------------------------
    @staticmethod
    def _merge_runs(active: list[tuple[int, int]]) -> tuple[int, int, list[tuple[int, int]]]:
        """Coalesce contiguous sweep axes (sorted by stride ascending).

        When the next stride equals the span of the run so far, the two
        axes sweep one contiguous region (column-major planes); merging
        them is what keeps line counts from double-counting run
        boundaries. Returns (stride, merged trip, unmerged axes).
        """
        stride, trip = active[0]
        rest: list[tuple[int, int]] = []
        for s, t in active[1:]:
            if s == stride * trip:
                trip *= t
            else:
                rest.append((s, t))
        return stride, trip, rest

    def _slot_lines(self, slot: _Slot, sweep: dict[str, int]) -> int:
        """Distinct lines ``slot`` touches sweeping ``sweep`` (var->trip)."""
        active = sorted(
            (abs(slot.coeffs[v]), t) for v, t in sweep.items() if slot.coeffs.get(v)
        )
        if not active:
            return 1
        stride, trip, rest = self._merge_runs(active)
        if stride >= self.line:
            lines = trip
        else:
            lines = min(trip, (trip * stride) // self.line + 1)
        for _, t in rest:
            lines *= t
        return min(lines, self.array_lines(slot.array))

    def run_shape(self, slot: _Slot) -> tuple[int, int]:
        """(stride, effective trip) of the slot's contiguous fast axis
        over its whole iteration space."""
        active = sorted(
            (abs(c), self.trip[id(l)])
            for l in slot.chain
            for v, c in ((l.var, slot.coeffs.get(l.var, 0)),)
            if c
        )
        if not active:
            return 0, 1
        stride, trip, _ = self._merge_runs(active)
        return stride, trip

    def _sweep_groups(self, slots: list[_Slot], sweep_of) -> int:
        """Sum of per-slot line footprints, deduplicating obvious aliases
        (same array + same |stride| multiset over the swept vars)."""
        total = 0
        seen: set = set()
        for s in slots:
            sweep = sweep_of(s)
            sig = (s.array, tuple(sorted(abs(s.coeffs[v]) for v in sweep if s.coeffs.get(v))))
            if sig in seen:
                continue
            seen.add(sig)
            total += self._slot_lines(s, sweep)
        return max(total, 1)

    def window(self, loop: Loop, iters: int = 1) -> int:
        """Distinct lines touched during ``iters`` iterations of ``loop``
        (everything nested deeper sweeps fully)."""
        key = (id(loop), iters)
        cached = self._foot_cache.get(key)
        if cached is not None:
            return cached
        members = [s for s in self.slots if any(l is loop for l in s.chain)]

        def sweep_of(s: _Slot) -> dict[str, int]:
            depth = next(i for i, l in enumerate(s.chain) if l is loop)
            sweep = {l.var: self.trip[id(l)] for l in s.chain[depth + 1 :]}
            if iters > 1:
                sweep[loop.var] = min(iters, self.trip[id(loop)])
            return sweep

        result = self._sweep_groups(members, sweep_of)
        self._foot_cache[key] = result
        return result

    def subtree_footprint(self, node) -> int:
        """Distinct lines one full execution of ``node`` touches."""
        if isinstance(node, Loop):
            return self.window(node, iters=self.trip[id(node)])
        sids = {node.sid} if isinstance(node, Assign) else set()
        members = [s for s in self.slots if s.sid in sids]
        return self._sweep_groups(members, lambda s: {}) if members else 0


# ======================================================================
# The general (model) path
# ======================================================================


def _best_draft(
    model: _NestModel, member: _Slot, others: list[_Slot]
) -> list[tuple[float, int, _Slot]] | None:
    """Drafting pieces of ``member`` behind its family peers.

    A member reuses a line another member touched earlier if some
    iteration-shift vector ``k`` (peer running ``k`` iterations behind,
    outermost loop first) puts the peer's address within a line of the
    member's: ``|off| < line`` for ``off = Δconst + Σ coeff_v * step_v *
    k_v``. This single search covers group-temporal reuse (exact address
    match, e.g. ``U(I,J-1)`` two inner iterations behind ``U(I,J+1)``)
    *and* group-spatial reuse (same line, different element —
    ``U(I-1,J)`` behind ``U(I,J+1)`` one inner iteration earlier when
    rows are contiguous). The shift is searched deepest-loop-first per
    peer, so each peer contributes its cheapest window; a shift of zero
    is the same-instance case and only valid against peers earlier in
    stream order.

    A nonzero ``off`` only shares a line on some alignments: the peer's
    byte sits at ``a - off`` when the member's sits at ``a``, so the
    draft covers alignments with ``0 <= a - off < line``. When the
    member slides by sub-line strides the alignments cycle uniformly
    through multiples of ``gcd(line, strides)``; each alignment takes
    the *smallest* distance among the candidates covering it. Returns
    pieces ``(fraction, distance, peer)`` sorted by distance (fractions
    sum to the covered share), or None when no shift works — that member
    leads its group and pays the line misses.
    """
    chain = member.chain
    line = model.line
    caps = [min(3, max(model.trip[id(l)] - 1, 0)) for l in chain]
    coeffs = [member.coeffs.get(l.var, 0) * l.step for l in chain]

    def min_offset(idx: int, target: int) -> int:
        """Signed offset of min |.|: target + Σ_{e>=idx} coeff_e * k_e,
        |k_e| <= caps[e]."""
        if idx == len(chain):
            return target
        best = None
        for k in range(-caps[idx], caps[idx] + 1):
            got = min_offset(idx + 1, target + coeffs[idx] * k)
            if best is None or abs(got) < abs(best):
                best = got
            if best == 0:
                break
        return best if best is not None else target

    candidates: list[tuple[int, int, _Slot]] = []  # (off, distance, peer)
    for other in others:
        if other is member:
            continue
        delta = member.addr.const - other.addr.const
        if other.pos < member.pos and abs(delta) < line:
            candidates.append((delta, 1, other))
        for depth in range(len(chain) - 1, -1, -1):
            found = None
            for iters in range(1, caps[depth] + 1):
                off = min_offset(depth + 1, delta + coeffs[depth] * iters)
                if abs(off) < line:
                    found = (off, model.window(chain[depth], iters=iters), other)
                    break
            if found is not None:
                candidates.append(found)
                break  # shallower depths only give larger windows
    if not candidates:
        return None

    grain = math.gcd(line, *[abs(c) for c in coeffs if c]) if any(coeffs) else line
    if grain >= line:
        # Alignment is fixed (strides are line multiples) but the base
        # alignment is unknown; treat any in-line offset as covering.
        off, distance, peer = min(candidates, key=lambda c: c[1])
        return [(1.0, distance, peer)]

    classes = range(0, line, grain)
    best_for: dict[int, tuple[int, _Slot]] = {}
    for off, distance, peer in candidates:
        for a in classes:
            if 0 <= a - off < line:
                held = best_for.get(a)
                if held is None or distance < held[0]:
                    best_for[a] = (distance, peer)
    if not best_for:
        return None
    pieces: dict[tuple[int, int], list] = {}
    for distance, peer in best_for.values():
        entry = pieces.setdefault((distance, id(peer)), [0, peer])
        entry[0] += 1
    total = len(classes)
    return sorted(
        ((count / total, distance, peer)
         for (distance, _), (count, peer) in pieces.items()),
        key=lambda piece: piece[1],
    )


def _group_overlap(model: _NestModel, member: _Slot, ahead: _Slot) -> float:
    """Fraction of ``member``'s address span its predecessor also covers.

    RefGroup members with the same linear part but large constant offsets
    (``C(I+J-2)`` vs ``C(I+J+1)`` on tiny trip counts) only draft where
    their footprints intersect; the rest of the member's accesses are
    line leaders. Measured at line granularity so adjacent-line sharing
    still counts.
    """
    m_lo, m_hi = model.addr_span(member)
    a_lo, a_hi = model.addr_span(ahead)
    span = m_hi - m_lo + model.line
    overlap = min(m_hi, a_hi) - max(m_lo, a_lo) + model.line
    if span <= 0:
        return 0.0
    return max(0.0, min(1.0, overlap / span))


def _sequential_fraction(model: _NestModel, slot: _Slot, prev: _Slot) -> float:
    """Fraction of ``slot``'s line visits expected to land on lines the
    earlier toucher ``prev`` actually populated.

    Span overlap alone overstates reuse when the earlier slot walked the
    array sparsely (a 120-byte stride touches ~7% of the lines it spans);
    scale by the density of prev's touched lines inside its own span.
    """
    m_lo, m_hi = model.addr_span(slot)
    p_lo, p_hi = model.addr_span(prev)
    m_span = m_hi - m_lo + model.line
    overlap = min(m_hi, p_hi) - max(m_lo, p_lo) + model.line
    if overlap <= 0 or m_span <= 0:
        return 0.0
    p_span = p_hi - p_lo + model.line
    p_lines = model._slot_lines(
        prev, {l.var: model.trip[id(l)] for l in prev.chain}
    )
    density = min(1.0, p_lines * model.line / p_span)
    return max(0.0, min(1.0, (overlap / m_span) * density))


def _body_alias(
    model: _NestModel, slot: _Slot, touched_order: dict[str, list[_Slot]]
) -> tuple[float, int] | None:
    """Same-body alias estimate: fraction of ``slot``'s line visits that
    land on lines an earlier same-array reference with a *different*
    linear part populated (``A(I-J+4,J+1)`` catching ``A(I+1,J+2)`` one
    outer iteration later). Returns (fraction, distance) or None.
    """
    for prev in reversed(touched_order.get(slot.array, [])):
        if tuple(id(l) for l in prev.chain) != tuple(id(l) for l in slot.chain):
            continue
        if prev.group_key == slot.group_key:
            continue  # same family: handled by the group terms
        coeffs = [abs(c) for c in slot.coeffs.values()]
        coeffs += [abs(c) for c in prev.coeffs.values()]
        if coeffs:
            g = math.gcd(*coeffs)
            residual = (slot.addr.const - prev.addr.const) % g
            if min(residual, g - residual) >= model.line:
                continue  # incompatible address lattices: never alias
        frac = _sequential_fraction(model, slot, prev)
        if frac <= 0.0:
            continue
        loop = slot.chain[0] if slot.chain else None
        distance = model.window(loop, 1) if loop is not None else 1
        return frac, distance
    return None


def _nearest_earlier_toucher(
    model: _NestModel, slot: _Slot, touched_order: dict[str, list[_Slot]]
) -> tuple[int, _Slot] | None:
    """Sequential-reuse distance (and the earlier slot providing it):
    footprint between this slot and the nearest earlier sibling subtree
    touching the same array."""
    earlier = touched_order.get(slot.array, ())
    for prev in reversed(earlier):
        # Common chain prefix; the reuse happens across the first level
        # where the two slots diverge into sibling subtrees.
        k = 0
        while (
            k < len(prev.chain)
            and k < len(slot.chain)
            and prev.chain[k] is slot.chain[k]
        ):
            k += 1
        prev_top = prev.chain[k] if k < len(prev.chain) else None
        cur_top = slot.chain[k] if k < len(slot.chain) else None
        if prev_top is cur_top:
            continue  # same subtree: handled by intra/group/temporal terms
        scope = slot.chain[k - 1].body if k else model.program.body
        distance = 0
        counting = False
        for node in scope:
            if node is cur_top or (cur_top is None and isinstance(node, Assign) and node.sid == slot.sid):
                break
            if node is prev_top or (
                prev_top is None and isinstance(node, Assign) and node.sid == prev.sid
            ):
                counting = True
            if counting:
                distance += model.subtree_footprint(node)
        if counting:
            return distance, prev
    return None


def _model_terms(
    model: _NestModel,
) -> tuple[list[ReuseTerm], int, int]:
    """The general prediction path: classify every slot's accesses."""
    terms: list[ReuseTerm] = []
    cold_total = 0
    access_total = 0
    claimed: dict[str, int] = {}
    touched_order: dict[str, list[_Slot]] = {}

    # Representatives: first slot (stream order) of each identical-address
    # group within one body; later slots always hit at a tiny distance.
    slots = model.slots
    by_body: dict = {}
    for s in slots:
        by_body.setdefault((tuple(id(l) for l in s.chain),), []).append(s)
    reps: list[_Slot] = []
    dup_terms: list[tuple[_Slot, int, int]] = []
    for body_slots in by_body.values():
        body_slots.sort(key=lambda s: s.pos)
        groups = len({s.addr_key for s in body_slots})
        first: dict = {}
        for s in body_slots:
            if s.addr_key in first:
                dup_terms.append((s, model.accesses(s), max(groups - 1, 1)))
            else:
                first[s.addr_key] = s
                reps.append(s)

    for s, count, distance in dup_terms:
        access_total += count
        terms.append(
            ReuseTerm(count, distance, "intra", s.array, s.sid, s.slot)
        )

    # RefGroup families: representatives sharing (array, linear part,
    # chain). Each member searches for the cheapest peer to draft
    # behind (group-temporal or group-spatial); members for which no
    # iteration shift reaches a peer's line lead the group and pay the
    # line misses.
    families: dict = {}
    for s in reps:
        families.setdefault(s.group_key, []).append(s)
    draft: dict[int, list[tuple[float, int, _Slot]] | None] = {}
    for members in families.values():
        members.sort(key=lambda s: s.pos)
        for s in members:
            draft[id(s)] = (
                _best_draft(model, s, members)
                if len(members) > 1 and s.coeffs
                else None
            )

    for s in reps:
        total = model.accesses(s)
        access_total += total
        if total == 0:
            continue
        # Drafting pieces, each scaled by how much of the member's span
        # its peer actually covers: (fraction, distance), by distance.
        pieces = [
            (frac * _group_overlap(model, s, peer), distance)
            for frac, distance, peer in (draft.get(id(s)) or ())
        ]
        pieces = [(frac, distance) for frac, distance in pieces if frac > 0]

        def emit(count: int, distance: int, kind: str, carrier: str | None = None):
            if count <= 0:
                return
            base = count
            for frac, d in pieces:
                if d >= distance or count <= 0:
                    continue
                near = min(round(base * frac), count)
                if near:
                    terms.append(
                        ReuseTerm(near, d, "group", s.array, s.sid, s.slot, carrier)
                    )
                    count -= near
            if count > 0:
                terms.append(ReuseTerm(count, distance, kind, s.array, s.sid, s.slot, carrier))

        remaining = total
        # Spatial refinement inputs: the smallest-stride varying level.
        f_var = min(s.coeffs, key=lambda v: abs(s.coeffs[v])) if s.coeffs else None
        f_loop = next((l for l in s.chain if l.var == f_var), None)
        f_stride = abs(s.coeffs[f_var]) if f_var else 0
        elems_per_line = model.line // f_stride if 0 < f_stride < model.line else 1

        # Self-temporal reuse carried by non-varying levels.
        for ci in range(len(s.chain) - 1, -1, -1):
            loop = s.chain[ci]
            if loop.var in s.coeffs:
                continue
            count = min(model.carried_count(s, ci), remaining)
            if count <= 0:
                continue
            far = count
            if (
                elems_per_line > 1
                and f_loop is not None
                and any(l is f_loop for l in s.chain[ci + 1 :])
            ):
                # The fast axis sweeps inside the carrier window, so the
                # line is re-touched by the spatial neighbour just before
                # all but the line-head element repeats.
                far = -(-count // elems_per_line)
                emit(count - far, model.window(f_loop), "temporal", carrier=loop.var)
            emit(far, model.window(loop), "temporal", carrier=loop.var)
            remaining -= count

        # Coupled-subscript (diagonal) self-temporal reuse: when the
        # address map is not injective — ``B(I-J)`` walks the same
        # diagonal values for many (I, J) pairs — the accesses beyond the
        # reachable-address count are revisits, one sweep of the
        # shallowest varying loop apart.
        if remaining > 0 and s.coeffs:
            cap = model.distinct_address_cap(s)
            if remaining > cap:
                d_loop = next(l for l in s.chain if l.var in s.coeffs)
                emit(remaining - cap, model.window(d_loop), "temporal", carrier=d_loop.var)
                remaining = cap

        # Self-spatial reuse along the smallest-stride varying level,
        # with contiguous outer axes merged into the run.
        if f_loop is not None and remaining > 0:
            _, trip = model.run_shape(s)
            if f_stride < model.line and trip > 1:
                lines_per_run = min(trip, (trip * f_stride) // model.line + 1)
                spatial = remaining - round(remaining * lines_per_run / trip)
                spatial = max(0, min(spatial, remaining))
                if spatial:
                    emit(spatial, model.window(f_loop), "spatial", carrier=f_var)
                    remaining -= spatial

        if remaining <= 0:
            touched_order.setdefault(s.array, []).append(s)
            continue

        # Line-leader visits: group draft (where the member's footprint
        # overlaps its predecessor's), then sequential reuse or cold.
        if pieces:
            base = remaining
            for frac, d in pieces:
                near = min(round(base * frac), remaining)
                if near:
                    terms.append(
                        ReuseTerm(near, d, "group", s.array, s.sid, s.slot)
                    )
                    remaining -= near
        if remaining > 0:
            alias = _body_alias(model, s, touched_order)
            if alias is not None:
                alias_frac, alias_d = alias
                shared = round(remaining * alias_frac)
                if shared:
                    terms.append(
                        ReuseTerm(shared, max(alias_d, 1), "group", s.array, s.sid, s.slot)
                    )
                remaining -= shared
        if remaining > 0:
            seq = _nearest_earlier_toucher(model, s, touched_order)
            if seq is not None:
                seq_d, seq_prev = seq
                shared = round(remaining * _sequential_fraction(model, s, seq_prev))
                if shared:
                    terms.append(
                        ReuseTerm(shared, max(seq_d, 1), "sequential", s.array, s.sid, s.slot)
                    )
                remaining -= shared
            if remaining > 0:
                limit = model.array_lines(s.array)
                used = claimed.get(s.array, 0)
                cold = min(remaining, max(limit - used, 0))
                claimed[s.array] = used + cold
                cold_total += cold
                leftover = remaining - cold
                if leftover:
                    # More visits than array lines: the surplus re-walks
                    # the array, one whole-program footprint apart.
                    whole = sum(model.subtree_footprint(n) for n in model.program.body)
                    terms.append(
                        ReuseTerm(leftover, max(whole, 1), "sequential", s.array, s.sid, s.slot)
                    )
        touched_order.setdefault(s.array, []).append(s)

    return terms, cold_total, access_total


# ======================================================================
# The exact path
# ======================================================================


def _exact_terms(
    model: _NestModel,
) -> tuple[list[ReuseTerm], int, int] | None:
    """Exact histogram on the restricted class, or None when out of class.

    Class: a single top-level perfect nest, constant rectangular bounds,
    steps of +-1, line == element size everywhere, and every emitting
    slot either loop-invariant or iteration-injective (one unit-coeff
    variable per dimension, every chain variable covering exactly one
    dimension); same-array slots must use identical subscripts.
    """
    program, env, line = model.program, model.env, model.line
    if len(program.body) != 1 or not isinstance(program.body[0], Loop):
        return None
    top = program.body[0]
    if not top.is_perfect_nest():
        return None
    chain = top.perfect_nest_loops()
    body = chain[-1].body
    if not all(isinstance(n, Assign) for n in body):
        return None
    if any(decl.elem_size != line for decl in program.arrays):
        return None
    trips = []
    for loop in chain:
        if loop.step not in (1, -1):
            return None
        lb = loop.lb.partial_evaluate(env)
        ub = loop.ub.partial_evaluate(env)
        if not (lb.is_constant() and ub.is_constant()):
            return None
        if (ub.const - lb.const) * loop.step < 0:
            trips.append(0)
        else:
            trips.append(abs(ub.const - lb.const) + 1)
    n_iter = math.prod(trips)
    chain_vars = {l.var for l in chain}

    slots = model.slots
    by_array: dict[str, tuple] = {}
    for s in slots:
        key = tuple(s.subs)
        if by_array.setdefault(s.array, key) != key:
            return None  # same array, different subscripts: out of class
        if not s.coeffs:
            continue
        if s.varying != chain_vars:
            return None
        seen_vars: set[str] = set()
        for sub in s.subs:
            if len(sub.terms) > 1:
                return None
            for name, coeff in sub.terms:
                if abs(coeff) != 1 or name in seen_vars:
                    return None
                seen_vars.add(name)
        if seen_vars != chain_vars:
            return None

    if n_iter == 0:
        return [], 0, 0

    # Stream positions and identical-address groups of the (one) body.
    positions = sorted(slots, key=lambda s: s.pos)
    group_ids: dict = {}
    for s in positions:
        group_ids.setdefault(s.addr_key, len(group_ids))
    occupants: dict[int, list[int]] = {}
    for s in positions:
        occupants.setdefault(group_ids[s.addr_key], []).append(s.pos)
    pos_group = {s.pos: group_ids[s.addr_key] for s in positions}
    slot_at = {s.pos: s for s in positions}
    varying = {g: bool(slot_at[poss[0]].coeffs) for g, poss in occupants.items()}

    def between(lo: int, hi: int) -> int:
        return len({pos_group[p] for p in range(lo + 1, hi)})

    terms: list[ReuseTerm] = []
    cold = 0
    accesses = n_iter * len(positions)
    for g, poss in occupants.items():
        rep = slot_at[poss[0]]
        if varying[g]:
            cold += n_iter
        else:
            cold += 1
        for prev, cur in zip(poss, poss[1:]):
            terms.append(
                ReuseTerm(
                    n_iter, between(prev, cur), "intra", rep.array, rep.sid, rep.slot
                )
            )
        if not varying[g] and n_iter > 1:
            # Wrap window: tail of the previous instance + head of this
            # one; a varying group present in both halves contributes two
            # distinct lines (different instances, different addresses).
            last, first = poss[-1], poss[0]
            wrap = 0
            for other, other_poss in occupants.items():
                if other == g:
                    continue
                after = any(p > last for p in other_poss)
                before = any(p < first for p in other_poss)
                if varying[other]:
                    wrap += int(after) + int(before)
                else:
                    wrap += int(after or before)
            terms.append(
                ReuseTerm(n_iter - 1, wrap, "temporal", rep.array, rep.sid, rep.slot)
            )
    return terms, cold, accesses


# ======================================================================
# Entry point
# ======================================================================


def predict_locality(
    program: Program,
    line: int = 128,
    params: Mapping[str, int] | None = None,
) -> LocalityPrediction:
    """Predict the reuse-distance histogram of ``program`` analytically.

    ``line`` is the cache-line size in bytes (power of two); ``params``
    overrides the program's default parameter values. The returned
    prediction is flagged ``exact`` when the program falls in the class
    where the histogram is provably exact (see :func:`_exact_terms`);
    otherwise distances are model estimates and only the total mass is
    guaranteed (``sum(histogram) == accesses``).
    """
    if line & (line - 1):
        raise ValueError("line size must be a power of two")
    obs = get_obs()
    env = dict(program.param_env) | dict(params or {})
    with obs.span("locality.predict", program=program.name, line=line):
        layout = MemoryLayout.for_program(program, env)
        model = _NestModel(program, layout, env, line)
        exact = _exact_terms(model)
        if exact is not None:
            terms, cold, accesses = exact
            is_exact = True
        else:
            terms, cold, accesses = _model_terms(model)
            is_exact = False
        prediction = LocalityPrediction(
            program.name, line, accesses, cold, tuple(terms), is_exact
        )
    metrics = obs.metrics
    if metrics.enabled:
        metrics.counter("locality.predictions").inc()
        metrics.counter("locality.slots").inc(len(model.slots))
        for kind, count in prediction.by_kind().items():
            if count:
                metrics.counter(f"locality.accesses.{kind}").inc(count)
    obs.remark(
        "locality",
        "analysis",
        f"{program.name}: {accesses} accesses, {cold} cold, "
        f"{'exact' if is_exact else 'model'} histogram "
        f"({len(model.slots)} slots, line={line})",
        path="exact" if is_exact else "model",
        accesses=accesses,
        cold=cold,
    )
    return prediction
