"""Multi-level memory hierarchy simulation.

The paper's framework step 2 notes that "higher degrees of tiling can be
applied to exploit multi-level caches, the TLB, etc." — this module
provides the measurement substrate: a stack of set-associative levels
(L1, L2, ..., and optionally a TLB modelled as a page-granular cache)
fed by one address stream. An access probes L1; on a miss it falls
through to the next level, and so on. The TLB is probed on every access
independently (address translation happens regardless of cache hits).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.cache import CacheConfig, CacheStats, SetAssocCache

__all__ = ["TLBConfig", "Hierarchy", "HierarchyResult", "DEFAULT_TLB"]


def TLBConfig(entries: int = 64, page: int = 4096, assoc: int | None = None) -> CacheConfig:
    """A TLB as a page-granular fully-associative cache config."""
    assoc = assoc or entries
    return CacheConfig("tlb", size=entries * page, assoc=assoc, line=page)


DEFAULT_TLB = TLBConfig()


@dataclass
class HierarchyResult:
    """Per-level statistics of one simulation."""

    levels: dict[str, CacheStats]
    tlb: CacheStats | None

    def hit_rate(self, level: str) -> float:
        return self.levels[level].hit_rate()

    def memory_cycles(
        self, penalties: dict[str, int], tlb_penalty: int = 0
    ) -> int:
        """Cycles spent below each level: ``misses(level) * penalty``."""
        total = 0
        for name, stats in self.levels.items():
            total += stats.misses * penalties.get(name, 0)
        if self.tlb is not None and tlb_penalty:
            total += self.tlb.misses * tlb_penalty
        return total


class Hierarchy:
    """An inclusive-probe multi-level cache stack."""

    def __init__(
        self,
        configs: list[CacheConfig],
        tlb: CacheConfig | None = None,
    ):
        if not configs:
            raise ValueError("hierarchy needs at least one level")
        self._levels = [SetAssocCache(config) for config in configs]
        self._tlb = SetAssocCache(tlb) if tlb is not None else None

    def access(self, address: int, size: int = 1, write: bool = False) -> int:
        """Access the stack; returns the level index that hit (or
        ``len(levels)`` for memory)."""
        if self._tlb is not None:
            self._tlb.access(address, size, write)
        for index, level in enumerate(self._levels):
            if level.access(address, size, write):
                return index
        return len(self._levels)

    @property
    def result(self) -> HierarchyResult:
        return HierarchyResult(
            levels={
                level.config.name: level.stats for level in self._levels
            },
            tlb=self._tlb.stats if self._tlb is not None else None,
        )
