"""Multi-level memory hierarchy simulation.

The paper's framework step 2 notes that "higher degrees of tiling can be
applied to exploit multi-level caches, the TLB, etc." — this module
provides the measurement substrate: a stack of set-associative levels
(L1, L2, ..., and optionally a TLB modelled as a page-granular cache)
fed by one address stream. An access probes L1; on a miss it falls
through to the next level, and so on. The TLB is probed on every access
independently (address translation happens regardless of cache hits).

Both the scalar :meth:`Hierarchy.access` and the batched
:meth:`Hierarchy.access_block` drive the same per-level state and produce
identical statistics.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.cache.cache import CacheConfig, CacheStats, SetAssocCache
from repro.errors import ReproError

__all__ = [
    "TLBConfig",
    "TLB_LEVEL_NAME",
    "tlb_config",
    "Hierarchy",
    "HierarchyResult",
    "DEFAULT_TLB",
]

#: Reserved level name for the TLB entry. Deliberately not a plain
#: identifier so a user-defined cache level can never collide with it in
#: :attr:`HierarchyResult.levels`.
TLB_LEVEL_NAME = "<tlb>"


def tlb_config(
    entries: int = 64,
    page: int = 4096,
    assoc: int | None = None,
    name: str = TLB_LEVEL_NAME,
) -> CacheConfig:
    """A TLB as a page-granular fully-associative cache config."""
    assoc = assoc or entries
    return CacheConfig(name, size=entries * page, assoc=assoc, line=page)


def TLBConfig(entries: int = 64, page: int = 4096, assoc: int | None = None) -> CacheConfig:
    """Deprecated alias of :func:`tlb_config`.

    Despite the CamelCase name this never was a dataclass constructor —
    it returns a plain :class:`CacheConfig`.
    """
    warnings.warn(
        "TLBConfig is deprecated; use tlb_config()",
        DeprecationWarning,
        stacklevel=2,
    )
    return tlb_config(entries, page, assoc)


DEFAULT_TLB = tlb_config()


@dataclass
class HierarchyResult:
    """Per-level statistics of one simulation."""

    levels: dict[str, CacheStats]
    tlb: CacheStats | None

    def hit_rate(self, level: str) -> float:
        return self.levels[level].hit_rate()

    def memory_cycles(
        self, penalties: dict[str, int], tlb_penalty: int = 0
    ) -> int:
        """Cycles spent below each level: ``misses(level) * penalty``."""
        total = 0
        for name, stats in self.levels.items():
            total += stats.misses * penalties.get(name, 0)
        if self.tlb is not None and tlb_penalty:
            total += self.tlb.misses * tlb_penalty
        return total


class Hierarchy:
    """An inclusive-probe multi-level cache stack."""

    def __init__(
        self,
        configs: list[CacheConfig],
        tlb: CacheConfig | None = None,
    ):
        if not configs:
            raise ValueError("hierarchy needs at least one level")
        for config in configs:
            if config.name == TLB_LEVEL_NAME:
                raise ReproError(
                    f"cache level name {config.name!r} is reserved for the TLB"
                )
        if tlb is not None and any(c.name == tlb.name for c in configs):
            raise ReproError(
                f"cache level name {tlb.name!r} collides with the TLB entry"
            )
        self._levels = [SetAssocCache(config) for config in configs]
        self._tlb = SetAssocCache(tlb) if tlb is not None else None

    def access(self, address: int, size: int = 1, write: bool = False) -> int:
        """Access the stack; returns the level index that hit (or
        ``len(levels)`` for memory)."""
        if self._tlb is not None:
            self._tlb.access(address, size, write)
        for index, level in enumerate(self._levels):
            if level.access(address, size, write):
                return index
        return len(self._levels)

    def access_block(self, addresses, sizes=None) -> np.ndarray:
        """Batched :meth:`access`: returns the hitting level per access.

        Each level sees exactly the accesses that missed every level above
        it, in stream order, so statistics match per-access probing
        bit-for-bit.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        n = int(addresses.shape[0])
        if sizes is not None and not np.isscalar(sizes):
            sizes = np.asarray(sizes, dtype=np.int64)
        if self._tlb is not None and n:
            self._tlb.access_block(addresses, sizes)
        level_of = np.full(n, len(self._levels), dtype=np.int64)
        remaining = np.arange(n)
        cur_addresses = addresses
        cur_sizes = sizes
        for index, level in enumerate(self._levels):
            if cur_addresses.shape[0] == 0:
                break
            result = level.access_block(cur_addresses, cur_sizes)
            level_of[remaining[result.hits]] = index
            miss = ~result.hits
            remaining = remaining[miss]
            cur_addresses = cur_addresses[miss]
            if cur_sizes is not None and not np.isscalar(cur_sizes):
                cur_sizes = cur_sizes[miss]
        return level_of

    @property
    def result(self) -> HierarchyResult:
        return HierarchyResult(
            levels={
                level.config.name: level.stats for level in self._levels
            },
            tlb=self._tlb.stats if self._tlb is not None else None,
        )
