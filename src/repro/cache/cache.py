"""Set-associative cache simulator.

Models a single cache level: configurable total size, associativity, and
line size, with LRU replacement and write-allocate/write-back policy (the
RS/6000 and i860 data caches the paper simulates are both of this shape).
Cold (compulsory) misses are counted separately so hit rates can exclude
them, matching Table 4's "cold misses are not included".

Two entry points drive the same state: the scalar :meth:`SetAssocCache.access`
(one address at a time, the reference oracle) and the batched
:meth:`SetAssocCache.access_block` (a whole address array per call), which
produces bit-identical :class:`CacheStats` and can be freely interleaved
with the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError

__all__ = ["BlockResult", "CacheConfig", "CacheStats", "SetAssocCache"]

#: Lines at or above this number are tracked only in the ``_seen_lines``
#: set, not the bitmap mirror (bounds bitmap memory to 64 MB).
_SEEN_BITMAP_MAX = 1 << 26


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    size: int  # total bytes
    assoc: int  # ways
    line: int  # bytes per line

    def __post_init__(self) -> None:
        if self.size <= 0 or self.assoc <= 0 or self.line <= 0:
            raise ReproError(f"invalid cache geometry {self}")
        if self.size % (self.line * self.assoc):
            raise ReproError(
                f"{self.name}: size {self.size} not divisible by "
                f"line*assoc = {self.line * self.assoc}"
            )
        if self.line & (self.line - 1):
            raise ReproError(f"{self.name}: line size must be a power of two")

    @property
    def sets(self) -> int:
        return self.size // (self.line * self.assoc)


@dataclass
class CacheStats:
    """Access counters for one simulation run."""

    accesses: int = 0
    hits: int = 0
    cold_misses: int = 0
    conflict_misses: int = 0  # capacity + conflict (non-compulsory)

    @property
    def misses(self) -> int:
        return self.cold_misses + self.conflict_misses

    def hit_rate(self, include_cold: bool = False) -> float:
        """Hit fraction in [0, 1]; cold misses excluded by default.

        With ``include_cold=False`` the denominator drops compulsory
        misses (the paper's Table 4 convention). An access-free run
        reports 1.0.
        """
        if include_cold:
            total = self.accesses
            hits = self.hits
        else:
            total = self.accesses - self.cold_misses
            hits = self.hits
        if total <= 0:
            return 1.0
        return hits / total

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.accesses + other.accesses,
            self.hits + other.hits,
            self.cold_misses + other.cold_misses,
            self.conflict_misses + other.conflict_misses,
        )


@dataclass(frozen=True)
class BlockResult:
    """Per-access outcome of one :meth:`SetAssocCache.access_block` call.

    ``hits[i]`` is True when every line touched by access ``i`` hit (the
    scalar :meth:`SetAssocCache.access` return value); ``cold[i]`` counts
    the cold-missed lines of access ``i`` (0 or 1 for non-straddling
    accesses).
    """

    hits: np.ndarray  # bool, one entry per access
    cold: np.ndarray  # int64, cold-missed lines per access

    def __len__(self) -> int:
        return int(self.hits.shape[0])


class SetAssocCache:
    """An LRU set-associative cache over a byte address space."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        # Per-set ordered dict of tags; Python dicts preserve insertion
        # order, so the first key is the LRU line.
        self._sets: list[dict[int, bool]] = [dict() for _ in range(config.sets)]
        self._seen_lines: set[int] = set()
        # Bitmap mirror of ``_seen_lines`` for non-negative lines below
        # ``_SEEN_BITMAP_MAX``: a conservative pre-filter for the batched
        # cold-miss scan (True => definitely seen; False => check the set).
        self._seen_arr = np.zeros(0, dtype=bool)
        self._line_shift = config.line.bit_length() - 1
        self._set_mask = config.sets - 1
        self._sets_pow2 = (config.sets & (config.sets - 1)) == 0

    def _grow_seen(self, line_number: int) -> None:
        size = max(1024, int(self._seen_arr.shape[0]))
        while size <= line_number:
            size *= 2
        grown = np.zeros(size, dtype=bool)
        grown[: self._seen_arr.shape[0]] = self._seen_arr
        self._seen_arr = grown

    def access(self, address: int, size: int = 1, write: bool = False) -> bool:
        """Access ``size`` bytes at ``address``; True when all bytes hit.

        An access spanning two lines touches both (each counted once).
        """
        first = address >> self._line_shift
        last = (address + size - 1) >> self._line_shift
        all_hit = True
        for line in range(first, last + 1):
            if not self._touch_line(line):
                all_hit = False
        return all_hit

    def _touch_line(self, line_number: int) -> bool:
        self.stats.accesses += 1
        if self._sets_pow2:
            index = line_number & self._set_mask
        else:
            index = line_number % self.config.sets
        tag = line_number
        cache_set = self._sets[index]
        if tag in cache_set:
            # LRU update: move to the back.
            del cache_set[tag]
            cache_set[tag] = True
            self.stats.hits += 1
            return True
        if line_number in self._seen_lines:
            self.stats.conflict_misses += 1
        else:
            self.stats.cold_misses += 1
            self._seen_lines.add(line_number)
            if 0 <= line_number < _SEEN_BITMAP_MAX:
                if line_number >= self._seen_arr.shape[0]:
                    self._grow_seen(line_number)
                self._seen_arr[line_number] = True
        if len(cache_set) >= self.config.assoc:
            cache_set.pop(next(iter(cache_set)))  # evict LRU
        cache_set[tag] = True
        return False

    # ------------------------------------------------------------------
    # Batched path
    # ------------------------------------------------------------------
    def access_block(self, addresses, sizes=None) -> BlockResult:
        """Access a whole address array; bit-identical to scalar calls.

        ``addresses`` is an int array; ``sizes`` an int array of the same
        length, a scalar, or None (single-byte accesses). Equivalent to
        calling :meth:`access` once per element in order, but the line/set
        extraction is vectorized and the LRU bookkeeping runs over a
        duplicate-compressed per-set stream.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        n = int(addresses.shape[0])
        if n == 0:
            return BlockResult(
                np.zeros(0, dtype=bool), np.zeros(0, dtype=np.int64)
            )
        shift = self._line_shift
        first = addresses >> shift
        if sizes is None:
            last = first
        else:
            last = (addresses + np.asarray(sizes, dtype=np.int64) - 1) >> shift
        counts = last - first + 1
        if int(counts.max()) == 1:
            hit, cold = self._touch_line_block(first)
            return BlockResult(hit, cold.astype(np.int64))
        # Straddling accesses touch first..last in order; expand to one
        # entry per touched line, then fold results back per access.
        starts = np.cumsum(counts) - counts
        total = int(counts.sum())
        lines = np.repeat(first, counts) + (
            np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        )
        hit, cold = self._touch_line_block(lines)
        access_hit = np.logical_and.reduceat(hit, starts)
        access_cold = np.add.reduceat(cold.astype(np.int64), starts)
        return BlockResult(access_hit, access_cold)

    def _touch_line_block(self, lines: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Touch every line in ``lines`` in order; returns (hit, cold) masks.

        The scalar LRU semantics are preserved exactly by exploiting two
        invariants: (1) a line equal to the immediately preceding access in
        its *set's* stream is resident and already MRU, so it hits with no
        state change; (2) set states are independent, so sets can be
        replayed one at a time as long as each set's internal order is kept
        (stable sort). Cold/conflict classification is per line and a line
        maps to exactly one set, so it is unaffected by the regrouping.
        """
        m = int(lines.shape[0])
        hit = np.zeros(m, dtype=bool)
        cold = np.zeros(m, dtype=bool)
        # Cold misses are LRU-independent: an access is cold iff it is the
        # global first touch of its line, i.e. the first in-block
        # occurrence of a line not in ``_seen_lines``. (A first-ever touch
        # can never hit: resident lines are always a subset of seen
        # lines.) Classify them for the whole block up front so the LRU
        # replay below only has to produce hit flags. The bitmap mirror
        # pre-filters definitely-seen lines, so the O(m log m) unique scan
        # runs only over first-touch candidates — near-empty on a warm
        # cache.
        seen = self._seen_lines
        seen_arr = self._seen_arr
        if (
            seen_arr.shape[0]
            and int(lines.min()) >= 0
            and int(lines.max()) < seen_arr.shape[0]
        ):
            cand = np.flatnonzero(~seen_arr[lines])
        else:
            cand = None
        if cand is None or cand.shape[0]:
            if cand is None:
                uniq, first_at = np.unique(lines, return_index=True)
            else:
                uniq, first_at = np.unique(lines[cand], return_index=True)
                first_at = cand[first_at]
            if seen:
                fresh = np.fromiter(
                    (line not in seen for line in uniq.tolist()),
                    dtype=bool,
                    count=uniq.shape[0],
                )
                uniq = uniq[fresh]
                first_at = first_at[fresh]
            cold[first_at] = True
            seen.update(uniq.tolist())
            if uniq.shape[0]:
                lo, hi = int(uniq[0]), int(uniq[-1])  # uniq is sorted
                if 0 <= lo and hi < _SEEN_BITMAP_MAX:
                    if hi >= self._seen_arr.shape[0]:
                        self._grow_seen(hi)
                    self._seen_arr[uniq] = True
                else:
                    inb = (uniq >= 0) & (uniq < self._seen_arr.shape[0])
                    self._seen_arr[uniq[inb]] = True
        # Pass 1: globally adjacent repeats of one line are guaranteed hits.
        keep = np.empty(m, dtype=bool)
        keep[0] = True
        np.not_equal(lines[1:], lines[:-1], out=keep[1:])
        hit[~keep] = True
        idx = np.flatnonzero(keep)
        klines = lines[idx]
        if self._sets_pow2:
            ksets = klines & self._set_mask
        else:
            ksets = klines % self.config.sets
        # Pass 2: group by set, keeping each set's order (stable sort).
        order = np.argsort(ksets, kind="stable")
        slines = klines[order]
        ssets = ksets[order]
        spos = idx[order]
        # Adjacent repeats within one set's stream are hits too (equal
        # lines imply equal sets, so a plain neighbour test suffices).
        dup = np.zeros(slines.shape[0], dtype=bool)
        if slines.shape[0] > 1:
            np.equal(slines[1:], slines[:-1], out=dup[1:])
        hit[spos[dup]] = True
        live = ~dup
        plines = slines[live]
        psets = ssets[live]
        ppos = spos[live]
        if plines.shape[0]:
            seg_starts = np.flatnonzero(
                np.r_[True, psets[1:] != psets[:-1]]
            )
            seg_ends = np.append(seg_starts[1:], psets.shape[0])
            if self.config.assoc == 1:
                self._replay_direct_mapped(
                    plines, psets, ppos, seg_starts, seg_ends, hit
                )
            else:
                self._replay_sets(
                    plines, psets, ppos, seg_starts, seg_ends, hit
                )
        stats = self.stats
        hits = int(np.count_nonzero(hit))
        colds = int(np.count_nonzero(cold))
        stats.accesses += m
        stats.hits += hits
        stats.cold_misses += colds
        stats.conflict_misses += m - hits - colds
        return hit, cold

    def _replay_sets(
        self, plines, psets, ppos, seg_starts, seg_ends, hit
    ) -> None:
        """LRU-replay the compressed stream, set by set.

        assoc == 2 has an exact closed form (:meth:`_replay_two_way`).
        Otherwise this dispatches between a round-based vectorized replay
        (processes the r-th survivor of every active set at once) and a
        plain per-set Python loop; the vectorized path pays a fixed NumPy
        overhead per round, so it only wins when many sets are active per
        round, and it pads the streams into a (rounds x sets) matrix, so
        it is also skipped when segment lengths are badly skewed.
        """
        seg_lens = seg_ends - seg_starts
        if self.config.assoc == 2:
            self._replay_two_way(plines, psets, ppos, seg_starts, seg_lens, hit)
            return
        m = int(plines.shape[0])
        max_len = int(seg_lens.max())
        n_segs = int(seg_starts.shape[0])
        if (
            m >= 1024
            and m // max_len >= 8
            and max_len * n_segs <= 4 * m
            and int(plines.min()) >= 0
        ):
            self._replay_sets_rounds(plines, psets, ppos, seg_starts, seg_lens, hit)
        else:
            self._replay_sets_scalar(plines, psets, ppos, seg_starts, seg_ends, hit)

    def _replay_sets_scalar(
        self, plines, psets, ppos, seg_starts, seg_ends, hit
    ) -> None:
        cache_sets = self._sets
        assoc = self.config.assoc
        for s, e in zip(seg_starts.tolist(), seg_ends.tolist()):
            cache_set = cache_sets[int(psets[s])]
            tags = plines[s:e].tolist()
            pos = ppos[s:e]
            for j, tag in enumerate(tags):
                if tag in cache_set:
                    del cache_set[tag]
                    cache_set[tag] = True
                    hit[pos[j]] = True
                    continue
                if len(cache_set) >= assoc:
                    cache_set.pop(next(iter(cache_set)))
                cache_set[tag] = True

    def _replay_two_way(
        self, plines, psets, ppos, seg_starts, seg_lens, hit
    ) -> None:
        """Exact closed form for assoc == 2 — no per-round loop at all.

        A 2-way LRU set always contains the two most recently used
        *distinct* lines, in recency order. On a stream with no adjacent
        repeats those are simply the previous two entries, so an access
        hits iff it equals the line two positions back in its set's
        stream. Pre-block residents are prepended as synthetic entries
        (LRU first), which makes the warm-start hits and the final state
        fall out of the same formula; the only adjacent repeat that can
        survive the caller's dedup — a first survivor equal to the
        pre-block MRU — is removed (and counted as a hit) beforehand.
        Cross-segment comparisons are inherently safe: equal lines imply
        the same set, and a line lives in exactly one set.
        """
        cache_sets = self._sets
        n_segs = int(seg_starts.shape[0])
        m = int(plines.shape[0])
        uset = psets[seg_starts].tolist()
        prefixes = [list(cache_sets[s]) for s in uset]  # LRU-first
        plen = np.fromiter((len(p) for p in prefixes), np.int64, count=n_segs)
        comb_lens = plen + seg_lens
        comb_starts = np.cumsum(comb_lens) - comb_lens
        total = int(comb_lens.sum())
        comb = np.empty(total, dtype=np.int64)
        pos = np.full(total, -1, dtype=np.int64)  # ppos, or -1 = synthetic
        starts_list = comb_starts.tolist()
        for k, pre in enumerate(prefixes):
            s = starts_list[k]
            for j, line in enumerate(pre):
                comb[s + j] = line
        seg_of = np.repeat(np.arange(n_segs, dtype=np.int64), seg_lens)
        offs = np.arange(m, dtype=np.int64) - np.repeat(seg_starts, seg_lens)
        dest = comb_starts[seg_of] + plen[seg_of] + offs
        comb[dest] = plines
        pos[dest] = ppos
        seg_id = np.repeat(np.arange(n_segs, dtype=np.int64), comb_lens)
        dup = np.zeros(total, dtype=bool)
        np.equal(comb[1:], comb[:-1], out=dup[1:])
        if dup.any():
            hit[pos[dup & (pos >= 0)]] = True  # junction: resident MRU hits
            keep = ~dup
            comb = comb[keep]
            pos = pos[keep]
            seg_id = seg_id[keep]
        hit2 = np.zeros(comb.shape[0], dtype=bool)
        np.equal(comb[2:], comb[:-2], out=hit2[2:])
        hit[pos[hit2 & (pos >= 0)]] = True
        ends = np.flatnonzero(np.r_[seg_id[1:] != seg_id[:-1], True])
        seg_firsts = np.r_[0, ends[:-1] + 1]
        has2 = ends > seg_firsts
        last = comb[ends].tolist()
        second = comb[np.maximum(ends - 1, 0)].tolist()
        for k, sidx in enumerate(uset):
            cache_set = cache_sets[sidx]
            cache_set.clear()
            if has2[k]:
                cache_set[second[k]] = True
            cache_set[last[k]] = True

    def _replay_sets_rounds(
        self, plines, psets, ppos, seg_starts, seg_lens, hit
    ) -> None:
        """Vectorized LRU replay: lockstep rounds across active sets.

        Each set's state is a row of the ``ways`` matrix, MRU-first and
        padded with -1 (valid entries always form a prefix, so dropping
        the last column on a miss evicts the LRU line exactly when the set
        is full). Survivors are scattered into a (rounds x sets) matrix by
        intra-segment position, with segments ordered longest-first: round
        ``r`` then processes a *contiguous row prefix* of the state matrix
        — column slices and O(assoc) selects, no per-round fancy indexing.
        Requires non-negative lines (the -1 padding must not alias a real
        line); the caller falls back to the scalar replay otherwise.
        """
        assoc = self.config.assoc
        cache_sets = self._sets
        n_segs = int(seg_starts.shape[0])
        m = int(plines.shape[0])
        max_len = int(seg_lens.max())
        by_len = np.argsort(-seg_lens, kind="stable")
        rank = np.empty(n_segs, dtype=np.int64)
        rank[by_len] = np.arange(n_segs, dtype=np.int64)
        seg_of = np.repeat(rank, seg_lens)
        offs = np.arange(m, dtype=np.int64) - np.repeat(seg_starts, seg_lens)
        lines2d = np.empty((max_len, n_segs), dtype=np.int64)
        lines2d[offs, seg_of] = plines
        hits2d = np.zeros((max_len, n_segs), dtype=bool)
        counts = np.bincount(offs)  # active sets per round, non-increasing
        ways = np.full((n_segs, assoc), -1, dtype=np.int64)
        uset = psets[seg_starts].tolist()
        ranks = rank.tolist()
        for k, sidx in enumerate(uset):
            resident = cache_sets[sidx]
            if resident:
                row = list(resident)  # first key = LRU
                row.reverse()  # MRU-first
                ways[ranks[k], : len(row)] = row
        for r, k in enumerate(counts.tolist()):
            active = ways[:k]
            lines_r = lines2d[r, :k]
            eq = active == lines_r[:, None]
            # cum[:, j] == "matched within ways[0..j]"; column j+1 keeps
            # its value iff the match is at or before way j (the shift
            # stops there), else it takes way j's old line (LRU shift).
            cum = np.logical_or.accumulate(eq, axis=1)
            ways[:k, 1:] = np.where(cum[:, :-1], active[:, 1:], active[:, :-1])
            ways[:k, 0] = lines_r
            hits2d[r, :k] = cum[:, -1]
        hit[ppos[hits2d[offs, seg_of]]] = True
        for k, sidx in enumerate(uset):
            cache_set = cache_sets[sidx]
            cache_set.clear()
            for line in ways[ranks[k], ::-1].tolist():  # LRU-first insertion
                if line >= 0:
                    cache_set[line] = True

    def _replay_direct_mapped(
        self, plines, psets, ppos, seg_starts, seg_ends, hit
    ) -> None:
        """assoc==1 fast path: after duplicate compression, only the first
        survivor of each set segment can hit (against the pre-block
        resident); every later survivor was separated from its previous
        same-set occurrence by a different line, which evicted it."""
        cache_sets = self._sets
        heads = psets[seg_starts].tolist()
        head_lines = plines[seg_starts].tolist()
        tail_lines = plines[seg_ends - 1].tolist()
        head_pos = ppos[seg_starts]
        head_hit = np.fromiter(
            (
                line in cache_sets[sidx]
                for sidx, line in zip(heads, head_lines)
            ),
            dtype=bool,
            count=len(heads),
        )
        hit[head_pos[head_hit]] = True
        for sidx, line in zip(heads, tail_lines):
            cache_set = cache_sets[sidx]
            cache_set.clear()
            cache_set[line] = True

    def flush(self) -> None:
        """Invalidate all lines (cold-miss tracking is preserved)."""
        for cache_set in self._sets:
            cache_set.clear()

    def reset_stats(self) -> None:
        self.stats = CacheStats()
