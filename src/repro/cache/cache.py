"""Set-associative cache simulator.

Models a single cache level: configurable total size, associativity, and
line size, with LRU replacement and write-allocate/write-back policy (the
RS/6000 and i860 data caches the paper simulates are both of this shape).
Cold (compulsory) misses are counted separately so hit rates can exclude
them, matching Table 4's "cold misses are not included".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = ["CacheConfig", "CacheStats", "SetAssocCache"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    size: int  # total bytes
    assoc: int  # ways
    line: int  # bytes per line

    def __post_init__(self) -> None:
        if self.size <= 0 or self.assoc <= 0 or self.line <= 0:
            raise ReproError(f"invalid cache geometry {self}")
        if self.size % (self.line * self.assoc):
            raise ReproError(
                f"{self.name}: size {self.size} not divisible by "
                f"line*assoc = {self.line * self.assoc}"
            )
        if self.line & (self.line - 1):
            raise ReproError(f"{self.name}: line size must be a power of two")

    @property
    def sets(self) -> int:
        return self.size // (self.line * self.assoc)


@dataclass
class CacheStats:
    """Access counters for one simulation run."""

    accesses: int = 0
    hits: int = 0
    cold_misses: int = 0
    conflict_misses: int = 0  # capacity + conflict (non-compulsory)

    @property
    def misses(self) -> int:
        return self.cold_misses + self.conflict_misses

    def hit_rate(self, include_cold: bool = False) -> float:
        """Hit fraction in [0, 1]; cold misses excluded by default.

        With ``include_cold=False`` the denominator drops compulsory
        misses (the paper's Table 4 convention). An access-free run
        reports 1.0.
        """
        if include_cold:
            total = self.accesses
            hits = self.hits
        else:
            total = self.accesses - self.cold_misses
            hits = self.hits
        if total <= 0:
            return 1.0
        return hits / total

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.accesses + other.accesses,
            self.hits + other.hits,
            self.cold_misses + other.cold_misses,
            self.conflict_misses + other.conflict_misses,
        )


class SetAssocCache:
    """An LRU set-associative cache over a byte address space."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        # Per-set ordered dict of tags; Python dicts preserve insertion
        # order, so the first key is the LRU line.
        self._sets: list[dict[int, bool]] = [dict() for _ in range(config.sets)]
        self._seen_lines: set[int] = set()
        self._line_shift = config.line.bit_length() - 1
        self._set_mask = config.sets - 1
        self._sets_pow2 = (config.sets & (config.sets - 1)) == 0

    def access(self, address: int, size: int = 1, write: bool = False) -> bool:
        """Access ``size`` bytes at ``address``; True when all bytes hit.

        An access spanning two lines touches both (each counted once).
        """
        first = address >> self._line_shift
        last = (address + size - 1) >> self._line_shift
        all_hit = True
        for line in range(first, last + 1):
            if not self._touch_line(line):
                all_hit = False
        return all_hit

    def _touch_line(self, line_number: int) -> bool:
        self.stats.accesses += 1
        if self._sets_pow2:
            index = line_number & self._set_mask
        else:
            index = line_number % self.config.sets
        tag = line_number
        cache_set = self._sets[index]
        if tag in cache_set:
            # LRU update: move to the back.
            del cache_set[tag]
            cache_set[tag] = True
            self.stats.hits += 1
            return True
        if line_number in self._seen_lines:
            self.stats.conflict_misses += 1
        else:
            self.stats.cold_misses += 1
            self._seen_lines.add(line_number)
        if len(cache_set) >= self.config.assoc:
            cache_set.pop(next(iter(cache_set)))  # evict LRU
        cache_set[tag] = True
        return False

    def flush(self) -> None:
        """Invalidate all lines (cold-miss tracking is preserved)."""
        for cache_set in self._sets:
            cache_set.clear()

    def reset_stats(self) -> None:
        self.stats = CacheStats()
