"""Exact reuse-distance (LRU stack distance) analysis.

The reuse distance of an access is the number of *distinct* cache lines
touched since the previous access to the same line (infinite for cold
accesses). It characterizes locality independently of any particular
cache size: a fully associative LRU cache of capacity C hits exactly the
accesses with reuse distance < C. That equivalence is the classic Mattson
stack-distance result, and the test suite checks it against the cache
simulator directly.

The implementation keeps the LRU stack in an order-statistics structure
(a Fenwick tree over access timestamps), giving O(log n) per access.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.ir.nodes import Program

__all__ = ["ReuseProfile", "ReuseDistanceAnalyzer", "reuse_profile"]

#: Distance bucket used for cold (first-touch) accesses.
COLD = -1


class _Fenwick:
    """Fenwick tree counting live timestamps."""

    def __init__(self, capacity: int):
        self.size = capacity
        self.tree = [0] * (capacity + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self.size:
            self.tree[index] += delta
            index += index & (-index)

    def prefix(self, index: int) -> int:
        """Sum of entries 0..index inclusive."""
        index += 1
        total = 0
        while index > 0:
            total += self.tree[index]
            index -= index & (-index)
        return total


@dataclass
class ReuseProfile:
    """Histogram of reuse distances (line granularity)."""

    histogram: Counter = field(default_factory=Counter)
    accesses: int = 0

    @property
    def cold(self) -> int:
        return self.histogram.get(COLD, 0)

    def hits_for_capacity(self, lines: int) -> int:
        """Accesses a fully-associative LRU cache of that many lines hits."""
        return sum(
            count
            for distance, count in self.histogram.items()
            if distance != COLD and distance < lines
        )

    def hit_rate_for_capacity(self, lines: int, include_cold: bool = False) -> float:
        denom = self.accesses if include_cold else self.accesses - self.cold
        if denom <= 0:
            return 1.0
        return self.hits_for_capacity(lines) / denom

    def percentile(self, fraction: float) -> int:
        """Smallest distance d such that >= fraction of (warm) reuses have
        distance <= d; the 'working set knee'."""
        warm = self.accesses - self.cold
        if warm <= 0:
            return 0
        target = warm * fraction
        running = 0
        for distance in sorted(d for d in self.histogram if d != COLD):
            running += self.histogram[distance]
            if running >= target:
                return distance
        return max((d for d in self.histogram if d != COLD), default=0)


class ReuseDistanceAnalyzer:
    """Streaming exact reuse-distance computation over cache lines."""

    def __init__(self, line: int = 128, max_accesses: int = 1 << 22):
        if line & (line - 1):
            raise ValueError("line size must be a power of two")
        self._shift = line.bit_length() - 1
        self.profile = ReuseProfile()
        self._last_time: dict[int, int] = {}
        self._clock = 0
        self._fenwick = _Fenwick(max_accesses)

    def __call__(self, address: int, write: bool = False, sid: int = -1) -> None:
        line = address >> self._shift
        time = self._clock
        self._clock += 1
        self.profile.accesses += 1
        previous = self._last_time.get(line)
        if previous is None:
            self.profile.histogram[COLD] += 1
        else:
            # Distinct lines touched strictly after `previous`:
            distance = self._fenwick.prefix(time - 1) - self._fenwick.prefix(previous)
            self.profile.histogram[distance] += 1
            self._fenwick.add(previous, -1)
        self._fenwick.add(time, 1)
        self._last_time[line] = time


def reuse_profile(
    program: Program, line: int = 128, params=None, max_accesses: int = 1 << 22
) -> ReuseProfile:
    """Reuse-distance profile of a program's compiled trace.

    ``max_accesses`` sizes the order-statistics tree; raise it for traces
    longer than the default four million accesses.
    """
    from repro.exec.codegen import compile_trace

    analyzer = ReuseDistanceAnalyzer(line=line, max_accesses=max_accesses)
    compile_trace(program, params).run(analyzer)
    return analyzer.profile
