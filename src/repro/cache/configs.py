"""Cache geometries used throughout the paper's evaluation.

* ``CACHE1`` — IBM RS/6000 model 540 data cache: 64KB, 4-way set
  associative, 128-byte lines (Tables 3 and 4).
* ``CACHE2`` — Intel i860 data cache: 8KB, 2-way, 32-byte lines (Table 4).
* ``SPARC2`` — Sun Sparc2: 64KB direct-mapped, 32-byte lines (Figure 2
  and Table 1 machines; geometry from contemporary documentation).
"""

from __future__ import annotations

from repro.cache.cache import CacheConfig

__all__ = ["CACHE1", "CACHE2", "SPARC2", "ALL_CONFIGS", "line_elements"]

CACHE1 = CacheConfig("cache1-rs6000", size=64 * 1024, assoc=4, line=128)
CACHE2 = CacheConfig("cache2-i860", size=8 * 1024, assoc=2, line=32)
SPARC2 = CacheConfig("sparc2", size=64 * 1024, assoc=1, line=32)

ALL_CONFIGS = (CACHE1, CACHE2, SPARC2)


def line_elements(config: CacheConfig, elem_size: int = 8) -> int:
    """Cache line size in array elements (the cost model's ``cls``)."""
    return max(config.line // elem_size, 1)
