"""Trace-driven cache simulation substrate."""

from repro.cache.cache import BlockResult, CacheConfig, CacheStats, SetAssocCache
from repro.cache.hierarchy import (
    DEFAULT_TLB,
    Hierarchy,
    HierarchyResult,
    TLBConfig,
    tlb_config,
)
from repro.cache.configs import ALL_CONFIGS, CACHE1, CACHE2, SPARC2, line_elements
from repro.cache.reuse import ReuseDistanceAnalyzer, ReuseProfile, reuse_profile

__all__ = [
    "ALL_CONFIGS",
    "BlockResult",
    "DEFAULT_TLB",
    "Hierarchy",
    "HierarchyResult",
    "TLBConfig",
    "tlb_config",
    "CACHE1",
    "CACHE2",
    "CacheConfig",
    "CacheStats",
    "SPARC2",
    "ReuseDistanceAnalyzer",
    "ReuseProfile",
    "SetAssocCache",
    "line_elements",
    "reuse_profile",
]
