"""Run-history reporting: ``python -m repro report``.

Renders the run ledger (see :mod:`repro.obs.ledger`) as a markdown or
HTML artifact comparing the **latest** run of each kind against its
history: phase wall-times vs. the median of earlier runs, counter
drift, and — for benchmark records — the per-kernel speedup/accuracy
trajectory. The same artifact is uploaded from CI so a regression is
diagnosable from the report alone, without rerunning anything.
"""

from __future__ import annotations

import html as _html
from typing import Sequence

__all__ = [
    "build_report",
    "render_markdown",
    "render_html",
    "render_report",
    "render_set_report",
]


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if not n:
        return 0.0
    mid = n // 2
    return ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2


def _total_wall(record: dict) -> float:
    return sum(row.get("wall_s") or 0.0 for row in record.get("phases", {}).values())


def build_report(records: list[dict], history: int = 20) -> dict:
    """Digest ledger records into a renderable structure.

    Returns ``{"overview": [...], "kinds": [...], "bench": [...]}`` where
    each ``kinds`` entry compares the latest run of one (kind, run_id)
    stream against earlier runs of the same stream (same command + seed +
    config — the replay-stable identity), and ``bench`` tracks per-kernel
    benchmark rows run over run.
    """
    overview = [
        {
            "time": r.get("time", ""),
            "kind": r.get("kind", "?"),
            "run_id": r.get("run_id", ""),
            "git_sha": r.get("git_sha") or "",
            "argv": " ".join(r.get("argv", [])),
            "wall_s": round(_total_wall(r), 3),
        }
        for r in records[-history:]
    ]

    streams: dict[tuple, list[dict]] = {}
    for record in records:
        streams.setdefault(
            (record.get("kind", "?"), record.get("run_id", "")), []
        ).append(record)

    kinds = []
    for (kind, run_id), runs in streams.items():
        latest = runs[-1]
        earlier = runs[:-1]
        phase_rows = []
        for name, row in latest.get("phases", {}).items():
            prior = [
                r["phases"][name]["wall_s"]
                for r in earlier
                if name in r.get("phases", {})
            ]
            baseline = _median(prior) if prior else None
            wall = row.get("wall_s") or 0.0
            delta = (
                (wall - baseline) / baseline * 100.0
                if baseline
                else None
            )
            phase_rows.append(
                {
                    "phase": name,
                    "calls": row.get("calls", 0),
                    "wall_s": wall,
                    "cpu_s": row.get("cpu_s"),
                    "baseline_s": baseline,
                    "delta_pct": delta,
                }
            )
        counter_rows = []
        latest_counters = latest.get("metrics", {}) or {}
        prev_counters = (earlier[-1].get("metrics", {}) or {}) if earlier else {}
        for name in sorted(set(latest_counters) | set(prev_counters)):
            now, was = latest_counters.get(name), prev_counters.get(name)
            if earlier and now != was:
                counter_rows.append({"counter": name, "was": was, "now": now})
        kinds.append(
            {
                "kind": kind,
                "run_id": run_id,
                "runs": len(runs),
                "time": latest.get("time", ""),
                "argv": " ".join(latest.get("argv", [])),
                "phases": phase_rows,
                "counter_drift": counter_rows,
            }
        )

    bench = []
    bench_streams: dict[str, list[dict]] = {}
    for record in records:
        if record.get("bench"):
            bench_streams.setdefault(record.get("kind", "bench"), []).append(record)
    for kind, runs in bench_streams.items():
        latest = runs[-1]
        earlier = runs[:-1]
        rows = []
        for row in latest["bench"].get("kernels", []):
            key = (row.get("kernel"), row.get("config"))
            prior = [
                prev_row
                for r in earlier
                for prev_row in r["bench"].get("kernels", [])
                if (prev_row.get("kernel"), prev_row.get("config")) == key
            ]
            prev_speedup = prior[-1].get("speedup") if prior else None
            rows.append(
                {
                    "kernel": row.get("kernel"),
                    "config": row.get("config"),
                    "speedup": row.get("speedup"),
                    "prev_speedup": prev_speedup,
                    "error_pp": row.get("error_pp"),
                }
            )
        bench.append(
            {"kind": kind, "runs": len(runs), "time": latest.get("time", ""),
             "kernels": rows}
        )
    return {"overview": overview, "kinds": kinds, "bench": bench}


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _md_table(rows: list[dict], columns: list[str]) -> list[str]:
    out = ["| " + " | ".join(columns) + " |",
           "|" + "|".join(" --- " for _ in columns) + "|"]
    for row in rows:
        out.append(
            "| " + " | ".join(_fmt(row.get(c)) for c in columns) + " |"
        )
    return out


def _fmt(value) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_markdown(report: dict) -> str:
    lines = ["# repro run report", ""]
    lines.append(f"Ledgered runs shown: {len(report['overview'])}")
    lines.append("")
    if not report["overview"]:
        lines.append("_The run ledger is empty — run any `python -m repro` "
                     "command to populate `.repro/ledger.jsonl`._")
        return "\n".join(lines) + "\n"

    lines.append("## Run overview")
    lines.append("")
    lines.extend(
        _md_table(
            report["overview"],
            ["time", "kind", "run_id", "git_sha", "argv", "wall_s"],
        )
    )
    lines.append("")

    for stream in report["kinds"]:
        lines.append(
            f"## {stream['kind']} `{stream['run_id']}` "
            f"({stream['runs']} run{'s' if stream['runs'] != 1 else ''})"
        )
        lines.append("")
        if stream["argv"]:
            lines.append(f"`{stream['argv']}`")
            lines.append("")
        if stream["phases"]:
            lines.append("### Phase timings (latest vs. median of history)")
            lines.append("")
            rows = [
                {
                    "phase": p["phase"],
                    "calls": p["calls"],
                    "wall_ms": round(p["wall_s"] * 1e3, 3),
                    "cpu_ms": (
                        round(p["cpu_s"] * 1e3, 3) if p["cpu_s"] is not None else None
                    ),
                    "baseline_ms": (
                        round(p["baseline_s"] * 1e3, 3)
                        if p["baseline_s"] is not None
                        else None
                    ),
                    "delta": (
                        f"{p['delta_pct']:+.1f}%"
                        if p["delta_pct"] is not None
                        else None
                    ),
                }
                for p in stream["phases"]
            ]
            lines.extend(
                _md_table(
                    rows,
                    ["phase", "calls", "wall_ms", "cpu_ms", "baseline_ms", "delta"],
                )
            )
            lines.append("")
        if stream["counter_drift"]:
            lines.append("### Counter drift (latest vs. previous run)")
            lines.append("")
            lines.extend(
                _md_table(stream["counter_drift"], ["counter", "was", "now"])
            )
            lines.append("")

    for bench in report["bench"]:
        lines.append(f"## Benchmark trajectory: {bench['kind']} "
                     f"({bench['runs']} ledgered)")
        lines.append("")
        lines.extend(
            _md_table(
                bench["kernels"],
                ["kernel", "config", "speedup", "prev_speedup", "error_pp"],
            )
        )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _html_table(rows: list[dict], columns: list[str]) -> str:
    head = "".join(f"<th>{_html.escape(c)}</th>" for c in columns)
    body = "".join(
        "<tr>"
        + "".join(f"<td>{_html.escape(_fmt(row.get(c)))}</td>" for c in columns)
        + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def render_html(report: dict) -> str:
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        "<title>repro run report</title>",
        "<style>body{font-family:sans-serif;margin:2em;}"
        "table{border-collapse:collapse;margin:1em 0;}"
        "th,td{border:1px solid #999;padding:4px 8px;text-align:left;"
        "font-variant-numeric:tabular-nums;}"
        "th{background:#eee;}</style></head><body>",
        "<h1>repro run report</h1>",
        f"<p>Ledgered runs shown: {len(report['overview'])}</p>",
    ]
    if report["overview"]:
        parts.append("<h2>Run overview</h2>")
        parts.append(
            _html_table(
                report["overview"],
                ["time", "kind", "run_id", "git_sha", "argv", "wall_s"],
            )
        )
    for stream in report["kinds"]:
        parts.append(
            f"<h2>{_html.escape(stream['kind'])} "
            f"<code>{_html.escape(stream['run_id'])}</code> "
            f"({stream['runs']} runs)</h2>"
        )
        if stream["phases"]:
            rows = [
                {
                    "phase": p["phase"],
                    "calls": p["calls"],
                    "wall_ms": round(p["wall_s"] * 1e3, 3),
                    "baseline_ms": (
                        round(p["baseline_s"] * 1e3, 3)
                        if p["baseline_s"] is not None
                        else None
                    ),
                    "delta": (
                        f"{p['delta_pct']:+.1f}%"
                        if p["delta_pct"] is not None
                        else None
                    ),
                }
                for p in stream["phases"]
            ]
            parts.append(
                _html_table(
                    rows, ["phase", "calls", "wall_ms", "baseline_ms", "delta"]
                )
            )
        if stream["counter_drift"]:
            parts.append("<h3>Counter drift</h3>")
            parts.append(
                _html_table(stream["counter_drift"], ["counter", "was", "now"])
            )
    for bench in report["bench"]:
        parts.append(
            f"<h2>Benchmark trajectory: {_html.escape(bench['kind'])}</h2>"
        )
        parts.append(
            _html_table(
                bench["kernels"],
                ["kernel", "config", "speedup", "prev_speedup", "error_pp"],
            )
        )
    parts.append("</body></html>")
    return "".join(parts)


_SET_COLUMNS = [
    "program", "category", "n", "status", "wall_ms",
    "accesses", "miss_before", "miss_after", "improvement_pp",
]


def _set_summary(payload: dict) -> str:
    ok = payload["entries"] - payload["failed"]
    return (
        f"{ok}/{payload['entries']} entries ok · instance "
        f"{payload['instance']} · {payload['jobs']} job(s) · scored at "
        f"{payload['capacity']} lines × {payload['line']}B · "
        f"{payload['wall_s']:.2f}s wall"
    )


def _render_set_markdown(payload: dict) -> str:
    status = "PASS" if not payload["failed"] else f"FAIL ({payload['failed']} failed)"
    lines = [
        f"# Suite set report: `{payload['set']}` — {status}",
        "",
        _set_summary(payload),
        "",
        "## Per-entry results",
        "",
    ]
    lines.extend(_md_table(payload["rows"], _SET_COLUMNS))
    failures = [row for row in payload["rows"] if row["status"] != "ok"]
    if failures:
        lines.extend(["", "## Failures", ""])
        for row in failures:
            lines.append(f"* **{row['program']}** — `{row['error']}`")
    return "\n".join(lines).rstrip() + "\n"


def _render_set_html(payload: dict) -> str:
    status = "PASS" if not payload["failed"] else f"FAIL ({payload['failed']} failed)"
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>suite set report: {_html.escape(payload['set'])}</title>",
        "<style>body{font-family:sans-serif;margin:2em;}"
        "table{border-collapse:collapse;margin:1em 0;}"
        "th,td{border:1px solid #999;padding:4px 8px;text-align:left;"
        "font-variant-numeric:tabular-nums;}"
        "th{background:#eee;}tr.failed td{background:#fdd;}</style>"
        "</head><body>",
        f"<h1>Suite set report: <code>{_html.escape(payload['set'])}</code>"
        f" — {_html.escape(status)}</h1>",
        f"<p>{_html.escape(_set_summary(payload))}</p>",
        "<h2>Per-entry results</h2>",
    ]
    head = "".join(f"<th>{_html.escape(c)}</th>" for c in _SET_COLUMNS)
    body = "".join(
        f"<tr class='{'ok' if row['status'] == 'ok' else 'failed'}'>"
        + "".join(
            f"<td>{_html.escape(_fmt(row.get(c)))}</td>" for c in _SET_COLUMNS
        )
        + "</tr>"
        for row in payload["rows"]
    )
    parts.append(
        f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
    )
    failures = [row for row in payload["rows"] if row["status"] != "ok"]
    if failures:
        parts.append("<h2>Failures</h2><ul>")
        for row in failures:
            parts.append(
                f"<li><b>{_html.escape(row['program'])}</b> — "
                f"<code>{_html.escape(row['error'])}</code></li>"
            )
        parts.append("</ul>")
    parts.append("</body></html>")
    return "".join(parts)


def render_set_report(payload: dict, fmt: str = "md") -> str:
    """A suite set-run payload (``SetRunResult.report_payload()``) → a
    markdown (``md``) or ``html`` artifact.

    Takes the plain-dict payload rather than suite types so ``repro.obs``
    never imports ``repro.suite`` (obs is the bottom layer).
    """
    if fmt == "html":
        return _render_set_html(payload)
    if fmt in ("md", "markdown"):
        return _render_set_markdown(payload)
    raise ValueError(f"unknown report format {fmt!r} (expected md or html)")


def render_report(records: list[dict], fmt: str = "md", history: int = 20) -> str:
    """Ledger records -> a markdown (``md``) or ``html`` artifact."""
    report = build_report(records, history=history)
    if fmt == "html":
        return render_html(report)
    if fmt in ("md", "markdown"):
        return render_markdown(report)
    raise ValueError(f"unknown report format {fmt!r} (expected md or html)")
