"""Hierarchical profile rendering: the ``--profile`` phase tree.

Aggregates a recorded span forest into a self-explaining tree: sibling
spans with the same name collapse into one row carrying call count,
total wall time, total CPU time, and peak traced memory, with each row's
share of its parent's wall time. A second section attributes pipeline
counters to the phase that owns them, so a profile reads as::

    phase                                calls   wall ms    cpu ms   peak mem   % parent
    pipeline                                 1    12.402    12.390     1.2 MB
      frontend.parse                         1     0.311     0.310    88.1 KB       2.5%
      compound                               1     8.922     8.915   903.2 KB      71.9%
        compound.nest                        2     8.614     8.610   884.0 KB      96.5%
      exec.simulate                          2     3.012     3.010   201.3 KB      24.3%

    phase attribution
      dependence: dep.pairs=7 dep.test.siv=14 ...

Profiles need spans recorded by a profiling tracer
(``Obs(profile=True)``); plain spans render the same tree with the CPU
and memory columns blank.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.obs.tracer import Span

__all__ = ["aggregate_spans", "render_profile", "PHASE_COUNTERS"]

#: pipeline phase -> counter prefixes attributed to it (the "where did
#: the work go" footer under the phase tree)
PHASE_COUNTERS: Mapping[str, tuple[str, ...]] = {
    "frontend": ("frontend.",),
    "dependence": ("dep.",),
    "transforms": (
        "permute.",
        "fusion.",
        "distribute.",
        "compound.",
        "scalar_replace.",
    ),
    "model": ("model.",),
    "trace": ("trace.",),
    "cache": ("cache.",),
    "exec": ("exec.",),
    "locality": ("locality.",),
    "experiment": ("experiment.",),
    "verify": ("verify.",),
}


class _Node:
    __slots__ = ("name", "calls", "wall", "cpu", "mem", "shards", "children")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.wall = 0.0
        self.cpu: float | None = None
        self.mem: int | None = None
        self.shards: set = set()
        self.children: dict[str, "_Node"] = {}

    def child(self, name: str) -> "_Node":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = _Node(name)
        return node

    def add(self, span: Span) -> None:
        self.calls += 1
        self.wall += span.duration
        if span.cpu is not None:
            self.cpu = (self.cpu or 0.0) + span.cpu
        if span.mem_peak is not None:
            self.mem = max(self.mem or 0, span.mem_peak)
        if span.shard is not None:
            self.shards.add(span.shard)


def aggregate_spans(spans: Sequence[Span]) -> _Node:
    """Collapse a span forest into a name-keyed aggregate tree."""
    root = _Node("")
    nodes: dict[int, _Node] = {}
    by_id = {s.span_id: s for s in spans}
    for span in spans:
        parent = nodes.get(span.parent_id) if span.parent_id in by_id else root
        if parent is None:
            parent = root
        node = parent.child(span.name)
        node.add(span)
        nodes[span.span_id] = node
    return root


def _fmt_mem(value: int | None) -> str:
    if value is None:
        return ""
    if value >= 1 << 20:
        return f"{value / (1 << 20):.1f} MB"
    if value >= 1 << 10:
        return f"{value / (1 << 10):.1f} KB"
    return f"{value} B"


def render_profile(
    spans: Sequence[Span],
    metrics=None,
    title: str = "phase profile",
) -> str:
    """Render the aggregated phase tree (plus counter attribution)."""
    lines = [title] if title else []
    root = aggregate_spans(spans)
    if not root.children:
        lines.append("  (no spans recorded)")
        return "\n".join(lines)

    header = (
        f"  {'phase':<36} {'calls':>5} {'wall ms':>10} {'cpu ms':>10} "
        f"{'peak mem':>10} {'% parent':>9}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))

    def walk(node: _Node, depth: int, parent_wall: float | None) -> None:
        label = "  " * depth + node.name
        share = (
            f"{100.0 * node.wall / parent_wall:8.1f}%"
            if parent_wall
            else ""
        )
        cpu = f"{node.cpu * 1e3:10.3f}" if node.cpu is not None else f"{'':>10}"
        shard_tag = f" [{len(node.shards)} shards]" if node.shards else ""
        lines.append(
            f"  {label:<36} {node.calls:>5} {node.wall * 1e3:10.3f} {cpu} "
            f"{_fmt_mem(node.mem):>10} {share:>9}{shard_tag}"
        )
        for child in node.children.values():
            walk(child, depth + 1, node.wall or None)

    for top in root.children.values():
        walk(top, 0, None)

    if metrics is not None:
        snapshot = metrics.snapshot() if hasattr(metrics, "snapshot") else metrics
        counters = snapshot.get("counters") or {}
        attributed = []
        for phase, prefixes in PHASE_COUNTERS.items():
            owned = {
                name: value
                for name, value in counters.items()
                if any(name.startswith(p) for p in prefixes)
            }
            if owned:
                pairs = " ".join(f"{n}={v}" for n, v in sorted(owned.items()))
                attributed.append(f"    {phase}: {pairs}")
        if attributed:
            lines.append("")
            lines.append("  phase attribution")
            lines.extend(attributed)
        shards = snapshot.get("shards") or {}
        if shards:
            retried = sum(1 for c in shards.values() if c > 1)
            lines.append(
                f"  shards merged: {len(shards)}"
                + (f" ({retried} retried, deduplicated)" if retried else "")
            )
    return "\n".join(lines)
