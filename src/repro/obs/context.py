"""The observability context: one object bundling tracer + metrics + remarks.

Instrumented code throughout the package does::

    from repro.obs import get_obs

    obs = get_obs()
    with obs.span("compound.nest", nest=i):
        ...
    obs.remark("permute", "applied", "reordered I.J -> J.I", loops=("I", "J"))
    obs.metrics.counter("dep.test.siv").inc()

By default :func:`get_obs` returns :data:`NULL_OBS` — a disabled context
whose span handle is a shared no-op object, whose ``remark`` does nothing,
and whose metrics registry hands out null instruments. Instrumentation is
therefore zero-cost off the observed path and pay-as-you-go on it; hot
per-access loops (the interpreter / trace compiler) carry *no* obs calls
at all, only their run boundaries do.

Enable observation either globally (:func:`set_obs`) or scoped
(:func:`use_obs` context manager, which restores the previous context).

The active context lives in a :class:`contextvars.ContextVar`, not a
plain module global: single-threaded callers see identical behaviour,
but concurrent request handlers (the :mod:`repro.server` executor
threads and asyncio tasks) each observe their *own* context, so one
request's ``use_obs`` can never leak spans or remarks into another's.
``asyncio.to_thread`` and ``contextvars.copy_context`` propagate the
installed context into workers; bare ``threading.Thread`` targets start
from the default (disabled) context.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.remarks import Remark
from repro.obs.tracer import _NULL_SPAN_HANDLE, NULL_TRACER, Tracer

__all__ = ["Obs", "NULL_OBS", "get_obs", "set_obs", "use_obs"]


class Obs:
    """An enabled observability context.

    ``profile=True`` builds a profiling tracer (per-span CPU time and —
    while :mod:`tracemalloc` is tracing — peak traced memory); it is the
    context behind the CLI's ``--profile`` flag.
    """

    enabled = True

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        profile: bool = False,
    ):
        self.tracer = tracer if tracer is not None else Tracer(profile=profile)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.remarks: list[Remark] = []

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def merge_shard(
        self,
        key: str,
        metrics: "MetricsRegistry | None" = None,
        remarks=(),
        spans=(),
        parent=None,
        shard: int | None = None,
    ) -> bool:
        """Adopt one worker shard's observations, exactly once per key.

        Metrics merge through :meth:`MetricsRegistry.merge_shard` (a
        retried shard is recorded in the ``shards`` dimension but not
        double-counted); remarks append and spans graft under ``parent``
        only on the first offer. Returns whether the shard was new.
        """
        fresh = (
            self.metrics.merge_shard(key, metrics)
            if metrics is not None
            else self.metrics.merge_shard(key, MetricsRegistry())
        )
        if fresh:
            self.remarks.extend(remarks)
            self.tracer.graft(spans, parent=parent, shard=shard)
        return fresh

    def remark(
        self,
        pass_name: str,
        kind: str,
        message: str,
        *,
        nest: int | None = None,
        loops=(),
        reason: str | None = None,
        **data,
    ) -> Remark:
        record = Remark(
            pass_name,
            kind,
            message,
            nest=nest,
            loops=tuple(loops),
            reason=reason,
            data=tuple(sorted(data.items())),
        )
        self.remarks.append(record)
        return record

    def remarks_for(self, pass_name: str) -> list[Remark]:
        return [r for r in self.remarks if r.pass_name == pass_name]


class _NullObs:
    """Disabled context: every operation is a no-op."""

    enabled = False
    tracer = NULL_TRACER
    metrics = NULL_METRICS
    remarks: tuple = ()

    def span(self, name: str, **attrs):
        return _NULL_SPAN_HANDLE

    def remark(self, pass_name, kind, message, **_kw) -> None:
        return None

    def remarks_for(self, pass_name: str) -> list:
        return []

    def merge_shard(self, key, metrics=None, remarks=(), spans=(),
                    parent=None, shard=None) -> bool:
        return False


NULL_OBS = _NullObs()

_current: "ContextVar[Obs | _NullObs]" = ContextVar("repro_obs", default=NULL_OBS)


def get_obs() -> "Obs | _NullObs":
    """The active observability context (the null context by default)."""
    return _current.get()


def set_obs(obs: "Obs | None") -> "Obs | _NullObs":
    """Install ``obs`` in the current context; ``None`` restores the null
    context. Code running in the same thread/task (and in contexts copied
    from it) sees the new value."""
    value = obs if obs is not None else NULL_OBS
    _current.set(value)
    return value


@contextmanager
def use_obs(obs: "Obs | None"):
    """Scoped install: the previous context is restored on exit."""
    token = _current.set(obs if obs is not None else NULL_OBS)
    try:
        yield _current.get()
    finally:
        _current.reset(token)
