"""JSONL export / import of an observability context.

One record per line, each tagged with a ``type``:

``meta``
    ``{"type": "meta", "schema": 2, "tool": "repro.obs"}``
``span``
    ``{"type": "span", "id", "parent", "name", "start", "end",
    "duration", "attrs"}`` — times are ``perf_counter`` seconds.
    Profiling runs add ``cpu_start``/``cpu_end``/``mem_peak``; spans
    recorded in (or merged from) worker processes add ``pid``/``shard``.
    Fields that are ``None`` are omitted, so non-profiled traces keep
    the schema-1 shape plus the bumped version number.
``remark``
    the :meth:`repro.obs.remarks.Remark.to_dict` fields.
``counter`` / ``gauge``
    ``{"type", "name", "value"}``
``histogram``
    ``{"type", "name", "count", "total", "min", "max", "buckets"}``
    with bucket keys stringified (JSON objects key on strings).
``shards``
    ``{"type": "shards", "shards": {key: offer_count}}`` — present only
    when worker-shard registries were merged into this context.

:func:`read_jsonl` reconstructs the stream into an :class:`ObsData`
bundle of ``Span``/``Remark`` objects and a ``MetricsRegistry``, so a
trace file round-trips: ``write_jsonl(obs, p); read_jsonl(p)`` preserves
every remark, span relationship, and metric value. Schema-1 files (no
profiling fields) still read back cleanly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Iterator

from repro.obs.context import Obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.remarks import Remark, _jsonable
from repro.obs.tracer import Span

__all__ = ["ObsData", "SCHEMA_VERSION", "obs_records", "write_jsonl", "read_jsonl"]

SCHEMA_VERSION = 2

#: optional Span fields serialized only when set (keeps records compact
#: and schema-1-shaped on non-profiled runs)
_SPAN_OPTIONAL = ("cpu_start", "cpu_end", "mem_peak", "pid", "shard")


def obs_records(obs: Obs) -> Iterator[dict]:
    """Yield every record of ``obs`` as a JSON-ready dict."""
    yield {"type": "meta", "schema": SCHEMA_VERSION, "tool": "repro.obs"}
    for span in obs.tracer.spans:
        record = {
            "type": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "start": span.start,
            "end": span.end,
            "duration": span.duration,
            "attrs": {k: _jsonable(v) for k, v in span.attrs.items()},
        }
        for key in _SPAN_OPTIONAL:
            value = getattr(span, key)
            if value is not None:
                record[key] = value
        yield record
    for remark in obs.remarks:
        yield {"type": "remark", **remark.to_dict()}
    snapshot = obs.metrics.snapshot()
    for name, value in snapshot["counters"].items():
        yield {"type": "counter", "name": name, "value": value}
    for name, value in snapshot["gauges"].items():
        yield {"type": "gauge", "name": name, "value": value}
    for name, data in snapshot["histograms"].items():
        yield {
            "type": "histogram",
            "name": name,
            "count": data["count"],
            "total": data["total"],
            "min": data["min"],
            "max": data["max"],
            "buckets": {str(k): v for k, v in data["buckets"].items()},
        }
    if snapshot.get("shards"):
        yield {"type": "shards", "shards": snapshot["shards"]}


def write_jsonl(obs: Obs, destination: "str | IO[str]") -> int:
    """Write ``obs`` as JSONL to a path or open text file; returns the
    record count."""
    count = 0

    def _dump(handle: IO[str]) -> None:
        nonlocal count
        for record in obs_records(obs):
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1

    if isinstance(destination, str):
        with open(destination, "w") as handle:
            _dump(handle)
    else:
        _dump(destination)
    return count


@dataclass
class ObsData:
    """A trace file read back into memory."""

    meta: dict = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)
    remarks: list[Remark] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def spans_by_name(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]


def read_jsonl(source: "str | IO[str]") -> ObsData:
    """Parse a trace file back into spans, remarks, and metrics."""
    if isinstance(source, str):
        with open(source) as handle:
            lines = handle.readlines()
    else:
        lines = source.readlines()

    data = ObsData()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "meta":
            data.meta = record
        elif kind == "span":
            data.spans.append(
                Span(
                    name=record["name"],
                    span_id=record["id"],
                    parent_id=record.get("parent"),
                    start=record["start"],
                    end=record.get("end"),
                    attrs=record.get("attrs") or {},
                    cpu_start=record.get("cpu_start"),
                    cpu_end=record.get("cpu_end"),
                    mem_peak=record.get("mem_peak"),
                    pid=record.get("pid"),
                    shard=record.get("shard"),
                )
            )
        elif kind == "remark":
            data.remarks.append(Remark.from_dict(record))
        elif kind == "counter":
            data.metrics.counter(record["name"]).inc(record["value"])
        elif kind == "gauge":
            data.metrics.gauge(record["name"]).set(record["value"])
        elif kind == "histogram":
            histogram = data.metrics.histogram(record["name"])
            for key, count in (record.get("buckets") or {}).items():
                histogram.record(_bucket_key(key), count)
        elif kind == "shards":
            data.metrics.shards.update(record.get("shards") or {})
    return data


def _bucket_key(key: str):
    """Histogram bucket keys are numbers stringified by JSON."""
    try:
        return int(key)
    except ValueError:
        try:
            return float(key)
        except ValueError:
            return key
