"""Chrome trace-event / Perfetto export of a recorded span forest.

Converts :class:`repro.obs.tracer.Span` records into the Trace Event
Format consumed by ``chrome://tracing`` and https://ui.perfetto.dev: a
JSON object with a ``traceEvents`` list of complete ("ph": "X") events
carrying microsecond ``ts``/``dur`` plus ``pid``/``tid`` lanes.

Lanes: the parent process renders as one thread lane per process id;
spans merged from ``--jobs`` worker shards (tagged with ``shard``; see
``Tracer.graft``) each get their own lane named ``shard-<k>``, so a
sharded experiment run shows the worker timeline side by side with the
parent. Timestamps are normalized to the earliest span so traces start
at t=0 (``perf_counter`` epochs are arbitrary); on Linux the epoch is
shared across forked pool workers, so shard lanes align with the parent.

``write_chrome_trace(obs, path)`` is the one-call exporter behind the
CLIs' ``--chrome-trace FILE`` flag.
"""

from __future__ import annotations

import json
import os
from typing import IO, Sequence

from repro.obs.remarks import _jsonable
from repro.obs.tracer import Span

__all__ = ["chrome_trace_events", "chrome_trace", "write_chrome_trace"]

#: synthetic thread id for parent-process spans (Perfetto needs an int)
_MAIN_TID = 0


def _lane(span: Span, default_pid: int) -> tuple[int, int]:
    """(pid, tid) for a span: worker shards get their own tid lane."""
    pid = span.pid if span.pid is not None else default_pid
    if span.shard is not None:
        return pid, int(span.shard) + 1
    return pid, _MAIN_TID


def chrome_trace_events(spans: Sequence[Span]) -> list[dict]:
    """Spans -> trace-event dicts (complete events + lane metadata)."""
    spans = [s for s in spans if s.finished]
    if not spans:
        return []
    default_pid = os.getpid()
    origin = min(s.start for s in spans)
    events: list[dict] = []
    lanes: dict[tuple[int, int], str] = {}
    for span in spans:
        pid, tid = _lane(span, default_pid)
        lanes.setdefault(
            (pid, tid),
            f"shard-{span.shard}" if span.shard is not None else "main",
        )
        args = {k: _jsonable(v) for k, v in span.attrs.items()}
        if span.cpu is not None:
            args["cpu_ms"] = round(span.cpu * 1e3, 3)
        if span.mem_peak is not None:
            args["mem_peak_bytes"] = span.mem_peak
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": round((span.start - origin) * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    metadata: list[dict] = []
    for (pid, tid), name in sorted(lanes.items()):
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": "repro" if tid == _MAIN_TID else "repro-worker"},
            }
        )
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return metadata + events


def chrome_trace(obs_or_spans) -> dict:
    """The full trace document for ``obs`` (or a raw span sequence)."""
    spans = getattr(getattr(obs_or_spans, "tracer", None), "spans", None)
    if spans is None:
        spans = obs_or_spans
    return {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"tool": "repro.obs"},
    }


def write_chrome_trace(obs_or_spans, destination: "str | IO[str]") -> int:
    """Write the Chrome/Perfetto trace JSON; returns the event count."""
    document = chrome_trace(obs_or_spans)
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            json.dump(document, handle, sort_keys=True)
            handle.write("\n")
    else:
        json.dump(document, destination, sort_keys=True)
    return len(document["traceEvents"])
