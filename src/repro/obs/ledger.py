"""The persistent run ledger: one JSONL record per invocation.

Every CLI, experiment, suite, and benchmark run appends a structured
record to ``.repro/ledger.jsonl`` (override the directory with
``$REPRO_LEDGER_DIR``; set ``REPRO_LEDGER=0`` to disable entirely), so
run history survives the process and ``python -m repro report`` /
``tools/check_bench.py`` can compare the latest run against its
trajectory instead of a write-once snapshot.

Record shape (schema 1)::

    {
      "schema": 1, "kind": "cli" | "experiments" | "suite" | "bench" | ...,
      "run_id":  12-hex digest of (kind, argv, seed, config) — stable
                 across replays with the same REPRO_SEED,
      "time":    ISO-8601 UTC wall clock (volatile; excluded from run_id),
      "argv":    the invocation arguments,
      "seed":    the effective REPRO_SEED,
      "git_sha": short HEAD sha (null outside a git checkout),
      "config_digest": digest of the run's configuration payload,
      "phases":  {span name: {"wall_s": ..., "cpu_s": ...|null, "calls": n}},
      "metrics": counters snapshot (compact),
      "bench":   benchmark payload (bench records only),
    }

Appends are atomic: each record is one ``os.write`` to an
``O_APPEND`` descriptor, so concurrent writers never interleave lines.
:class:`LedgerError` (unwritable directory, malformed override) is
raised for callers to turn into a clean non-zero exit.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import os
import subprocess
from typing import Iterable

from repro.seeds import base_seed

__all__ = [
    "LEDGER_SCHEMA",
    "LedgerError",
    "ledger_enabled",
    "ledger_dir",
    "ledger_path",
    "config_digest",
    "make_record",
    "stable_view",
    "append_record",
    "read_ledger",
    "phases_from_obs",
    "counters_from_obs",
]

LEDGER_SCHEMA = 1
DIR_ENV = "REPRO_LEDGER_DIR"
TOGGLE_ENV = "REPRO_LEDGER"
_FILENAME = "ledger.jsonl"
#: record fields excluded from run_id / replay-stability comparisons
VOLATILE_FIELDS = ("time", "phases", "metrics", "bench", "git_sha")


class LedgerError(Exception):
    """The ledger cannot be read or written (message says why)."""


def ledger_enabled() -> bool:
    """False when ``REPRO_LEDGER`` is set to 0/false/off."""
    return os.environ.get(TOGGLE_ENV, "").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


def ledger_dir(directory: str | None = None) -> str:
    """The ledger directory: explicit arg, else ``$REPRO_LEDGER_DIR``,
    else ``.repro`` under the current working directory."""
    return directory or os.environ.get(DIR_ENV, "").strip() or ".repro"


def ledger_path(directory: str | None = None) -> str:
    return os.path.join(ledger_dir(directory), _FILENAME)


def config_digest(payload) -> str:
    """Short stable digest of a JSON-able configuration payload."""
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


#: memoized (cwd -> sha) so high-rate appenders — the compile server
#: ledgers every request — don't fork a git subprocess per record.
_GIT_SHA_CACHE: dict[str, str | None] = {}


def _git_sha() -> str | None:
    cwd = os.getcwd()
    if cwd in _GIT_SHA_CACHE:
        return _GIT_SHA_CACHE[cwd]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        _GIT_SHA_CACHE[cwd] = None
        return None
    sha = out.stdout.strip()
    result = sha if out.returncode == 0 and sha else None
    _GIT_SHA_CACHE[cwd] = result
    return result


def phases_from_obs(obs) -> dict:
    """Aggregate the context's spans into {name: wall/cpu/calls} rows."""
    phases: dict[str, dict] = {}
    for span in getattr(obs.tracer, "spans", ()):
        if not span.finished:
            continue
        row = phases.setdefault(
            span.name, {"wall_s": 0.0, "cpu_s": None, "calls": 0}
        )
        row["wall_s"] += span.duration
        row["calls"] += 1
        if span.cpu is not None:
            row["cpu_s"] = (row["cpu_s"] or 0.0) + span.cpu
    for row in phases.values():
        row["wall_s"] = round(row["wall_s"], 6)
        if row["cpu_s"] is not None:
            row["cpu_s"] = round(row["cpu_s"], 6)
    return dict(sorted(phases.items()))


def counters_from_obs(obs) -> dict:
    """The counters snapshot (the compact metrics view ledgered per run)."""
    return obs.metrics.snapshot().get("counters", {})


def make_record(
    kind: str,
    argv: Iterable[str] = (),
    *,
    seed: int | None = None,
    config: dict | None = None,
    phases: dict | None = None,
    metrics: dict | None = None,
    bench: dict | None = None,
) -> dict:
    """Build one ledger record; ``run_id`` hashes only the stable fields."""
    argv = list(argv)
    seed = base_seed() if seed is None else seed
    digest = config_digest(config or {})
    identity = json.dumps(
        {"kind": kind, "argv": argv, "seed": seed, "config": digest},
        sort_keys=True,
    )
    record = {
        "schema": LEDGER_SCHEMA,
        "kind": kind,
        "run_id": hashlib.sha256(identity.encode()).hexdigest()[:12],
        "time": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "argv": argv,
        "seed": seed,
        "git_sha": _git_sha(),
        "config_digest": digest,
        "phases": phases or {},
        "metrics": metrics or {},
    }
    if bench is not None:
        record["bench"] = bench
    return record


def stable_view(record: dict) -> dict:
    """The record minus volatile fields — equal across replays with the
    same ``REPRO_SEED`` (the replay-stability contract)."""
    return {k: v for k, v in record.items() if k not in VOLATILE_FIELDS}


def append_record(record: dict, directory: str | None = None) -> str | None:
    """Atomically append ``record``; returns the ledger path.

    Returns ``None`` without writing when the ledger is disabled via
    ``REPRO_LEDGER=0``. Raises :class:`LedgerError` when the directory
    cannot be created or the file cannot be written — callers surface
    that as a clean non-zero exit.
    """
    if not ledger_enabled():
        return None
    path = ledger_path(directory)
    parent = os.path.dirname(path) or "."
    try:
        os.makedirs(parent, exist_ok=True)
    except OSError as exc:
        raise LedgerError(
            f"cannot create ledger directory {parent!r}: {exc}; "
            f"set {TOGGLE_ENV}=0 to disable the run ledger"
        ) from exc
    line = json.dumps(record, sort_keys=True) + "\n"
    try:
        fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)
    except OSError as exc:
        raise LedgerError(
            f"cannot append to ledger {path!r}: {exc}; "
            f"set {TOGGLE_ENV}=0 to disable the run ledger"
        ) from exc
    return path


def read_ledger(directory: str | None = None) -> list[dict]:
    """All ledger records, oldest first (missing ledger -> []).

    Damaged lines (a torn write from a crashed run) are skipped rather
    than poisoning every later report.
    """
    path = ledger_path(directory)
    if not os.path.exists(path):
        return []
    records = []
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    except OSError as exc:
        raise LedgerError(f"cannot read ledger {path!r}: {exc}") from exc
    return records
