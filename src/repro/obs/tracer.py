"""Span-based tracing: nested wall-time spans over the compiler pipeline.

A :class:`Tracer` records :class:`Span` trees — one span per timed region,
nested by lexical entry order — using ``time.perf_counter``. Spans are
cheap (one object + two clock reads each) but the whole subsystem is
opt-in: the default observability context uses :data:`NULL_TRACER`, whose
``span()`` returns a shared no-op context manager, so code instrumented
with spans pays nothing measurable when tracing is disabled.

Profiling mode (``Tracer(profile=True)``) additionally records per-span
CPU time (``time.process_time``) and — when :mod:`tracemalloc` is
tracing — the peak traced memory over each span's lifetime, folded up
from children so a parent's peak covers its whole subtree. Every span is
tagged with the recording process id plus an optional worker-shard index
so span forests merged across a process pool keep their provenance
(see :meth:`Tracer.graft`).

Usage::

    tracer = Tracer()
    with tracer.span("compound", program="demo"):
        with tracer.span("compound.nest", nest=0):
            ...
    tracer.spans           # all spans, in start order
    tracer.roots()         # top-level spans
"""

from __future__ import annotations

import os
import time
import tracemalloc
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass
class Span:
    """One timed region. ``start``/``end`` are ``perf_counter`` readings.

    Profiling fields (``cpu_start``/``cpu_end``/``mem_peak``) stay
    ``None`` unless the recording tracer ran with ``profile=True``;
    ``pid``/``shard`` identify the recording process / worker-shard lane.
    """

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attrs: dict = field(default_factory=dict)
    cpu_start: float | None = None
    cpu_end: float | None = None
    mem_peak: int | None = None
    pid: int | None = None
    shard: int | None = None

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def cpu(self) -> float | None:
        """CPU seconds consumed during the span (profiling mode only)."""
        if self.cpu_start is None or self.cpu_end is None:
            return None
        return self.cpu_end - self.cpu_start

    def __str__(self) -> str:
        extra = "".join(f" {k}={v}" for k, v in self.attrs.items())
        return f"{self.name} [{self.duration * 1e3:.3f} ms]{extra}"


class _SpanHandle:
    """Context manager closing one span on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *_exc) -> bool:
        self._tracer._finish(self.span)
        return False


class Tracer:
    """Collects a forest of timed spans.

    Spans nest dynamically: a span started while another is open becomes
    its child. Exiting out of order (possible only through manual
    ``__exit__`` misuse) is tolerated — the stale stack entry is dropped.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter, profile: bool = False):
        self._clock = clock
        self._next_id = 0
        self._stack: list[int] = []
        self.spans: list[Span] = []  # in start order
        self.profile = profile
        self.pid = os.getpid()
        #: worker-shard index stamped onto every new span (None = parent)
        self.shard: int | None = None
        # peak traced memory seen by finished children of each open span
        self._child_peaks: dict[int, int] = {}

    def span(self, name: str, **attrs) -> _SpanHandle:
        """Open a span; use as a context manager."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name,
            self._next_id,
            parent,
            self._clock(),
            attrs=attrs,
            pid=self.pid,
            shard=self.shard,
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span.span_id)
        if self.profile:
            if tracemalloc.is_tracing():
                # Restart peak tracking for this span; the previous peak
                # is folded into the enclosing span's running maximum.
                _, peak = tracemalloc.get_traced_memory()
                if span.parent_id is not None:
                    fold = self._child_peaks
                    prev = fold.get(span.parent_id)
                    fold[span.parent_id] = peak if prev is None else max(prev, peak)
                tracemalloc.reset_peak()
                self._child_peaks.setdefault(span.span_id, 0)
            span.cpu_start = time.process_time()
        return _SpanHandle(self, span)

    def _finish(self, span: Span) -> None:
        if self.profile:
            span.cpu_end = time.process_time()
            if tracemalloc.is_tracing():
                _, peak = tracemalloc.get_traced_memory()
                own = self._child_peaks.pop(span.span_id, 0)
                span.mem_peak = max(peak, own)
                # A child's peak counts toward the parent's window too.
                if span.parent_id is not None:
                    fold = self._child_peaks
                    prev = fold.get(span.parent_id)
                    fold[span.parent_id] = (
                        span.mem_peak if prev is None else max(prev, span.mem_peak)
                    )
                tracemalloc.reset_peak()
        span.end = self._clock()
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
        else:
            try:
                self._stack.remove(span.span_id)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    def graft(self, spans, parent: Span | None = None, shard: int | None = None) -> int:
        """Adopt a foreign span forest (e.g. from a worker process).

        Span ids are remapped into this tracer's id space; roots of the
        foreign forest become children of ``parent`` (or roots here).
        ``shard`` stamps a worker-lane index on spans that lack one.
        Returns the number of spans adopted.
        """
        spans = list(spans)
        if not spans:
            return 0
        remap = {}
        for foreign in spans:
            remap[foreign.span_id] = self._next_id
            self._next_id += 1
        for foreign in spans:
            adopted = Span(
                name=foreign.name,
                span_id=remap[foreign.span_id],
                parent_id=(
                    remap[foreign.parent_id]
                    if foreign.parent_id in remap
                    else (parent.span_id if parent is not None else None)
                ),
                start=foreign.start,
                end=foreign.end,
                attrs=dict(foreign.attrs),
                cpu_start=foreign.cpu_start,
                cpu_end=foreign.cpu_end,
                mem_peak=foreign.mem_peak,
                pid=foreign.pid,
                shard=foreign.shard if foreign.shard is not None else shard,
            )
            self.spans.append(adopted)
        return len(spans)

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]


class _NullSpanHandle:
    """Shared do-nothing context manager (the disabled-tracer fast path)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN_HANDLE = _NullSpanHandle()


class NullTracer:
    """Disabled tracer: ``span()`` hands back one shared no-op manager."""

    enabled = False
    profile = False
    spans: tuple = ()

    def span(self, name: str, **attrs) -> _NullSpanHandle:
        return _NULL_SPAN_HANDLE

    def graft(self, spans, parent=None, shard=None) -> int:
        return 0

    def roots(self) -> list:
        return []

    def children(self, span) -> list:
        return []

    def find(self, name: str) -> list:
        return []


NULL_TRACER = NullTracer()
