"""Span-based tracing: nested wall-time spans over the compiler pipeline.

A :class:`Tracer` records :class:`Span` trees — one span per timed region,
nested by lexical entry order — using ``time.perf_counter``. Spans are
cheap (one object + two clock reads each) but the whole subsystem is
opt-in: the default observability context uses :data:`NULL_TRACER`, whose
``span()`` returns a shared no-op context manager, so code instrumented
with spans pays nothing measurable when tracing is disabled.

Usage::

    tracer = Tracer()
    with tracer.span("compound", program="demo"):
        with tracer.span("compound.nest", nest=0):
            ...
    tracer.spans           # all spans, in start order
    tracer.roots()         # top-level spans
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass
class Span:
    """One timed region. ``start``/``end`` are ``perf_counter`` readings."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def __str__(self) -> str:
        extra = "".join(f" {k}={v}" for k, v in self.attrs.items())
        return f"{self.name} [{self.duration * 1e3:.3f} ms]{extra}"


class _SpanHandle:
    """Context manager closing one span on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *_exc) -> bool:
        self._tracer._finish(self.span)
        return False


class Tracer:
    """Collects a forest of timed spans.

    Spans nest dynamically: a span started while another is open becomes
    its child. Exiting out of order (possible only through manual
    ``__exit__`` misuse) is tolerated — the stale stack entry is dropped.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._next_id = 0
        self._stack: list[int] = []
        self.spans: list[Span] = []  # in start order

    def span(self, name: str, **attrs) -> _SpanHandle:
        """Open a span; use as a context manager."""
        parent = self._stack[-1] if self._stack else None
        span = Span(name, self._next_id, parent, self._clock(), attrs=attrs)
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span.span_id)
        return _SpanHandle(self, span)

    def _finish(self, span: Span) -> None:
        span.end = self._clock()
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
        else:
            try:
                self._stack.remove(span.span_id)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]


class _NullSpanHandle:
    """Shared do-nothing context manager (the disabled-tracer fast path)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN_HANDLE = _NullSpanHandle()


class NullTracer:
    """Disabled tracer: ``span()`` hands back one shared no-op manager."""

    enabled = False
    spans: tuple = ()

    def span(self, name: str, **attrs) -> _NullSpanHandle:
        return _NULL_SPAN_HANDLE

    def roots(self) -> list:
        return []

    def children(self, span) -> list:
        return []

    def find(self, name: str) -> list:
        return []


NULL_TRACER = NullTracer()
