"""Metrics registry: named counters, gauges, and value histograms.

Instruments are created on demand and identified by dotted names
(``dep.test.siv``, ``cache.misses``, ``model.refgroup.size``). All values
are exact — this is bookkeeping for a deterministic simulator, not a
sampling system — so registries from independent runs can be merged
loss-free with :meth:`MetricsRegistry.merge` (used by multi-nest /
multi-kernel aggregation).

The disabled path is :data:`NULL_METRICS`: every lookup returns one
shared instrument whose mutators do nothing.
"""

from __future__ import annotations

from typing import Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
]


class Counter:
    """Monotonically increasing integer count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-written value (e.g. a configured cache size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float | int | None = None

    def set(self, value) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Exact distribution of recorded values (count per distinct value).

    Values are expected to be small discrete quantities — RefGroup sizes,
    dependence-vector counts, stride deltas — so per-value buckets stay
    compact and merges are exact.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0
        self.min: float | int | None = None
        self.max: float | int | None = None
        self.buckets: dict = {}

    def record(self, value, count: int = 1) -> None:
        self.count += count
        self.total += value * count
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.buckets[value] = self.buckets.get(value, 0) + count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> "Histogram":
        for value, count in other.buckets.items():
            self.record(value, count)
        return self

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}: n={self.count}, mean={self.mean:.3g}, "
            f"min={self.min}, max={self.max})"
        )


class MetricsRegistry:
    """Holds every instrument created during one observed run."""

    enabled = True

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        #: shard key -> number of times that shard's registry was offered
        #: for merging (values > 1 mean a retried/duplicate shard whose
        #: counters were deliberately NOT re-added; see merge_shard).
        self.shards: dict[str, int] = {}

    # -- creation-on-first-use lookups ---------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one (counters add, gauges
        take the other's value, histograms merge bucket-wise)."""
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other.gauges.items():
            self.gauge(name).set(gauge.value)
        for name, histogram in other.histograms.items():
            self.histogram(name).merge(histogram)
        for key, count in getattr(other, "shards", {}).items():
            self.shards[key] = self.shards.get(key, 0) + count
        return self

    def merge_shard(self, key: str, other: "MetricsRegistry") -> bool:
        """Merge one worker shard's registry exactly once.

        ``key`` identifies the shard (stable across retries, e.g.
        ``"shard-3"``). The first offer merges and returns True; repeat
        offers — a shard resubmitted after a retry — are counted in
        :attr:`shards` but NOT merged again, so parent totals are never
        double-counted. Rendered metrics surface the shard dimension.
        """
        seen = self.shards.get(key, 0)
        self.shards[key] = seen + 1
        if seen:
            return False
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other.gauges.items():
            self.gauge(name).set(gauge.value)
        for name, histogram in other.histograms.items():
            self.histogram(name).merge(histogram)
        return True

    def snapshot(self) -> dict:
        """Plain-data view of every instrument (JSON-ready)."""
        snapshot = {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                    "buckets": dict(sorted(h.buckets.items(), key=lambda kv: str(kv[0]))),
                }
                for n, h in sorted(self.histograms.items())
            },
        }
        if self.shards:
            snapshot["shards"] = dict(sorted(self.shards.items()))
        return snapshot

    def __iter__(self) -> Iterator:
        yield from self.counters.values()
        yield from self.gauges.values()
        yield from self.histograms.values()

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)


class _NullInstrument:
    """Shared stand-in for all instrument kinds; mutators are no-ops."""

    __slots__ = ()
    name = ""
    value = 0
    count = 0
    total = 0
    buckets: Mapping = {}

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def record(self, value, count: int = 1) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Disabled registry: every lookup returns the shared null instrument."""

    enabled = False
    counters: Mapping = {}
    gauges: Mapping = {}
    histograms: Mapping = {}
    shards: Mapping = {}

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def merge(self, other) -> "NullMetrics":
        return self

    def merge_shard(self, key: str, other) -> bool:
        return False

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def __iter__(self):
        return iter(())

    def __len__(self) -> int:
        return 0


NULL_METRICS = NullMetrics()
