"""repro.obs — tracing, metrics, and optimization remarks.

The observability layer for the whole pipeline, in the spirit of LLVM's
``-Rpass`` remarks plus a lightweight span tracer and metrics registry:

* :class:`Tracer` / :class:`Span` — nested wall-time spans
  (``time.perf_counter``) over compilation and simulation phases;
* :class:`MetricsRegistry` — counters, gauges, and exact histograms
  (dependence tests by kind, RefGroup sizes, cache accesses/misses, ...);
* :class:`Remark` — structured applied/rejected/analysis records from
  every transformation pass;
* :class:`Obs` — the bundle installed via :func:`set_obs` /
  :func:`use_obs` and consulted by instrumented code via :func:`get_obs`;
* :mod:`repro.obs.export` — JSONL round-trip of the whole context.

Disabled by default: :func:`get_obs` returns :data:`NULL_OBS`, whose
operations are shared no-ops, so instrumentation costs nothing unless a
real :class:`Obs` is installed. See ``docs/observability.md``.
"""

from repro.obs.context import NULL_OBS, Obs, get_obs, set_obs, use_obs
from repro.obs.export import ObsData, obs_records, read_jsonl, write_jsonl
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.remarks import ANALYSIS, APPLIED, KINDS, MISSED, REJECTED, Remark
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "ANALYSIS",
    "APPLIED",
    "Counter",
    "Gauge",
    "Histogram",
    "KINDS",
    "MISSED",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_OBS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "Obs",
    "ObsData",
    "REJECTED",
    "Remark",
    "Span",
    "Tracer",
    "get_obs",
    "obs_records",
    "read_jsonl",
    "set_obs",
    "use_obs",
    "write_jsonl",
]
