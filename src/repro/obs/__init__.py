"""repro.obs — tracing, profiling, metrics, remarks, and run history.

The observability layer for the whole pipeline, in the spirit of LLVM's
``-Rpass`` remarks plus a lightweight span tracer and metrics registry:

* :class:`Tracer` / :class:`Span` — nested wall-time spans
  (``time.perf_counter``) over compilation and simulation phases; in
  profiling mode spans also carry CPU time, tracemalloc peak memory,
  and (pid, shard) provenance for process-pool merging;
* :class:`MetricsRegistry` — counters, gauges, and exact histograms
  (dependence tests by kind, RefGroup sizes, cache accesses/misses, ...),
  with shard-deduplicating merge for ``--jobs`` workers;
* :class:`Remark` — structured applied/rejected/analysis records from
  every transformation pass;
* :class:`Obs` — the bundle installed via :func:`set_obs` /
  :func:`use_obs` and consulted by instrumented code via :func:`get_obs`;
* :mod:`repro.obs.export` — JSONL round-trip of the whole context;
* :mod:`repro.obs.chrometrace` — Chrome trace-event / Perfetto export;
* :mod:`repro.obs.profile` — the ``--profile`` phase-tree renderer;
* :mod:`repro.obs.ledger` / :mod:`repro.obs.report` — the persistent
  per-run ledger (``.repro/ledger.jsonl``) and the ``python -m repro
  report`` artifact built from it.

Disabled by default: :func:`get_obs` returns :data:`NULL_OBS`, whose
operations are shared no-ops, so instrumentation costs nothing unless a
real :class:`Obs` is installed. See ``docs/observability.md``.
"""

from repro.obs.chrometrace import chrome_trace, chrome_trace_events, write_chrome_trace
from repro.obs.context import NULL_OBS, Obs, get_obs, set_obs, use_obs
from repro.obs.export import ObsData, obs_records, read_jsonl, write_jsonl
from repro.obs.ledger import (
    LedgerError,
    append_record,
    make_record,
    phases_from_obs,
    read_ledger,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.profile import render_profile
from repro.obs.remarks import ANALYSIS, APPLIED, KINDS, MISSED, REJECTED, Remark
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "ANALYSIS",
    "APPLIED",
    "Counter",
    "Gauge",
    "Histogram",
    "KINDS",
    "LedgerError",
    "MISSED",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_OBS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "Obs",
    "ObsData",
    "REJECTED",
    "Remark",
    "Span",
    "Tracer",
    "append_record",
    "chrome_trace",
    "chrome_trace_events",
    "get_obs",
    "make_record",
    "obs_records",
    "phases_from_obs",
    "read_jsonl",
    "read_ledger",
    "render_profile",
    "set_obs",
    "use_obs",
    "write_chrome_trace",
    "write_jsonl",
]
