"""Optimization remarks: machine-readable transformation decisions.

Modelled on LLVM's ``-Rpass`` / ``-Rpass-missed`` remark stream: every
pass that applies, rejects, or merely analyzes a transformation emits a
:class:`Remark` naming the pass, the decision kind, the nest/loops
involved, and — for rejections — the reason (``dependences``, ``bounds``,
``fusion-preventing``, ``capacity``, ...). Remarks are deterministic
(no timestamps), so ``--explain`` output is stable across runs and
suitable for golden tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Remark", "APPLIED", "REJECTED", "ANALYSIS", "MISSED", "KINDS"]

APPLIED = "applied"  # the pass transformed the code
REJECTED = "rejected"  # the pass tried and gave up (reason says why)
ANALYSIS = "analysis"  # informational: a fact the pass established
MISSED = "missed"  # a known opportunity the pass chose not to take
KINDS = (APPLIED, REJECTED, ANALYSIS, MISSED)


@dataclass(frozen=True)
class Remark:
    """One transformation decision.

    Attributes:
        pass_name: emitting pass (``permute``, ``fusion``, ``distribute``,
            ``compound``, ...).
        kind: one of :data:`KINDS`.
        message: human-readable one-liner.
        nest: driver nest index when the decision is nest-scoped.
        loops: loop index variables involved, outermost first.
        reason: rejection/miss reason slug, None otherwise.
        data: extra key/value detail, stored as a sorted tuple of pairs
            so remarks stay hashable and render deterministically.
    """

    pass_name: str
    kind: str
    message: str
    nest: int | None = None
    loops: tuple[str, ...] = ()
    reason: str | None = None
    data: tuple[tuple[str, object], ...] = ()

    def get(self, key: str, default=None):
        for name, value in self.data:
            if name == key:
                return value
        return default

    def format(self) -> str:
        """Stable one-line rendering (used by ``--explain``)."""
        out = f"{self.pass_name}:{self.kind}"
        if self.nest is not None:
            out += f" nest={self.nest}"
        if self.loops:
            out += " [" + " ".join(self.loops) + "]"
        out += f": {self.message}"
        if self.reason:
            out += f" (reason: {self.reason})"
        if self.data:
            out += " {" + ", ".join(
                f"{k}={_fmt_value(v)}" for k, v in self.data
            ) + "}"
        return out

    def to_dict(self) -> dict:
        return {
            "pass": self.pass_name,
            "kind": self.kind,
            "message": self.message,
            "nest": self.nest,
            "loops": list(self.loops),
            "reason": self.reason,
            "data": {k: _jsonable(v) for k, v in self.data},
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Remark":
        data = record.get("data") or {}
        return cls(
            pass_name=record["pass"],
            kind=record["kind"],
            message=record["message"],
            nest=record.get("nest"),
            loops=tuple(record.get("loops") or ()),
            reason=record.get("reason"),
            data=tuple(sorted((k, _tupled(v)) for k, v in data.items())),
        )

    def __str__(self) -> str:
        return self.format()


def _fmt_value(value) -> str:
    if isinstance(value, (tuple, list)):
        return ",".join(str(v) for v in value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _jsonable(value):
    """Coerce remark data to JSON-representable values."""
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _tupled(value):
    """Inverse-ish of :func:`_jsonable`: lists come back as tuples."""
    if isinstance(value, list):
        return tuple(_tupled(v) for v in value)
    return value
