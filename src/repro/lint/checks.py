"""The initial check set: six locality diagnostics from the paper's analyses.

Each check reads shared analyses from the :class:`LintContext` and emits
:class:`Diagnostic` records; fix-its attached here are *candidates* — the
engine verifies them against the legality layer and the brute-force
oracles and scores them with the analytic predictor before they are
surfaced.

Check catalog (ids are stable; see docs/lint.md):

==========  ==================  ====================================
LOC001      stride              non-unit/innermost-stride access
LOC002      loop-order          memory-order-violating permutation
LOC003      fusion              fusion candidates across adjacent nests
LOC004      race                loop-carried dependence blocks DOALL
LOC005      scalar-replace      redundant array reads, promotable
LOC006      alias               gcd-lattice alias hazards
==========  ==================  ====================================
"""

from __future__ import annotations

import math

from repro.dependence.pairs import Dependence, region_dependences
from repro.dependence.parallel import carried_levels
from repro.ir.affine import Affine
from repro.ir.expr import Ref
from repro.ir.nodes import Assign, Loop, Program
from repro.lint.diagnostics import NOTE, WARNING, Diagnostic, FixIt
from repro.lint.registry import LintCheck, LintContext, register
from repro.model.loopcost import CONSECUTIVE, INVARIANT

__all__ = [
    "StrideCheck",
    "LoopOrderCheck",
    "FusionCheck",
    "RaceCheck",
    "ScalarReplaceCheck",
    "AliasCheck",
]


def _first_stmt_with(loop: Loop, ref: Ref) -> Assign | None:
    for stmt in loop.statements:
        if ref in stmt.refs:
            return stmt
    return None


@register
class StrideCheck(LintCheck):
    """LOC001: references the innermost loop walks with non-unit stride."""

    check_id = "LOC001"
    name = "stride"
    default_severity = WARNING
    summary = (
        "A reference is neither loop-invariant nor consecutive with "
        "respect to the innermost loop: every iteration touches a new "
        "cache line (RefCost = trip, paper Figure 1)."
    )

    def run(self, ctx: LintContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for _index, nest in ctx.top_nests():
            for loop in ctx.innermost_loops(nest):
                seen: set[Ref] = set()
                for stmt in loop.statements:
                    for ref in stmt.refs:
                        if ref.rank == 0 or ref in seen:
                            continue
                        seen.add(ref)
                        kind = ctx.model.ref_cost_kind(ref, loop)
                        if kind in (INVARIANT, CONSECUTIVE):
                            continue
                        leading = ref.subs[0].coeff(loop.var)
                        if leading:
                            stride = abs(loop.step * leading)
                            how = f"stride {stride} in the leading dimension"
                        else:
                            how = "a non-leading dimension varies with the loop"
                        anchor = _first_stmt_with(loop, ref)
                        out.append(
                            Diagnostic(
                                self.check_id,
                                self.name,
                                self.default_severity,
                                f"{ref} is non-contiguous in innermost loop "
                                f"{loop.var}: {how}; each iteration touches a "
                                f"new cache line",
                                span=ctx.stmt_span(anchor.sid) if anchor else None,
                                loops=(loop.var,),
                                array=ref.array,
                                data={"kind": str(kind), "ref": str(ref)},
                            )
                        )
        return out


@register
class LoopOrderCheck(LintCheck):
    """LOC002: the nest is not in memory order; permutation would fix it."""

    check_id = "LOC002"
    name = "loop-order"
    default_severity = WARNING
    summary = (
        "LoopCost ranks a different loop cheapest-innermost than the one "
        "currently innermost; permuting into memory order (or distributing "
        "to enable the permutation) reduces the lines each iteration moves."
    )

    def run(self, ctx: LintContext) -> list[Diagnostic]:
        from repro.transforms.distribution import distribute_nest
        from repro.transforms.permute import permute_nest

        out: list[Diagnostic] = []
        for index, nest in ctx.top_nests():
            result = permute_nest(nest, ctx.model)
            if result.originally_in_memory_order:
                continue
            order = ".".join(result.original)
            desired = ".".join(result.desired)
            message = (
                f"loop order {order} is not memory order {desired} "
                f"(LoopCost ranks {result.desired[-1]} cheapest innermost)"
            )
            span = ctx.loop_span(nest.var)
            if result.applied:
                achieved = ".".join(result.order)
                description = f"permute nest to {achieved}"
                if result.reversed_loops:
                    description += (
                        f" (reversing {', '.join(result.reversed_loops)})"
                    )
                out.append(
                    Diagnostic(
                        self.check_id,
                        self.name,
                        self.default_severity,
                        message,
                        span=span,
                        loops=result.original,
                        data={"desired": desired, "achieved": achieved},
                        fixit=FixIt(
                            "permute",
                            description,
                            ctx.replace_top(index, (result.loop,)),
                        ),
                    )
                )
                continue
            # Permutation alone failed — try distribution as an enabler.
            outcome = distribute_nest(nest, ctx.model)
            if outcome is not None and any(
                p.applied or p.originally_in_memory_order
                for p in outcome.permutations
            ):
                out.append(
                    Diagnostic(
                        self.check_id,
                        self.name,
                        self.default_severity,
                        message + f"; distribution at level {outcome.level} "
                        f"enables the permutation",
                        span=span,
                        loops=result.original,
                        data={
                            "desired": desired,
                            "failure": result.failure or "",
                            "new_nests": outcome.new_nests,
                        },
                        fixit=FixIt(
                            "distribute",
                            f"distribute into {outcome.new_nests} nests and "
                            f"permute each into memory order",
                            ctx.replace_top(index, outcome.nodes),
                        ),
                    )
                )
                continue
            out.append(
                Diagnostic(
                    self.check_id,
                    self.name,
                    NOTE,
                    message
                    + f"; unachievable ({result.failure or 'dependences'})",
                    span=span,
                    loops=result.original,
                    data={"desired": desired, "failure": result.failure or ""},
                )
            )
        return out


def _replace_pair(program: Program, first: Loop, fused: Loop) -> Program:
    """Replace the adjacent pair starting at ``first`` with ``fused``."""

    def rebuild(body: tuple["Loop | Assign", ...]) -> tuple[tuple["Loop | Assign", ...], bool]:
        out: list[Loop | Assign] = []
        changed = False
        i = 0
        while i < len(body):
            node = body[i]
            if node is first:
                out.append(fused)
                i += 2
                changed = True
                continue
            if isinstance(node, Loop):
                new_body, sub_changed = rebuild(node.body)
                if sub_changed:
                    node = node.with_body(new_body)
                    changed = True
            out.append(node)
            i += 1
        return tuple(out), changed

    new_body, changed = rebuild(program.body)
    if not changed:
        raise ValueError("fusion target not found in program body")
    return program.with_body(new_body)


@register
class FusionCheck(LintCheck):
    """LOC003: adjacent compatible nests that could (or cannot) fuse."""

    check_id = "LOC003"
    name = "fusion"
    default_severity = WARNING
    summary = (
        "Two adjacent nests share compatible headers; fusing them turns "
        "cross-nest group-temporal reuse into in-loop reuse (paper §4.3). "
        "Candidates blocked by a fusion-preventing dependence are reported "
        "as notes."
    )

    def run(self, ctx: LintContext) -> list[Diagnostic]:
        from repro.transforms.fusion import (
            compatible_depth,
            fuse_pair,
            fusion_benefit,
            fusion_preventing,
        )

        out: list[Diagnostic] = []

        def scan(body: tuple["Loop | Assign", ...]) -> None:
            for i in range(len(body) - 1):
                first, second = body[i], body[i + 1]
                if not (isinstance(first, Loop) and isinstance(second, Loop)):
                    continue
                depth = compatible_depth(first, second)
                if depth == 0:
                    continue
                pair = f"adjacent nests over {first.var} and {second.var}"
                span = ctx.loop_span(first.var)
                if fusion_preventing(first, second, depth):
                    out.append(
                        Diagnostic(
                            self.check_id,
                            self.name,
                            NOTE,
                            f"{pair} have compatible headers (depth {depth}) "
                            f"but a fusion-preventing dependence would run "
                            f"backwards in the fused loop",
                            span=span,
                            loops=(first.var, second.var),
                            data={"depth": depth, "blocked": True},
                        )
                    )
                    continue
                benefit = fusion_benefit(first, second, depth, ctx.model)
                if benefit <= 0:
                    out.append(
                        Diagnostic(
                            self.check_id,
                            self.name,
                            NOTE,
                            f"{pair} can fuse (depth {depth}) but the cost "
                            f"model predicts no locality benefit",
                            span=span,
                            loops=(first.var, second.var),
                            data={"depth": depth, "benefit": 0},
                        )
                    )
                    continue
                fused = fuse_pair(first, second, depth)
                out.append(
                    Diagnostic(
                        self.check_id,
                        self.name,
                        self.default_severity,
                        f"{pair} are compatible to depth {depth} and fusing "
                        f"them improves group-temporal reuse",
                        span=span,
                        loops=(first.var, second.var),
                        data={"depth": depth},
                        fixit=FixIt(
                            "fuse",
                            f"fuse the {first.var} and {second.var} nests "
                            f"at depth {depth}",
                            _replace_pair(ctx.program, first, fused),
                        ),
                    )
                )
            for node in body:
                if isinstance(node, Loop):
                    scan(node.body)

        scan(ctx.program.body)
        return out


@register
class RaceCheck(LintCheck):
    """LOC004: a loop-carried dependence blocks outer-loop parallelization."""

    check_id = "LOC004"
    name = "race"
    default_severity = NOTE
    summary = (
        "The outermost loop of a nest carries a dependence: running its "
        "iterations concurrently would race on the reported reference "
        "pair. Parallelize an inner dependence-free loop instead."
    )

    def run(self, ctx: LintContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for _index, nest in ctx.top_nests():
            carried = carried_levels(nest)
            if not carried.get(nest.var):
                continue
            offender: Dependence | None = None
            for dep in region_dependences(nest):
                if dep.constrains_legality and dep.carried_level() == 1:
                    offender = dep
                    break
            if offender is None:  # pragma: no cover - carried implies a dep
                continue
            parallel = [var for var, is_carried in carried.items() if not is_carried]
            hint = (
                f"; inner loop(s) {', '.join(parallel)} are dependence-free"
                if parallel
                else "; no loop of this nest is dependence-free"
            )
            out.append(
                Diagnostic(
                    self.check_id,
                    self.name,
                    self.default_severity,
                    f"outer loop {nest.var} carries a {offender.kind} "
                    f"dependence {offender}: iterations are not independent "
                    f"(blocks DOALL parallelization){hint}",
                    span=ctx.loop_span(nest.var),
                    loops=(nest.var,),
                    array=offender.source.ref.array,
                    data={
                        "kind": offender.kind,
                        "vector": str(offender.vector),
                        "source_sid": offender.source.sid,
                        "sink_sid": offender.sink.sid,
                        "parallel_loops": parallel,
                    },
                )
            )
        return out


@register
class ScalarReplaceCheck(LintCheck):
    """LOC005: innermost-loop-invariant references re-loaded every iteration."""

    check_id = "LOC005"
    name = "scalar-replace"
    default_severity = WARNING
    summary = (
        "A reference is invariant in the innermost loop and provably "
        "disjoint from every other reference to its array: the repeated "
        "load (and store) is redundant memory traffic a scalar temporary "
        "eliminates (paper framework step 3, after [CCK90])."
    )

    def run(self, ctx: LintContext) -> list[Diagnostic]:
        from repro.transforms.scalar_replace import (
            _promotable_refs,
            scalar_replace_program,
        )

        candidates: list[tuple[Loop, Ref, bool]] = []
        for _index, nest in ctx.top_nests():
            for loop in ctx.innermost_loops(nest):
                stmts = [item for item in loop.body if isinstance(item, Assign)]
                for ref, written in _promotable_refs(stmts, loop.var):
                    candidates.append((loop, ref, written))
        if not candidates:
            return []
        replaced = scalar_replace_program(ctx.program)
        fixit = (
            FixIt(
                "scalar-replace",
                f"promote {replaced.replaced} invariant reference(s) to scalars",
                replaced.program,
            )
            if replaced.replaced
            else None
        )
        out: list[Diagnostic] = []
        for loop, ref, written in candidates:
            traffic = "re-loaded" if not written else "re-loaded and re-stored"
            anchor = _first_stmt_with(loop, ref)
            out.append(
                Diagnostic(
                    self.check_id,
                    self.name,
                    self.default_severity,
                    f"{ref} is invariant in innermost loop {loop.var} and "
                    f"{traffic} every iteration; promote it to a scalar",
                    span=ctx.stmt_span(anchor.sid) if anchor else None,
                    loops=(loop.var,),
                    array=ref.array,
                    data={"ref": str(ref), "written": written},
                    fixit=fixit,
                )
            )
        return out


def _ref_address(ref: Ref, strides: tuple[int, ...]) -> Affine:
    """Byte offset of ``ref`` within its array (base excluded)."""
    addr = Affine.constant(0)
    for sub, stride in zip(ref.subs, strides):
        addr = addr + sub * stride - stride
    return addr


@register
class AliasCheck(LintCheck):
    """LOC006: gcd-lattice overlap between non-uniformly generated refs."""

    check_id = "LOC006"
    name = "alias"
    default_severity = WARNING
    summary = (
        "Two references to one array have different linear parts but "
        "address lattices the gcd test cannot separate: dependence "
        "directions degrade to '*' and the analytic predictor treats the "
        "pair conservatively (gcd machinery of repro.locality.analytic)."
    )

    def run(self, ctx: LintContext) -> list[Diagnostic]:
        from repro.exec.layout import MemoryLayout

        env = ctx.program.param_env
        try:
            layout = MemoryLayout.for_program(ctx.program)
        except Exception:  # unresolvable extents: nothing to reason about
            return []
        out: list[Diagnostic] = []
        reported: set[tuple[str, tuple[Affine, ...], tuple[Affine, ...]]] = set()
        for _index, nest in ctx.top_nests():
            sites: list[tuple[Assign, Ref, bool]] = []
            for stmt in nest.statements:
                for slot, ref in enumerate(stmt.refs):
                    if ref.rank:
                        sites.append((stmt, ref, slot == 0))
            for i, (stmt_a, ref_a, write_a) in enumerate(sites):
                for stmt_b, ref_b, write_b in sites[i + 1 :]:
                    if ref_a.array != ref_b.array or ref_a.subs == ref_b.subs:
                        continue
                    if not (write_a or write_b):
                        continue
                    key = (ref_a.array, ref_a.subs, ref_b.subs)
                    if key in reported or (ref_a.array, ref_b.subs, ref_a.subs) in reported:
                        continue
                    strides = layout[ref_a.array].strides
                    delta = (
                        _ref_address(ref_a, strides) - _ref_address(ref_b, strides)
                    ).partial_evaluate(env)
                    coeffs = [c for _name, c in delta.terms]
                    if not coeffs:
                        continue  # uniformly generated: constant distance
                    lattice = math.gcd(*(abs(c) for c in coeffs))
                    if lattice and delta.const % lattice != 0:
                        continue  # provably disjoint lattices
                    reported.add(key)
                    out.append(
                        Diagnostic(
                            self.check_id,
                            self.name,
                            self.default_severity,
                            f"{ref_a} and {ref_b} may alias: the gcd lattice "
                            f"test cannot separate their address sets "
                            f"(stride gcd {lattice}, offset "
                            f"{delta.const % lattice if lattice else 0}); "
                            f"dependence directions degrade to '*'",
                            span=ctx.stmt_span(stmt_a.sid) or ctx.stmt_span(stmt_b.sid),
                            array=ref_a.array,
                            data={
                                "refs": [str(ref_a), str(ref_b)],
                                "gcd": lattice,
                            },
                        )
                    )
        return out
