"""Text and JSON renderers for lint results.

The text format follows the clang-tidy convention::

    path:line:col: severity: message [check-name]
        fix-it (transform): description; predicted miss ratio B -> A

Diagnostics without a source span (programs built through the API rather
than parsed) anchor on the program name instead.
"""

from __future__ import annotations

import json

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintResult

__all__ = ["render_text", "render_json"]


def _anchor(result: LintResult, diag: Diagnostic, path: str | None) -> str:
    where = path or result.program.name
    if diag.span is not None:
        return f"{where}:{diag.span.line}:{diag.span.column}"
    return where


def render_text(result: LintResult, path: str | None = None) -> str:
    """Human-readable report, one line per diagnostic plus a summary."""
    lines: list[str] = []
    for diag in result.diagnostics:
        lines.append(
            f"{_anchor(result, diag, path)}: {diag.severity}: "
            f"{diag.message} [{diag.check_name}]"
        )
        if diag.fixit is not None:
            fixit = diag.fixit
            status = "verified" if fixit.verified else f"FAILED ({fixit.verification})"
            lines.append(
                f"    fix-it ({fixit.transform}, {status}): {fixit.description}; "
                f"predicted miss ratio {fixit.miss_before:.4f} -> "
                f"{fixit.miss_after:.4f}"
            )
        elif "fixit_withheld" in diag.data:
            lines.append(
                f"    fix-it withheld: {diag.data['fixit_withheld']} "
                f"(predicted miss ratio {diag.data.get('miss_before', 0):.4f} -> "
                f"{diag.data.get('miss_after', 0):.4f})"
            )
    counts = result.counts()
    fixable = len(result.fixable())
    lines.append(
        f"{result.program.name}: {len(result.diagnostics)} diagnostic(s) "
        f"({counts['error']} error, {counts['warning']} warning, "
        f"{counts['note']} note), {fixable} verified fix-it(s); "
        f"predicted miss ratio {result.miss_ratio:.4f} at "
        f"{result.capacity} lines x {result.line}B"
    )
    return "\n".join(lines)


def render_json(result: LintResult, path: str | None = None) -> str:
    """Machine-readable report (stable key order)."""
    payload = result.to_dict()
    if path:
        payload["path"] = path
    return json.dumps(payload, indent=2, sort_keys=True)
