"""Fix-it verification: legality, oracles, and miss-ratio scoring.

A candidate fix-it was built by a transform whose own legality checks
admitted it. Before the engine surfaces it, the repair is re-checked
end to end:

1. **structural validation** — :func:`repro.ir.validate.validate_program`
   on the transformed program (only enforced when the original program
   itself validates; fuzz-generated IR legitimately reuses loop names
   across sibling nests);
2. **execution equivalence** — interpret original and transformed
   programs at a shrunken problem size and require bit-identical final
   state on every array common to both (scalar replacement introduces
   temporaries, which are excluded);
3. **brute-force dependence coverage** — the analytic dependences of the
   transformed program must cover the exhaustive oracle of
   :mod:`repro.verify.depforce`, so the rewrite did not push the program
   outside what the analyses can reason about.

Scoring uses the analytic predictor at full problem size. The engine's
metric is **predicted misses per original access**: both
``miss_before`` and ``miss_after`` are normalized by the *original*
program's access count, so a fix-it that eliminates always-hit
references (scalar replacement shrinks the access stream without
touching the miss count) is not penalized by a shrinking denominator.
For the unmodified program this equals its ordinary FA-LRU miss ratio.
"""

from __future__ import annotations

from repro.errors import IRError, ReproError
from repro.ir.nodes import Program
from repro.ir.validate import validate_program

__all__ = [
    "verify_fixit",
    "predicted_misses",
    "predicted_miss_ratio",
    "VERIFY_PARAM_CAP",
    "PAYOFF_EPS",
]

#: Parameters are clamped to this value for the interpreter-based
#: equivalence check; transforms are affine/size-independent, so a small
#: instance is a sound differential witness at a fraction of the cost.
VERIFY_PARAM_CAP = 8

#: Tolerance when requiring "never worsens the predicted miss ratio".
PAYOFF_EPS = 1e-12


def _shrunk(program: Program) -> Program:
    small = {name: min(value, VERIFY_PARAM_CAP) for name, value in program.params}
    return program.scaled(**small) if small else program


def verify_fixit(original: Program, candidate: Program) -> tuple[bool, str]:
    """Check a fix-it program against the oracles.

    Returns ``(True, "oracle")`` on success, else ``(False, slug)`` with
    a short failure slug (``invalid-ir``, ``crash:...``,
    ``state-mismatch:...``, ``dependence-uncovered``).
    """
    try:
        validate_program(original)
        original_valid = True
    except IRError:
        original_valid = False
    if original_valid:
        try:
            validate_program(candidate)
        except IRError as exc:
            return False, f"invalid-ir: {exc}"

    from repro.dependence.pairs import region_dependences
    from repro.verify.depforce import analysis_covers, brute_force_dependences
    from repro.verify.oracles import run_state

    base_prog = _shrunk(original)
    cand_prog = _shrunk(candidate)
    try:
        base = run_state(base_prog)
    except (ReproError, ArithmeticError, ValueError, IndexError, KeyError):
        # The *original* program does not run under the interpreter's
        # default initialization (e.g. cholesky needs an SPD input, so
        # SQRT sees a negative). That is not the fix-it's fault; the
        # differential state check is skipped and legality rests on the
        # dependence oracle below.
        base = None
    if base is not None:
        try:
            state = run_state(cand_prog)
        except (ReproError, ArithmeticError, ValueError, IndexError, KeyError) as exc:
            return False, f"crash: {type(exc).__name__}: {exc}"
        shared = sorted(set(base) & set(state))
        differing = [name for name in shared if base[name] != state[name]]
        if differing:
            return False, f"state-mismatch: {', '.join(differing)}"

    try:
        deps = region_dependences(cand_prog, include_inputs=True)
        exact = brute_force_dependences(
            cand_prog, cand_prog.param_env, include_inputs=True
        )
    except (ReproError, ArithmeticError, ValueError, IndexError, KeyError) as exc:
        return False, f"crash: {type(exc).__name__}: {exc}"
    missing = analysis_covers(deps, exact)
    if missing:
        return False, f"dependence-uncovered: {missing[0]}"
    return True, "oracle"


def predicted_misses(program: Program, line: int, capacity: int) -> tuple[int, int]:
    """Analytic ``(misses, accesses)`` of ``program`` at ``capacity`` lines.

    Routed through the shared :class:`repro.model.oracle.AnalyticOracle`
    so lint payoff scoring and the autotuner rank candidates with the
    same memoized oracle (one prediction per canonical program text).
    """
    from repro.model.oracle import AnalyticOracle

    prediction = AnalyticOracle(line=line, capacity=capacity).prediction(program)
    return prediction.misses_for_capacity(capacity), prediction.accesses


def predicted_miss_ratio(program: Program, line: int, capacity: int) -> float:
    """Analytic FA-LRU miss ratio of ``program`` at ``capacity`` lines."""
    misses, accesses = predicted_misses(program, line, capacity)
    return misses / accesses if accesses else 0.0
