"""SARIF 2.1.0 export of lint results.

Emits a single-run SARIF log: the tool driver advertises every
registered check as a ``reportingDescriptor`` (rule), and each
diagnostic becomes a ``result`` referencing its rule by id and index.
Fix-it metadata (transform, verification status, predicted miss ratios)
rides in ``result.properties`` so downstream tooling — including the CI
gate in ``tools/check_sarif.py`` — can distinguish a verified repair
from one that failed the oracles.
"""

from __future__ import annotations

import json
from typing import Any

from repro.lint.diagnostics import ERROR, NOTE, Diagnostic
from repro.lint.engine import LintResult
from repro.lint.registry import registered_checks

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA", "sarif_log", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {ERROR: "error", NOTE: "note"}  # everything else maps to "warning"


def _rules() -> list[dict[str, Any]]:
    out = []
    for check_id, cls in sorted(registered_checks().items()):
        out.append(
            {
                "id": check_id,
                "name": cls.name,
                "shortDescription": {"text": cls.summary or cls.name},
                "defaultConfiguration": {
                    "level": _LEVELS.get(cls.default_severity, "warning")
                },
            }
        )
    return out


def _location(diag: Diagnostic, uri: str) -> dict[str, Any]:
    physical: dict[str, Any] = {"artifactLocation": {"uri": uri}}
    if diag.span is not None:
        physical["region"] = {
            "startLine": diag.span.line,
            "startColumn": diag.span.column,
            "endLine": diag.span.end_line,
            "endColumn": diag.span.end_column,
        }
    return {"physicalLocation": physical}


def _result(
    diag: Diagnostic, uri: str, rule_index: dict[str, int]
) -> dict[str, Any]:
    properties: dict[str, Any] = {"check": diag.check_name}
    if diag.loops:
        properties["loops"] = list(diag.loops)
    if diag.array:
        properties["array"] = diag.array
    for key, value in sorted(diag.data.items()):
        properties[key] = value
    if diag.fixit is not None:
        properties["fixit"] = diag.fixit.to_dict()
    out: dict[str, Any] = {
        "ruleId": diag.check_id,
        "level": _LEVELS.get(diag.severity, "warning"),
        "message": {"text": diag.message},
        "locations": [_location(diag, uri)],
        "properties": properties,
    }
    if diag.check_id in rule_index:
        out["ruleIndex"] = rule_index[diag.check_id]
    return out


def sarif_log(results: "list[tuple[LintResult, str | None]]") -> dict[str, Any]:
    """Build the SARIF log object for one or more linted programs.

    ``results`` pairs each :class:`LintResult` with the source path it was
    parsed from (``None`` for in-memory programs, which fall back to a
    ``repro://`` URI on the program name).
    """
    rules = _rules()
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    sarif_results: list[dict[str, Any]] = []
    for result, path in results:
        uri = path or f"repro://{result.program.name}"
        for diag in result.diagnostics:
            sarif_results.append(_result(diag, uri, rule_index))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://github.com/repro/repro",
                        "rules": rules,
                    }
                },
                "results": sarif_results,
            }
        ],
    }


def to_sarif(results: "list[tuple[LintResult, str | None]]") -> str:
    """Serialized SARIF 2.1.0 log (stable key order)."""
    return json.dumps(sarif_log(results), indent=2, sort_keys=True)
