"""Diagnostic and fix-it records emitted by the lint checks.

A :class:`Diagnostic` is one finding: a stable check id, a severity, an
optional source span (anchored on the frontend's parse tree), a human
message, and — when a repair is mechanically expressible — a
:class:`FixIt` binding the finding to one of the existing transforms.

Fix-its are *candidates* until the engine verifies them: the engine
applies the transform with legality checking on, cross-checks the result
against the brute-force dependence/execution oracles in
:mod:`repro.verify`, and scores the repair with the analytic miss-ratio
predictor. Only then is ``verified`` set and the payoff filled in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.ir.nodes import Program
from repro.ir.span import Span

__all__ = [
    "Diagnostic",
    "FixIt",
    "SEVERITIES",
    "SEVERITY_RANK",
    "ERROR",
    "WARNING",
    "NOTE",
]

#: Severity levels, mirroring SARIF's ``error`` / ``warning`` / ``note``.
ERROR = "error"
WARNING = "warning"
NOTE = "note"
SEVERITIES = (ERROR, WARNING, NOTE)
SEVERITY_RANK: dict[str, int] = {ERROR: 0, WARNING: 1, NOTE: 2}


@dataclass(frozen=True)
class FixIt:
    """A machine-applicable repair bound to an existing transform.

    ``transform`` names the rewrite family (``permute``, ``fuse``,
    ``distribute``, ``scalar-replace``, ``tile``); ``program`` is the
    whole transformed program. ``verified`` is set by the engine once the
    repair has passed legality plus the brute-force oracle;
    ``verification`` carries the outcome slug (``oracle`` on success, a
    failure slug otherwise). ``miss_before``/``miss_after`` are analytic
    FA-LRU miss ratios at the engine's reference capacity.
    """

    transform: str
    description: str
    program: Program
    verified: bool = False
    verification: str = "unverified"
    miss_before: float = 0.0
    miss_after: float = 0.0

    @property
    def payoff(self) -> float:
        """Predicted miss-ratio reduction (positive = improvement)."""
        return self.miss_before - self.miss_after

    def to_dict(self) -> dict[str, Any]:
        return {
            "transform": self.transform,
            "description": self.description,
            "verified": self.verified,
            "verification": self.verification,
            "miss_before": round(self.miss_before, 6),
            "miss_after": round(self.miss_after, 6),
            "payoff": round(self.payoff, 6),
        }


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding from a lint check."""

    check_id: str
    check_name: str
    severity: str
    message: str
    span: Span | None = None
    loops: tuple[str, ...] = ()
    array: str | None = None
    data: Mapping[str, Any] = field(default_factory=dict)
    fixit: FixIt | None = None

    @property
    def payoff(self) -> float:
        """Predicted payoff of the attached verified fix-it (0 if none)."""
        if self.fixit is not None and self.fixit.verified:
            return self.fixit.payoff
        return 0.0

    def sort_key(self) -> tuple[int, float, str, tuple[int, int]]:
        """Most severe first, then by predicted payoff, then stable."""
        position = (self.span.line, self.span.column) if self.span else (0, 0)
        return (
            SEVERITY_RANK.get(self.severity, len(SEVERITIES)),
            -self.payoff,
            self.check_id,
            position,
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "check_id": self.check_id,
            "check": self.check_name,
            "severity": self.severity,
            "message": self.message,
        }
        if self.span is not None:
            out["span"] = {
                "line": self.span.line,
                "column": self.span.column,
                "end_line": self.span.end_line,
                "end_column": self.span.end_column,
            }
        if self.loops:
            out["loops"] = list(self.loops)
        if self.array:
            out["array"] = self.array
        if self.data:
            out["data"] = {k: self.data[k] for k in sorted(self.data)}
        if self.fixit is not None:
            out["fixit"] = self.fixit.to_dict()
        return out
