"""Check registry and shared analysis context (the lint pass manager).

Checks are small classes registered by decorating with :func:`register`;
the engine instantiates every registered check (or a selected subset)
and runs them over one :class:`LintContext`. The context owns the
expensive shared analyses — dependences, the analytic locality
prediction, span lookup tables — computed lazily and exactly once per
linted program.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, TypeVar

from repro.ir.nodes import Assign, Loop, Program
from repro.ir.span import Span
from repro.ir.visit import iter_loops, iter_statements
from repro.lint.diagnostics import Diagnostic
from repro.model.loopcost import CostModel
from repro.model.oracle import AnalyticOracle, CostOracle

if TYPE_CHECKING:
    from repro.dependence.pairs import Dependence
    from repro.locality.analytic import LocalityPrediction

__all__ = [
    "LintCheck",
    "LintContext",
    "register",
    "all_checks",
    "checks_for",
    "registered_checks",
]


class LintContext:
    """Shared state for one lint run over one program."""

    def __init__(
        self,
        program: Program,
        model: CostModel | None = None,
        line: int = 128,
        capacity: int = 512,
        oracle: CostOracle | None = None,
    ) -> None:
        self.program = program
        self.model = model or CostModel()
        self.line = line
        self.capacity = capacity
        #: The cost oracle every payoff score goes through — the same
        #: interface the autotuner plans with, so lint and autotune rank
        #: candidates identically (and share the prediction memo cache).
        self.oracle: CostOracle = oracle or AnalyticOracle(
            model=self.model, line=line, capacity=capacity
        )
        self._deps: list[Dependence] | None = None
        self._prediction: LocalityPrediction | None = None
        self._stmt_spans: dict[int, Span] | None = None
        self._loop_spans: dict[str, Span] | None = None

    # ------------------------------------------------------------------
    # Shared lazy analyses
    # ------------------------------------------------------------------
    def dependences(self) -> "list[Dependence]":
        """Legality-relevant dependences over the whole program."""
        if self._deps is None:
            from repro.dependence.pairs import region_dependences

            self._deps = region_dependences(self.program)
        return self._deps

    def prediction(self) -> "LocalityPrediction":
        """Analytic locality prediction of the (unmodified) program."""
        if self._prediction is None:
            if isinstance(self.oracle, AnalyticOracle):
                self._prediction = self.oracle.prediction(self.program)
            else:
                from repro.locality.analytic import predict_locality

                self._prediction = predict_locality(
                    self.program, line=self.line
                )
        return self._prediction

    def miss_ratio(self) -> float:
        """Predicted FA-LRU miss ratio at the reference capacity."""
        return self.prediction().miss_ratio_for_capacity(self.capacity)

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------
    def top_nests(self) -> Iterator[tuple[int, Loop]]:
        """Top-level loop nests with their body index."""
        for index, item in enumerate(self.program.body):
            if isinstance(item, Loop):
                yield index, item

    def innermost_loops(self, root: Loop) -> Iterator[Loop]:
        """Loops of the nest with no loop children (stride anchors)."""
        for loop in iter_loops(root):
            if not loop.inner_loops:
                yield loop

    def replace_top(self, index: int, nodes: "tuple[Loop | Assign, ...]") -> Program:
        """The program with ``body[index]`` replaced by ``nodes``."""
        body = list(self.program.body)
        body[index : index + 1] = list(nodes)
        return self.program.with_body(body)

    # ------------------------------------------------------------------
    # Span anchors
    # ------------------------------------------------------------------
    def stmt_span(self, sid: int) -> Span | None:
        if self._stmt_spans is None:
            self._stmt_spans = {
                s.sid: s.span for s in iter_statements(self.program) if s.span
            }
        return self._stmt_spans.get(sid)

    def loop_span(self, var: str) -> Span | None:
        if self._loop_spans is None:
            self._loop_spans = {
                l.var: l.span for l in iter_loops(self.program) if l.span
            }
        return self._loop_spans.get(var)


class LintCheck:
    """Base class for registered checks.

    Subclasses set the class attributes and implement :meth:`run`,
    returning diagnostics whose fix-its (if any) are *unverified*
    candidates — verification and scoring belong to the engine.
    """

    check_id: str = ""
    name: str = ""
    default_severity: str = "warning"
    summary: str = ""

    def run(self, ctx: LintContext) -> list[Diagnostic]:
        raise NotImplementedError


_REGISTRY: dict[str, type[LintCheck]] = {}

C = TypeVar("C", bound=type[LintCheck])


def register(cls: C) -> C:
    """Class decorator adding a check to the global registry."""
    if not cls.check_id or not cls.name:
        raise ValueError(f"lint check {cls.__name__} must set check_id and name")
    if cls.check_id in _REGISTRY:
        raise ValueError(f"duplicate lint check id {cls.check_id}")
    _REGISTRY[cls.check_id] = cls
    return cls


def _ensure_loaded() -> None:
    # Importing the checks module populates the registry.
    from repro.lint import checks as _checks  # noqa: F401


def all_checks() -> list[LintCheck]:
    """One instance of every registered check, ordered by check id."""
    _ensure_loaded()
    return [_REGISTRY[cid]() for cid in sorted(_REGISTRY)]


def checks_for(selection: "tuple[str, ...] | None") -> list[LintCheck]:
    """Instances for a user selection of ids or names (None = all)."""
    _ensure_loaded()
    if not selection:
        return all_checks()
    by_name = {cls.name: cid for cid, cls in _REGISTRY.items()}
    out: list[LintCheck] = []
    for want in selection:
        cid = want if want in _REGISTRY else by_name.get(want, "")
        if not cid:
            known = sorted(_REGISTRY) + sorted(by_name)
            raise ValueError(f"unknown lint check {want!r} (known: {', '.join(known)})")
        out.append(_REGISTRY[cid]())
    return out


def registered_checks() -> dict[str, type[LintCheck]]:
    """The registry itself (id -> class), for rule-metadata export."""
    _ensure_loaded()
    return dict(_REGISTRY)
