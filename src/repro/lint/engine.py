"""The lint engine: run checks, verify fix-its, rank, and apply.

:func:`lint_program` drives every registered (or selected) check over a
shared :class:`LintContext`, then post-processes each candidate fix-it:

* verification failure ⇒ the diagnostic escalates to **error** severity
  and the fix-it stays attached with ``verified=False`` — a transform
  claimed legality and the oracle disagreed, which is a bug worth
  failing CI over;
* a verified fix-it that *worsens* the predicted miss ratio is withheld
  (the diagnostic survives with a ``fixit_withheld`` note) — emitted
  fix-its never regress the analytic prediction, which the
  ``verify/lintcheck`` fuzz oracle asserts;
* otherwise the fix-it is attached with its miss-ratio scores, and
  diagnostics are ranked most-severe first, then by predicted payoff.

:func:`apply_fixes` is the ``--fix`` driver: repeatedly lint, apply the
highest-payoff verified fix-it, and re-lint, until the program is clean
or converged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.ir.nodes import Program
from repro.ir.pretty import pretty_program
from repro.lint.diagnostics import ERROR, SEVERITIES, Diagnostic
from repro.lint.registry import LintContext, checks_for
from repro.lint.verifyfix import PAYOFF_EPS, verify_fixit
from repro.model.loopcost import CostModel
from repro.obs import get_obs

__all__ = ["LintResult", "lint_program", "AppliedFix", "FixOutcome", "apply_fixes"]


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run over one program."""

    program: Program
    diagnostics: tuple[Diagnostic, ...]
    checks_run: tuple[str, ...]
    line: int
    capacity: int
    miss_ratio: float

    def counts(self) -> dict[str, int]:
        out = {severity: 0 for severity in SEVERITIES}
        for diag in self.diagnostics:
            out[diag.severity] = out.get(diag.severity, 0) + 1
        return out

    @property
    def errors(self) -> int:
        return self.counts()[ERROR]

    def fixable(self) -> tuple[Diagnostic, ...]:
        """Diagnostics carrying a verified fix-it."""
        return tuple(
            d
            for d in self.diagnostics
            if d.fixit is not None and d.fixit.verified
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "program": self.program.name,
            "line": self.line,
            "capacity": self.capacity,
            "miss_ratio": round(self.miss_ratio, 6),
            "checks": list(self.checks_run),
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def _verify_and_score(
    ctx: LintContext, diag: Diagnostic, before: float, accesses: int
) -> Diagnostic:
    """Run the oracles over one candidate fix-it and fold in the verdict.

    ``before`` and the computed ``after`` are predicted misses normalized
    by the *original* program's access count (``accesses``), so repairs
    that shrink the access stream without adding misses score as neutral
    rather than being penalized by a smaller denominator.
    """
    fixit = diag.fixit
    assert fixit is not None
    obs = get_obs()
    ok, slug = verify_fixit(ctx.program, fixit.program)
    # Score through the context's cost oracle — the same interface the
    # autotuner plans with, so both rank a candidate identically.
    after_misses = ctx.oracle.cost(fixit.program).misses
    after = after_misses / accesses if accesses else 0.0
    if not ok:
        if obs.enabled:
            obs.metrics.counter("lint.fixits.failed").inc()
            obs.remark(
                "lint",
                "rejected",
                f"{diag.check_id}: fix-it ({fixit.transform}) failed "
                f"verification: {slug}",
                reason="fixit-verification",
                check=diag.check_id,
            )
        return replace(
            diag,
            severity=ERROR,
            message=diag.message + f" [fix-it failed verification: {slug}]",
            fixit=replace(
                fixit,
                verified=False,
                verification=slug,
                miss_before=before,
                miss_after=after,
            ),
        )
    if after > before + PAYOFF_EPS:
        if obs.enabled:
            obs.metrics.counter("lint.fixits.withheld").inc()
        data = dict(diag.data)
        data["fixit_withheld"] = "no-predicted-payoff"
        data["miss_before"] = round(before, 6)
        data["miss_after"] = round(after, 6)
        return replace(diag, fixit=None, data=data)
    if obs.enabled:
        obs.metrics.counter("lint.fixits.verified").inc()
    return replace(
        diag,
        fixit=replace(
            fixit,
            verified=True,
            verification="oracle",
            miss_before=before,
            miss_after=after,
        ),
    )


def lint_program(
    program: Program,
    *,
    model: CostModel | None = None,
    checks: tuple[str, ...] | None = None,
    verify: bool = True,
    line: int = 128,
    capacity: int = 512,
) -> LintResult:
    """Run the lint pass pipeline over ``program``."""
    obs = get_obs()
    ctx = LintContext(program, model=model, line=line, capacity=capacity)
    selected = checks_for(checks)
    found: list[Diagnostic] = []
    with obs.span("lint.program", program=program.name, checks=len(selected)):
        for check in selected:
            with obs.span(f"lint.check.{check.name}"):
                results = check.run(ctx)
            if obs.enabled and results:
                obs.metrics.counter(f"lint.check.{check.name}").inc(len(results))
            found.extend(results)

        if found or verify:
            prediction = ctx.prediction()
            accesses = prediction.accesses
            misses = prediction.misses_for_capacity(capacity)
            baseline = misses / accesses if accesses else 0.0
        else:
            baseline = 0.0
            accesses = 0
        finished: list[Diagnostic] = []
        for diag in found:
            if diag.fixit is not None and verify:
                with obs.span("lint.verify", check=diag.check_id):
                    diag = _verify_and_score(ctx, diag, baseline, accesses)
            finished.append(diag)
        finished.sort(key=Diagnostic.sort_key)

        if obs.enabled:
            for diag in finished:
                obs.metrics.counter("lint.diagnostics").inc()
                obs.metrics.counter(f"lint.diagnostics.{diag.severity}").inc()
                obs.remark(
                    "lint",
                    "analysis",
                    f"{diag.check_id} ({diag.severity}): {diag.message}",
                    loops=diag.loops,
                    check=diag.check_id,
                    severity=diag.severity,
                    fixit=diag.fixit.transform if diag.fixit else None,
                )
    return LintResult(
        program=program,
        diagnostics=tuple(finished),
        checks_run=tuple(check.check_id for check in selected),
        line=line,
        capacity=capacity,
        miss_ratio=baseline if (found or verify) else 0.0,
    )


@dataclass(frozen=True)
class AppliedFix:
    """One fix-it applied by :func:`apply_fixes`."""

    check_id: str
    transform: str
    description: str
    miss_before: float
    miss_after: float


@dataclass(frozen=True)
class FixOutcome:
    """Result of the ``--fix`` driver."""

    program: Program
    applied: tuple[AppliedFix, ...]
    result: LintResult  # lint of the final program


def apply_fixes(
    program: Program,
    *,
    model: CostModel | None = None,
    checks: tuple[str, ...] | None = None,
    line: int = 128,
    capacity: int = 512,
    max_rounds: int = 8,
) -> FixOutcome:
    """Repeatedly apply the highest-payoff verified fix-it, then re-lint.

    Every applied fix-it has passed the oracles and never increases the
    predicted miss count, so the final program's analytic misses (and its
    miss ratio per original access) are <= the original's. Convergence is
    guaranteed by ``max_rounds`` plus a seen-program guard against
    zero-payoff cycles.
    """
    obs = get_obs()
    current = program
    applied: list[AppliedFix] = []
    seen = {pretty_program(program)}
    result = lint_program(
        current, model=model, checks=checks, verify=True, line=line, capacity=capacity
    )
    for _round in range(max_rounds):
        candidates = result.fixable()
        if not candidates:
            break
        best = min(candidates, key=Diagnostic.sort_key)
        fixit = best.fixit
        assert fixit is not None
        text = pretty_program(fixit.program)
        if text in seen:
            break
        seen.add(text)
        current = fixit.program
        applied.append(
            AppliedFix(
                best.check_id,
                fixit.transform,
                fixit.description,
                fixit.miss_before,
                fixit.miss_after,
            )
        )
        if obs.enabled:
            obs.metrics.counter("lint.fixes.applied").inc()
            obs.remark(
                "lint",
                "applied",
                f"{best.check_id}: applied {fixit.transform} fix-it "
                f"({fixit.description}); predicted miss ratio "
                f"{fixit.miss_before:.4f} -> {fixit.miss_after:.4f}",
                check=best.check_id,
                transform=fixit.transform,
            )
        result = lint_program(
            current,
            model=model,
            checks=checks,
            verify=True,
            line=line,
            capacity=capacity,
        )
    return FixOutcome(program=current, applied=tuple(applied), result=result)
