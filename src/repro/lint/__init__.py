"""repro.lint — static locality diagnostics with verified fix-its.

A pass-manager-driven lint framework over :mod:`repro.ir` loop nests:
registered checks emit structured diagnostics (stable check id,
severity, source span, message), and where a repair is mechanically
expressible the diagnostic carries a fix-it bound to one of the existing
transforms. The engine verifies every fix-it against the brute-force
oracles in :mod:`repro.verify`, scores it with the analytic miss-ratio
predictor, and ranks diagnostics by predicted payoff.

Entry points:

* :func:`lint_program` — run the checks, verify, rank;
* :func:`apply_fixes` — the ``--fix`` driver;
* :func:`render_text` / :func:`render_json` — reports;
* :func:`to_sarif` — SARIF 2.1.0 export.

See ``docs/lint.md`` for the check catalog.
"""

from repro.lint.diagnostics import (
    ERROR,
    NOTE,
    SEVERITIES,
    WARNING,
    Diagnostic,
    FixIt,
)
from repro.lint.engine import (
    AppliedFix,
    FixOutcome,
    LintResult,
    apply_fixes,
    lint_program,
)
from repro.lint.registry import (
    LintCheck,
    LintContext,
    all_checks,
    checks_for,
    register,
    registered_checks,
)
from repro.lint.render import render_json, render_text
from repro.lint.sarif import SARIF_VERSION, sarif_log, to_sarif

__all__ = [
    "ERROR",
    "WARNING",
    "NOTE",
    "SEVERITIES",
    "Diagnostic",
    "FixIt",
    "LintCheck",
    "LintContext",
    "LintResult",
    "AppliedFix",
    "FixOutcome",
    "lint_program",
    "apply_fixes",
    "register",
    "all_checks",
    "checks_for",
    "registered_checks",
    "render_text",
    "render_json",
    "to_sarif",
    "sarif_log",
    "SARIF_VERSION",
]
