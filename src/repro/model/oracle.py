"""Cost oracles: one interface answering "how good is this program?".

Every planner in the pipeline used to rank candidates its own way — the
compound driver through :meth:`CostModel.memory_order`, the lint engine
through a private predicted-misses helper, and simulation-driven
comparisons through the trace analyzer. This module gives them one
protocol:

* :class:`CostOracle` — ``cost(program) -> OracleCost`` plus the
  paper's ``memory_order`` ranking, so a planner can both score whole
  candidate programs and ask for a desired loop order;
* :class:`AnalyticOracle` — the trace-free analytic predictor
  (:mod:`repro.locality.analytic`): milliseconds per candidate, the
  default planning oracle for autotuning and lint payoff scoring;
* :class:`SimulationOracle` — exact LRU stack-distance ground truth
  (:mod:`repro.cache.reuse`): seconds per candidate, reserved for final
  top-k reranks and regret measurement.

Both implementations memoize on the *canonicalized* program — the
round-trippable pretty-printed text, which captures parameters, array
declarations, and loop structure — through the shared
:class:`repro.model.memo.MemoCache` layer, so lint, autotune, and ad-hoc
scoring reuse each other's evaluations within a process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.ir.nodes import Loop, Program
from repro.ir.pretty import pretty_program
from repro.model.loopcost import CostModel
from repro.model.memo import MemoCache

if TYPE_CHECKING:
    from repro.cache.reuse import ReuseProfile
    from repro.locality.analytic import LocalityPrediction

__all__ = [
    "OracleCost",
    "CostOracle",
    "AnalyticOracle",
    "SimulationOracle",
    "canonical_key",
]


def canonical_key(program: Program) -> str:
    """Content key of a program: its round-trippable pretty text.

    Two programs with the same key are indistinguishable to every
    analysis (parameters, declarations, and loop structure all print),
    so oracle results may be shared between them.
    """
    return pretty_program(program)


@dataclass(frozen=True)
class OracleCost:
    """One oracle verdict: predicted/measured misses over accesses."""

    misses: float
    accesses: int

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def better_than(self, other: "OracleCost", eps: float = 1e-12) -> bool:
        """Strictly fewer misses (the planner's primary objective)."""
        return self.misses < other.misses - eps


@runtime_checkable
class CostOracle(Protocol):
    """What a planner needs: whole-program cost + desired loop order."""

    name: str
    model: CostModel

    def cost(self, program: Program) -> OracleCost:
        """Misses/accesses of the whole program at the oracle's geometry."""
        ...

    def memory_order(
        self, root: "Loop | Program", outer: tuple[Loop, ...] = ()
    ) -> list[str]:
        """Desired loop order, outermost first (paper §4.1)."""
        ...


#: Shared across AnalyticOracle instances: (canonical text, line) ->
#: LocalityPrediction. Predictions are capacity-agnostic, so every
#: capacity query reuses one entry.
_PREDICTION_CACHE = MemoCache("oracle.analytic.cache", cap=2048)

#: Shared across SimulationOracle instances: (canonical text, line,
#: access cap) -> ReuseProfile. Profiles are large-ish, keep few.
_PROFILE_CACHE = MemoCache("oracle.sim.cache", cap=64)


@dataclass
class AnalyticOracle:
    """Trace-free predictor as the cost oracle (the planning default).

    ``line`` is the cache line size in bytes; ``capacity`` the FA-LRU
    capacity in lines at which misses are counted. ``memory_order``
    delegates to the paper's LoopCost ranking — itself analytic — so a
    compound run driven by this oracle reproduces the paper's decisions
    while candidate *scoring* uses the reuse-distance model.
    """

    model: CostModel = field(default_factory=CostModel)
    line: int = 128
    capacity: int = 512

    name = "analytic"

    def prediction(self, program: Program) -> "LocalityPrediction":
        key = (canonical_key(program), self.line)
        hit = _PREDICTION_CACHE.get(key)
        if hit is not None:
            return hit
        from repro.locality.analytic import predict_locality

        prediction = predict_locality(program, line=self.line)
        _PREDICTION_CACHE.put(key, prediction)
        return prediction

    def cost(self, program: Program) -> OracleCost:
        prediction = self.prediction(program)
        return OracleCost(
            misses=float(prediction.misses_for_capacity(self.capacity)),
            accesses=prediction.accesses,
        )

    def memory_order(
        self, root: "Loop | Program", outer: tuple[Loop, ...] = ()
    ) -> list[str]:
        return self.model.memory_order(root, outer)


@dataclass
class SimulationOracle:
    """Exact trace-driven ground truth (slow; rerank/regret only)."""

    model: CostModel = field(default_factory=CostModel)
    line: int = 128
    capacity: int = 512
    max_accesses: int = 1 << 25

    name = "simulation"

    def profile(self, program: Program) -> "ReuseProfile":
        key = (canonical_key(program), self.line, self.max_accesses)
        hit = _PROFILE_CACHE.get(key)
        if hit is not None:
            return hit
        from repro.cache.reuse import reuse_profile

        profile = reuse_profile(
            program, line=self.line, max_accesses=self.max_accesses
        )
        _PROFILE_CACHE.put(key, profile)
        return profile

    def cost(self, program: Program) -> OracleCost:
        profile = self.profile(program)
        return OracleCost(
            misses=float(profile.accesses - profile.hits_for_capacity(self.capacity)),
            accesses=profile.accesses,
        )

    def memory_order(
        self, root: "Loop | Program", outer: tuple[Loop, ...] = ()
    ) -> list[str]:
        return self.model.memory_order(root, outer)
